// tracegen — generate, inspect and transform cachecloud trace files.
//
//   tracegen --kind=zipf --out=zipf.trace [--docs=25000] [--alpha=0.9]
//            [--caches=10] [--duration-sec=21600] [--req-per-sec=40]
//            [--upd-per-min=195] [--seed=1]
//   tracegen --kind=sydney --out=sydney.trace [--docs=58000] [--caches=10]
//            [--peak-req-per-sec=15] [--upd-per-min=195] [--seed=2]
//   tracegen --stats trace.trace          # print summary statistics
//   tracegen --in=a.trace --out=b.trace --upd-per-min=500 --seed=7
//                                          # resample the update stream
#include <cstdio>
#include <string>

#include "trace/generators.hpp"
#include "trace/trace.hpp"
#include "util/flags.hpp"

using namespace cachecloud;

namespace {

void print_stats(const trace::Trace& t) {
  const trace::TraceStats stats = trace::compute_stats(t);
  std::printf("documents:         %zu (%.1f MB catalog)\n", stats.num_docs,
              static_cast<double>(stats.total_bytes) / 1e6);
  std::printf("duration:          %.1f h\n", stats.duration_sec / 3600.0);
  std::printf("requests:          %zu (%.1f/min)\n", stats.requests,
              stats.requests_per_minute);
  std::printf("updates:           %zu (%.1f/min)\n", stats.updates,
              stats.updates_per_minute);
  std::printf("caches referenced: %u\n", t.num_caches());
  std::printf("top-1%% docs carry: %.1f%% of requests\n",
              100.0 * stats.top1pct_request_share);
}

int run(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  if (flags.has("stats")) {
    std::string path = flags.get_string("stats", "");
    if (path == "true" && !flags.positional().empty()) {
      path = flags.positional().front();
    }
    if (path.empty() || path == "true") {
      std::fprintf(stderr, "usage: tracegen --stats <file>\n");
      return 2;
    }
    print_stats(trace::read_trace_file(path));
    return 0;
  }

  const std::string out = flags.get_string("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: tracegen --kind=zipf|sydney --out=<file> [options]\n"
                 "       tracegen --in=<file> --out=<file> --upd-per-min=<r>\n"
                 "       tracegen --stats <file>\n");
    return 2;
  }

  trace::Trace result;
  if (flags.has("in")) {
    const trace::Trace base =
        trace::read_trace_file(flags.get_string("in", ""));
    result = base.with_update_rate(
        flags.get_double("upd-per-min", 195.0),
        static_cast<std::uint64_t>(flags.get_int("seed", 7)));
  } else {
    const std::string kind = flags.get_string("kind", "zipf");
    if (kind == "zipf") {
      trace::ZipfTraceConfig config;
      config.num_docs = static_cast<std::size_t>(flags.get_int("docs", 25'000));
      config.num_caches =
          static_cast<trace::CacheId>(flags.get_int("caches", 10));
      config.duration_sec = flags.get_double("duration-sec", 6.0 * 3600.0);
      config.requests_per_sec = flags.get_double("req-per-sec", 40.0);
      config.updates_per_minute = flags.get_double("upd-per-min", 195.0);
      config.request_alpha = flags.get_double("alpha", 0.9);
      config.update_alpha = flags.get_double("update-alpha", 0.9);
      config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
      result = trace::generate_zipf_trace(config);
    } else if (kind == "sydney") {
      trace::SydneyTraceConfig config;
      config.num_docs = static_cast<std::size_t>(flags.get_int("docs", 58'000));
      config.num_caches =
          static_cast<trace::CacheId>(flags.get_int("caches", 10));
      config.duration_sec = flags.get_double("duration-sec", 24.0 * 3600.0);
      config.peak_requests_per_sec =
          flags.get_double("peak-req-per-sec", 15.0);
      config.updates_per_minute = flags.get_double("upd-per-min", 195.0);
      config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));
      result = trace::generate_sydney_trace(config);
    } else {
      std::fprintf(stderr, "tracegen: unknown --kind '%s'\n", kind.c_str());
      return 2;
    }
  }

  for (const std::string& name : flags.unused()) {
    std::fprintf(stderr, "tracegen: unknown flag --%s\n", name.c_str());
    return 2;
  }

  trace::write_trace_file(out, result);
  std::printf("wrote %s\n", out.c_str());
  print_stats(result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tracegen: %s\n", e.what());
    return 1;
  }
}
