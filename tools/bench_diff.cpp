// Perf-regression gate: compares a candidate BENCH_live_*.json against a
// baseline and exits non-zero when the candidate regressed.
//
//   bench_diff baseline.json candidate.json [--allow-errors 0]
//       [--min-throughput-ratio 0.9] [--max-p99-factor 1.5]
//       [--exact-counts] [--allow-inconsistent]
//
// Checks, in order:
//   1. schema / workload / mode compatibility
//   2. candidate error count <= --allow-errors (default 0)
//   3. reconciliation.consistent (client and server tallies add up)
//   4. per measured phase: throughput >= ratio * baseline throughput
//   5. per measured phase: p99 <= factor * baseline p99
//   6. with --exact-counts (same seed + config): planned/sent counts equal
//      — catches nondeterminism in the schedule itself
//
// Latency factors default generous (CI runners are noisy); counts and
// errors default strict (they are machine-independent).
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "util/flags.hpp"
#include "util/json.hpp"

namespace cachecloud {
namespace {

using util::JsonValue;

// Loads one report, failing with an actionable message: a missing or
// corrupt baseline should tell the operator where the file was expected
// and exactly how to regenerate it, not just "cannot read".
[[nodiscard]] JsonValue load_report(const std::string& path,
                                    const char* role) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error(
        std::string(role) + " report not found: " + path +
        "\n  The CI baseline is checked in at bench/baselines/ (see "
        "docs/BENCHMARKING.md).\n"
        "  Regenerate with the matching workload and seed, e.g.:\n"
        "    ./build/tools/cachecloud_loadgen --workload zipf --rate 200 "
        "--duration 3 --warmup 1 --seed 7 --docs 300 --caches 4 --out " +
        path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return JsonValue::parse(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(
        std::string(role) + " report " + path +
        " is not parsable bench JSON: " + e.what() +
        "\n  Expected a cachecloud.bench_live.v1 document written by "
        "cachecloud_loadgen.\n"
        "  If the file was truncated by a crashed run, delete it and "
        "regenerate:\n"
        "    ./build/tools/cachecloud_loadgen ... --out " + path);
  }
}

struct Gate {
  int failures = 0;

  void check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

[[nodiscard]] const JsonValue* find_phase(const JsonValue& report,
                                          const std::string& name) {
  for (const JsonValue& phase : report.at("phases").as_array()) {
    if (phase.at("name").as_string() == name) return &phase;
  }
  return nullptr;
}

int run(const util::Flags& flags) {
  if (flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--allow-errors N] [--min-throughput-ratio R] "
                 "[--max-p99-factor F] [--exact-counts] "
                 "[--allow-inconsistent]\n");
    return 2;
  }
  const std::string baseline_path = flags.positional()[0];
  const std::string candidate_path = flags.positional()[1];
  const auto allow_errors =
      static_cast<std::uint64_t>(flags.get_int("allow-errors", 0));
  const double min_throughput_ratio =
      flags.get_double("min-throughput-ratio", 0.9);
  const double max_p99_factor = flags.get_double("max-p99-factor", 1.5);
  const double max_p999_factor = flags.get_double("max-p999-factor", 0.0);
  const bool exact_counts = flags.get_bool("exact-counts", false);
  const bool allow_inconsistent = flags.get_bool("allow-inconsistent", false);
  for (const std::string& name : flags.unused()) {
    std::fprintf(stderr, "bench_diff: unknown flag --%s\n", name.c_str());
    return 2;
  }

  const JsonValue baseline = load_report(baseline_path, "baseline");
  const JsonValue candidate = load_report(candidate_path, "candidate");
  std::printf("bench_diff: %s vs %s\n", baseline_path.c_str(),
              candidate_path.c_str());

  Gate gate;
  gate.check(candidate.at("schema").as_string() ==
                 baseline.at("schema").as_string(),
             "schema matches (" + baseline.at("schema").as_string() + ")");
  gate.check(candidate.at("workload").as_string() ==
                     baseline.at("workload").as_string() &&
                 candidate.at("mode").as_string() ==
                     baseline.at("mode").as_string(),
             "workload/mode match");

  const std::uint64_t errors =
      static_cast<std::uint64_t>(candidate.at("totals").number_at("errors"));
  gate.check(errors <= allow_errors,
             "errors " + std::to_string(errors) + " <= allowed " +
                 std::to_string(allow_errors));

  if (!allow_inconsistent) {
    gate.check(candidate.at("reconciliation").at("consistent").as_bool(),
               "client/server reconciliation consistent");
  }

  const bool same_seed =
      baseline.number_at("seed") == candidate.number_at("seed");
  char line[256];
  for (const JsonValue& base_phase : baseline.at("phases").as_array()) {
    if (!base_phase.at("measured").as_bool()) continue;
    const std::string name = base_phase.at("name").as_string();
    const JsonValue* cand_phase = find_phase(candidate, name);
    if (cand_phase == nullptr) {
      gate.check(false, "phase '" + name + "' present in candidate");
      continue;
    }

    const double base_tput = base_phase.number_at("throughput");
    const double cand_tput = cand_phase->number_at("throughput");
    std::snprintf(line, sizeof(line),
                  "%s: throughput %.1f/s >= %.2f * baseline %.1f/s",
                  name.c_str(), cand_tput, min_throughput_ratio, base_tput);
    gate.check(cand_tput >= min_throughput_ratio * base_tput, line);

    const double base_p99 = base_phase.number_at("p99");
    const double cand_p99 = cand_phase->number_at("p99");
    std::snprintf(line, sizeof(line),
                  "%s: p99 %.3fms <= %.2f * baseline %.3fms", name.c_str(),
                  cand_p99 * 1e3, max_p99_factor, base_p99 * 1e3);
    gate.check(cand_p99 <= max_p99_factor * base_p99, line);

    if (max_p999_factor > 0.0) {
      const double base_p999 = base_phase.number_at("p999");
      const double cand_p999 = cand_phase->number_at("p999");
      std::snprintf(line, sizeof(line),
                    "%s: p99.9 %.3fms <= %.2f * baseline %.3fms",
                    name.c_str(), cand_p999 * 1e3, max_p999_factor,
                    base_p999 * 1e3);
      gate.check(cand_p999 <= max_p999_factor * base_p999, line);
    }

    if (exact_counts) {
      if (!same_seed) {
        gate.check(false, name + ": --exact-counts needs matching seeds");
        continue;
      }
      const auto planned_base =
          static_cast<std::uint64_t>(base_phase.number_at("planned"));
      const auto planned_cand =
          static_cast<std::uint64_t>(cand_phase->number_at("planned"));
      const auto sent_base =
          static_cast<std::uint64_t>(base_phase.number_at("sent"));
      const auto sent_cand =
          static_cast<std::uint64_t>(cand_phase->number_at("sent"));
      std::snprintf(line, sizeof(line),
                    "%s: exact counts planned %llu==%llu sent %llu==%llu",
                    name.c_str(),
                    static_cast<unsigned long long>(planned_base),
                    static_cast<unsigned long long>(planned_cand),
                    static_cast<unsigned long long>(sent_base),
                    static_cast<unsigned long long>(sent_cand));
      gate.check(planned_base == planned_cand && sent_base == sent_cand,
                 line);
    }
  }

  // Steady-state timeline gate: when BOTH reports carry a "timeline"
  // section (runs with --timeline-out), compare the per-interval medians —
  // these exclude warmup/drain edges and catch regressions a whole-run
  // aggregate washes out. A report without the section is simply not
  // gated, so timeline-less baselines keep working.
  const JsonValue* base_tl = baseline.find("timeline");
  const JsonValue* cand_tl = candidate.find("timeline");
  if (base_tl != nullptr && cand_tl != nullptr) {
    const double base_med_qps = base_tl->number_at("median_qps");
    const double cand_med_qps = cand_tl->number_at("median_qps");
    std::snprintf(line, sizeof(line),
                  "timeline: median qps %.1f/s >= %.2f * baseline %.1f/s",
                  cand_med_qps, min_throughput_ratio, base_med_qps);
    gate.check(cand_med_qps >= min_throughput_ratio * base_med_qps, line);

    const double base_med_p99 = base_tl->number_at("median_p99");
    const double cand_med_p99 = cand_tl->number_at("median_p99");
    std::snprintf(line, sizeof(line),
                  "timeline: median p99 %.3fms <= %.2f * baseline %.3fms",
                  cand_med_p99 * 1e3, max_p99_factor, base_med_p99 * 1e3);
    gate.check(cand_med_p99 <= max_p99_factor * base_med_p99, line);
  } else if (cand_tl != nullptr || base_tl != nullptr) {
    std::printf("  [--] timeline section only in %s; steady-state gate "
                "skipped\n",
                cand_tl != nullptr ? "candidate" : "baseline");
  }

  // Per-metric delta table, printed on success as well as failure so CI
  // logs show the perf trajectory even when the gate passes.
  std::printf("\n  %-14s %-12s %14s %14s %9s\n", "phase", "metric",
              "baseline", "candidate", "change");
  const auto delta_pct = [](double base, double cand) {
    if (base == 0.0) return cand == 0.0 ? 0.0 : 100.0;
    return (cand - base) / base * 100.0;
  };
  for (const JsonValue& base_phase : baseline.at("phases").as_array()) {
    if (!base_phase.at("measured").as_bool()) continue;
    const std::string name = base_phase.at("name").as_string();
    const JsonValue* cand_phase = find_phase(candidate, name);
    if (cand_phase == nullptr) continue;
    struct Row {
      const char* metric;
      const char* unit;
      double scale;  // applied before printing (e.g. sec -> ms)
    };
    static constexpr Row kRows[] = {
        {"throughput", "/s", 1.0}, {"p50", "ms", 1e3}, {"p90", "ms", 1e3},
        {"p99", "ms", 1e3},        {"p999", "ms", 1e3}, {"mean", "ms", 1e3},
        {"ok", "", 1.0},           {"errors", "", 1.0},
    };
    for (const Row& row : kRows) {
      const double base = base_phase.number_at(row.metric);
      const double cand = cand_phase->number_at(row.metric);
      std::snprintf(line, sizeof(line),
                    "  %-14s %-12s %12.3f%-2s %12.3f%-2s %+8.1f%%",
                    name.c_str(), row.metric, base * row.scale, row.unit,
                    cand * row.scale, row.unit, delta_pct(base, cand));
      std::printf("%s\n", line);
    }
  }
  std::printf("\n");

  if (gate.failures > 0) {
    std::printf("bench_diff: FAIL (%d check%s)\n", gate.failures,
                gate.failures == 1 ? "" : "s");
    return 1;
  }
  std::printf("bench_diff: PASS\n");
  return 0;
}

}  // namespace
}  // namespace cachecloud

int main(int argc, char** argv) {
  try {
    const cachecloud::util::Flags flags(argc, argv);
    return cachecloud::run(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
