// Distributed trace collector/viewer for live cache-cloud nodes.
//
// Scrapes every node's span store over the wire (TraceDumpReq, the tracing
// twin of the StatsReq metrics scrape), stitches the spans into
// per-request trees by trace id, prints the slowest-K traces with their
// per-hop breakdowns and optionally writes the whole set as Chrome
// trace-viewer / Perfetto JSON (chrome://tracing, ui.perfetto.dev).
//
//   cachecloud_tracecat --ports 9001,9002,9003,9010 --top 10
//   cachecloud_tracecat --ports 9001 --drain --out traces.json
//   cachecloud_tracecat --validate traces.json   # CI artifact check
//
// Scraping is best-effort: unreachable nodes are reported on stderr and
// skipped, and zero reachable nodes still yields a valid (empty) trace
// file — the exit code only reflects usage errors and failed validation.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "node/trace_scrape.hpp"
#include "obs/trace_stitch.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace cachecloud {
namespace {

void print_usage(const char* program) {
  std::printf(
      "usage: %s [--ports P1,P2,...] [options]\n"
      "\n"
      "Scrape live nodes' span stores, stitch request traces, report.\n"
      "\n"
      "  --ports P1,P2,...  node ports to scrape (cache and origin alike)\n"
      "  --top K            print the K slowest stitched traces (default 10)\n"
      "  --out FILE         write Chrome trace-viewer / Perfetto JSON\n"
      "  --drain            remove scraped spans from the nodes' stores\n"
      "  --timeout SEC      per-node connect/call timeout (default 5)\n"
      "  --validate FILE    parse FILE as Chrome trace JSON and exit\n"
      "                     (0 = valid, 1 = malformed); no scraping\n"
      "  --help             this text\n",
      program);
}

[[nodiscard]] std::vector<std::uint16_t> parse_ports(
    const std::string& list) {
  std::vector<std::uint16_t> ports;
  for (const std::string_view item : util::split(list, ',')) {
    const std::string trimmed(util::trim(item));
    if (trimmed.empty()) continue;
    const int port = std::stoi(trimmed);
    if (port <= 0 || port > 65535) {
      throw std::invalid_argument("port out of range: " + trimmed);
    }
    ports.push_back(static_cast<std::uint16_t>(port));
  }
  return ports;
}

// Validates a Chrome trace JSON artifact: top-level object, a
// "traceEvents" array, and every event an object with a "ph" string.
// Prints a one-line summary; returns the process exit code.
int validate_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tracecat: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const util::JsonValue doc = util::JsonValue::parse(buffer.str());
    if (!doc.is_object()) {
      throw std::invalid_argument("top level is not an object");
    }
    const util::JsonValue& events = doc.at("traceEvents");
    if (!events.is_array()) {
      throw std::invalid_argument("traceEvents is not an array");
    }
    std::size_t spans = 0;
    for (const util::JsonValue& event : events.as_array()) {
      if (!event.is_object()) {
        throw std::invalid_argument("trace event is not an object");
      }
      if (event.at("ph").as_string() == "X") ++spans;
    }
    std::printf("tracecat: %s valid (%zu events, %zu spans)\n", path.c_str(),
                events.as_array().size(), spans);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tracecat: %s invalid: %s\n", path.c_str(),
                 e.what());
    return 1;
  }
}

int run(const util::Flags& flags) {
  if (flags.get_bool("help", false)) {
    print_usage(flags.program().c_str());
    return 0;
  }
  const std::string validate_path = flags.get_string("validate", "");
  const std::string ports_list = flags.get_string("ports", "");
  const std::size_t top =
      static_cast<std::size_t>(flags.get_int("top", 10));
  const std::string out_path = flags.get_string("out", "");
  const bool drain = flags.get_bool("drain", false);
  const double timeout = flags.get_double("timeout", 5.0);

  for (const std::string& name : flags.unused()) {
    std::fprintf(stderr, "tracecat: unknown flag --%s\n", name.c_str());
    return 2;
  }
  if (!validate_path.empty()) return validate_file(validate_path);

  const std::vector<std::uint16_t> ports = parse_ports(ports_list);
  const node::ScrapeResult scraped =
      node::scrape_traces(ports, drain, timeout);
  for (const std::string& error : scraped.errors) {
    std::fprintf(stderr, "tracecat: scrape failed: %s\n", error.c_str());
  }

  const std::vector<obs::TraceTree> traces =
      obs::stitch_traces(scraped.spans);
  std::printf("scraped %zu spans from %zu/%zu nodes\n",
              scraped.spans.size(), scraped.nodes_scraped, ports.size());
  std::printf("%s", obs::slowest_report(traces, top).c_str());

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "tracecat: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << obs::to_chrome_trace(traces);
    std::printf("wrote %s (%zu traces)\n", out_path.c_str(), traces.size());
  }
  return 0;
}

}  // namespace
}  // namespace cachecloud

int main(int argc, char** argv) {
  try {
    const cachecloud::util::Flags flags(argc, argv);
    return cachecloud::run(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tracecat: %s\n", e.what());
    return 2;
  }
}
