// Contention & resource profile reporter for live cache-cloud nodes.
//
// Scrapes every node's profiler (ProfileDumpReq, the profiling twin of the
// StatsReq metrics scrape) and renders the ranked "where the time goes"
// table: top-K locks by total wait with wait/hold p99s, worker busy vs
// blocked-in-read utilization, and per-node syscall/byte totals. Nodes
// only accumulate samples while obs profiling is on (e.g. a loadgen
// --profile run); scraping a cluster with profiling off says so instead of
// printing zeros.
//
//   cachecloud_profcat --ports 9001,9002,9003,9010
//   cachecloud_profcat --ports 9001,9010 --top 5
//
// Scraping is best-effort: unreachable nodes are reported on stderr and
// skipped — the exit code only reflects usage errors.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "node/profile_scrape.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

namespace cachecloud {
namespace {

void print_usage(const char* program) {
  std::printf(
      "usage: %s --ports P1,P2,... [options]\n"
      "\n"
      "Scrape live nodes' contention profilers and rank where the time "
      "goes.\n"
      "\n"
      "  --ports P1,P2,...  node ports to scrape (cache and origin alike)\n"
      "  --top K            keep the K locks with the most total wait\n"
      "                     (default 10, 0 = all)\n"
      "  --timeout SEC      per-node connect/call timeout (default 5)\n"
      "  --help             this text\n",
      program);
}

[[nodiscard]] std::vector<std::uint16_t> parse_ports(
    const std::string& list) {
  std::vector<std::uint16_t> ports;
  for (const std::string_view item : util::split(list, ',')) {
    const std::string trimmed(util::trim(item));
    if (trimmed.empty()) continue;
    const int port = std::stoi(trimmed);
    if (port <= 0 || port > 65535) {
      throw std::invalid_argument("port out of range: " + trimmed);
    }
    ports.push_back(static_cast<std::uint16_t>(port));
  }
  return ports;
}

int run(const util::Flags& flags) {
  if (flags.get_bool("help", false)) {
    print_usage(flags.program().c_str());
    return 0;
  }
  const std::string ports_list = flags.get_string("ports", "");
  const std::size_t top = static_cast<std::size_t>(flags.get_int("top", 10));
  const double timeout = flags.get_double("timeout", 5.0);

  for (const std::string& name : flags.unused()) {
    std::fprintf(stderr, "profcat: unknown flag --%s\n", name.c_str());
    return 2;
  }

  const std::vector<std::uint16_t> ports = parse_ports(ports_list);
  if (ports.empty()) {
    print_usage(flags.program().c_str());
    return 2;
  }
  const node::ProfileScrapeResult scraped =
      node::scrape_profiles(ports, timeout);
  for (const std::string& error : scraped.errors) {
    std::fprintf(stderr, "profcat: scrape failed: %s\n", error.c_str());
  }
  std::printf("scraped %zu/%zu nodes\n", scraped.nodes_scraped,
              ports.size());

  const obs::ContentionSummary summary =
      node::summarize_profiles(scraped, top);
  std::printf("%s", obs::contention_table(summary).c_str());
  return 0;
}

}  // namespace
}  // namespace cachecloud

int main(int argc, char** argv) {
  try {
    const cachecloud::util::Flags flags(argc, argv);
    return cachecloud::run(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "profcat: %s\n", e.what());
    return 2;
  }
}
