// cachecloud_sim — run any cache-cloud configuration over a trace and
// report the full metric set. The general-purpose front end to the
// simulator: every knob of CloudConfig is a flag.
//
//   cachecloud_sim --trace=sydney.trace [options]
//   cachecloud_sim --synth=zipf --req-per-sec=40 [options]   # no file needed
//
// Cloud options:
//   --caches=N             cloud size (default 10; synth traces honour it)
//   --hashing=dynamic      static | consistent | dynamic
//   --ring-size=2          beacon points per ring (dynamic)
//   --irh-gen=1000         intra-ring hash range
//   --cycle-sec=3600       sub-range determination period
//   --no-per-irh           use the CAvgLoad approximation (Fig 2-C mode)
//   --placement=utility    adhoc | beacon | utility
//   --threshold=0.5        UtilThreshold
//   --disk-mb=0            per-cache disk (0 = unlimited)
//   --replacement=lru      lru | lfu | gdsf
//   --consistency=push     push | ttl      --ttl-sec=300
//   --no-cooperation       the paper's no-cooperation baseline
//   --warmup-sec=0         exclude the first part from metrics
//
// Observability options:
//   --stats-every=N        print a per-interval rate line (req/s, hit mix,
//                          evict/s, net MB/min) every N seconds of simulated
//                          time, derived via the shared timeline sampler
//                          (0 = off)
//   --prometheus           dump the final metrics in Prometheus text format
//                          (same metric names live nodes expose via StatsReq)
//
// Chaos options (--chaos switches to a live loopback cluster under the
// deterministic fault injector instead of the discrete-event simulator):
//   --chaos                run the chaos harness and exit non-zero on any
//                          client-visible error or metric mismatch
//   --chaos-seed=42        fault injector seed (fixed seed = fixed faults)
//   --chaos-caches=4      cluster size      --chaos-docs=40
//   --chaos-requests=400   client gets issued after faults are armed
//   --chaos-drop=0.05      P(frame dropped) on every cache port
//   --chaos-refuse=0       P(connect refused)  --chaos-reset=0  P(reset)
//   --chaos-latency-ms=1   injected delay      --chaos-latency-prob=0.25
//   --chaos-crash=1        node crashed a third of the way in (-1 = none)
//   --chaos-cache-dir=DIR  mount the write-behind disk tier at DIR
//   --chaos-disk-fault=0   P(EIO) injected on disk read/write/fsync; at 1.0
//                          every node must trip into memory-only degrade
//                          with zero client-visible errors
//   --chaos-mem-bytes=32768  memory tier size when the disk tier is mounted
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/io_fault.hpp"
#include "core/cloud.hpp"
#include "net/fault_injector.hpp"
#include "node/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

using namespace cachecloud;

namespace {

// Live-cluster chaos smoke: warm a loopback cloud, arm the fault injector,
// crash a node mid-run and require every remaining request to complete.
int run_chaos(const util::Flags& flags) {
  net::FaultInjector faults(
      static_cast<std::uint64_t>(flags.get_int("chaos-seed", 42)));

  node::NodeConfig config;
  config.num_caches =
      static_cast<std::uint32_t>(flags.get_int("chaos-caches", 4));
  config.ring_size =
      static_cast<std::uint32_t>(flags.get_int("ring-size", 2));
  config.irh_gen = static_cast<std::uint32_t>(flags.get_int("irh-gen", 100));
  config.placement = flags.get_string("placement", "adhoc");
  config.fault_injector = &faults;
  // Tightened time constants so a short run exercises the full breaker
  // cycle; threshold/trips stay at ratios that tolerate the injected drop
  // rate (suspicion should single out the crashed node, not flaky peers).
  config.retry.backoff_base_sec = 0.001;
  config.retry.backoff_cap_sec = 0.010;
  config.breaker.cooldown_sec = 0.05;
  config.breaker.failure_threshold = 3;
  config.breaker.suspect_after_trips = 2;

  const int docs = flags.get_int("chaos-docs", 40);
  const int requests = flags.get_int("chaos-requests", 400);
  const int crash_node = flags.get_int("chaos-crash", 1);

  // Disk chaos: --chaos-cache-dir mounts the write-behind disk tier
  // (write-through + a small memory tier so every request touches disk),
  // --chaos-disk-fault injects seeded EIO on that tier's read/write/fsync
  // syscalls. At 100% the harness requires every node to trip its breaker
  // into memory-only degrade while still serving every request.
  const std::string cache_dir = flags.get_string("chaos-cache-dir", "");
  const double disk_fault = flags.get_double("chaos-disk-fault", 0.0);
  cache::IoFaultInjector io_faults(
      static_cast<std::uint64_t>(flags.get_int("chaos-seed", 42)));
  if (!cache_dir.empty()) {
    config.disk.directory = cache_dir;
    config.disk.io_faults = &io_faults;
    config.disk_write_through = true;
    config.capacity_bytes = static_cast<std::uint64_t>(
        flags.get_int("chaos-mem-bytes", 32768));
    if (disk_fault > 0.0) {
      cache::IoFaultProfile io_profile;
      io_profile.read_error = disk_fault;
      io_profile.write_error = disk_fault;
      io_profile.fsync_error = disk_fault;
      io_faults.set_profile(io_profile);
    }
  }
  net::FaultProfile profile;
  profile.frame_drop = flags.get_double("chaos-drop", 0.05);
  profile.connect_refused = flags.get_double("chaos-refuse", 0.0);
  profile.reset = flags.get_double("chaos-reset", 0.0);
  profile.latency_sec = flags.get_double("chaos-latency-ms", 1.0) / 1000.0;
  const double latency_prob = flags.get_double("chaos-latency-prob", 0.25);
  profile.extra_latency = profile.latency_sec > 0.0 ? latency_prob : 0.0;

  for (const std::string& name : flags.unused()) {
    std::fprintf(stderr, "cachecloud_sim: unknown flag --%s\n", name.c_str());
    return 2;
  }

  node::Cluster cluster(config);
  for (int i = 0; i < docs; ++i) {
    const std::string url = "/chaos/" + std::to_string(i);
    cluster.origin().add_document(url, 256);
    (void)cluster.cache(static_cast<node::NodeId>(i) % config.num_caches)
        .get(url);
  }
  for (node::NodeId id = 0; id < config.num_caches; ++id) {
    cluster.cache(id).sync_replicas();
  }

  // Faults on every cache port; the origin stays clean so the degradation
  // fallback (origin fetch) cannot itself fail.
  for (node::NodeId id = 0; id < config.num_caches; ++id) {
    faults.set_profile(cluster.cache(id).port(), profile);
  }
  std::printf(
      "chaos: %u caches, %d docs, %d requests, drop=%.0f%% refuse=%.0f%% "
      "reset=%.0f%% latency=%.0f%%x%.0fms, crash=%d, seed=%d\n",
      config.num_caches, docs, requests, 100.0 * profile.frame_drop,
      100.0 * profile.connect_refused, 100.0 * profile.reset,
      100.0 * profile.extra_latency, 1000.0 * profile.latency_sec, crash_node,
      flags.get_int("chaos-seed", 42));

  const auto hit_mix = [&cluster, &config] {
    node::CacheNode::Counters sum;
    for (node::NodeId id = 0; id < config.num_caches; ++id) {
      const node::CacheNode::Counters c = cluster.cache(id).counters();
      sum.gets += c.gets;
      sum.local_hits += c.local_hits;
      sum.cloud_hits += c.cloud_hits;
      sum.origin_fetches += c.origin_fetches;
    }
    return sum;
  };
  const node::CacheNode::Counters warm = hit_mix();

  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  for (int i = 0; i < requests; ++i) {
    if (i == requests / 3 && crash_node >= 0) {
      std::printf("chaos: crashing node %d at request %d\n", crash_node, i);
      cluster.crash(static_cast<node::NodeId>(crash_node));
    }
    // Round-robin over live caches only (a crashed node has no client
    // API), shifted by one extra node per pass over the document set so
    // requests land away from where warmup cached them and the
    // cooperative cloud-fetch path stays busy.
    node::NodeId at = static_cast<node::NodeId>(i + 1 + i / docs) %
                      config.num_caches;
    while (cluster.crashed(at)) at = (at + 1) % config.num_caches;
    const std::string url = "/chaos/" + std::to_string(i % docs);
    try {
      const auto result = cluster.cache(at).get(url);
      if (result.body.empty()) throw std::runtime_error("empty body");
      ++completed;
    } catch (const std::exception& e) {
      ++errors;
      std::fprintf(stderr, "chaos: CLIENT-VISIBLE ERROR at node %u: %s\n", at,
                   e.what());
    }
  }

  double peer_failures = 0.0;
  double retries = 0.0;
  double trips = 0.0;
  double short_circuits = 0.0;
  double degraded = 0.0;
  double suspects = 0.0;
  double disk_degraded_nodes = 0.0;
  double disk_io_errors = 0.0;
  double disk_spills = 0.0;
  for (node::NodeId id = 0; id < config.num_caches; ++id) {
    const obs::Snapshot snap = cluster.cache(id).metrics_snapshot();
    peer_failures += snap.sum_of("cachecloud_peer_call_failures_total");
    retries += snap.sum_of("cachecloud_peer_retries_total");
    trips += snap.sum_of("cachecloud_breaker_trips_total");
    short_circuits += snap.sum_of("cachecloud_breaker_short_circuits_total");
    degraded += snap.sum_of("cachecloud_degraded_serves_total");
    suspects += snap.sum_of("cachecloud_suspects_reported_total");
    disk_degraded_nodes += snap.sum_of("cachecloud_disk_degraded");
    disk_io_errors += snap.sum_of("cachecloud_disk_io_errors_total");
    disk_spills += snap.sum_of("cachecloud_disk_spills_total");
  }
  const obs::Snapshot origin_snap = cluster.origin().metrics_snapshot();
  const double origin_failures =
      origin_snap.sum_of("cachecloud_origin_peer_call_failures_total");
  const double suspicion_failovers = origin_snap.sum_of(
      "cachecloud_origin_failovers_total");

  const node::CacheNode::Counters done = hit_mix();
  const auto gets = static_cast<double>(done.gets - warm.gets);

  std::printf("\nchaos report\n");
  std::printf("  requests completed      %llu / %d\n",
              static_cast<unsigned long long>(completed), requests);
  if (gets > 0.0) {
    std::printf(
        "  hit mix (chaos phase)   local=%.1f%% cloud=%.1f%% origin=%.1f%%\n",
        100.0 * static_cast<double>(done.local_hits - warm.local_hits) / gets,
        100.0 * static_cast<double>(done.cloud_hits - warm.cloud_hits) / gets,
        100.0 * static_cast<double>(done.origin_fetches - warm.origin_fetches) /
            gets);
  }
  std::printf("  client-visible errors   %llu\n",
              static_cast<unsigned long long>(errors));
  std::printf("  injected: refused=%llu dropped=%llu delayed=%llu reset=%llu\n",
              static_cast<unsigned long long>(
                  faults.count(net::FaultInjector::Kind::ConnectRefused)),
              static_cast<unsigned long long>(
                  faults.count(net::FaultInjector::Kind::FrameDrop)),
              static_cast<unsigned long long>(
                  faults.count(net::FaultInjector::Kind::ExtraLatency)),
              static_cast<unsigned long long>(
                  faults.count(net::FaultInjector::Kind::Reset)));
  std::printf("  failed attempts         %.0f cache + %.0f origin\n",
              peer_failures, origin_failures);
  std::printf("  retries                 %.0f\n", retries);
  std::printf("  breaker trips           %.0f (short-circuited calls %.0f)\n",
              trips, short_circuits);
  std::printf("  degraded serves         %.0f\n", degraded);
  std::printf("  suspects reported       %.0f (failovers run %.0f)\n",
              suspects, suspicion_failovers);
  if (!cache_dir.empty()) {
    std::printf(
        "  disk tier               spills=%.0f io-errors=%.0f (injected "
        "eio=%llu) degraded nodes=%.0f/%u\n",
        disk_spills, disk_io_errors,
        static_cast<unsigned long long>(io_faults.hard_errors()),
        disk_degraded_nodes, config.num_caches);
  }

  // Total disk failure must degrade every node to memory-only — the gauge
  // is the operator's signal — while the client sees zero errors: the
  // cooperative protocol keeps serving without the tier.
  if (!cache_dir.empty() && disk_fault >= 1.0) {
    const bool all_degraded =
        disk_degraded_nodes >= static_cast<double>(config.num_caches);
    std::printf("  disk degrade            %s\n",
                all_degraded ? "every node memory-only, requests unharmed"
                             : "MISSING DEGRADE");
    if (!all_degraded) return 1;
  }

  // Every injected disruption surfaces as exactly one failed attempt at
  // some caller; a crashed node only adds real failures on top.
  const double disruptions = static_cast<double>(faults.disruptions());
  const bool reconciled = peer_failures + origin_failures >= disruptions;
  std::printf("  reconciliation          %.0f failed attempts vs %.0f "
              "injected disruptions: %s\n",
              peer_failures + origin_failures, disruptions,
              reconciled ? "ok" : "MISMATCH");

  if (errors > 0 || !reconciled) return 1;
  std::printf("chaos: all %llu requests served, zero client-visible errors\n",
              static_cast<unsigned long long>(completed));
  return 0;
}

int run(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  if (flags.get_bool("chaos", false)) return run_chaos(flags);

  const auto caches = static_cast<std::uint32_t>(flags.get_int("caches", 10));

  trace::Trace trace;
  if (flags.has("trace")) {
    trace = trace::read_trace_file(flags.get_string("trace", ""));
  } else {
    const std::string synth = flags.get_string("synth", "zipf");
    if (synth == "zipf") {
      trace::ZipfTraceConfig config;
      config.num_caches = caches;
      config.num_docs =
          static_cast<std::size_t>(flags.get_int("docs", 25'000));
      config.duration_sec = flags.get_double("duration-sec", 6.0 * 3600.0);
      config.requests_per_sec = flags.get_double("req-per-sec", 40.0);
      config.updates_per_minute = flags.get_double("upd-per-min", 195.0);
      config.request_alpha = flags.get_double("alpha", 0.9);
      trace = trace::generate_zipf_trace(config);
    } else if (synth == "sydney") {
      trace::SydneyTraceConfig config;
      config.num_caches = caches;
      config.num_docs =
          static_cast<std::size_t>(flags.get_int("docs", 58'000));
      config.peak_requests_per_sec =
          flags.get_double("peak-req-per-sec", 15.0);
      config.updates_per_minute = flags.get_double("upd-per-min", 195.0);
      trace = trace::generate_sydney_trace(config);
    } else {
      std::fprintf(stderr, "cachecloud_sim: unknown --synth '%s'\n",
                   synth.c_str());
      return 2;
    }
  }

  core::CloudConfig config;
  config.num_caches = std::max(caches, trace.num_caches());
  const std::string hashing = flags.get_string("hashing", "dynamic");
  if (hashing == "static") {
    config.hashing = core::CloudConfig::Hashing::Static;
  } else if (hashing == "consistent") {
    config.hashing = core::CloudConfig::Hashing::Consistent;
  } else if (hashing == "dynamic") {
    config.hashing = core::CloudConfig::Hashing::Dynamic;
  } else {
    std::fprintf(stderr, "cachecloud_sim: unknown --hashing '%s'\n",
                 hashing.c_str());
    return 2;
  }
  config.ring_size = static_cast<std::uint32_t>(flags.get_int("ring-size", 2));
  config.irh_gen = static_cast<std::uint32_t>(flags.get_int("irh-gen", 1000));
  config.cycle_sec = flags.get_double("cycle-sec", 3600.0);
  config.track_per_irh = !flags.get_bool("no-per-irh", false);
  config.placement = flags.get_string("placement", "utility");
  config.utility.threshold = flags.get_double("threshold", 0.5);
  const double disk_mb = flags.get_double("disk-mb", 0.0);
  config.per_cache_capacity_bytes =
      static_cast<std::uint64_t>(disk_mb * 1e6);
  config.replacement = flags.get_string("replacement", "lru");
  if (config.per_cache_capacity_bytes > 0) {
    // Limited disk: turn the DsCC component on, paper Fig 9 style.
    config.utility.w_consistency = 0.25;
    config.utility.w_access_frequency = 0.25;
    config.utility.w_availability = 0.25;
    config.utility.w_disk_contention = 0.25;
  }
  const std::string consistency = flags.get_string("consistency", "push");
  if (consistency == "ttl") {
    config.consistency = core::CloudConfig::Consistency::Ttl;
    config.ttl_sec = flags.get_double("ttl-sec", 300.0);
  } else if (consistency != "push") {
    std::fprintf(stderr, "cachecloud_sim: unknown --consistency '%s'\n",
                 consistency.c_str());
    return 2;
  }
  config.cooperative = !flags.get_bool("no-cooperation", false);

  sim::SimConfig sim_config;
  sim_config.metrics_start_sec = flags.get_double("warmup-sec", 0.0);

  // Periodic running summary + registry sink. The registry mirrors the
  // metric names live nodes expose, so a sim run and a live scrape can be
  // compared side by side.
  obs::Registry registry;
  const double stats_every = flags.get_double("stats-every", 0.0);
  const bool prometheus = flags.get_bool("prometheus", false);
  if (prometheus || stats_every > 0.0) sim_config.registry = &registry;
  // --stats-every rides on the shared timeline core: every tick the
  // registry snapshot goes through an obs::Timeline, whose counter-delta
  // rates replace the ad-hoc cumulative bookkeeping this tool used to
  // duplicate — the printed line is now *this interval's* behaviour, the
  // same math the live nodes' samplers and cachecloud_top use.
  obs::TimelineConfig stats_tl_config;
  stats_tl_config.enabled = true;
  stats_tl_config.interval_sec = stats_every;
  stats_tl_config.capacity = 4;  // only the last tick pair is ever read
  obs::Timeline stats_timeline(stats_tl_config);
  if (stats_every > 0.0) {
    sim_config.stats_every_sec = stats_every;
    // Tick 0 at t=0 on the still-empty registry: counters first seen on a
    // later tick rate from a zero baseline, so the first printed interval
    // already has meaningful rates.
    stats_timeline.observe(registry.snapshot(), 0.0);
    sim_config.stats_sink = [&registry, &stats_timeline](
                                double now, const sim::CloudMetrics& m) {
      stats_timeline.observe(registry.snapshot(), now);
      const obs::TimelineWindow window = stats_timeline.window();
      const double qps = window.last_sum("cachecloud_gets_total");
      const auto class_rate = [&window](const char* cls) {
        const double v = window.last("cachecloud_gets_total",
                                     {{"class", cls}});
        return std::isfinite(v) ? v : 0.0;
      };
      const double mix_div = qps > 0.0 ? qps : 1.0;
      const double evictions =
          window.last("cachecloud_evictions_total");
      const double mb_per_min =
          window.last_sum("cachecloud_sim_bytes_total") * 60.0 / 1e6;
      std::printf(
          "[t=%8.0fs] req/s=%s local=%s%% cloud=%s%% evict/s=%s net=%s "
          "MB/min (total %llu)\n",
          now, util::format_double(std::isfinite(qps) ? qps : 0.0, 1).c_str(),
          util::format_double(100.0 * class_rate("local") / mix_div, 1)
              .c_str(),
          util::format_double(100.0 * class_rate("cloud") / mix_div, 1)
              .c_str(),
          util::format_double(std::isfinite(evictions) ? evictions : 0.0, 2)
              .c_str(),
          util::format_double(std::isfinite(mb_per_min) ? mb_per_min : 0.0, 2)
              .c_str(),
          static_cast<unsigned long long>(m.requests));
    };
  }

  for (const std::string& name : flags.unused()) {
    std::fprintf(stderr, "cachecloud_sim: unknown flag --%s\n", name.c_str());
    return 2;
  }

  std::printf("trace: %zu docs, %zu requests, %zu updates, %.1f h\n",
              trace.num_docs(), trace.request_count(), trace.update_count(),
              trace.duration() / 3600.0);
  std::printf("cloud: %u caches, %s hashing, %s placement, %s consistency%s\n",
              config.num_caches, hashing.c_str(), config.placement.c_str(),
              consistency.c_str(),
              config.cooperative ? "" : ", NO cooperation");

  core::CacheCloud cloud(config, trace);
  const sim::SimResult result = sim::run_simulation(cloud, trace, sim_config);

  std::printf("\n%s", result.metrics.summary().c_str());
  std::printf("origin messages: %llu (%.1f/min)\n",
              static_cast<unsigned long long>(result.metrics.origin_messages),
              static_cast<double>(result.metrics.origin_messages) /
                  (result.metrics.measured_sec / 60.0));
  if (config.consistency == core::CloudConfig::Consistency::Ttl) {
    std::printf("ttl: stale hits %.2f%%, %llu revalidations, %llu refetches\n",
                100.0 * static_cast<double>(result.metrics.stale_hits) /
                    static_cast<double>(result.metrics.requests),
                static_cast<unsigned long long>(result.metrics.revalidations),
                static_cast<unsigned long long>(result.metrics.ttl_refetches));
  }
  std::printf("re-balance cycles: %zu (records handed over: %zu)\n",
              result.rebalances, result.records_transferred);
  if (prometheus) {
    std::printf("\n%s", obs::to_prometheus(registry.snapshot()).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cachecloud_sim: %s\n", e.what());
    return 1;
  }
}
