// cachecloud_sim — run any cache-cloud configuration over a trace and
// report the full metric set. The general-purpose front end to the
// simulator: every knob of CloudConfig is a flag.
//
//   cachecloud_sim --trace=sydney.trace [options]
//   cachecloud_sim --synth=zipf --req-per-sec=40 [options]   # no file needed
//
// Cloud options:
//   --caches=N             cloud size (default 10; synth traces honour it)
//   --hashing=dynamic      static | consistent | dynamic
//   --ring-size=2          beacon points per ring (dynamic)
//   --irh-gen=1000         intra-ring hash range
//   --cycle-sec=3600       sub-range determination period
//   --no-per-irh           use the CAvgLoad approximation (Fig 2-C mode)
//   --placement=utility    adhoc | beacon | utility
//   --threshold=0.5        UtilThreshold
//   --disk-mb=0            per-cache disk (0 = unlimited)
//   --replacement=lru      lru | lfu | gdsf
//   --consistency=push     push | ttl      --ttl-sec=300
//   --no-cooperation       the paper's no-cooperation baseline
//   --warmup-sec=0         exclude the first part from metrics
//
// Observability options:
//   --stats-every=N        print a one-line running summary every N seconds
//                          of simulated time (0 = off)
//   --prometheus           dump the final metrics in Prometheus text format
//                          (same metric names live nodes expose via StatsReq)
#include <cstdio>
#include <string>

#include "core/cloud.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

using namespace cachecloud;

namespace {

int run(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  const auto caches = static_cast<std::uint32_t>(flags.get_int("caches", 10));

  trace::Trace trace;
  if (flags.has("trace")) {
    trace = trace::read_trace_file(flags.get_string("trace", ""));
  } else {
    const std::string synth = flags.get_string("synth", "zipf");
    if (synth == "zipf") {
      trace::ZipfTraceConfig config;
      config.num_caches = caches;
      config.num_docs =
          static_cast<std::size_t>(flags.get_int("docs", 25'000));
      config.duration_sec = flags.get_double("duration-sec", 6.0 * 3600.0);
      config.requests_per_sec = flags.get_double("req-per-sec", 40.0);
      config.updates_per_minute = flags.get_double("upd-per-min", 195.0);
      config.request_alpha = flags.get_double("alpha", 0.9);
      trace = trace::generate_zipf_trace(config);
    } else if (synth == "sydney") {
      trace::SydneyTraceConfig config;
      config.num_caches = caches;
      config.num_docs =
          static_cast<std::size_t>(flags.get_int("docs", 58'000));
      config.peak_requests_per_sec =
          flags.get_double("peak-req-per-sec", 15.0);
      config.updates_per_minute = flags.get_double("upd-per-min", 195.0);
      trace = trace::generate_sydney_trace(config);
    } else {
      std::fprintf(stderr, "cachecloud_sim: unknown --synth '%s'\n",
                   synth.c_str());
      return 2;
    }
  }

  core::CloudConfig config;
  config.num_caches = std::max(caches, trace.num_caches());
  const std::string hashing = flags.get_string("hashing", "dynamic");
  if (hashing == "static") {
    config.hashing = core::CloudConfig::Hashing::Static;
  } else if (hashing == "consistent") {
    config.hashing = core::CloudConfig::Hashing::Consistent;
  } else if (hashing == "dynamic") {
    config.hashing = core::CloudConfig::Hashing::Dynamic;
  } else {
    std::fprintf(stderr, "cachecloud_sim: unknown --hashing '%s'\n",
                 hashing.c_str());
    return 2;
  }
  config.ring_size = static_cast<std::uint32_t>(flags.get_int("ring-size", 2));
  config.irh_gen = static_cast<std::uint32_t>(flags.get_int("irh-gen", 1000));
  config.cycle_sec = flags.get_double("cycle-sec", 3600.0);
  config.track_per_irh = !flags.get_bool("no-per-irh", false);
  config.placement = flags.get_string("placement", "utility");
  config.utility.threshold = flags.get_double("threshold", 0.5);
  const double disk_mb = flags.get_double("disk-mb", 0.0);
  config.per_cache_capacity_bytes =
      static_cast<std::uint64_t>(disk_mb * 1e6);
  config.replacement = flags.get_string("replacement", "lru");
  if (config.per_cache_capacity_bytes > 0) {
    // Limited disk: turn the DsCC component on, paper Fig 9 style.
    config.utility.w_consistency = 0.25;
    config.utility.w_access_frequency = 0.25;
    config.utility.w_availability = 0.25;
    config.utility.w_disk_contention = 0.25;
  }
  const std::string consistency = flags.get_string("consistency", "push");
  if (consistency == "ttl") {
    config.consistency = core::CloudConfig::Consistency::Ttl;
    config.ttl_sec = flags.get_double("ttl-sec", 300.0);
  } else if (consistency != "push") {
    std::fprintf(stderr, "cachecloud_sim: unknown --consistency '%s'\n",
                 consistency.c_str());
    return 2;
  }
  config.cooperative = !flags.get_bool("no-cooperation", false);

  sim::SimConfig sim_config;
  sim_config.metrics_start_sec = flags.get_double("warmup-sec", 0.0);

  // Periodic running summary + registry sink. The registry mirrors the
  // metric names live nodes expose, so a sim run and a live scrape can be
  // compared side by side.
  obs::Registry registry;
  const double stats_every = flags.get_double("stats-every", 0.0);
  const bool prometheus = flags.get_bool("prometheus", false);
  if (prometheus || stats_every > 0.0) sim_config.registry = &registry;
  if (stats_every > 0.0) {
    sim_config.stats_every_sec = stats_every;
    sim_config.stats_sink = [](double now, const sim::CloudMetrics& m) {
      // measured_sec is only finalised at the end of the run, so compute
      // the running network rate against the simulated clock directly.
      const double mb_per_min =
          now > 0.0
              ? static_cast<double>(m.total_network_bytes()) / 1e6 /
                    (now / 60.0)
              : 0.0;
      std::printf(
          "[t=%8.0fs] requests=%llu local=%s%% cloud=%s%% misses=%llu "
          "evictions=%llu net=%s MB/min\n",
          now, static_cast<unsigned long long>(m.requests),
          util::format_double(100.0 * m.local_hit_rate(), 1).c_str(),
          util::format_double(100.0 * m.cloud_hit_rate(), 1).c_str(),
          static_cast<unsigned long long>(m.group_misses),
          static_cast<unsigned long long>(m.evictions),
          util::format_double(mb_per_min, 2).c_str());
    };
  }

  for (const std::string& name : flags.unused()) {
    std::fprintf(stderr, "cachecloud_sim: unknown flag --%s\n", name.c_str());
    return 2;
  }

  std::printf("trace: %zu docs, %zu requests, %zu updates, %.1f h\n",
              trace.num_docs(), trace.request_count(), trace.update_count(),
              trace.duration() / 3600.0);
  std::printf("cloud: %u caches, %s hashing, %s placement, %s consistency%s\n",
              config.num_caches, hashing.c_str(), config.placement.c_str(),
              consistency.c_str(),
              config.cooperative ? "" : ", NO cooperation");

  core::CacheCloud cloud(config, trace);
  const sim::SimResult result = sim::run_simulation(cloud, trace, sim_config);

  std::printf("\n%s", result.metrics.summary().c_str());
  std::printf("origin messages: %llu (%.1f/min)\n",
              static_cast<unsigned long long>(result.metrics.origin_messages),
              static_cast<double>(result.metrics.origin_messages) /
                  (result.metrics.measured_sec / 60.0));
  if (config.consistency == core::CloudConfig::Consistency::Ttl) {
    std::printf("ttl: stale hits %.2f%%, %llu revalidations, %llu refetches\n",
                100.0 * static_cast<double>(result.metrics.stale_hits) /
                    static_cast<double>(result.metrics.requests),
                static_cast<unsigned long long>(result.metrics.revalidations),
                static_cast<unsigned long long>(result.metrics.ttl_refetches));
  }
  std::printf("re-balance cycles: %zu (records handed over: %zu)\n",
              result.rebalances, result.records_transferred);
  if (prometheus) {
    std::printf("\n%s", obs::to_prometheus(registry.snapshot()).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cachecloud_sim: %s\n", e.what());
    return 1;
  }
}
