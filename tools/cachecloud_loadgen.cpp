// Live-cluster load generator and perf-baseline harness.
//
// Boots an in-process cache cloud (origin + N caches on loopback, the same
// harness the integration tests use), registers a synthetic catalog, then
// drives traffic at it over real sockets via src/loadgen and writes a
// machine-readable BENCH_live_<workload>.json report. Pair with
// tools/bench_diff for the CI regression gate. See docs/BENCHMARKING.md.
//
//   cachecloud_loadgen --workload zipf --rate 2000 --duration 10 --seed 7
//   cachecloud_loadgen --mode ramp --ramp-start 500 --ramp-step 500
//       --ramp-steps 6 --duration 5
//   cachecloud_loadgen --workload trace --trace-file zipf.trace
//
// Determinism: the full request schedule (arrival times, op kinds,
// documents, target caches) is a pure function of (workload, schedule,
// seed); --dump-schedule writes it out so two runs can be diffed.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "loadgen/plan.hpp"
#include "loadgen/report.hpp"
#include "loadgen/runner.hpp"
#include "node/cluster.hpp"
#include "node/profile_scrape.hpp"
#include "node/timeline_scrape.hpp"
#include "node/trace_scrape.hpp"
#include "obs/profile.hpp"
#include "obs/span_store.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_stitch.hpp"
#include "util/flags.hpp"
#include "util/fs.hpp"

namespace cachecloud {
namespace {

[[nodiscard]] std::string fmt_num(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  return buffer;
}

[[nodiscard]] double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// Folds the per-port client-side timelines into cluster per-interval
// series: qps sums cachecloud_gets_total rates over every node and hit
// class, p99 takes the worst per-node interval quantile. Tick 0 has no
// predecessor (rates are NaN), so the series cover ticks 1..n-1.
[[nodiscard]] loadgen::TimelineSummary summarize_timelines(
    const std::vector<obs::TimelineWindow>& windows, double interval_sec) {
  loadgen::TimelineSummary tl;
  tl.ran = true;
  tl.interval_sec = interval_sec;
  tl.nodes = windows.size();
  std::size_t ticks = 0;
  for (const auto& window : windows) {
    ticks = std::max(ticks, window.ticks());
  }
  for (std::size_t i = 1; i < ticks; ++i) {
    double qps = 0.0;
    double p99 = 0.0;
    for (const auto& window : windows) {
      if (i >= window.ticks()) continue;
      const double rate = window.sum_at("cachecloud_gets_total", i);
      if (std::isfinite(rate)) qps += rate;
      const obs::SeriesSnapshot* series =
          window.find("cachecloud_get_latency_seconds_p99");
      if (series != nullptr && std::isfinite(series->values[i])) {
        p99 = std::max(p99, series->values[i]);
      }
    }
    tl.t_sec.push_back(windows.empty() ? 0.0 : windows[0].t_sec[i]);
    tl.qps.push_back(qps);
    tl.p99.push_back(p99);
  }
  tl.median_qps = median_of(tl.qps);
  tl.peak_qps =
      tl.qps.empty() ? 0.0 : *std::max_element(tl.qps.begin(), tl.qps.end());
  tl.median_p99 = median_of(tl.p99);
  return tl;
}

// Standalone series artifact: the cluster arrays bench_diff gates on plus
// every node's full window, parseable with util::json (NaN -> null).
[[nodiscard]] std::string timeline_json(
    const loadgen::TimelineSummary& tl,
    const std::vector<obs::TimelineWindow>& windows,
    const std::vector<std::uint16_t>& ports, std::size_t num_caches) {
  std::string out = "{\"schema\": \"cachecloud.timeline.v1\"";
  out += ", \"interval_sec\": " + fmt_num(tl.interval_sec);
  const auto array = [&out](const char* key,
                            const std::vector<double>& values) {
    out += std::string(", \"") + key + "\": [";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      out += fmt_num(values[i]);
    }
    out += "]";
  };
  array("t_sec", tl.t_sec);
  array("qps", tl.qps);
  array("p99", tl.p99);
  out += ", \"median_qps\": " + fmt_num(tl.median_qps);
  out += ", \"peak_qps\": " + fmt_num(tl.peak_qps);
  out += ", \"median_p99\": " + fmt_num(tl.median_p99);
  out += ", \"nodes\": [";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"role\": \"";
    out += i < num_caches ? "cache" : "origin";
    out += "\", \"port\": " + std::to_string(ports[i]);
    out += ", \"window\": " + obs::timeline_window_json(windows[i]);
    out += "}";
  }
  out += "]}\n";
  return out;
}

void dump_schedule(const std::string& path, const loadgen::Plan& plan) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot write schedule to " + path);
  }
  out << "# at_sec kind doc cache phase\n";
  char line[128];
  for (const loadgen::PlannedOp& op : plan.ops) {
    std::snprintf(line, sizeof(line), "%.9f %c %u %u %u\n", op.at,
                  op.kind == loadgen::PlannedOp::Kind::Get ? 'G' : 'P',
                  op.doc, op.cache, static_cast<unsigned>(op.phase));
    out << line;
  }
}

int run(const util::Flags& flags) {
  loadgen::WorkloadConfig workload;
  workload.workload =
      loadgen::parse_workload(flags.get_string("workload", "zipf"));
  workload.num_docs =
      static_cast<std::size_t>(flags.get_int("docs", 1000));
  workload.zipf_alpha = flags.get_double("zipf-alpha", 0.9);
  workload.doc_bytes =
      static_cast<std::uint64_t>(flags.get_int("doc-bytes", 2048));
  workload.update_fraction = flags.get_double("update-frac", 0.05);
  workload.num_caches =
      static_cast<std::uint32_t>(flags.get_int("caches", 4));
  workload.trace_file = flags.get_string("trace-file", "");
  workload.flash_multiplier = flags.get_double("flash-multiplier", 5.0);
  workload.flash_hot_docs =
      static_cast<std::size_t>(flags.get_int("flash-hot-docs", 8));
  workload.flash_hot_fraction = flags.get_double("flash-hot-frac", 0.9);
  workload.flash_start_frac = flags.get_double("flash-start-frac", 0.3);
  workload.flash_duration_frac = flags.get_double("flash-duration-frac", 0.3);

  loadgen::ScheduleConfig schedule;
  schedule.mode = loadgen::parse_mode(flags.get_string("mode", "open"));
  schedule.arrival =
      loadgen::parse_arrival(flags.get_string("arrival", "poisson"));
  schedule.rate = flags.get_double("rate", 500.0);
  schedule.warmup_sec = flags.get_double("warmup", 2.0);
  schedule.duration_sec = flags.get_double("duration", 10.0);
  schedule.ramp_start = flags.get_double("ramp-start", 100.0);
  schedule.ramp_step = flags.get_double("ramp-step", 100.0);
  schedule.ramp_steps = static_cast<int>(flags.get_int("ramp-steps", 5));

  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int threads = static_cast<int>(flags.get_int("threads", 4));
  const std::string schedule_path = flags.get_string("dump-schedule", "");
  const std::string placement = flags.get_string("placement", "adhoc");
  std::string out_path = flags.get_string("out", "");
  // Distributed tracing: --trace-sample stamps client-minted trace
  // contexts on that fraction of ops, --trace-out scrapes every node's
  // span store after the run and writes a Chrome-trace/Perfetto JSON,
  // --trace-top bounds both the slowest-K lists and the printed report.
  const double trace_sample = flags.get_double("trace-sample", 0.0);
  const std::string trace_out = flags.get_string("trace-out", "");
  const std::size_t trace_top =
      static_cast<std::size_t>(flags.get_int("trace-top", 10));
  const bool tracing = trace_sample > 0.0 || !trace_out.empty();
  // Contention profiling: --profile turns on the in-process profiler for
  // the whole run, scrapes every node (ProfileDumpReq) at run end and adds
  // a "contention" section to the report; --profile-top bounds the ranked
  // lock table.
  const bool profiling = flags.get_bool("profile", false);
  const std::size_t profile_top =
      static_cast<std::size_t>(flags.get_int("profile-top", 10));
  // Timeline sampling: --timeline-out runs a driver-side sampling thread
  // (StatsReq sweeps folded through client-side obs::Timelines) and writes
  // a standalone series JSON plus a "timeline" report section bench_diff
  // can gate on; --timeline turns on the nodes' own background samplers;
  // --flight-dir does that too and points their flight recorders at a dump
  // directory. All off by default so the report stays byte-identical.
  const std::string timeline_out = flags.get_string("timeline-out", "");
  const double timeline_interval = flags.get_double("timeline-interval", 1.0);
  const bool node_timelines = flags.get_bool("timeline", false);
  const std::string flight_dir = flags.get_string("flight-dir", "");
  // Tiered persistence + kill–restart lifecycle: --cache-dir mounts a
  // write-behind disk tier under every node (empty = memory-only, the
  // byte-identical default); --mem-bytes bounds the memory tier so spills
  // actually happen; --kill-node/--kill-at/--restart-at hard-kill one node
  // mid-run (abandoning its uncommitted spill queue, like kill -9) and
  // warm-restart it on the same port. The restarted node replays its
  // manifest and re-announces recovered copies.
  const std::string cache_dir = flags.get_string("cache-dir", "");
  const std::uint64_t mem_bytes =
      static_cast<std::uint64_t>(flags.get_int("mem-bytes", 0));
  const std::uint64_t disk_bytes =
      static_cast<std::uint64_t>(flags.get_int("disk-bytes", 0));
  const bool write_through = flags.get_bool("disk-write-through", false);
  const long long kill_node = flags.get_int("kill-node", -1);
  const double kill_at = flags.get_double("kill-at", 0.0);
  const double restart_at = flags.get_double("restart-at", 0.0);
  const bool lifecycle = kill_node >= 0;

  for (const std::string& name : flags.unused()) {
    std::fprintf(stderr, "cachecloud_loadgen: unknown flag --%s\n",
                 name.c_str());
    return 2;
  }

  if (timeline_interval <= 0.0) {
    std::fprintf(stderr,
                 "cachecloud_loadgen: --timeline-interval must be > 0\n");
    return 2;
  }

  const loadgen::Plan plan = loadgen::build_plan(workload, schedule, seed);
  if (out_path.empty()) out_path = loadgen::default_report_name(plan);
  if (!schedule_path.empty()) dump_schedule(schedule_path, plan);

  if (lifecycle) {
    if (kill_node >= workload.num_caches) {
      std::fprintf(stderr,
                   "cachecloud_loadgen: --kill-node %lld outside the "
                   "%u-cache cluster\n",
                   kill_node, workload.num_caches);
      return 2;
    }
    if (kill_at <= 0.0 || restart_at <= kill_at ||
        restart_at >= plan.total_seconds()) {
      std::fprintf(stderr,
                   "cachecloud_loadgen: need 0 < --kill-at < --restart-at "
                   "< %.1f (the plan's span)\n",
                   plan.total_seconds());
      return 2;
    }
  }

  std::printf(
      "loadgen: workload=%s mode=%s arrival=%s seed=%llu ops=%zu docs=%zu "
      "caches=%u threads=%d span=%.1fs\n",
      loadgen::workload_name(plan.workload.workload),
      loadgen::mode_name(plan.schedule.mode),
      loadgen::arrival_name(plan.schedule.arrival),
      static_cast<unsigned long long>(seed), plan.ops.size(),
      plan.urls.size(), workload.num_caches, threads, plan.total_seconds());

  // Flip the process-wide profiler switch before the cluster boots, so the
  // nodes' servers and peer clients profile from the first frame.
  obs::set_profiling_enabled(profiling);

  // Boot the cluster and register the catalog at the origin.
  node::NodeConfig config;
  config.num_caches = workload.num_caches;
  config.placement = placement;
  // Span stores only exist when tracing was asked for, so the default run
  // stays inside the bench_diff perf gate.
  config.trace.collect = tracing;
  config.capacity_bytes = mem_bytes;
  config.disk.directory = cache_dir;
  config.disk.capacity_bytes = disk_bytes;
  config.disk_write_through = write_through;
  // A deliberately-killed node must not trigger coordinator failover —
  // the experiment is about the node coming back, not being replaced.
  if (lifecycle) config.auto_failover = false;
  // Node-side background samplers (and, with --flight-dir, on-disk flight
  // dumps for breaker trips / disk degrades / signals).
  if (node_timelines || !flight_dir.empty()) {
    config.timeline.enabled = true;
    config.timeline.interval_sec = timeline_interval;
    config.flight.dump_directory = flight_dir;
  }
  node::Cluster cluster(config);
  for (std::size_t i = 0; i < plan.urls.size(); ++i) {
    cluster.origin().add_document(plan.urls[i],
                                  static_cast<std::size_t>(plan.doc_bytes[i]));
  }

  loadgen::RunnerConfig runner_config;
  for (node::NodeId id = 0; id < workload.num_caches; ++id) {
    runner_config.cache_ports.push_back(cluster.cache(id).port());
  }
  runner_config.origin_port = cluster.origin().port();
  runner_config.threads = threads;
  runner_config.trace_sample = trace_sample;
  runner_config.slowest_k = trace_top;

  loadgen::Runner runner(runner_config);

  // Kill–restart lifecycle rides alongside the traffic threads. Client
  // errors during the outage are expected and show up in the phase
  // results; the restart happens on the same port so the workers' broken
  // connections simply reconnect.
  std::thread lifecycle_thread;
  loadgen::LifecycleSummary life;
  if (lifecycle) {
    life.ran = true;
    life.node = static_cast<std::uint32_t>(kill_node);
    life.kill_at_sec = kill_at;
    life.restart_at_sec = restart_at;
    lifecycle_thread = std::thread([&cluster, &life, kill_at, restart_at] {
      std::this_thread::sleep_for(std::chrono::duration<double>(kill_at));
      cluster.hard_kill(life.node);
      std::printf("lifecycle: hard-killed node %u at t=%.1fs\n", life.node,
                  kill_at);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(restart_at - kill_at));
      life.announced = cluster.restart(life.node);
      life.recovered_docs = cluster.cache(life.node).recovered_docs();
      std::printf(
          "lifecycle: restarted node %u at t=%.1fs (recovered %llu docs, "
          "announced %llu)\n",
          life.node, restart_at,
          static_cast<unsigned long long>(life.recovered_docs),
          static_cast<unsigned long long>(life.announced));
    });
  }

  // --timeline-out: sample every node's registry from the driver side at a
  // fixed interval for the whole run. Unreachable nodes feed an empty
  // snapshot so ticks stay aligned across the cluster, and the timelines'
  // counter-reset rate logic keeps series sane across a kill-restart.
  const bool timelines = !timeline_out.empty();
  std::vector<std::uint16_t> all_ports = runner_config.cache_ports;
  all_ports.push_back(runner_config.origin_port);
  std::vector<std::unique_ptr<obs::Timeline>> port_timelines;
  std::thread timeline_thread;
  std::mutex timeline_mutex;
  std::condition_variable timeline_cv;
  bool timeline_stop = false;
  if (timelines) {
    obs::TimelineConfig tl_config;
    tl_config.enabled = true;
    tl_config.interval_sec = timeline_interval;
    // Ring big enough that no tick of this run is ever evicted.
    tl_config.capacity =
        static_cast<std::size_t>(plan.total_seconds() / timeline_interval) +
        64;
    for (std::size_t i = 0; i < all_ports.size(); ++i) {
      port_timelines.push_back(std::make_unique<obs::Timeline>(tl_config));
    }
    timeline_thread = std::thread([&] {
      const auto start = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lock(timeline_mutex);
      for (std::uint64_t tick = 0; !timeline_stop; ++tick) {
        lock.unlock();
        const double t =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        const std::vector<node::NodeStatsScrape> sweep =
            node::scrape_stats(all_ports, timeline_interval);
        for (std::size_t i = 0; i < sweep.size(); ++i) {
          port_timelines[i]->observe(sweep[i].snapshot, t);
        }
        lock.lock();
        timeline_cv.wait_until(
            lock,
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(tick + 1) *
                            timeline_interval)),
            [&] { return timeline_stop; });
      }
    });
  }

  loadgen::RunResult result = runner.run(plan);
  if (lifecycle_thread.joinable()) lifecycle_thread.join();

  if (timelines) {
    {
      std::lock_guard<std::mutex> lock(timeline_mutex);
      timeline_stop = true;
    }
    timeline_cv.notify_all();
    timeline_thread.join();
    std::vector<obs::TimelineWindow> windows;
    windows.reserve(port_timelines.size());
    for (const auto& timeline : port_timelines) {
      windows.push_back(timeline->window());
    }
    result.timeline = summarize_timelines(windows, timeline_interval);
    try {
      util::atomic_write_file(
          timeline_out, timeline_json(result.timeline, windows, all_ports,
                                      runner_config.cache_ports.size()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "loadgen: cannot write timeline to %s: %s\n",
                   timeline_out.c_str(), e.what());
      return 2;
    }
  }

  if (lifecycle) {
    // The restarted node's registry was reborn with it, so its absolute
    // counters are exactly the post-restart story.
    const obs::Snapshot snap =
        cluster.cache(life.node).metrics_snapshot();
    const auto hit_class = [&snap](const char* cls) -> std::uint64_t {
      const obs::SampleSnapshot* sample =
          snap.find("cachecloud_gets_total", {{"class", cls}});
      return sample ? static_cast<std::uint64_t>(sample->value + 0.5) : 0;
    };
    life.post_local = hit_class("local");
    life.post_disk = hit_class("disk");
    life.post_gets = life.post_local + life.post_disk + hit_class("cloud") +
                     hit_class("origin");
    life.post_local_hit_rate =
        life.post_gets > 0
            ? static_cast<double>(life.post_local + life.post_disk) /
                  static_cast<double>(life.post_gets)
            : 0.0;
    result.lifecycle = life;
  }

  // Contention profile: scrape every node while the cluster is still up,
  // fold into the report's "contention" section and print the ranked
  // where-the-time-goes table.
  if (profiling) {
    std::vector<std::uint16_t> profile_ports = runner_config.cache_ports;
    profile_ports.push_back(runner_config.origin_port);
    const node::ProfileScrapeResult scraped =
        node::scrape_profiles(profile_ports);
    for (const std::string& error : scraped.errors) {
      std::fprintf(stderr, "loadgen: profile scrape: %s\n", error.c_str());
    }
    result.contention = node::summarize_profiles(scraped, profile_top);
  }

  loadgen::write_report(out_path, plan, result);

  for (const loadgen::PhaseResult& phase : result.phases) {
    std::printf(
        "  %-12s offered=%8.1f/s achieved=%8.1f/s ok=%llu err=%llu "
        "degraded=%llu p50=%.3fms p99=%.3fms p99.9=%.3fms%s\n",
        phase.name.c_str(), phase.offered_rate, phase.throughput,
        static_cast<unsigned long long>(phase.ok),
        static_cast<unsigned long long>(phase.errors),
        static_cast<unsigned long long>(phase.degraded), phase.p50 * 1e3,
        phase.p99 * 1e3, phase.p999 * 1e3,
        phase.measured ? "" : " (warmup)");
  }
  const loadgen::Reconciliation& rec = result.reconciliation;
  std::printf(
      "reconciliation: client gets ok=%llu err=%llu server=%llu "
      "(unexplained %+lld) | publishes ok=%llu err=%llu server=%llu "
      "(unexplained %+lld) -> %s\n",
      static_cast<unsigned long long>(rec.client_get_ok),
      static_cast<unsigned long long>(rec.client_get_errors),
      static_cast<unsigned long long>(rec.server_gets),
      static_cast<long long>(rec.unexplained_gets),
      static_cast<unsigned long long>(rec.client_publish_ok),
      static_cast<unsigned long long>(rec.client_publish_errors),
      static_cast<unsigned long long>(rec.server_publishes),
      static_cast<long long>(rec.unexplained_publishes),
      rec.consistent ? "CONSISTENT" : "INCONSISTENT");
  if (result.ramp.ran) {
    if (result.ramp.saturated) {
      std::printf("ramp: knee at %.1f/s (%s); first saturated step %s\n",
                  result.ramp.knee_rate, result.ramp.knee_phase.c_str(),
                  result.ramp.first_saturated_phase.c_str());
    } else {
      std::printf("ramp: no saturation up to %.1f/s (%s)\n",
                  result.ramp.knee_rate, result.ramp.knee_phase.c_str());
    }
  }
  if (lifecycle) {
    std::printf(
        "lifecycle: node=%u recovered=%llu announced=%llu post-restart "
        "gets=%llu local=%llu disk=%llu local-hit-rate=%.3f\n",
        result.lifecycle.node,
        static_cast<unsigned long long>(result.lifecycle.recovered_docs),
        static_cast<unsigned long long>(result.lifecycle.announced),
        static_cast<unsigned long long>(result.lifecycle.post_gets),
        static_cast<unsigned long long>(result.lifecycle.post_local),
        static_cast<unsigned long long>(result.lifecycle.post_disk),
        result.lifecycle.post_local_hit_rate);
  }
  std::printf("report: %s\n", out_path.c_str());
  if (timelines) {
    std::printf(
        "timeline: %s (%zu ticks @ %.2fs, median=%.1f/s peak=%.1f/s "
        "median-p99=%.3fms)\n",
        timeline_out.c_str(), result.timeline.t_sec.size(), timeline_interval,
        result.timeline.median_qps, result.timeline.peak_qps,
        result.timeline.median_p99 * 1e3);
  }
  // Surface any flight dumps the nodes recorded (breaker trips, disk
  // degrades) so a CI log shows where to look.
  if (!flight_dir.empty()) {
    const node::TimelineScrapeResult scraped = node::scrape_timelines(
        runner_config.cache_ports, /*include_flight=*/true);
    std::size_t flights = 0;
    for (const node::NodeTimeline& nt : scraped.nodes) {
      flights += nt.flights.size();
    }
    std::printf("flight: %zu dump(s) under %s\n", flights,
                flight_dir.c_str());
  }
  if (profiling) {
    std::printf("%s", obs::contention_table(result.contention).c_str());
  }

  // Trace export: scrape the in-process nodes' span stores before they go
  // away, stitch, and leave a viewer-loadable artifact + a ranked digest.
  if (tracing) {
    for (const loadgen::PhaseResult& phase : result.phases) {
      if (!phase.measured || phase.slowest.empty()) continue;
      std::printf("  slowest sampled ops (%s):\n", phase.name.c_str());
      for (const loadgen::SlowSample& sample : phase.slowest) {
        std::printf("    %8.3fms  trace=%s %s doc=%u cache=%u\n",
                    sample.latency_sec * 1e3,
                    obs::hex64(sample.trace_id).c_str(),
                    sample.publish ? "publish" : "get", sample.doc,
                    sample.cache);
      }
    }
    std::vector<std::uint16_t> ports = runner_config.cache_ports;
    ports.push_back(runner_config.origin_port);
    const node::ScrapeResult scraped = node::scrape_traces(ports);
    for (const std::string& error : scraped.errors) {
      std::fprintf(stderr, "loadgen: trace scrape: %s\n", error.c_str());
    }
    const std::vector<obs::TraceTree> traces =
        obs::stitch_traces(scraped.spans);
    std::printf("%s", obs::slowest_report(traces, trace_top).c_str());
    if (!trace_out.empty()) {
      std::ofstream trace_file(trace_out, std::ios::trunc);
      if (!trace_file) {
        std::fprintf(stderr, "loadgen: cannot write trace to %s\n",
                     trace_out.c_str());
        return 2;
      }
      trace_file << obs::to_chrome_trace(traces);
      std::printf("trace: %s (%zu traces, %zu spans from %zu nodes)\n",
                  trace_out.c_str(), traces.size(), scraped.spans.size(),
                  scraped.nodes_scraped);
    }
  }

  cluster.stop_all();
  if (lifecycle && !rec.consistent) {
    // The restarted node's counters were reborn at zero, so its run-delta
    // undercounts by everything it served before the kill — expected
    // drift, not a correctness failure. The phase error counts still
    // gate the run via bench_diff/CI assertions.
    std::printf(
        "note: reconciliation drift is expected across a kill-restart "
        "(the restarted node's counters reset); not failing the run\n");
    return 0;
  }
  return rec.consistent ? 0 : 1;
}

}  // namespace
}  // namespace cachecloud

int main(int argc, char** argv) {
  try {
    const cachecloud::util::Flags flags(argc, argv);
    return cachecloud::run(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cachecloud_loadgen: %s\n", e.what());
    return 2;
  }
}
