// Live cluster monitor — top(1) for a cache cloud.
//
// Polls every node's StatsReq endpoint once per interval, folds the
// snapshots through client-side obs::Timelines (so rates, per-interval
// quantiles and counter-reset handling match the nodes' own samplers) and
// renders a refreshing per-node table: qps, hit-class mix, interval p99,
// connection threads, lock wait. Nodes that die mid-session stay in the
// table marked `unreachable` and come back when they restart — the
// partial-scrape fan-out never lets one dead node stall the sweep.
//
//   cachecloud_top --ports 9001,9002,9003,9000
//   cachecloud_top --ports 9001,9002 --interval 2 --frames 10
//   cachecloud_top --ports 9001 --once        # single frame, no clearing
//
// Intended against nodes booted with timelines on or off — this tool keeps
// its own timelines, so the nodes pay nothing extra for being watched.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "node/timeline_scrape.hpp"
#include "obs/timeline.hpp"
#include "util/flags.hpp"

namespace cachecloud {
namespace {

[[nodiscard]] std::vector<std::uint16_t> parse_ports(const std::string& arg) {
  std::vector<std::uint16_t> ports;
  std::string token;
  for (std::size_t i = 0; i <= arg.size(); ++i) {
    if (i == arg.size() || arg[i] == ',') {
      if (!token.empty()) {
        const int port = std::stoi(token);
        if (port <= 0 || port > 65535) {
          throw std::invalid_argument("port out of range: " + token);
        }
        ports.push_back(static_cast<std::uint16_t>(port));
        token.clear();
      }
    } else {
      token += arg[i];
    }
  }
  return ports;
}

// "--" for no-data ticks (NaN), else a fixed-width number.
[[nodiscard]] std::string cell(double value, const char* format) {
  if (!std::isfinite(value)) return "--";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

struct NodeView {
  std::uint16_t port = 0;
  std::string label;  // last known node label; "?" before first contact
  bool up = false;
  obs::Timeline timeline;

  explicit NodeView(const obs::TimelineConfig& config)
      : label("?"), timeline(config) {}
};

void render(const std::vector<std::unique_ptr<NodeView>>& views,
            std::uint64_t frame, double interval_sec, bool clear) {
  if (clear) std::printf("\x1b[H\x1b[2J");
  std::printf("cachecloud_top  frame=%llu  interval=%.1fs  nodes=%zu\n",
              static_cast<unsigned long long>(frame), interval_sec,
              views.size());
  std::printf(
      "%-10s %6s %9s %7s %7s %7s %7s %6s %10s %-11s\n", "NODE", "PORT",
      "QPS", "LOCAL%", "CLOUD%", "ORIGIN%", "P99ms", "CONN", "LOCKW/s",
      "STATUS");
  for (const auto& view : views) {
    const obs::TimelineWindow window = view->timeline.window();
    // qps sums every hit class; the mix splits it (disk-tier hits are
    // local hits that happened to live on disk).
    const double qps = window.last_sum("cachecloud_gets_total");
    const auto class_rate = [&window](const char* cls) {
      const obs::SeriesSnapshot* series =
          window.find("cachecloud_gets_total", {{"class", cls}});
      if (series == nullptr || series->values.empty()) return 0.0;
      const double v = series->values.back();
      return std::isfinite(v) ? v : 0.0;
    };
    const double local = class_rate("local") + class_rate("disk");
    const double cloud = class_rate("cloud");
    const double origin = class_rate("origin");
    const double mix_div = qps > 0.0 ? qps : 1.0;
    const double p99 = window.last("cachecloud_get_latency_seconds_p99");
    const double conn = window.last("cachecloud_conn_threads");
    // Total lock wait per second: sum of every lock's _sum rate.
    const double lock_wait =
        window.last_sum("cachecloud_lock_wait_seconds_sum");
    std::printf(
        "%-10s %6u %9s %7s %7s %7s %7s %6s %10s %-11s\n",
        view->label.c_str(), view->port, cell(qps, "%.1f").c_str(),
        std::isfinite(qps)
            ? cell(100.0 * local / mix_div, "%.1f").c_str()
            : "--",
        std::isfinite(qps)
            ? cell(100.0 * cloud / mix_div, "%.1f").c_str()
            : "--",
        std::isfinite(qps)
            ? cell(100.0 * origin / mix_div, "%.1f").c_str()
            : "--",
        cell(p99 * 1e3, "%.3f").c_str(), cell(conn, "%.0f").c_str(),
        cell(lock_wait, "%.4f").c_str(),
        view->up ? "up" : "unreachable");
  }
  std::fflush(stdout);
}

int run(const util::Flags& flags) {
  const std::string ports_arg = flags.get_string("ports", "");
  const double interval_sec = flags.get_double("interval", 1.0);
  const long long frames = flags.get_int("frames", 0);  // 0 = forever
  const bool once = flags.get_bool("once", false);
  // util::Flags spells boolean negation `--no-X`, so `--no-clear` is the
  // user-facing flag for this.
  const bool clear_flag = flags.get_bool("clear", true);
  const double timeout_sec = flags.get_double("timeout", 0.0);

  for (const std::string& name : flags.unused()) {
    std::fprintf(stderr, "cachecloud_top: unknown flag --%s\n", name.c_str());
    return 2;
  }
  if (ports_arg.empty()) {
    std::fprintf(stderr,
                 "usage: cachecloud_top --ports P1,P2,... [--interval S] "
                 "[--frames N] [--once] [--no-clear]\n");
    return 2;
  }
  if (interval_sec <= 0.0) {
    std::fprintf(stderr, "cachecloud_top: --interval must be > 0\n");
    return 2;
  }
  const std::vector<std::uint16_t> ports = parse_ports(ports_arg);
  // One dead node must cost at most its own timeout, never a frame.
  const double scrape_timeout =
      timeout_sec > 0.0 ? timeout_sec : interval_sec;

  obs::TimelineConfig config;
  config.enabled = true;
  config.interval_sec = interval_sec;
  std::vector<std::unique_ptr<NodeView>> views;
  views.reserve(ports.size());
  for (std::uint16_t port : ports) {
    views.push_back(std::make_unique<NodeView>(config));
    views.back()->port = port;
  }

  const bool clear = clear_flag && !once;
  const std::uint64_t max_frames =
      once ? 1 : static_cast<std::uint64_t>(frames > 0 ? frames : 0);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t frame = 0;; ++frame) {
    const double t =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const std::vector<node::NodeStatsScrape> sweep =
        node::scrape_stats(ports, scrape_timeout);
    bool missing_label = false;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      views[i]->up = !sweep[i].unreachable;
      // Unreachable nodes feed an empty snapshot: their series go NaN for
      // this tick (rendered "--") but stay aligned for when they return.
      views[i]->timeline.observe(sweep[i].snapshot, t);
      if (views[i]->up && views[i]->label == "?") missing_label = true;
    }
    if (missing_label) {
      // TimelineDumpResp carries the node's own label ("cache-3",
      // "origin") whether or not its sampler is on; one sweep fills the
      // NODE column for every node we can reach.
      const node::TimelineScrapeResult labels =
          node::scrape_timelines(ports, false, false, scrape_timeout);
      for (std::size_t i = 0; i < labels.nodes.size(); ++i) {
        if (!labels.nodes[i].unreachable && !labels.nodes[i].node.empty()) {
          views[i]->label = labels.nodes[i].node;
        }
      }
    }
    render(views, frame, interval_sec, clear);
    if (max_frames != 0 && frame + 1 >= max_frames) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_sec));
  }
  return 0;
}

}  // namespace
}  // namespace cachecloud

int main(int argc, char** argv) {
  try {
    const cachecloud::util::Flags flags(argc, argv);
    return cachecloud::run(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cachecloud_top: %s\n", e.what());
    return 2;
  }
}
