// Runtime metrics for live cache-cloud nodes.
//
// An atomic, thread-safe registry of named metrics with Prometheus-style
// text exposition and a JSON dump. Three metric kinds:
//
//   Counter          monotone u64, relaxed fetch_add on the hot path
//   Gauge            double, set/add via CAS
//   LatencyHistogram fixed upper-bound buckets, lock-free observe();
//                    quantile() follows util::Histogram's linear
//                    interpolation semantics
//
// Registration (name + label set) takes a mutex; the returned references
// are stable for the registry's lifetime, so hot paths hold plain pointers
// and never touch the lock again. A Snapshot is a plain-data copy that the
// wire protocol (StatsResp) ships across nodes and the renderers turn into
// Prometheus text or JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cachecloud::obs {

enum class MetricKind : std::uint8_t { Counter = 0, Gauge = 1, Histogram = 2 };

// Ordered key/value pairs, rendered inside {...} in the exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

// A trace-id exemplar: the worst observation recorded in one histogram
// bucket, linking a latency percentile to a stitchable trace. trace_id 0
// means no exemplar was recorded for the bucket.
struct Exemplar {
  double value = 0.0;
  std::uint64_t trace_id = 0;
};

// Cumulative-bucket histogram over explicit ascending upper bounds; an
// implicit +Inf bucket catches overflow. observe() is wait-free apart from
// the CAS on the running sum.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<double> bounds);

  void observe(double x) noexcept;
  // observe() plus an exemplar: if `trace_id` is non-zero and x is the
  // worst observation its bucket has seen, the (value, trace id) pair is
  // kept. The fast path is two relaxed loads; the slot mutex is taken
  // only on a new per-bucket maximum.
  void observe(double x, std::uint64_t trace_id) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  // Per-bucket (non-cumulative) counts, bounds().size() + 1 entries; the
  // last entry is the +Inf bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  // Linear-interpolated quantile over the bucket boundaries, q in [0, 1];
  // mirrors util::Histogram::quantile. Values in the +Inf bucket clamp to
  // the largest finite bound. Monotone in q.
  [[nodiscard]] double quantile(double q) const noexcept;

  // Percentile convenience: p in [0, 100] (p99.9 = percentile(99.9)).
  [[nodiscard]] double percentile(double p) const noexcept {
    return quantile(p / 100.0);
  }
  // Interpolated quantiles for several q at once over ONE consistent view
  // of the buckets — concurrent observe() calls cannot tear the result the
  // way repeated quantile() calls can. Returns one value per input q.
  [[nodiscard]] std::vector<double> quantiles(
      const std::vector<double>& qs) const;

  // Per-bucket exemplars, bounds().size() + 1 entries (last is +Inf);
  // trace_id 0 marks buckets without one. Pairs are read under the slot
  // mutex, so value and trace id are always consistent.
  [[nodiscard]] std::vector<Exemplar> exemplar_snapshot() const;

 private:
  struct ExemplarSlot {
    std::atomic<double> value{0.0};
    std::atomic<std::uint64_t> trace{0};
  };

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::unique_ptr<ExemplarSlot[]> exemplars_;
  mutable std::mutex exemplar_mutex_;
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

// Bucket bounds suited to loopback/LAN request latencies (10us .. 10s).
[[nodiscard]] std::vector<double> default_latency_bounds();

// Log-spaced bounds: `per_decade` buckets per power of ten from `lo` up to
// and including the first bound >= `hi`. Finer than the default bounds;
// the load generator uses per_decade >= 10 so interpolated p99/p99.9 stay
// within a few percent of the true value. Throws std::invalid_argument on
// lo <= 0, hi <= lo or per_decade < 1.
[[nodiscard]] std::vector<double> log_spaced_bounds(double lo, double hi,
                                                    int per_decade);

// ---------------------------------------------------------------- snapshot

struct SampleSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::Counter;
  Labels labels;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  Labels labels;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1, last is +Inf
  // Per-bucket trace exemplars (same layout as counts); may be empty when
  // the producer predates exemplars or recorded none.
  std::vector<Exemplar> exemplars;
  double sum = 0.0;
  std::uint64_t count = 0;

  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double percentile(double p) const noexcept {
    return quantile(p / 100.0);
  }
  // The exemplar explaining observations at or above `value` (e.g. a p99
  // estimate): the first recorded exemplar from the bucket containing
  // `value` upward. Returns trace_id 0 when none is recorded up there.
  [[nodiscard]] Exemplar exemplar_at_or_above(double value) const noexcept;
};

struct Snapshot {
  std::vector<SampleSnapshot> samples;
  std::vector<HistogramSnapshot> histograms;

  // First counter/gauge sample matching (name, labels); nullptr if absent.
  [[nodiscard]] const SampleSnapshot* find(const std::string& name,
                                           const Labels& labels = {}) const;
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      const std::string& name, const Labels& labels = {}) const;
  // Sum of every counter/gauge sample with this name, across label sets.
  [[nodiscard]] double sum_of(const std::string& name) const;
};

[[nodiscard]] std::string render_labels(const Labels& labels);
[[nodiscard]] std::string to_prometheus(const Snapshot& snapshot);
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

// ---------------------------------------------------------------- registry

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create by (name, labels). The help text of the first
  // registration wins. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  LatencyHistogram& histogram(const std::string& name, const std::string& help,
                              std::vector<double> bounds,
                              const Labels& labels = {});

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] std::string prometheus_text() const;
  [[nodiscard]] std::string json() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind;
    Labels labels;
    std::string key;  // name + rendered labels, the identity
    Counter counter;
    Gauge gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& get_or_create(const std::string& name, const std::string& help,
                       MetricKind kind, const Labels& labels);

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;  // deque: stable references across growth
};

}  // namespace cachecloud::obs
