#include "obs/profile.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace cachecloud::obs {

namespace {

std::atomic<bool> g_profiling{false};

constexpr const char* kLockAcquire = "cachecloud_lock_acquire_total";
constexpr const char* kLockContended = "cachecloud_lock_contended_total";
constexpr const char* kLockWait = "cachecloud_lock_wait_seconds";
constexpr const char* kLockHold = "cachecloud_lock_hold_seconds";
constexpr const char* kWorkerTime = "cachecloud_worker_time_ns_total";
constexpr const char* kConnThreads = "cachecloud_conn_threads";
constexpr const char* kConnThreadsPeak = "cachecloud_conn_threads_peak";
constexpr const char* kIoSyscalls = "cachecloud_io_syscalls_total";
constexpr const char* kIoBytes = "cachecloud_io_bytes_total";
constexpr const char* kIoNodelay = "cachecloud_io_nodelay_sockets_total";

[[nodiscard]] double seconds_since(
    std::chrono::steady_clock::time_point start,
    std::chrono::steady_clock::time_point end) noexcept {
  return std::chrono::duration<double>(end - start).count();
}

[[nodiscard]] const std::string* label_value(const Labels& labels,
                                             const char* key) noexcept {
  for (const auto& [k, v] : labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace

void set_profiling_enabled(bool on) noexcept {
  g_profiling.store(on, std::memory_order_relaxed);
}

bool profiling_enabled() noexcept {
  return g_profiling.load(std::memory_order_relaxed);
}

std::vector<double> profile_time_bounds() {
  // 100ns .. 1s, 5 buckets per decade: fine enough for a meaningful p99
  // over lock waits, small enough to ship for every profiled lock.
  return log_spaced_bounds(1e-7, 1.0, 5);
}

bool is_profile_metric(const std::string& name) noexcept {
  return name == kLockAcquire || name == kLockContended ||
         name == kLockWait || name == kLockHold || name == kWorkerTime ||
         name == kConnThreads || name == kConnThreadsPeak ||
         name == kIoSyscalls || name == kIoBytes || name == kIoNodelay;
}

Snapshot profile_snapshot(const Snapshot& full) {
  Snapshot out;
  for (const SampleSnapshot& s : full.samples) {
    if (is_profile_metric(s.name)) out.samples.push_back(s);
  }
  for (const HistogramSnapshot& h : full.histograms) {
    if (is_profile_metric(h.name)) out.histograms.push_back(h);
  }
  return out;
}

// ------------------------------------------------------------ TimedMutex

void TimedMutex::bind(Registry& registry, const std::string& name) {
  name_ = name;
  const Labels labels{{"lock", name}};
  acquisitions_ = &registry.counter(
      kLockAcquire,
      "Profiled-mutex acquisitions (counted while profiling is on)", labels);
  contended_ = &registry.counter(
      kLockContended,
      "Profiled-mutex acquisitions that had to wait (try_lock failed)",
      labels);
  wait_ = &registry.histogram(
      kLockWait, "Time blocked acquiring a profiled mutex (contended only)",
      profile_time_bounds(), labels);
  hold_ = &registry.histogram(
      kLockHold, "Time a profiled mutex was held, per acquisition",
      profile_time_bounds(), labels);
}

void TimedMutex::lock() {
  // Dormant (or unbound) fast path: no clock reads, no counters.
  if (!profiling_enabled() || acquisitions_ == nullptr) {
    mu_.lock();
    return;
  }
  if (mu_.try_lock()) {
    acquisitions_->inc();
    locked_at_ = Clock::now();
    timing_hold_ = true;
    return;
  }
  contended_->inc();
  const Clock::time_point wait_start = Clock::now();
  mu_.lock();
  const Clock::time_point acquired = Clock::now();
  wait_->observe(seconds_since(wait_start, acquired));
  acquisitions_->inc();
  locked_at_ = acquired;
  timing_hold_ = true;
}

bool TimedMutex::try_lock() {
  if (!mu_.try_lock()) return false;
  if (profiling_enabled() && acquisitions_ != nullptr) {
    acquisitions_->inc();
    locked_at_ = Clock::now();
    timing_hold_ = true;
  }
  return true;
}

void TimedMutex::unlock() {
  // timing_hold_ is false whenever the acquisition went through the
  // dormant path, so toggling profiling mid-hold never records a torn
  // sample.
  if (timing_hold_) {
    timing_hold_ = false;
    hold_->observe(seconds_since(locked_at_, Clock::now()));
  }
  mu_.unlock();
}

// --------------------------------------------------------- WorkerProfile

void WorkerProfile::bind(Registry& registry) {
  busy_ns_ = &registry.counter(
      kWorkerTime,
      "Connection-worker wall time by state: busy (decode + handler + "
      "reply write) vs read_wait (blocked reading the next request)",
      {{"state", "busy"}});
  read_wait_ns_ = &registry.counter(
      kWorkerTime,
      "Connection-worker wall time by state: busy (decode + handler + "
      "reply write) vs read_wait (blocked reading the next request)",
      {{"state", "read_wait"}});
  live_ = &registry.gauge(kConnThreads,
                          "Live connection-worker threads right now");
  peak_ = &registry.gauge(kConnThreadsPeak,
                          "Peak simultaneous connection-worker threads");
}

void WorkerProfile::add_busy_ns(std::uint64_t ns) noexcept {
  if (busy_ns_ != nullptr) busy_ns_->inc(ns);
}

void WorkerProfile::add_read_wait_ns(std::uint64_t ns) noexcept {
  if (read_wait_ns_ != nullptr) read_wait_ns_->inc(ns);
}

void WorkerProfile::conn_opened() noexcept {
  if (live_ == nullptr) return;
  const std::int64_t live =
      live_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::int64_t peak = peak_count_.load(std::memory_order_relaxed);
  while (live > peak && !peak_count_.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  live_->set(static_cast<double>(live));
  peak_->set(
      static_cast<double>(peak_count_.load(std::memory_order_relaxed)));
}

void WorkerProfile::conn_closed() noexcept {
  if (live_ == nullptr) return;
  const std::int64_t live =
      live_count_.fetch_sub(1, std::memory_order_relaxed) - 1;
  live_->set(static_cast<double>(live));
}

// ------------------------------------------------------------- IoProfile

void IoProfile::bind(Registry& registry, const std::string& role) {
  const auto counter = [&](const char* name, const char* help,
                           const char* op) {
    return &registry.counter(name, help, {{"op", op}, {"role", role}});
  };
  recv_syscalls_ = counter(kIoSyscalls,
                           "Transport syscalls issued while profiling, by "
                           "operation and endpoint role",
                           "recv");
  send_syscalls_ = counter(kIoSyscalls,
                           "Transport syscalls issued while profiling, by "
                           "operation and endpoint role",
                           "send");
  recv_bytes_ = counter(kIoBytes,
                        "Bytes copied across the user/kernel boundary "
                        "while profiling, by operation and endpoint role",
                        "recv");
  send_bytes_ = counter(kIoBytes,
                        "Bytes copied across the user/kernel boundary "
                        "while profiling, by operation and endpoint role",
                        "send");
  nodelay_sockets_ = &registry.counter(
      kIoNodelay,
      "Transport sockets opened with TCP_NODELAY set, by endpoint role",
      {{"role", role}});
}

void IoProfile::on_recv(std::size_t bytes) noexcept {
  if (recv_syscalls_ == nullptr || !profiling_enabled()) return;
  recv_syscalls_->inc();
  recv_bytes_->inc(bytes);
}

void IoProfile::on_send(std::size_t bytes) noexcept {
  if (send_syscalls_ == nullptr || !profiling_enabled()) return;
  send_syscalls_->inc();
  send_bytes_->inc(bytes);
}

void IoProfile::on_nodelay() noexcept {
  // Counted whenever bound: sockets are O(connection), and the point is
  // to prove every transport socket opted out of Nagle, profiled or not.
  if (nodelay_sockets_ != nullptr) nodelay_sockets_->inc();
}

// ------------------------------------------------------------ summaries

void append_contention(const std::string& node, const Snapshot& snapshot,
                       ContentionSummary& out) {
  // Locks: one LockSummary per distinct lock label in this snapshot.
  const auto lock_entry = [&](const std::string& lock) -> LockSummary& {
    for (LockSummary& entry : out.locks) {
      if (entry.node == node && entry.lock == lock) return entry;
    }
    LockSummary entry;
    entry.node = node;
    entry.lock = lock;
    out.locks.push_back(std::move(entry));
    return out.locks.back();
  };
  for (const SampleSnapshot& s : snapshot.samples) {
    if (s.name != kLockAcquire && s.name != kLockContended) continue;
    const std::string* lock = label_value(s.labels, "lock");
    if (lock == nullptr) continue;
    LockSummary& entry = lock_entry(*lock);
    if (s.name == kLockAcquire) {
      entry.acquisitions += static_cast<std::uint64_t>(s.value);
    } else {
      entry.contended += static_cast<std::uint64_t>(s.value);
    }
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.name != kLockWait && h.name != kLockHold) continue;
    const std::string* lock = label_value(h.labels, "lock");
    if (lock == nullptr) continue;
    LockSummary& entry = lock_entry(*lock);
    if (h.name == kLockWait) {
      entry.wait_total_sec += h.sum;
      if (h.count > 0) entry.wait_p99_sec = h.percentile(99.0);
    } else {
      entry.hold_total_sec += h.sum;
      if (h.count > 0) entry.hold_p99_sec = h.percentile(99.0);
    }
  }

  // Workers: one row per node that exported worker counters.
  const SampleSnapshot* busy =
      snapshot.find(kWorkerTime, {{"state", "busy"}});
  const SampleSnapshot* read_wait =
      snapshot.find(kWorkerTime, {{"state", "read_wait"}});
  if (busy != nullptr || read_wait != nullptr) {
    WorkerSummary worker;
    worker.node = node;
    worker.busy_sec = (busy != nullptr ? busy->value : 0.0) * 1e-9;
    worker.read_wait_sec =
        (read_wait != nullptr ? read_wait->value : 0.0) * 1e-9;
    const double total = worker.busy_sec + worker.read_wait_sec;
    worker.utilization = total > 0.0 ? worker.busy_sec / total : 0.0;
    if (const SampleSnapshot* live = snapshot.find(kConnThreads)) {
      worker.conn_threads = live->value;
    }
    if (const SampleSnapshot* peak = snapshot.find(kConnThreadsPeak)) {
      worker.conn_threads_peak = peak->value;
    }
    out.workers.push_back(std::move(worker));
  }

  // IO: sum across roles per node.
  IoSummary io;
  io.node = node;
  bool any_io = false;
  for (const SampleSnapshot& s : snapshot.samples) {
    if (s.name == kIoNodelay) {
      any_io = true;
      io.nodelay_sockets += static_cast<std::uint64_t>(s.value);
      continue;
    }
    if (s.name != kIoSyscalls && s.name != kIoBytes) continue;
    const std::string* op = label_value(s.labels, "op");
    if (op == nullptr) continue;
    any_io = true;
    const auto value = static_cast<std::uint64_t>(s.value);
    if (s.name == kIoSyscalls) {
      (*op == "recv" ? io.recv_syscalls : io.send_syscalls) += value;
    } else {
      (*op == "recv" ? io.recv_bytes : io.send_bytes) += value;
    }
  }
  if (any_io) out.io.push_back(std::move(io));
}

void finalize_contention(ContentionSummary& out, std::size_t top_k) {
  out.total_wait_sec = 0.0;
  for (const LockSummary& lock : out.locks) {
    out.total_wait_sec += lock.wait_total_sec;
  }
  for (LockSummary& lock : out.locks) {
    lock.wait_share = out.total_wait_sec > 0.0
                          ? lock.wait_total_sec / out.total_wait_sec
                          : 0.0;
  }
  std::stable_sort(out.locks.begin(), out.locks.end(),
                   [](const LockSummary& a, const LockSummary& b) {
                     return a.wait_total_sec > b.wait_total_sec;
                   });
  if (top_k > 0 && out.locks.size() > top_k) out.locks.resize(top_k);
}

std::string contention_table(const ContentionSummary& summary) {
  std::string out;
  char line[256];
  if (!summary.enabled) {
    return "profile: profiling was off on every scraped node\n";
  }
  out += "where the time goes (locks, by total wait):\n";
  std::snprintf(line, sizeof(line), "  %-26s %10s %10s %12s %10s %12s %10s %7s\n",
                "lock", "acquire", "contended", "wait_tot", "wait_p99",
                "hold_tot", "hold_p99", "share");
  out += line;
  for (const LockSummary& lock : summary.locks) {
    const std::string name = lock.node + "/" + lock.lock;
    std::snprintf(line, sizeof(line),
                  "  %-26s %10llu %10llu %10.3fms %8.3fms %10.3fms %8.3fms %6.1f%%\n",
                  name.c_str(),
                  static_cast<unsigned long long>(lock.acquisitions),
                  static_cast<unsigned long long>(lock.contended),
                  lock.wait_total_sec * 1e3, lock.wait_p99_sec * 1e3,
                  lock.hold_total_sec * 1e3, lock.hold_p99_sec * 1e3,
                  lock.wait_share * 100.0);
    out += line;
  }
  if (!summary.workers.empty()) {
    out += "workers:\n";
    for (const WorkerSummary& worker : summary.workers) {
      std::snprintf(line, sizeof(line),
                    "  %-26s busy %8.3fs  read-wait %8.3fs  util %5.1f%%  "
                    "conns %.0f (peak %.0f)\n",
                    worker.node.c_str(), worker.busy_sec,
                    worker.read_wait_sec, worker.utilization * 100.0,
                    worker.conn_threads, worker.conn_threads_peak);
      out += line;
    }
  }
  if (!summary.io.empty()) {
    out += "io:\n";
    for (const IoSummary& io : summary.io) {
      std::snprintf(line, sizeof(line),
                    "  %-26s recv %llu calls / %.1f KiB  send %llu calls / "
                    "%.1f KiB  nodelay %llu\n",
                    io.node.c_str(),
                    static_cast<unsigned long long>(io.recv_syscalls),
                    static_cast<double>(io.recv_bytes) / 1024.0,
                    static_cast<unsigned long long>(io.send_syscalls),
                    static_cast<double>(io.send_bytes) / 1024.0,
                    static_cast<unsigned long long>(io.nodelay_sockets));
      out += line;
    }
  }
  std::snprintf(line, sizeof(line), "total lock wait: %.3fms\n",
                summary.total_wait_sec * 1e3);
  out += line;
  return out;
}

}  // namespace cachecloud::obs
