// Time-series telemetry: bounded ring-buffer series sampled from a metric
// registry, plus a flight recorder for post-mortem dumps.
//
// A Timeline turns a sequence of registry Snapshots into aligned per-metric
// series, one value per tick:
//
//   counters   -> Rate      delta / dt, counter-reset aware: a raw value
//                           below the previous one (node restart — the
//                           registry was reborn at zero) counts the new
//                           value as the delta instead of going negative
//   gauges     -> Level     the sampled value
//   histograms -> Rate      <name>_count and <name>_sum deltas / dt, plus
//                 Quantile  <name>_p50/_p99/... interpolated over THIS
//                           tick's bucket-count deltas, so a quantile is
//                           the interval's latency, not the lifetime's
//
// Ticks the ring has dropped are gone; series that appear late or miss a
// tick carry NaN for the ticks they did not cover, so every series in a
// window is index-aligned with window.t_sec. The very first tick has no
// predecessor and therefore no rates (NaN); a series first seen on a later
// tick is treated as having been zero before (registry metrics are born at
// zero), so its first rate is already meaningful.
//
// The same core serves four consumers: the per-node background sampler
// (NodeConfig::timeline), cachecloud_top (feeds StatsResp snapshots from
// live nodes), cachecloud_sim --stats-every (ticks at simulated time) and
// loadgen --timeline-out (per-interval qps/p99 series in the BENCH report).
//
// The FlightRecorder freezes the recent timeline window, a SpanStore tail
// and the last K log lines into one JSON dump when triggered — by a fatal
// signal, a circuit-breaker trip, a disk-tier degrade or an explicit
// request — so "what was the node doing just before it died" survives the
// node.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span_store.hpp"

namespace cachecloud::obs {

struct TimelineConfig {
  // Per-node background sampler switch. Off (the default) allocates
  // nothing and costs a node one pointer check per trigger site.
  bool enabled = false;
  double interval_sec = 1.0;   // sampler period
  std::size_t capacity = 120;  // ring of ticks retained per series
  // Per-interval histogram quantiles to derive (series <name>_p50, ...).
  std::vector<double> quantiles{0.5, 0.99};
};

enum class SeriesKind : std::uint8_t { Rate = 0, Level = 1, Quantile = 2 };

[[nodiscard]] std::string_view series_kind_name(SeriesKind kind) noexcept;

// One derived series, index-aligned with TimelineWindow::t_sec. NaN marks
// ticks the series did not cover (not yet born, absent from the snapshot,
// or a rate with no predecessor tick).
struct SeriesSnapshot {
  std::string name;
  Labels labels;
  SeriesKind kind = SeriesKind::Rate;
  std::vector<double> values;
};

// Plain-data copy of the ring, shipped in TimelineDumpResp and rendered to
// JSON; all lookups treat NaN as "no data".
struct TimelineWindow {
  double interval_sec = 0.0;
  std::vector<double> t_sec;  // tick timestamps, oldest first
  std::vector<SeriesSnapshot> series;

  [[nodiscard]] const SeriesSnapshot* find(const std::string& name,
                                           const Labels& labels = {}) const;
  // Sum over every series with this name (any labels) at tick index
  // `tick`; NaN entries count as zero. Returns NaN when no series matches.
  [[nodiscard]] double sum_at(const std::string& name, std::size_t tick) const;
  // Value of (name, labels) at the last tick; NaN when absent/uncovered.
  [[nodiscard]] double last(const std::string& name,
                            const Labels& labels = {}) const;
  // sum_at() over the last tick; NaN when no series matches or empty.
  [[nodiscard]] double last_sum(const std::string& name) const;
  [[nodiscard]] std::size_t ticks() const noexcept { return t_sec.size(); }
};

// "p50", "p99", "p999" for q = 0.5, 0.99, 0.999 — matches the report's
// percentile field names.
[[nodiscard]] std::string quantile_suffix(double q);

// {"interval_sec":..,"t_sec":[...],"series":[{name,labels,kind,values}]}
// with NaN rendered as null, so util::json can parse it back.
[[nodiscard]] std::string timeline_window_json(const TimelineWindow& window);

class Timeline {
 public:
  explicit Timeline(TimelineConfig config = {});
  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  // Record one tick at time `t_sec` (monotone across calls). Safe to call
  // concurrently with window(); one mutex guards the ring.
  void observe(const Snapshot& snapshot, double t_sec);

  [[nodiscard]] TimelineWindow window() const;
  // Total ticks ever observed (not bounded by the ring).
  [[nodiscard]] std::uint64_t ticks_observed() const;
  [[nodiscard]] const TimelineConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Series {
    std::string name;
    Labels labels;
    SeriesKind kind = SeriesKind::Rate;
    std::deque<double> values;  // aligned with ticks_
    double last_raw = 0.0;      // counters: previous raw value
    bool has_raw = false;
    bool touched = false;  // scratch: updated during the current tick
  };
  struct HistogramState {
    std::vector<std::uint64_t> last_counts;
    double last_sum = 0.0;
    std::uint64_t last_count = 0;
  };

  // Get-or-create, back-filling NaN so the series aligns with ticks_.
  // `ticks_before` is the ring length before this tick's push.
  Series& series_locked(const std::string& name, const Labels& labels,
                        SeriesKind kind, std::size_t ticks_before);
  void push_locked(Series& series, double value);

  const TimelineConfig config_;
  mutable std::mutex mutex_;
  std::deque<double> ticks_;
  std::vector<std::unique_ptr<Series>> series_;
  std::vector<std::pair<std::string, std::size_t>> series_index_;  // key->idx
  std::vector<std::pair<std::string, HistogramState>> histogram_state_;
  double last_t_ = 0.0;
  std::uint64_t ticks_observed_ = 0;
};

// Background sampler thread: feeds `timeline` one observation per interval
// from `source` (e.g. a node's metrics_snapshot), stamping ticks with
// `now`. `after_tick`, when set, runs after every observation — nodes hang
// trigger-edge detection (disk degrade) off it. The first tick fires
// immediately on construction, so rates start flowing one interval later.
class TimelineSampler {
 public:
  TimelineSampler(Timeline& timeline, double interval_sec,
                  std::function<Snapshot()> source,
                  std::function<double()> now,
                  std::function<void()> after_tick = {});
  ~TimelineSampler();
  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  // Idempotent; joins the thread. Call before tearing down the source.
  void stop();

 private:
  void run();

  Timeline& timeline_;
  const double interval_sec_;
  const std::function<Snapshot()> source_;
  const std::function<double()> now_;
  const std::function<void()> after_tick_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

// ------------------------------------------------------------ flight data

struct FlightRecorderConfig {
  std::size_t log_lines = 64;   // tail log lines captured per dump
  std::size_t span_tail = 128;  // most recent spans kept per dump
  std::size_t max_dumps = 4;    // dumps retained in memory
  // When non-empty, every dump is also written to
  // <dump_directory>/flight-<node>-<seq>.json (best effort).
  std::string dump_directory;
};

struct FlightDump {
  std::string node;
  std::string reason;  // "manual" | "signal" | "breaker_trip" | "disk_degrade"
  std::string detail;  // free-form trigger context ("peer 2 tripped", ...)
  double t_sec = 0.0;  // node-relative trigger time
  std::uint64_t seq = 0;
  TimelineWindow window;
  std::vector<SpanRecord> spans;  // most recent last
  std::vector<std::string> log_tail;
};

[[nodiscard]] std::string flight_dump_json(const FlightDump& dump);

// Freezes state on trigger(). The timeline and span store are borrowed and
// must outlive the recorder; span_store may be null (no tracing).
class FlightRecorder {
 public:
  FlightRecorder(std::string node, const Timeline* timeline,
                 const SpanStore* span_store, FlightRecorderConfig config,
                 std::function<double()> now);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Captures a dump. Cheap enough for rare events; called from trigger
  // sites that may hold node locks, so it takes only its own mutex, the
  // timeline's and the span store's shard locks.
  void trigger(const std::string& reason, const std::string& detail);

  [[nodiscard]] std::vector<FlightDump> dumps() const;
  [[nodiscard]] std::uint64_t triggers() const;

 private:
  const std::string node_;
  const Timeline* timeline_;
  const SpanStore* span_store_;
  const FlightRecorderConfig config_;
  const std::function<double()> now_;
  mutable std::mutex mutex_;
  std::deque<FlightDump> dumps_;
  std::uint64_t seq_ = 0;
};

// Installs a process-wide signal handler that triggers every registered
// recorder with reason "signal" (detail = signal name/number). `fatal`
// restores the default disposition and re-raises after dumping, so a
// SIGSEGV still dies — with a flight dump on disk. Handlers registered
// once per signal; recorders deregister themselves on destruction.
void flight_on_signal(int signo, FlightRecorder* recorder, bool fatal = false);
void flight_signal_detach(FlightRecorder* recorder);

}  // namespace cachecloud::obs
