#include "obs/span.hpp"

#include <atomic>
#include <random>

#include "util/hash.hpp"
#include "util/logging.hpp"

namespace cachecloud::obs {
namespace {

std::uint64_t process_seed() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::uint64_t next_trace_id() noexcept {
  static const std::uint64_t seed = process_seed();
  static std::atomic<std::uint64_t> sequence{0};
  const std::uint64_t id = util::mix64(
      seed ^ sequence.fetch_add(1, std::memory_order_relaxed));
  return id != 0 ? id : 1;
}

Span::Span(std::uint64_t trace_id, std::string name)
    : trace_id_(trace_id),
      name_(std::move(name)),
      start_(std::chrono::steady_clock::now()) {}

Span::~Span() { finish(); }

Span& Span::tag(std::string key, std::string value) {
  tags_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Span& Span::tag(std::string key, std::uint64_t value) {
  tags_.emplace_back(std::move(key), std::to_string(value));
  return *this;
}

Span& Span::phase(std::string key, double seconds) {
  tags_.emplace_back(std::move(key) + "_us",
                     std::to_string(static_cast<long long>(seconds * 1e6)));
  return *this;
}

double Span::elapsed_sec() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void Span::finish() {
  if (finished_) return;
  finished_ = true;
  if (!util::detail::log_enabled(util::LogLevel::Debug)) return;
  const auto dur_us = static_cast<long long>(elapsed_sec() * 1e6);
  auto line = util::detail::LogMessage(util::LogLevel::Debug, __FILE__,
                                       __LINE__);
  line << "trace=" << hex64(trace_id_) << " span=" << name_;
  for (const auto& [key, value] : tags_) line << " " << key << "=" << value;
  line << " dur_us=" << dur_us;
}

double Stopwatch::lap_sec() noexcept {
  const auto now = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(now - start_).count();
  start_ = now;
  return sec;
}

}  // namespace cachecloud::obs
