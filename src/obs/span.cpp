#include "obs/span.hpp"

#include <atomic>
#include <random>

#include "obs/span_store.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace cachecloud::obs {
namespace {

std::uint64_t process_seed() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

}  // namespace

std::uint64_t next_trace_id() noexcept {
  static const std::uint64_t seed = process_seed();
  static std::atomic<std::uint64_t> sequence{0};
  const std::uint64_t id = util::mix64(
      seed ^ sequence.fetch_add(1, std::memory_order_relaxed));
  return id != 0 ? id : 1;
}

Span::Span(std::uint64_t trace_id, std::string name)
    : Span(SpanContext{trace_id, 0, false}, std::move(name), nullptr, {}) {}

Span::Span(const SpanContext& ctx, std::string name, SpanStore* store,
           std::string node)
    : trace_id_(ctx.trace_id),
      parent_span_id_(ctx.parent_span_id),
      store_(store),
      node_(std::move(node)),
      name_(std::move(name)),
      start_(std::chrono::steady_clock::now()),
      sampled_(ctx.sampled) {
  // Minting the span id whenever the trace is live keeps parent links
  // intact across hops even if this node's store happens to be off.
  if (trace_id_ != 0) span_id_ = next_span_id();
  enabled_ = (store_ != nullptr && trace_id_ != 0) ||
             util::detail::log_enabled(util::LogLevel::Debug);
}

Span::~Span() { finish(); }

Span& Span::tag(std::string key, std::string value) {
  if (enabled_) tags_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Span& Span::tag(std::string key, std::uint64_t value) {
  if (enabled_) tags_.emplace_back(std::move(key), std::to_string(value));
  return *this;
}

Span& Span::phase(std::string key, double seconds) {
  if (enabled_) {
    tags_.emplace_back(std::move(key) + "_us",
                       std::to_string(static_cast<long long>(seconds * 1e6)));
  }
  return *this;
}

double Span::elapsed_sec() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void Span::finish() {
  if (finished_) return;
  finished_ = true;
  if (!enabled_) return;
  const double elapsed = elapsed_sec();
  const auto dur_us = static_cast<long long>(elapsed * 1e6);
  if (util::detail::log_enabled(util::LogLevel::Debug)) {
    auto line = util::detail::LogMessage(util::LogLevel::Debug, __FILE__,
                                         __LINE__);
    line << "trace=" << hex64(trace_id_) << " span=" << name_;
    for (const auto& [key, value] : tags_) line << " " << key << "=" << value;
    line << " dur_us=" << dur_us;
  }
  if (store_ == nullptr || trace_id_ == 0) return;
  // Head sampling keeps the trace's share; tail retention always keeps
  // slow and errored spans so the interesting traces survive sampling.
  if (!sampled_ && !error_ && elapsed < store_->slow_threshold_sec()) return;
  SpanRecord record;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_span_id = parent_span_id_;
  record.node = node_;
  record.name = name_;
  record.start_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          start_.time_since_epoch())
          .count());
  record.end_us = record.start_us + static_cast<std::uint64_t>(dur_us);
  record.error = error_;
  record.tags = std::move(tags_);
  store_->add(std::move(record));
}

double Stopwatch::lap_sec() noexcept {
  const auto now = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(now - start_).count();
  start_ = now;
  return sec;
}

}  // namespace cachecloud::obs
