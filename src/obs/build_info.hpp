// Build/identity metrics every scrapeable registry carries:
//
//   cachecloud_build_info{version="...",compiler="..."} 1
//   cachecloud_start_time_seconds <unix epoch at registration>
//
// so scrapes, timelines and flight dumps are attributable to a binary and
// an uptime. The version string is `git describe --always --dirty` and the
// compiler id/version, both baked in at configure time (see
// src/obs/CMakeLists.txt); "unknown" when built outside a git checkout.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace cachecloud::obs {

[[nodiscard]] std::string build_version();
[[nodiscard]] std::string build_compiler();

// Registers both metrics in `registry`. Idempotent (get-or-create), cheap
// enough for every node constructor.
void register_build_info(Registry& registry);

}  // namespace cachecloud::obs
