#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/span_store.hpp"
#include "util/strings.hpp"

namespace cachecloud::obs {
namespace {

// Prometheus-flavoured number formatting: integers render without a
// fractional part so counter lines stay exact and greppable.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream out;
    out << static_cast<long long>(v);
    return out.str();
  }
  std::ostringstream out;
  out << v;
  return out.str();
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "untyped";
}

// Shared quantile math for live histograms and their snapshots: walk the
// cumulative buckets and linearly interpolate inside the matching one,
// exactly like util::Histogram::quantile. `counts` is per-bucket with the
// +Inf bucket last.
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts,
                       std::uint64_t total, double q) noexcept {
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double seen = 0.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const auto c = static_cast<double>(counts[i]);
    if (seen + c >= target && c > 0) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double frac = (target - seen) / c;
      return lo + frac * (bounds[i] - lo);
    }
    seen += c;
  }
  return bounds.back();  // +Inf bucket clamps to the largest finite bound
}

}  // namespace

void Gauge::add(double delta) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------- histogram

LatencyHistogram::LatencyHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("LatencyHistogram: no buckets");
  }
  const auto dup = std::adjacent_find(
      bounds_.begin(), bounds_.end(),
      [](double a, double b) { return a >= b; });
  if (dup != bounds_.end()) {
    throw std::invalid_argument(
        "LatencyHistogram: bounds not strictly ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
  exemplars_ = std::make_unique<ExemplarSlot[]>(bounds_.size() + 1);
}

void LatencyHistogram::observe(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::observe(double x, std::uint64_t trace_id) noexcept {
  observe(x);
  if (trace_id == 0) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ExemplarSlot& slot = exemplars_[static_cast<std::size_t>(it -
                                                           bounds_.begin())];
  // Fast reject without the lock; recheck under it (another thread may
  // have recorded a worse observation between the load and the lock).
  if (slot.trace.load(std::memory_order_relaxed) != 0 &&
      x <= slot.value.load(std::memory_order_relaxed)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (slot.trace.load(std::memory_order_relaxed) != 0 &&
      x <= slot.value.load(std::memory_order_relaxed)) {
    return;
  }
  slot.value.store(x, std::memory_order_relaxed);
  slot.trace.store(trace_id, std::memory_order_relaxed);
}

std::vector<Exemplar> LatencyHistogram::exemplar_snapshot() const {
  std::vector<Exemplar> out(bounds_.size() + 1);
  const std::lock_guard<std::mutex> lock(exemplar_mutex_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].value = exemplars_[i].value.load(std::memory_order_relaxed);
    out[i].trace_id = exemplars_[i].trace.load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::uint64_t> LatencyHistogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double LatencyHistogram::quantile(double q) const noexcept {
  return bucket_quantile(bounds_, bucket_counts(), count(), q);
}

std::vector<double> LatencyHistogram::quantiles(
    const std::vector<double>& qs) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) {
    out.push_back(bucket_quantile(bounds_, counts, total, q));
  }
  return out;
}

std::vector<double> default_latency_bounds() {
  return {1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3,
          1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0, 10.0};
}

std::vector<double> log_spaced_bounds(double lo, double hi, int per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || per_decade < 1) {
    throw std::invalid_argument("log_spaced_bounds: need 0 < lo < hi and "
                                "per_decade >= 1");
  }
  const double step = std::pow(10.0, 1.0 / per_decade);
  std::vector<double> bounds;
  for (double b = lo; ; b *= step) {
    bounds.push_back(b);
    if (b >= hi) break;
  }
  return bounds;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  return bucket_quantile(bounds, counts, count, q);
}

Exemplar HistogramSnapshot::exemplar_at_or_above(double value) const noexcept {
  if (exemplars.empty()) return {};
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  for (auto i = static_cast<std::size_t>(it - bounds.begin());
       i < exemplars.size(); ++i) {
    if (exemplars[i].trace_id != 0) return exemplars[i];
  }
  return {};
}

// ---------------------------------------------------------------- snapshot

const SampleSnapshot* Snapshot::find(const std::string& name,
                                     const Labels& labels) const {
  for (const SampleSnapshot& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

const HistogramSnapshot* Snapshot::find_histogram(const std::string& name,
                                                  const Labels& labels) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name && h.labels == labels) return &h;
  }
  return nullptr;
}

double Snapshot::sum_of(const std::string& name) const {
  double total = 0.0;
  for (const SampleSnapshot& s : samples) {
    if (s.name == name) total += s.value;
  }
  return total;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

namespace {

// Appends labels plus one extra pair (for histogram `le`).
std::string render_labels_with(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return render_labels(extended);
}

// `le` bound label: fixed precision with trailing zeros trimmed, so 0.01
// renders as "0.01" and stays stable across platforms.
std::string format_le(double bound) {
  std::string s = util::format_double(bound, 6);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

// HELP text escaping per the Prometheus text format: backslash and line
// feed only (unlike label values, double quotes stay literal). An
// unescaped newline in help text would split the comment mid-line and
// corrupt the whole scrape.
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void header(std::ostringstream& out, std::string& last_name,
            const std::string& name, const std::string& help,
            MetricKind kind) {
  if (name == last_name) return;
  out << "# HELP " << name << " " << escape_help(help) << "\n";
  out << "# TYPE " << name << " " << kind_name(kind) << "\n";
  last_name = name;
}

}  // namespace

std::string to_prometheus(const Snapshot& snapshot) {
  std::ostringstream out;
  std::string last_name;
  for (const SampleSnapshot& s : snapshot.samples) {
    header(out, last_name, s.name, s.help, s.kind);
    out << s.name << render_labels(s.labels) << " " << format_value(s.value)
        << "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    header(out, last_name, h.name, h.help, MetricKind::Histogram);
    // OpenMetrics-style exemplars: `# {trace_id="<hex>"} <value>` after a
    // bucket line links the bucket's worst observation to a trace.
    const auto exemplar_suffix = [&h](std::size_t i) {
      if (i >= h.exemplars.size() || h.exemplars[i].trace_id == 0) {
        return std::string();
      }
      std::ostringstream ex;
      ex << " # {trace_id=\"" << hex64(h.exemplars[i].trace_id) << "\"} "
         << h.exemplars[i].value;
      return ex.str();
    };
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out << h.name << "_bucket"
          << render_labels_with(h.labels, "le", format_le(h.bounds[i]))
          << " " << cumulative << exemplar_suffix(i) << "\n";
    }
    out << h.name << "_bucket" << render_labels_with(h.labels, "le", "+Inf")
        << " " << h.count << exemplar_suffix(h.bounds.size()) << "\n";
    out << h.name << "_sum" << render_labels(h.labels) << " " << h.sum << "\n";
    out << h.name << "_count" << render_labels(h.labels) << " " << h.count
        << "\n";
  }
  return out.str();
}

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\"samples\":[";
  for (std::size_t i = 0; i < snapshot.samples.size(); ++i) {
    const SampleSnapshot& s = snapshot.samples[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << escape(s.name) << "\",\"kind\":\""
        << kind_name(s.kind) << "\",\"labels\":{";
    for (std::size_t k = 0; k < s.labels.size(); ++k) {
      if (k > 0) out << ",";
      out << "\"" << escape(s.labels[k].first) << "\":\""
          << escape(s.labels[k].second) << "\"";
    }
    out << "},\"value\":" << format_value(s.value) << "}";
  }
  out << "],\"histograms\":[";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << escape(h.name) << "\",\"labels\":{";
    for (std::size_t k = 0; k < h.labels.size(); ++k) {
      if (k > 0) out << ",";
      out << "\"" << escape(h.labels[k].first) << "\":\""
          << escape(h.labels[k].second) << "\"";
    }
    out << "},\"bounds\":[";
    for (std::size_t k = 0; k < h.bounds.size(); ++k) {
      if (k > 0) out << ",";
      out << h.bounds[k];
    }
    out << "],\"counts\":[";
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      if (k > 0) out << ",";
      out << h.counts[k];
    }
    out << "]";
    bool any_exemplar = false;
    for (const Exemplar& e : h.exemplars) any_exemplar |= e.trace_id != 0;
    if (any_exemplar) {
      out << ",\"exemplars\":[";
      bool first = true;
      for (std::size_t k = 0; k < h.exemplars.size(); ++k) {
        if (h.exemplars[k].trace_id == 0) continue;
        if (!first) out << ",";
        first = false;
        out << "{\"bucket\":" << k << ",\"value\":" << h.exemplars[k].value
            << ",\"trace_id\":\"" << hex64(h.exemplars[k].trace_id) << "\"}";
      }
      out << "]";
    }
    out << ",\"sum\":" << h.sum << ",\"count\":" << h.count << "}";
  }
  out << "]}";
  return out.str();
}

// ---------------------------------------------------------------- registry

Registry::Entry& Registry::get_or_create(const std::string& name,
                                         const std::string& help,
                                         MetricKind kind,
                                         const Labels& labels) {
  const std::string key = name + render_labels(labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.key == key) {
      if (entry.kind != kind) {
        throw std::invalid_argument("Registry: metric '" + key +
                                    "' re-registered with a different kind");
      }
      return entry;
    }
  }
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.help = help;
  entry.kind = kind;
  entry.labels = labels;
  entry.key = key;
  return entry;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  return get_or_create(name, help, MetricKind::Counter, labels).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  return get_or_create(name, help, MetricKind::Gauge, labels).gauge;
}

LatencyHistogram& Registry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  Entry& entry = get_or_create(name, help, MetricKind::Histogram, labels);
  if (!entry.histogram) {
    entry.histogram = std::make_unique<LatencyHistogram>(std::move(bounds));
  }
  return *entry.histogram;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.kind == MetricKind::Histogram) {
      HistogramSnapshot h;
      h.name = entry.name;
      h.help = entry.help;
      h.labels = entry.labels;
      h.bounds = entry.histogram->bounds();
      h.counts = entry.histogram->bucket_counts();
      h.exemplars = entry.histogram->exemplar_snapshot();
      h.sum = entry.histogram->sum();
      h.count = entry.histogram->count();
      out.histograms.push_back(std::move(h));
      continue;
    }
    SampleSnapshot s;
    s.name = entry.name;
    s.help = entry.help;
    s.kind = entry.kind;
    s.labels = entry.labels;
    s.value = entry.kind == MetricKind::Counter
                  ? static_cast<double>(entry.counter.value())
                  : entry.gauge.value();
    out.samples.push_back(std::move(s));
  }
  return out;
}

std::string Registry::prometheus_text() const {
  return to_prometheus(snapshot());
}

std::string Registry::json() const { return to_json(snapshot()); }

}  // namespace cachecloud::obs
