// In-process contention & resource profiler.
//
// Always compiled in, off by default: a process-wide switch
// (set_profiling_enabled) gates every measurement, so dormant
// instrumentation costs at most one relaxed atomic load per operation and
// zero clock reads. Three collectors, all exporting through the ordinary
// obs::Registry (Prometheus + JSON + StatsReq/ProfileDumpReq scrapes):
//
//   TimedMutex    drop-in std::mutex replacement with a lock name and
//                 registry-backed wait/hold-time log-bucket histograms.
//                 Contention is detected on a try_lock-first fast path:
//                 an uncontended acquisition is one counter bump plus the
//                 hold-time clock reads; a contended one additionally
//                 times the wait.
//   WorkerProfile per-worker busy / blocked-in-read nanosecond accounting
//                 for thread-per-connection servers, plus live/peak
//                 connection-thread gauges (the gauges are maintained even
//                 while profiling is off — they are O(connection), not
//                 O(request)).
//   IoProfile     per-syscall and bytes-copied counters for the transport
//                 read/write paths, labelled by endpoint role.
//
// The summarize/report half turns scraped snapshots into the "where the
// time goes" view: top-K locks by total wait with wait/hold p99, worker
// utilization, and syscall/byte totals per node.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace cachecloud::obs {

// Process-wide profiling switch. Off by default. Flip before traffic
// starts (loadgen --profile does) or at any point mid-run: collectors
// observe it with relaxed loads, so enabling is race-free, and samples
// simply start/stop accumulating.
void set_profiling_enabled(bool on) noexcept;
[[nodiscard]] bool profiling_enabled() noexcept;

// Log-spaced bucket bounds for lock wait/hold times: 100ns .. 1s.
[[nodiscard]] std::vector<double> profile_time_bounds();

// Metric families the profiler emits; profile_snapshot() selects them out
// of a full registry snapshot for the ProfileDump wire scrape.
[[nodiscard]] bool is_profile_metric(const std::string& name) noexcept;
[[nodiscard]] Snapshot profile_snapshot(const Snapshot& full);

// ---------------------------------------------------------------- locks

// Drop-in replacement for std::mutex on profiled paths. Meets the C++
// Lockable requirements, so std::lock_guard / std::unique_lock work
// unchanged. An unbound TimedMutex behaves exactly like std::mutex;
// bind() attaches it to a registry under a lock name:
//
//   cachecloud_lock_acquire_total{lock=...}    acquisitions (profiling on)
//   cachecloud_lock_contended_total{lock=...}  acquisitions that waited
//   cachecloud_lock_wait_seconds{lock=...}     time blocked (contended only)
//   cachecloud_lock_hold_seconds{lock=...}     time held, every acquisition
//
// bind() must happen before the mutex is shared between threads (node and
// server constructors bind before their threads start). While profiling is
// off, lock() is a plain try_lock/lock with no clock reads.
class TimedMutex {
 public:
  TimedMutex() = default;
  TimedMutex(const TimedMutex&) = delete;
  TimedMutex& operator=(const TimedMutex&) = delete;

  void bind(Registry& registry, const std::string& name);
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void lock();
  [[nodiscard]] bool try_lock();
  void unlock();

 private:
  using Clock = std::chrono::steady_clock;

  std::mutex mu_;
  std::string name_;
  Counter* acquisitions_ = nullptr;
  Counter* contended_ = nullptr;
  LatencyHistogram* wait_ = nullptr;
  LatencyHistogram* hold_ = nullptr;
  // Hold-time bookkeeping for the current owner; only ever accessed while
  // mu_ is held, so plain (non-atomic) members are race-free.
  Clock::time_point locked_at_{};
  bool timing_hold_ = false;
};

// The profiled twin of std::lock_guard<std::mutex> on node hot paths.
using TimedLock = std::lock_guard<TimedMutex>;

// -------------------------------------------------------------- workers

// Per-server worker-thread accounting for thread-per-connection servers:
//
//   cachecloud_worker_time_ns_total{state="busy"|"read_wait"}
//   cachecloud_conn_threads        live connection threads (gauge)
//   cachecloud_conn_threads_peak   high-water mark (gauge)
//
// The ns counters are fed by the serve loop only while profiling is on;
// the connection gauges track every open/close once bound.
class WorkerProfile {
 public:
  WorkerProfile() = default;
  WorkerProfile(const WorkerProfile&) = delete;
  WorkerProfile& operator=(const WorkerProfile&) = delete;

  void bind(Registry& registry);
  [[nodiscard]] bool bound() const noexcept { return busy_ns_ != nullptr; }

  void add_busy_ns(std::uint64_t ns) noexcept;
  void add_read_wait_ns(std::uint64_t ns) noexcept;
  void conn_opened() noexcept;
  void conn_closed() noexcept;

 private:
  Counter* busy_ns_ = nullptr;
  Counter* read_wait_ns_ = nullptr;
  Gauge* live_ = nullptr;
  Gauge* peak_ = nullptr;
  std::atomic<std::int64_t> live_count_{0};
  std::atomic<std::int64_t> peak_count_{0};
};

// ------------------------------------------------------------- resources

// Transport resource accounting, one instance per endpoint (a server or a
// client), labelled by role:
//
//   cachecloud_io_syscalls_total{op="recv"|"send",role=...}
//   cachecloud_io_bytes_total{op="recv"|"send",role=...}
//   cachecloud_io_nodelay_sockets_total{role=...}
//
// on_recv/on_send are called once per successful syscall with the bytes it
// moved; both are no-ops while profiling is off or the profile is unbound.
// on_nodelay is called once per transport socket that had TCP_NODELAY set
// and counts whenever bound (it is O(connection), like the conn gauges),
// so a profile scrape can assert every socket opted out of Nagle.
class IoProfile {
 public:
  IoProfile() = default;
  IoProfile(const IoProfile&) = delete;
  IoProfile& operator=(const IoProfile&) = delete;

  void bind(Registry& registry, const std::string& role);
  [[nodiscard]] bool bound() const noexcept { return recv_syscalls_ != nullptr; }

  void on_recv(std::size_t bytes) noexcept;
  void on_send(std::size_t bytes) noexcept;
  void on_nodelay() noexcept;

 private:
  Counter* recv_syscalls_ = nullptr;
  Counter* send_syscalls_ = nullptr;
  Counter* recv_bytes_ = nullptr;
  Counter* send_bytes_ = nullptr;
  Counter* nodelay_sockets_ = nullptr;
};

// ------------------------------------------------------------ summaries

// One profiled lock as seen in a node's snapshot.
struct LockSummary {
  std::string node;
  std::string lock;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  double wait_total_sec = 0.0;
  double wait_p99_sec = 0.0;
  double hold_total_sec = 0.0;
  double hold_p99_sec = 0.0;
  // This lock's share of the cluster-wide total wait (finalize fills it).
  double wait_share = 0.0;
};

struct WorkerSummary {
  std::string node;
  double busy_sec = 0.0;
  double read_wait_sec = 0.0;
  // busy / (busy + read_wait); 0 when nothing was recorded.
  double utilization = 0.0;
  double conn_threads = 0.0;
  double conn_threads_peak = 0.0;
};

struct IoSummary {
  std::string node;
  std::uint64_t recv_syscalls = 0;
  std::uint64_t send_syscalls = 0;
  std::uint64_t recv_bytes = 0;
  std::uint64_t send_bytes = 0;
  // Transport sockets opened with TCP_NODELAY (all of them, by design).
  std::uint64_t nodelay_sockets = 0;
};

// Cluster-wide contention report, assembled from per-node profile
// snapshots: append every node, then finalize once.
struct ContentionSummary {
  bool enabled = false;  // any scraped node had profiling on
  double total_wait_sec = 0.0;
  std::vector<LockSummary> locks;      // finalize: sorted by wait desc
  std::vector<WorkerSummary> workers;
  std::vector<IoSummary> io;
};

// Folds one node's (profile or full) snapshot into the summary.
void append_contention(const std::string& node, const Snapshot& snapshot,
                       ContentionSummary& out);

// Computes total/shares, sorts locks by total wait descending and keeps
// the top_k worst (0 = keep all).
void finalize_contention(ContentionSummary& out, std::size_t top_k);

// Human-readable ranked "where the time goes" table (profcat, loadgen).
[[nodiscard]] std::string contention_table(const ContentionSummary& summary);

}  // namespace cachecloud::obs
