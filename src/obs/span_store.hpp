// Distributed trace collection: a per-node store of finished spans.
//
// Each node keeps a lock-sharded, bounded, in-memory SpanStore. Spans are
// retained independent of the log level, so traces can be scraped over the
// wire (TraceDumpReq) and stitched across nodes after the fact. Retention
// is two-tier:
//
//   recent    head-sampled spans (the sampled bit travels in the frame
//             header, so every hop of a trace agrees) — ring eviction
//   retained  tail retention: slow (duration >= slow_threshold_sec) and
//             errored/degraded spans are always kept, in their own ring,
//             so a flood of fast sampled spans can never evict the
//             interesting ones
//
// Each tier is bounded by `capacity` records across all shards, so a store
// holds at most 2 * capacity spans. Shard choice hashes the trace id: the
// spans of one trace colocate and concurrent requests spread across locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cachecloud::obs {

// A finished span, as shipped in TraceDumpResp and stitched by tracecat.
// Timestamps are steady-clock microseconds since the clock's epoch:
// CLOCK_MONOTONIC is system-wide, so spans from nodes on one host share a
// timeline (the deployment model for tests, loadgen and the tools).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  // 0 = root
  std::string node;                  // e.g. "cache-0", "origin"
  std::string name;                  // e.g. "get", "LookupReq"
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  bool error = false;  // errored or degraded — tail-retained
  std::vector<std::pair<std::string, std::string>> tags;

  [[nodiscard]] std::uint64_t duration_us() const noexcept {
    return end_us >= start_us ? end_us - start_us : 0;
  }
};

// Process-unique, well-mixed 64-bit span id (never 0; 0 means "no span").
[[nodiscard]] std::uint64_t next_span_id() noexcept;

// Steady-clock now, in microseconds since the clock's epoch.
[[nodiscard]] std::uint64_t steady_now_us() noexcept;

// Deterministic head-sampling decision: a pure function of the trace id,
// so every node reaches the same verdict without coordination. probability
// <= 0 samples nothing, >= 1 everything; trace id 0 is never sampled.
[[nodiscard]] bool sample_trace(std::uint64_t trace_id,
                                double probability) noexcept;

// Lowercase 16-digit hex rendering shared by span logs, trace exports and
// report JSON ("0" * padding, e.g. 5 -> "0000000000000005").
[[nodiscard]] std::string hex64(std::uint64_t v);

struct SpanStoreConfig {
  std::size_t capacity = 4096;  // per tier, across all shards
  std::size_t shards = 8;       // rounded up to a power of two
  double slow_threshold_sec = 0.050;  // tail-retention latency threshold
};

// How a node participates in trace collection. `collect` allocates the
// store; `sample_probability` drives the head-sampling decision for trace
// ids the node mints itself (client-stamped frames carry their own sampled
// bit).
struct TraceConfig {
  bool collect = false;
  double sample_probability = 0.0;
  SpanStoreConfig store;
};

class SpanStore {
 public:
  explicit SpanStore(SpanStoreConfig config = {});
  SpanStore(const SpanStore&) = delete;
  SpanStore& operator=(const SpanStore&) = delete;

  // Retains `record` (trace id 0 is dropped). Slow/errored records go to
  // the tail-retained ring, everything else to the recent ring; each ring
  // evicts its oldest record once full.
  void add(SpanRecord record);

  // Every retained span, both tiers, in no particular order.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  // Like snapshot(), but removes the returned spans from the store.
  std::vector<SpanRecord> drain();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] double slow_threshold_sec() const noexcept {
    return config_.slow_threshold_sec;
  }
  // Lifetime counters: spans accepted, spans evicted by ring bounds.
  [[nodiscard]] std::uint64_t added() const noexcept {
    return added_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evicted() const noexcept {
    return evicted_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::deque<SpanRecord> recent;
    std::deque<SpanRecord> retained;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t trace_id) noexcept;

  SpanStoreConfig config_;
  std::size_t shard_mask_ = 0;
  std::size_t per_shard_cap_ = 0;  // per tier
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> added_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

}  // namespace cachecloud::obs
