// Request-path tracing: a lightweight span API over util::logging and the
// distributed SpanStore.
//
// A trace context — (trace_id, parent_span_id, sampled) — is minted once
// per client-facing get() and propagated to every peer in the frame header
// (net::Frame). Each hop opens a Span around its work; when it finishes,
// the span emits one structured line at Debug and, if a SpanStore is
// attached, records itself for the TraceDump wire scrape when the trace is
// sampled, slow (>= the store's slow threshold) or errored.
//
//   [... DEBUG t2 span.cpp:41] trace=5f1c9a02e77b3d10 span=get node=0
//       url=/index.html class=origin lookup_us=212 fetch_us=890 dur_us=1304
//
// Spans are cheap when disabled (Debug logging off AND no store attached
// or trace id 0): one steady_clock read at construction, and tag()/phase()
// are no-ops — untraced requests never touch the allocator.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cachecloud::obs {

class SpanStore;

// Process-unique, well-mixed 64-bit trace id (never 0; 0 means untraced).
[[nodiscard]] std::uint64_t next_trace_id() noexcept;

// The trace fields that travel hop to hop in the frame header.
struct SpanContext {
  std::uint64_t trace_id = 0;        // 0 = untraced
  std::uint64_t parent_span_id = 0;  // span id of the sending hop; 0 = root
  bool sampled = false;              // head-sampling verdict for this trace
};

class Span {
 public:
  // Log-only span (no store): keeps the PR-1 behaviour.
  Span(std::uint64_t trace_id, std::string name);
  // Collected span: `store` may be nullptr (collection off), `node` labels
  // the records for cross-node stitching. A span id is minted whenever the
  // trace id is non-zero, so child hops can link to this span even when
  // this node does not record it.
  Span(const SpanContext& ctx, std::string name, SpanStore* store,
       std::string node);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();  // finishes unless finish() already did

  // Key/value annotations appended to the emitted line / stored record, in
  // call order. No-ops (no allocation) when the span is disabled.
  Span& tag(std::string key, std::string value);
  Span& tag(std::string key, std::uint64_t value);
  // Records a phase duration as `<key>_us=<microseconds>`.
  Span& phase(std::string key, double seconds);

  // Marks the span errored/degraded: the store always retains it (tail
  // retention), regardless of the sampling verdict.
  Span& mark_error() noexcept {
    error_ = true;
    return *this;
  }

  [[nodiscard]] double elapsed_sec() const noexcept;
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }
  [[nodiscard]] std::uint64_t span_id() const noexcept { return span_id_; }
  // True when tags are being collected (Debug logging or an attached store
  // with a live trace id).
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  // Context for frames this hop sends onward: same trace, this span as the
  // parent, same sampling verdict.
  [[nodiscard]] SpanContext child_context() const noexcept {
    return SpanContext{trace_id_, span_id_, sampled_};
  }

  void finish();

 private:
  std::uint64_t trace_id_;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
  SpanStore* store_ = nullptr;
  std::string node_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> tags_;
  bool sampled_ = false;
  bool error_ = false;
  bool enabled_ = false;
  bool finished_ = false;
};

// A steady-clock stopwatch for phase timing inside a span.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double lap_sec() noexcept;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cachecloud::obs
