// Request-path tracing: a lightweight span API over util::logging.
//
// A trace id is generated once per client-facing get() and propagated to
// every peer in the frame header (net::Frame::trace_id). Each hop opens a
// Span around its work; the span emits one structured line at Debug when it
// finishes, so a slow multi-hop request can be reconstructed across nodes
// by grepping its trace id:
//
//   [... DEBUG t2 span.cpp:41] trace=5f1c9a02e77b3d10 span=get node=0
//       url=/index.html class=origin lookup_us=212 fetch_us=890 dur_us=1304
//
// Spans are cheap when Debug logging is off: a steady_clock read at
// construction and an enabled check at destruction.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cachecloud::obs {

// Process-unique, well-mixed 64-bit trace id (never 0; 0 means untraced).
[[nodiscard]] std::uint64_t next_trace_id() noexcept;

class Span {
 public:
  Span(std::uint64_t trace_id, std::string name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();  // emits the line unless finish() already did

  // Key/value annotations appended to the emitted line, in call order.
  Span& tag(std::string key, std::string value);
  Span& tag(std::string key, std::uint64_t value);
  // Records a phase duration as `<key>_us=<microseconds>`.
  Span& phase(std::string key, double seconds);

  [[nodiscard]] double elapsed_sec() const noexcept;
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }

  void finish();

 private:
  std::uint64_t trace_id_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> tags_;
  bool finished_ = false;
};

// A steady-clock stopwatch for phase timing inside a span.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double lap_sec() noexcept;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cachecloud::obs
