#include "obs/trace_stitch.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <unordered_map>

namespace cachecloud::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void breakdown_line(std::ostringstream& out, const TraceTree& tree,
                    std::size_t index, int depth) {
  const SpanRecord& span = tree.spans[index];
  char dur[32];
  std::snprintf(dur, sizeof(dur), "%10llu",
                static_cast<unsigned long long>(span.duration_us()));
  out << "  " << dur << "us  ";
  for (int i = 0; i < depth; ++i) out << "  ";
  out << span.name << "  [" << span.node << "]";
  if (span.error) out << "  ERROR";
  for (const auto& [key, value] : span.tags) {
    out << "  " << key << "=" << value;
  }
  out << "\n";
  for (const std::size_t child : tree.children[index]) {
    breakdown_line(out, tree, child, depth + 1);
  }
}

}  // namespace

bool TraceTree::has_error() const noexcept {
  for (const SpanRecord& span : spans) {
    if (span.error) return true;
  }
  return false;
}

std::uint64_t TraceTree::start_us() const noexcept {
  std::uint64_t lo = 0;
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (first || span.start_us < lo) lo = span.start_us;
    first = false;
  }
  return lo;
}

std::uint64_t TraceTree::end_us() const noexcept {
  std::uint64_t hi = 0;
  for (const SpanRecord& span : spans) {
    if (span.end_us > hi) hi = span.end_us;
  }
  return hi;
}

std::vector<TraceTree> stitch_traces(std::vector<SpanRecord> spans) {
  std::unordered_map<std::uint64_t, std::vector<SpanRecord>> by_trace;
  for (SpanRecord& span : spans) {
    if (span.trace_id == 0) continue;
    by_trace[span.trace_id].push_back(std::move(span));
  }
  std::vector<TraceTree> trees;
  trees.reserve(by_trace.size());
  for (auto& [trace_id, members] : by_trace) {
    TraceTree tree;
    tree.trace_id = trace_id;
    tree.spans = std::move(members);
    std::sort(tree.spans.begin(), tree.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                if (a.start_us != b.start_us) return a.start_us < b.start_us;
                return a.span_id < b.span_id;
              });
    std::unordered_map<std::uint64_t, std::size_t> by_span;
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      by_span.emplace(tree.spans[i].span_id, i);
    }
    tree.parent.assign(tree.spans.size(), kNoSpan);
    tree.children.assign(tree.spans.size(), {});
    std::size_t root_count = 0;
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      const std::uint64_t parent_id = tree.spans[i].parent_span_id;
      const auto it =
          parent_id != 0 ? by_span.find(parent_id) : by_span.end();
      if (it == by_span.end() || it->second == i) {
        // True root, or the parent hop was not scraped (sampled out,
        // evicted, node unreachable) — treat as a root of its own.
        ++root_count;
        tree.root = i;
      } else {
        tree.parent[i] = it->second;
        tree.children[it->second].push_back(i);
      }
    }
    if (root_count != 1) tree.root = kNoSpan;
    trees.push_back(std::move(tree));
  }
  std::sort(trees.begin(), trees.end(),
            [](const TraceTree& a, const TraceTree& b) {
              if (a.duration_us() != b.duration_us()) {
                return a.duration_us() > b.duration_us();
              }
              return a.trace_id < b.trace_id;
            });
  return trees;
}

std::string to_chrome_trace(const std::vector<TraceTree>& traces) {
  // Deterministic pid per node label (sorted), one tid row per trace so
  // concurrent traces through one node do not interleave on a row.
  std::map<std::string, int> pids;
  for (const TraceTree& tree : traces) {
    for (const SpanRecord& span : tree.spans) pids.emplace(span.node, 0);
  }
  int next_pid = 1;
  for (auto& [node, pid] : pids) pid = next_pid++;

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [node, pid] : pids) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(node) << "\"}}";
  }
  int tid = 0;
  for (const TraceTree& tree : traces) {
    ++tid;
    for (const SpanRecord& span : tree.spans) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << json_escape(span.name)
          << "\",\"cat\":\"cachecloud\",\"ph\":\"X\",\"pid\":"
          << pids[span.node] << ",\"tid\":" << tid
          << ",\"ts\":" << span.start_us << ",\"dur\":" << span.duration_us()
          << ",\"args\":{\"trace_id\":\"" << hex64(span.trace_id)
          << "\",\"span_id\":\"" << hex64(span.span_id)
          << "\",\"parent_span_id\":\"" << hex64(span.parent_span_id)
          << "\",\"node\":\"" << json_escape(span.node) << "\"";
      if (span.error) out << ",\"error\":true";
      for (const auto& [key, value] : span.tags) {
        out << ",\"" << json_escape(key) << "\":\"" << json_escape(value)
            << "\"";
      }
      out << "}}";
    }
  }
  out << "]}";
  return out.str();
}

std::string slowest_report(const std::vector<TraceTree>& traces,
                           std::size_t k) {
  std::size_t total_spans = 0;
  for (const TraceTree& tree : traces) total_spans += tree.spans.size();
  std::ostringstream out;
  const std::size_t shown = std::min(k, traces.size());
  out << "slowest " << shown << " of " << traces.size()
      << " stitched traces (" << total_spans << " spans)\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const TraceTree& tree = traces[i];
    out << "#" << (i + 1) << "  trace=" << hex64(tree.trace_id) << "  "
        << tree.duration_us() << "us  " << tree.spans.size() << " spans";
    if (!tree.rooted()) out << "  (unrooted)";
    if (tree.has_error()) out << "  ERROR";
    out << "\n";
    if (tree.rooted()) {
      breakdown_line(out, tree, tree.root, 0);
    } else {
      // No single root: print every parentless chain in start order.
      for (std::size_t s = 0; s < tree.spans.size(); ++s) {
        if (tree.parent[s] == kNoSpan) breakdown_line(out, tree, s, 0);
      }
    }
  }
  return out.str();
}

}  // namespace cachecloud::obs
