#include "obs/span_store.hpp"

#include <chrono>
#include <random>

#include "util/hash.hpp"

namespace cachecloud::obs {
namespace {

std::uint64_t span_seed() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

// Decorrelates the sampling roll from the shard hash: both remix the trace
// id, but through different constants.
constexpr std::uint64_t kSampleSalt = 0x9e3779b97f4a7c15ULL;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t next_span_id() noexcept {
  static const std::uint64_t seed = span_seed();
  static std::atomic<std::uint64_t> sequence{0};
  const std::uint64_t id = util::mix64(
      seed ^ ~sequence.fetch_add(1, std::memory_order_relaxed));
  return id != 0 ? id : 1;
}

std::uint64_t steady_now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool sample_trace(std::uint64_t trace_id, double probability) noexcept {
  if (trace_id == 0 || probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  // mix64 output is uniform over 2^64; scale into [0, 1).
  const double unit =
      static_cast<double>(util::mix64(trace_id ^ kSampleSalt)) * 0x1p-64;
  return unit < probability;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

SpanStore::SpanStore(SpanStoreConfig config)
    : config_(config),
      shard_mask_(round_up_pow2(config.shards == 0 ? 1 : config.shards) - 1),
      shards_(shard_mask_ + 1) {
  const std::size_t shard_count = shard_mask_ + 1;
  per_shard_cap_ = config_.capacity / shard_count;
  if (per_shard_cap_ == 0) per_shard_cap_ = 1;
}

SpanStore::Shard& SpanStore::shard_for(std::uint64_t trace_id) noexcept {
  return shards_[util::mix64(trace_id) & shard_mask_];
}

void SpanStore::add(SpanRecord record) {
  if (record.trace_id == 0) return;
  const bool tail =
      record.error ||
      record.duration_us() >=
          static_cast<std::uint64_t>(config_.slow_threshold_sec * 1e6);
  Shard& shard = shard_for(record.trace_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::deque<SpanRecord>& ring = tail ? shard.retained : shard.recent;
  if (ring.size() >= per_shard_cap_) {
    ring.pop_front();
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  ring.push_back(std::move(record));
  added_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> SpanStore::snapshot() const {
  std::vector<SpanRecord> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.insert(out.end(), shard.recent.begin(), shard.recent.end());
    out.insert(out.end(), shard.retained.begin(), shard.retained.end());
  }
  return out;
}

std::vector<SpanRecord> SpanStore::drain() {
  std::vector<SpanRecord> out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::deque<SpanRecord>* ring : {&shard.recent, &shard.retained}) {
      out.insert(out.end(), std::make_move_iterator(ring->begin()),
                 std::make_move_iterator(ring->end()));
      ring->clear();
    }
  }
  return out;
}

std::size_t SpanStore::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.recent.size() + shard.retained.size();
  }
  return n;
}

}  // namespace cachecloud::obs
