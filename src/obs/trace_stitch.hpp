// Cross-node trace stitching and export.
//
// Pure data transforms over SpanRecord: group scraped spans by trace id,
// link children to parents by span id, and render the result as Chrome
// trace-viewer / Perfetto JSON ("traceEvents") or a ranked slowest-K text
// report with per-hop breakdowns. No node or wire dependencies — the
// scrape lives in src/node, the CLI in tools/cachecloud_tracecat.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span_store.hpp"

namespace cachecloud::obs {

inline constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

// One stitched trace: its spans sorted by start time, plus parent/child
// links as indices into `spans`.
struct TraceTree {
  std::uint64_t trace_id = 0;
  std::vector<SpanRecord> spans;
  std::vector<std::size_t> parent;  // kNoSpan = root or orphaned parent
  std::vector<std::vector<std::size_t>> children;
  std::size_t root = kNoSpan;  // unique parentless span; kNoSpan otherwise

  [[nodiscard]] bool rooted() const noexcept { return root != kNoSpan; }
  [[nodiscard]] bool has_error() const noexcept;
  // Earliest span start / latest span end across the whole trace.
  [[nodiscard]] std::uint64_t start_us() const noexcept;
  [[nodiscard]] std::uint64_t end_us() const noexcept;
  [[nodiscard]] std::uint64_t duration_us() const noexcept {
    return end_us() - start_us();
  }
};

// Groups spans by trace id and links each span to its parent (by span id,
// within the same trace). Returns trees sorted slowest-first.
[[nodiscard]] std::vector<TraceTree> stitch_traces(
    std::vector<SpanRecord> spans);

// Chrome trace-viewer / Perfetto JSON: one complete ("ph":"X") event per
// span, processes named after nodes, one thread row per trace. Open the
// output in ui.perfetto.dev or chrome://tracing. Valid JSON even for zero
// traces.
[[nodiscard]] std::string to_chrome_trace(const std::vector<TraceTree>& traces);

// Ranked slowest-K text report: per trace, an indented per-hop breakdown
// with durations, nodes and tags.
[[nodiscard]] std::string slowest_report(const std::vector<TraceTree>& traces,
                                         std::size_t k);

}  // namespace cachecloud::obs
