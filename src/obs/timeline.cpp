#include "obs/timeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "util/fs.hpp"
#include "util/logging.hpp"

namespace cachecloud::obs {
namespace {

// Matches the report writer's shortest-round-trippable rendering.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void append_series_json(std::string& out, const SeriesSnapshot& s) {
  out += "{\"name\":\"" + json_escape(s.name) + "\",\"labels\":{";
  for (std::size_t i = 0; i < s.labels.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(s.labels[i].first) + "\":\"" +
           json_escape(s.labels[i].second) + "\"";
  }
  out += "},\"kind\":\"";
  out += series_kind_name(s.kind);
  out += "\",\"values\":[";
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    if (i != 0) out += ",";
    out += json_num(s.values[i]);
  }
  out += "]}";
}

}  // namespace

std::string_view series_kind_name(SeriesKind kind) noexcept {
  switch (kind) {
    case SeriesKind::Rate: return "rate";
    case SeriesKind::Level: return "level";
    case SeriesKind::Quantile: return "quantile";
  }
  return "?";
}

std::string quantile_suffix(double q) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", q * 100.0);
  std::string digits;
  for (const char* p = buf; *p != '\0'; ++p) {
    if (*p != '.') digits.push_back(*p);
  }
  return "p" + digits;
}

// ------------------------------------------------------------------ window

const SeriesSnapshot* TimelineWindow::find(const std::string& name,
                                           const Labels& labels) const {
  for (const SeriesSnapshot& s : series) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double TimelineWindow::sum_at(const std::string& name,
                              std::size_t tick) const {
  double total = 0.0;
  bool any = false;
  for (const SeriesSnapshot& s : series) {
    if (s.name != name || tick >= s.values.size()) continue;
    any = true;
    if (std::isfinite(s.values[tick])) total += s.values[tick];
  }
  return any ? total : std::nan("");
}

double TimelineWindow::last(const std::string& name,
                            const Labels& labels) const {
  const SeriesSnapshot* s = find(name, labels);
  if (s == nullptr || s->values.empty()) return std::nan("");
  return s->values.back();
}

double TimelineWindow::last_sum(const std::string& name) const {
  if (t_sec.empty()) return std::nan("");
  return sum_at(name, t_sec.size() - 1);
}

std::string timeline_window_json(const TimelineWindow& window) {
  std::string out = "{\"interval_sec\":" + json_num(window.interval_sec) +
                    ",\"t_sec\":[";
  for (std::size_t i = 0; i < window.t_sec.size(); ++i) {
    if (i != 0) out += ",";
    out += json_num(window.t_sec[i]);
  }
  out += "],\"series\":[";
  for (std::size_t i = 0; i < window.series.size(); ++i) {
    if (i != 0) out += ",";
    append_series_json(out, window.series[i]);
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------- timeline

Timeline::Timeline(TimelineConfig config) : config_(std::move(config)) {}

Timeline::Series& Timeline::series_locked(const std::string& name,
                                          const Labels& labels,
                                          SeriesKind kind,
                                          std::size_t ticks_before) {
  const std::string key = name + render_labels(labels);
  for (const auto& [k, idx] : series_index_) {
    if (k == key) return *series_[idx];
  }
  auto s = std::make_unique<Series>();
  s->name = name;
  s->labels = labels;
  s->kind = kind;
  s->values.assign(ticks_before, std::nan(""));
  series_index_.emplace_back(key, series_.size());
  series_.push_back(std::move(s));
  return *series_.back();
}

void Timeline::push_locked(Series& series, double value) {
  series.values.push_back(value);
  series.touched = true;
}

void Timeline::observe(const Snapshot& snapshot, double t_sec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const bool first_tick = ticks_observed_ == 0;
  const double dt = first_tick ? 0.0 : t_sec - last_t_;
  const std::size_t before = ticks_.size();
  // A rate needs a predecessor tick and forward-moving time.
  const bool can_rate = !first_tick && dt > 0.0;

  for (auto& s : series_) s->touched = false;

  for (const SampleSnapshot& sample : snapshot.samples) {
    if (sample.kind == MetricKind::Counter) {
      Series& s = series_locked(sample.name, sample.labels, SeriesKind::Rate,
                                before);
      double rate = std::nan("");
      if (can_rate) {
        // A fresh series was zero before it existed (registry counters are
        // born at zero); a raw value below the previous one means the
        // counter was reborn (node restart) and the new value IS the delta.
        const double prev = s.has_raw ? s.last_raw : 0.0;
        const double delta =
            sample.value >= prev ? sample.value - prev : sample.value;
        rate = delta / dt;
      }
      s.last_raw = sample.value;
      s.has_raw = true;
      push_locked(s, rate);
    } else if (sample.kind == MetricKind::Gauge) {
      Series& s = series_locked(sample.name, sample.labels, SeriesKind::Level,
                                before);
      push_locked(s, sample.value);
    }
  }

  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string key = h.name + render_labels(h.labels);
    HistogramState* state = nullptr;
    for (auto& [k, st] : histogram_state_) {
      if (k == key) {
        state = &st;
        break;
      }
    }
    if (state == nullptr) {
      histogram_state_.emplace_back(key, HistogramState{});
      state = &histogram_state_.back().second;
    }
    // Per-interval bucket deltas; a shrinking cumulative count means the
    // histogram was reborn, so the new counts are the interval's own.
    const bool reset =
        h.count < state->last_count || h.counts.size() != state->last_counts.size();
    HistogramSnapshot delta;
    delta.bounds = h.bounds;
    delta.counts.resize(h.counts.size());
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      delta.counts[i] =
          reset ? h.counts[i] : h.counts[i] - state->last_counts[i];
    }
    delta.sum = reset ? h.sum : h.sum - state->last_sum;
    delta.count = reset ? h.count : h.count - state->last_count;
    state->last_counts = h.counts;
    state->last_sum = h.sum;
    state->last_count = h.count;

    Series& count_s = series_locked(h.name + "_count", h.labels,
                                    SeriesKind::Rate, before);
    Series& sum_s =
        series_locked(h.name + "_sum", h.labels, SeriesKind::Rate, before);
    push_locked(count_s, can_rate ? static_cast<double>(delta.count) / dt
                                  : std::nan(""));
    push_locked(sum_s, can_rate ? delta.sum / dt : std::nan(""));
    for (const double q : config_.quantiles) {
      Series& q_s = series_locked(h.name + "_" + quantile_suffix(q),
                                  h.labels, SeriesKind::Quantile, before);
      const bool have = can_rate && delta.count > 0;
      push_locked(q_s, have ? delta.quantile(q) : std::nan(""));
    }
  }

  ticks_.push_back(t_sec);
  for (auto& s : series_) {
    if (!s->touched) s->values.push_back(std::nan(""));
  }
  while (ticks_.size() > config_.capacity) {
    ticks_.pop_front();
    for (auto& s : series_) {
      if (!s->values.empty()) s->values.pop_front();
    }
  }
  last_t_ = t_sec;
  ++ticks_observed_;
}

TimelineWindow Timeline::window() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TimelineWindow out;
  out.interval_sec = config_.interval_sec;
  out.t_sec.assign(ticks_.begin(), ticks_.end());
  out.series.reserve(series_.size());
  for (const auto& s : series_) {
    SeriesSnapshot snap;
    snap.name = s->name;
    snap.labels = s->labels;
    snap.kind = s->kind;
    snap.values.assign(s->values.begin(), s->values.end());
    out.series.push_back(std::move(snap));
  }
  return out;
}

std::uint64_t Timeline::ticks_observed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ticks_observed_;
}

// ----------------------------------------------------------------- sampler

TimelineSampler::TimelineSampler(Timeline& timeline, double interval_sec,
                                 std::function<Snapshot()> source,
                                 std::function<double()> now,
                                 std::function<void()> after_tick)
    : timeline_(timeline),
      interval_sec_(interval_sec > 0.0 ? interval_sec : 1.0),
      source_(std::move(source)),
      now_(std::move(now)),
      after_tick_(std::move(after_tick)) {
  thread_ = std::thread([this] { run(); });
}

TimelineSampler::~TimelineSampler() { stop(); }

void TimelineSampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TimelineSampler::run() {
  const auto period = std::chrono::duration<double>(interval_sec_);
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (stopping_) return;
    lock.unlock();
    timeline_.observe(source_(), now_());
    if (after_tick_) after_tick_();
    lock.lock();
    if (cv_.wait_for(lock, period, [this] { return stopping_; })) return;
  }
}

// ---------------------------------------------------------------- recorder

std::string flight_dump_json(const FlightDump& dump) {
  std::string out = "{\"schema\":\"cachecloud.flight.v1\"";
  out += ",\"node\":\"" + json_escape(dump.node) + "\"";
  out += ",\"seq\":" + std::to_string(dump.seq);
  out += ",\"trigger\":{\"reason\":\"" + json_escape(dump.reason) +
         "\",\"detail\":\"" + json_escape(dump.detail) +
         "\",\"t_sec\":" + json_num(dump.t_sec) + "}";
  out += ",\"timeline\":" + timeline_window_json(dump.window);
  out += ",\"spans\":[";
  for (std::size_t i = 0; i < dump.spans.size(); ++i) {
    const SpanRecord& s = dump.spans[i];
    if (i != 0) out += ",";
    out += "{\"trace_id\":\"" + hex64(s.trace_id) + "\",\"span_id\":\"" +
           hex64(s.span_id) + "\",\"parent_span_id\":\"" +
           hex64(s.parent_span_id) + "\",\"node\":\"" + json_escape(s.node) +
           "\",\"name\":\"" + json_escape(s.name) +
           "\",\"start_us\":" + std::to_string(s.start_us) +
           ",\"end_us\":" + std::to_string(s.end_us) +
           ",\"error\":" + (s.error ? "true" : "false") + "}";
  }
  out += "],\"log_tail\":[";
  for (std::size_t i = 0; i < dump.log_tail.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(dump.log_tail[i]) + "\"";
  }
  out += "]}";
  return out;
}

FlightRecorder::FlightRecorder(std::string node, const Timeline* timeline,
                               const SpanStore* span_store,
                               FlightRecorderConfig config,
                               std::function<double()> now)
    : node_(std::move(node)),
      timeline_(timeline),
      span_store_(span_store),
      config_(std::move(config)),
      now_(std::move(now)) {
  if (config_.log_lines > 0) util::grow_log_capture(config_.log_lines);
}

void FlightRecorder::trigger(const std::string& reason,
                             const std::string& detail) {
  FlightDump dump;
  dump.node = node_;
  dump.reason = reason;
  dump.detail = detail;
  dump.t_sec = now_ ? now_() : 0.0;
  if (timeline_ != nullptr) dump.window = timeline_->window();
  if (span_store_ != nullptr) {
    std::vector<SpanRecord> spans = span_store_->snapshot();
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.end_us < b.end_us;
              });
    if (spans.size() > config_.span_tail) {
      spans.erase(spans.begin(),
                  spans.end() - static_cast<std::ptrdiff_t>(config_.span_tail));
    }
    dump.spans = std::move(spans);
  }
  dump.log_tail = util::log_tail(config_.log_lines);

  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    dump.seq = seq_++;
    if (!config_.dump_directory.empty()) {
      path = config_.dump_directory + "/flight-" + node_ + "-" +
             std::to_string(dump.seq) + ".json";
    }
    dumps_.push_back(dump);
    while (dumps_.size() > config_.max_dumps) dumps_.pop_front();
  }
  if (!path.empty()) {
    try {
      std::error_code ec;
      std::filesystem::create_directories(config_.dump_directory, ec);
      util::atomic_write_file(path, flight_dump_json(dump));
    } catch (const std::exception& e) {
      CC_LOG(Warn) << "flight dump write failed (" << path << "): "
                   << e.what();
    }
  }
}

std::vector<FlightDump> FlightRecorder::dumps() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<FlightDump>(dumps_.begin(), dumps_.end());
}

std::uint64_t FlightRecorder::triggers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

// ----------------------------------------------------------------- signals

namespace {

struct SignalHook {
  int signo = 0;
  FlightRecorder* recorder = nullptr;
  bool fatal = false;
};

std::mutex g_signal_mutex;
std::vector<SignalHook>& signal_hooks() {
  static std::vector<SignalHook> hooks;
  return hooks;
}

// Not async-signal-safe (it allocates and locks); acceptable here because
// the dump is the process's dying act anyway — a hang instead of a dump is
// the worst case, and the common test path (raise() on a live thread) is
// effectively a normal call.
void flight_signal_handler(int signo) {
  bool fatal = false;
  std::vector<FlightRecorder*> targets;
  {
    const std::lock_guard<std::mutex> lock(g_signal_mutex);
    for (const SignalHook& hook : signal_hooks()) {
      if (hook.signo != signo) continue;
      targets.push_back(hook.recorder);
      fatal = fatal || hook.fatal;
    }
  }
  for (FlightRecorder* recorder : targets) {
    recorder->trigger("signal", "signal " + std::to_string(signo));
  }
  if (fatal) {
    std::signal(signo, SIG_DFL);
    std::raise(signo);
  }
}

}  // namespace

void flight_on_signal(int signo, FlightRecorder* recorder, bool fatal) {
  const std::lock_guard<std::mutex> lock(g_signal_mutex);
  signal_hooks().push_back(SignalHook{signo, recorder, fatal});
  std::signal(signo, &flight_signal_handler);
}

void flight_signal_detach(FlightRecorder* recorder) {
  const std::lock_guard<std::mutex> lock(g_signal_mutex);
  auto& hooks = signal_hooks();
  hooks.erase(std::remove_if(hooks.begin(), hooks.end(),
                             [recorder](const SignalHook& hook) {
                               return hook.recorder == recorder;
                             }),
              hooks.end());
}

}  // namespace cachecloud::obs
