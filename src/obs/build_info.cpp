#include "obs/build_info.hpp"

#include <ctime>

#ifndef CACHECLOUD_GIT_VERSION
#define CACHECLOUD_GIT_VERSION "unknown"
#endif
#ifndef CACHECLOUD_COMPILER
#define CACHECLOUD_COMPILER "unknown"
#endif

namespace cachecloud::obs {

std::string build_version() { return CACHECLOUD_GIT_VERSION; }

std::string build_compiler() { return CACHECLOUD_COMPILER; }

void register_build_info(Registry& registry) {
  registry
      .gauge("cachecloud_build_info",
             "Build identity; the value is always 1, the labels carry it",
             {{"version", build_version()}, {"compiler", build_compiler()}})
      .set(1.0);
  Gauge& start = registry.gauge(
      "cachecloud_start_time_seconds",
      "Unix time the registry registered build info (process start for "
      "nodes)");
  // get-or-create: only stamp the first registration, so a re-scrape does
  // not move a node's start time.
  if (start.value() == 0.0) {
    start.set(static_cast<double>(std::time(nullptr)));
  }
}

}  // namespace cachecloud::obs
