#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace cachecloud::trace {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<DocumentInfo> make_catalog(std::size_t num_docs,
                                       const char* url_prefix, double size_mu,
                                       double size_sigma, util::Rng& rng) {
  std::vector<DocumentInfo> catalog;
  catalog.reserve(num_docs);
  for (std::size_t i = 0; i < num_docs; ++i) {
    DocumentInfo d;
    d.url = std::string(url_prefix) + std::to_string(i) + ".html";
    // Clamp sizes to a sane web-document range: 256 B .. 4 MiB.
    const double raw = rng.next_lognormal(size_mu, size_sigma);
    d.size_bytes = static_cast<std::uint64_t>(
        std::clamp(raw, 256.0, 4.0 * 1024 * 1024));
    catalog.push_back(std::move(d));
  }
  return catalog;
}

// A fixed pseudo-random permutation of 0..n-1 so that popularity rank is not
// trivially correlated with document id / URL.
std::vector<DocId> make_rank_to_doc(std::size_t n, util::Rng& rng) {
  std::vector<DocId> perm(n);
  std::iota(perm.begin(), perm.end(), DocId{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  return perm;
}

}  // namespace

Trace generate_zipf_trace(const ZipfTraceConfig& config) {
  if (config.num_docs == 0) {
    throw std::invalid_argument("generate_zipf_trace: num_docs must be > 0");
  }
  if (config.num_caches == 0) {
    throw std::invalid_argument("generate_zipf_trace: num_caches must be > 0");
  }
  util::Rng rng(config.seed);
  auto catalog = make_catalog(config.num_docs, config.url_prefix.c_str(), config.size_mu,
                              config.size_sigma, rng);
  const auto rank_to_doc = make_rank_to_doc(config.num_docs, rng);
  // Updates follow their own Zipf ranking, independent of the request
  // ranking: read-hot and write-hot documents overlap but are not
  // identical, as in real dynamic-content sites. (A shared ranking would
  // make every document's access/update ratio a constant, degenerating the
  // placement decision.)
  const auto update_rank_to_doc = make_rank_to_doc(config.num_docs, rng);

  const util::ZipfSampler request_sampler(config.num_docs,
                                          config.request_alpha);
  const util::ZipfSampler update_sampler(config.num_docs, config.update_alpha);

  std::vector<Event> events;
  const auto expected =
      static_cast<std::size_t>(config.duration_sec * config.requests_per_sec +
                               config.duration_sec * config.updates_per_minute /
                                   60.0) +
      16;
  events.reserve(expected);

  double t = rng.next_exponential(config.requests_per_sec);
  while (t < config.duration_sec) {
    Event e;
    e.time = t;
    e.type = EventType::Request;
    e.doc = rank_to_doc[request_sampler.sample(rng)];
    e.cache = static_cast<CacheId>(rng.next_below(config.num_caches));
    events.push_back(e);
    t += rng.next_exponential(config.requests_per_sec);
  }

  const double update_rate_sec = config.updates_per_minute / 60.0;
  if (update_rate_sec > 0.0) {
    t = rng.next_exponential(update_rate_sec);
    while (t < config.duration_sec) {
      Event e;
      e.time = t;
      e.type = EventType::Update;
      e.doc = update_rank_to_doc[update_sampler.sample(rng)];
      events.push_back(e);
      t += rng.next_exponential(update_rate_sec);
    }
  }

  Trace trace(std::move(catalog), std::move(events));
  trace.sort_events();
  trace.validate();
  return trace;
}

Trace generate_sydney_trace(const SydneyTraceConfig& config) {
  if (config.num_docs == 0) {
    throw std::invalid_argument("generate_sydney_trace: num_docs must be > 0");
  }
  if (config.num_caches == 0) {
    throw std::invalid_argument("generate_sydney_trace: num_caches must be > 0");
  }
  if (config.hot_set_size >= config.num_docs) {
    throw std::invalid_argument(
        "generate_sydney_trace: hot_set_size must be < num_docs");
  }
  if (config.front_docs >= config.num_docs) {
    throw std::invalid_argument(
        "generate_sydney_trace: front_docs must be < num_docs");
  }
  if (config.front_fraction + config.hot_request_fraction > 1.0) {
    throw std::invalid_argument(
        "generate_sydney_trace: front + hot fractions exceed 1");
  }
  util::Rng rng(config.seed);
  auto catalog = make_catalog(config.num_docs, config.url_prefix.c_str(), config.size_mu,
                              config.size_sigma, rng);
  const auto rank_to_doc = make_rank_to_doc(config.num_docs, rng);

  const util::ZipfSampler backbone(config.num_docs, config.popularity_alpha);
  const util::ZipfSampler front_sampler(
      std::max<std::size_t>(config.front_docs, 1), config.front_alpha);
  const util::ZipfSampler hot_sampler(
      std::max<std::size_t>(config.hot_set_size, 1), 0.6);
  const std::size_t update_docs =
      std::min(std::max<std::size_t>(config.update_hot_docs, 1),
               config.num_docs);
  const util::ZipfSampler update_sampler(update_docs, config.update_alpha);

  // Per-cache request weights: edge locations see different client
  // populations; a mild skew (lognormal weights) mimics that.
  std::vector<double> cache_cdf(config.num_caches);
  {
    double acc = 0.0;
    for (auto& w : cache_cdf) {
      acc += rng.next_lognormal(0.0, 0.35);
      w = acc;
    }
    for (auto& w : cache_cdf) w /= acc;
    cache_cdf.back() = 1.0;
  }
  const auto pick_cache = [&](util::Rng& r) {
    const double u = r.next_double();
    const auto it = std::lower_bound(cache_cdf.begin(), cache_cdf.end(), u);
    return static_cast<CacheId>(it - cache_cdf.begin());
  };

  // Diurnal intensity: cosine day curve with the trough at t = 0 (midnight).
  const auto intensity = [&](double t) {
    const double phase = 2.0 * kPi * t / (24.0 * 3600.0);
    const double day = 0.5 * (1.0 - std::cos(phase));  // 0 at midnight, 1 midday
    return config.peak_requests_per_sec *
           (config.base_fraction + (1.0 - config.base_fraction) * day);
  };

  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(
      config.duration_sec * config.peak_requests_per_sec * 0.7 +
      config.duration_sec * config.updates_per_minute / 60.0));

  // Requests: time-sliced non-homogeneous Poisson (1-minute slices).
  const double slice = 60.0;
  for (double start = 0.0; start < config.duration_sec; start += slice) {
    const double len = std::min(slice, config.duration_sec - start);
    const double mid = start + len / 2.0;
    const double lambda = intensity(mid) * len;
    const std::uint64_t count = rng.next_poisson(lambda);
    // The live-event window active during this slice.
    const auto rotation = static_cast<std::size_t>(
        mid / config.hot_rotation_period_sec);
    const std::size_t hot_base =
        (rotation * config.hot_set_size) %
        (config.num_docs - config.hot_set_size);
    for (std::uint64_t k = 0; k < count; ++k) {
      Event e;
      e.time = start + rng.next_double() * len;
      e.type = EventType::Request;
      std::size_t rank;
      const double mix = rng.next_double();
      if (mix < config.front_fraction) {
        // Front pages live at the head of the popularity ranking.
        rank = front_sampler.sample(rng);
      } else if (mix < config.front_fraction + config.hot_request_fraction) {
        rank = hot_base + hot_sampler.sample(rng);
      } else {
        rank = backbone.sample(rng);
      }
      e.doc = rank_to_doc[rank];
      e.cache = pick_cache(rng);
      events.push_back(e);
    }
  }

  // Updates: homogeneous Poisson over scoreboard-like documents. These are
  // drawn from the *popular* end of the ranking (live pages change often),
  // which couples update load to request load as in the real trace.
  const double update_rate_sec = config.updates_per_minute / 60.0;
  if (update_rate_sec > 0.0) {
    double t = rng.next_exponential(update_rate_sec);
    while (t < config.duration_sec) {
      Event e;
      e.time = t;
      e.type = EventType::Update;
      e.doc = rank_to_doc[update_sampler.sample(rng)];
      events.push_back(e);
      t += rng.next_exponential(update_rate_sec);
    }
  }

  Trace trace(std::move(catalog), std::move(events));
  trace.sort_events();
  trace.validate();
  return trace;
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  stats.num_docs = trace.num_docs();
  stats.requests = trace.request_count();
  stats.updates = trace.update_count();
  stats.duration_sec = trace.duration();
  stats.total_bytes = trace.total_catalog_bytes();
  if (stats.duration_sec > 0.0) {
    stats.requests_per_minute =
        static_cast<double>(stats.requests) / stats.duration_sec * 60.0;
    stats.updates_per_minute =
        static_cast<double>(stats.updates) / stats.duration_sec * 60.0;
  }

  std::vector<std::size_t> per_doc(trace.num_docs(), 0);
  for (const auto& e : trace.events()) {
    if (e.type == EventType::Request) ++per_doc[e.doc];
  }
  std::sort(per_doc.begin(), per_doc.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(per_doc.size() / 100, 1);
  std::size_t top_sum = 0;
  for (std::size_t i = 0; i < top && i < per_doc.size(); ++i) {
    top_sum += per_doc[i];
  }
  if (stats.requests > 0) {
    stats.top1pct_request_share =
        static_cast<double>(top_sum) / static_cast<double>(stats.requests);
  }
  return stats;
}

}  // namespace cachecloud::trace
