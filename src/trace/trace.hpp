// Trace model for the trace-driven evaluation.
//
// A trace is a document catalog plus a time-ordered stream of events:
//   - Request events: an edge cache receives a client request for a document.
//   - Update events: the origin server produces a new version of a document
//     (a "dynamic document" changed) and must push it to the edge network.
//
// The paper drives its simulator from exactly such pairs of request/update
// streams ("Each cache in the cache cloud receives requests continuously
// according to a request-trace file, and the server continuously reads from
// an update trace file", §4).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cachecloud::trace {

using DocId = std::uint32_t;
using CacheId = std::uint32_t;

enum class EventType : std::uint8_t { Request, Update };

struct Event {
  double time = 0.0;  // seconds from trace start
  EventType type = EventType::Request;
  DocId doc = 0;
  CacheId cache = 0;  // receiving edge cache; meaningful for requests only

  friend bool operator==(const Event&, const Event&) = default;
};

struct DocumentInfo {
  std::string url;
  std::uint64_t size_bytes = 0;

  friend bool operator==(const DocumentInfo&, const DocumentInfo&) = default;
};

class Trace {
 public:
  Trace() = default;
  Trace(std::vector<DocumentInfo> catalog, std::vector<Event> events);

  [[nodiscard]] const std::vector<DocumentInfo>& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const DocumentInfo& doc(DocId id) const {
    return catalog_.at(id);
  }
  [[nodiscard]] std::size_t num_docs() const noexcept {
    return catalog_.size();
  }
  // End time of the last event; 0 for an empty trace.
  [[nodiscard]] double duration() const noexcept;
  [[nodiscard]] std::uint64_t total_catalog_bytes() const noexcept;
  [[nodiscard]] std::size_t request_count() const noexcept;
  [[nodiscard]] std::size_t update_count() const noexcept;
  // Largest cache id referenced by any request, plus one (0 if none).
  [[nodiscard]] CacheId num_caches() const noexcept;

  // Stable-sorts events by time. Generators call this before returning.
  void sort_events();

  // Validation: events sorted, doc ids within catalog. Throws
  // std::invalid_argument describing the first violation.
  void validate() const;

  // Returns a copy of this trace with the update events replaced by a
  // Poisson stream at `updates_per_minute`, drawn over the same documents
  // with the same per-document update popularity as the original update
  // stream (empirical distribution; falls back to uniform if the original
  // has no updates). Used by the Fig 7-9 update-rate sweeps.
  [[nodiscard]] Trace with_update_rate(double updates_per_minute,
                                       std::uint64_t seed) const;

 private:
  std::vector<DocumentInfo> catalog_;
  std::vector<Event> events_;
};

// Plain-text trace format, one record per line:
//   # comments and blank lines ignored
//   D <url> <size_bytes>               (catalog entry, ids assigned in order)
//   E <time> R <doc_id> <cache_id>     (request)
//   E <time> U <doc_id>                (update)
void write_trace(std::ostream& out, const Trace& trace);
[[nodiscard]] Trace read_trace(std::istream& in);
void write_trace_file(const std::string& path, const Trace& trace);
[[nodiscard]] Trace read_trace_file(const std::string& path);

}  // namespace cachecloud::trace
