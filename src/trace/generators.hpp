// Workload generators for the two datasets of the paper's evaluation.
//
// 1. Zipf dataset ("Zipf-0.9"): 25,000 unique documents; both accesses and
//    invalidations Zipf-distributed with configurable skew (§4: parameter
//    0.9 for Figs 3, 7-9; swept 0→0.99 for Fig 6).
// 2. Sydney dataset: the paper uses a proprietary 24-hour access/update
//    trace of the IBM 2000 Sydney Olympics site. That trace is not publicly
//    available, so `SydneyTraceConfig` synthesizes a stand-in with the same
//    statistical character the experiments exploit: strong but less extreme
//    popularity skew than Zipf-0.9, diurnal request intensity, a rotating
//    "live event" hot set, and an update stream concentrated on a small set
//    of frequently-changing (scoreboard-like) documents. See DESIGN.md §4.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.hpp"

namespace cachecloud::trace {

struct ZipfTraceConfig {
  std::size_t num_docs = 25'000;
  CacheId num_caches = 10;
  double duration_sec = 3600.0;
  double requests_per_sec = 200.0;    // cloud-wide request arrival rate
  double updates_per_minute = 195.0;  // origin-side update rate
  double request_alpha = 0.9;
  double update_alpha = 0.9;
  // Document body sizes: lognormal (median ≈ e^mu bytes).
  double size_mu = 9.0;     // median ≈ 8.1 KiB
  double size_sigma = 1.0;
  // URL prefix for the synthetic catalog. Salting this (e.g. per trial)
  // re-rolls every document's hash placement, letting harnesses average
  // over beacon-assignment luck.
  std::string url_prefix = "/zipf/doc";
  std::uint64_t seed = 1;
};

[[nodiscard]] Trace generate_zipf_trace(const ZipfTraceConfig& config);

struct SydneyTraceConfig {
  std::size_t num_docs = 58'000;
  CacheId num_caches = 10;
  double duration_sec = 24.0 * 3600.0;
  // Request intensity follows a day curve between
  // base_fraction*peak (night) and peak (mid-day).
  double peak_requests_per_sec = 15.0;
  double base_fraction = 0.25;
  // Stable popularity backbone.
  double popularity_alpha = 0.75;
  // Persistent "front pages" (home page, medal tally, schedules): a small
  // fixed set that stays scorching all day. These are what random (static)
  // beacon assignment collides on and dynamic hashing isolates.
  std::size_t front_docs = 10;
  double front_fraction = 0.28;
  double front_alpha = 0.3;
  // A rotating hot set models live events: every rotation period a new
  // window of documents receives `hot_request_fraction` of all requests.
  std::size_t hot_set_size = 400;
  double hot_request_fraction = 0.15;
  double hot_rotation_period_sec = 4.0 * 3600.0;
  // Updates concentrate on scoreboard-like documents.
  double updates_per_minute = 195.0;
  std::size_t update_hot_docs = 5'000;
  double update_alpha = 0.7;
  double size_mu = 9.2;
  double size_sigma = 1.1;
  // See ZipfTraceConfig::url_prefix.
  std::string url_prefix = "/sydney/doc";
  std::uint64_t seed = 2;
};

[[nodiscard]] Trace generate_sydney_trace(const SydneyTraceConfig& config);

// Summary statistics used by tests and the EXPERIMENTS.md shape report.
struct TraceStats {
  std::size_t num_docs = 0;
  std::size_t requests = 0;
  std::size_t updates = 0;
  double duration_sec = 0.0;
  double requests_per_minute = 0.0;
  double updates_per_minute = 0.0;
  // Fraction of requests landing on the top 1% most-requested documents —
  // a scale-free skew measure.
  double top1pct_request_share = 0.0;
  std::uint64_t total_bytes = 0;
};

[[nodiscard]] TraceStats compute_stats(const Trace& trace);

}  // namespace cachecloud::trace
