#include "trace/trace.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/zipf.hpp"

namespace cachecloud::trace {

Trace::Trace(std::vector<DocumentInfo> catalog, std::vector<Event> events)
    : catalog_(std::move(catalog)), events_(std::move(events)) {}

double Trace::duration() const noexcept {
  return events_.empty() ? 0.0 : events_.back().time;
}

std::uint64_t Trace::total_catalog_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& d : catalog_) total += d.size_bytes;
  return total;
}

std::size_t Trace::request_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(), [](const Event& e) {
        return e.type == EventType::Request;
      }));
}

std::size_t Trace::update_count() const noexcept {
  return events_.size() - request_count();
}

CacheId Trace::num_caches() const noexcept {
  CacheId max_id = 0;
  bool any = false;
  for (const auto& e : events_) {
    if (e.type == EventType::Request) {
      max_id = std::max(max_id, e.cache);
      any = true;
    }
  }
  return any ? max_id + 1 : 0;
}

void Trace::sort_events() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.time < b.time; });
}

void Trace::validate() const {
  double prev = -1.0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.time < prev) {
      throw std::invalid_argument("trace events out of order at index " +
                                  std::to_string(i));
    }
    prev = e.time;
    if (e.doc >= catalog_.size()) {
      throw std::invalid_argument("trace event " + std::to_string(i) +
                                  " references doc " + std::to_string(e.doc) +
                                  " outside catalog of size " +
                                  std::to_string(catalog_.size()));
    }
  }
}

Trace Trace::with_update_rate(double updates_per_minute,
                              std::uint64_t seed) const {
  if (updates_per_minute < 0.0) {
    throw std::invalid_argument("with_update_rate: negative rate");
  }
  // Empirical per-document update weights from the existing update stream.
  std::vector<double> weight(catalog_.size(), 0.0);
  double total_weight = 0.0;
  for (const auto& e : events_) {
    if (e.type == EventType::Update) {
      weight[e.doc] += 1.0;
      total_weight += 1.0;
    }
  }
  if (total_weight == 0.0) {
    weight.assign(catalog_.size(), 1.0);
    total_weight = static_cast<double>(catalog_.size());
  }
  std::vector<double> cdf(weight.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weight.size(); ++i) {
    acc += weight[i] / total_weight;
    cdf[i] = acc;
  }
  if (!cdf.empty()) cdf.back() = 1.0;

  std::vector<Event> events;
  events.reserve(events_.size());
  for (const auto& e : events_) {
    if (e.type == EventType::Request) events.push_back(e);
  }

  util::Rng rng(seed);
  const double rate_per_sec = updates_per_minute / 60.0;
  const double horizon = duration();
  if (rate_per_sec > 0.0 && horizon > 0.0) {
    double t = rng.next_exponential(rate_per_sec);
    while (t < horizon) {
      const double u = rng.next_double();
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      Event e;
      e.time = t;
      e.type = EventType::Update;
      e.doc = static_cast<DocId>(it - cdf.begin());
      events.push_back(e);
      t += rng.next_exponential(rate_per_sec);
    }
  }

  Trace out(catalog_, std::move(events));
  out.sort_events();
  return out;
}

void write_trace(std::ostream& out, const Trace& trace) {
  out << "# cachecloud-trace v1\n";
  for (const auto& d : trace.catalog()) {
    out << "D " << d.url << " " << d.size_bytes << "\n";
  }
  out.precision(9);
  for (const auto& e : trace.events()) {
    if (e.type == EventType::Request) {
      out << "E " << e.time << " R " << e.doc << " " << e.cache << "\n";
    } else {
      out << "E " << e.time << " U " << e.doc << "\n";
    }
  }
}

Trace read_trace(std::istream& in) {
  std::vector<DocumentInfo> catalog;
  std::vector<Event> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    char tag = 0;
    fields >> tag;
    if (tag == 'D') {
      DocumentInfo d;
      fields >> d.url >> d.size_bytes;
      if (fields.fail()) {
        throw std::invalid_argument("bad catalog record at line " +
                                    std::to_string(line_no));
      }
      catalog.push_back(std::move(d));
    } else if (tag == 'E') {
      Event e;
      char kind = 0;
      fields >> e.time >> kind;
      if (kind == 'R') {
        e.type = EventType::Request;
        fields >> e.doc >> e.cache;
      } else if (kind == 'U') {
        e.type = EventType::Update;
        fields >> e.doc;
      } else {
        throw std::invalid_argument("bad event kind at line " +
                                    std::to_string(line_no));
      }
      if (fields.fail()) {
        throw std::invalid_argument("bad event record at line " +
                                    std::to_string(line_no));
      }
      events.push_back(e);
    } else {
      throw std::invalid_argument("unknown record tag '" + std::string(1, tag) +
                                  "' at line " + std::to_string(line_no));
    }
  }
  Trace trace(std::move(catalog), std::move(events));
  trace.validate();
  return trace;
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_trace(out, trace);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return read_trace(in);
}

}  // namespace cachecloud::trace
