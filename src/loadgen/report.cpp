#include "loadgen/report.hpp"

#include <cstdio>
#include <stdexcept>

#include "obs/span_store.hpp"
#include "util/fs.hpp"

namespace cachecloud::loadgen {

namespace {

// Shortest round-trippable-enough representation; %.12g keeps latency
// numbers exact to the picosecond without trailing-zero noise.
[[nodiscard]] std::string num(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  return buffer;
}

[[nodiscard]] std::string num(std::uint64_t v) { return std::to_string(v); }
[[nodiscard]] std::string num(std::int64_t v) { return std::to_string(v); }

[[nodiscard]] std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// Tiny indentation-aware JSON writer: callers append key/value pairs in a
// fixed order so report diffs line up run to run.
class Doc {
 public:
  void open_object() { open('{'); }
  void open_object(const std::string& key) { open('{', key); }
  void open_array(const std::string& key) { open('[', key); }
  void open_array_element() { open('{'); }

  void field(const std::string& key, const std::string& raw) {
    comma();
    indent();
    out_ += quoted(key) + ": " + raw;
  }
  // Bare scalar element inside an open array.
  void element(const std::string& raw) {
    comma();
    indent();
    out_ += raw;
  }
  void str(const std::string& key, const std::string& value) {
    field(key, quoted(value));
  }
  void boolean(const std::string& key, bool value) {
    field(key, value ? "true" : "false");
  }

  void close_object() { close('}'); }
  void close_array() { close(']'); }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void open(char bracket, const std::string& key = {}) {
    comma();
    indent();
    if (!key.empty()) out_ += quoted(key) + ": ";
    out_ += bracket;
    ++depth_;
    fresh_ = true;
  }
  void close(char bracket) {
    --depth_;
    out_ += '\n';
    for (int i = 0; i < depth_; ++i) out_ += "  ";
    out_ += bracket;
    fresh_ = false;
  }
  void comma() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }
  void indent() {
    if (depth_ > 0) {
      out_ += '\n';
      for (int i = 0; i < depth_; ++i) out_ += "  ";
    }
  }

  std::string out_;
  int depth_ = 0;
  bool fresh_ = true;
};

}  // namespace

std::string render_report(const Plan& plan, const RunResult& result) {
  Doc doc;
  doc.open_object();
  doc.str("schema", kReportSchema);
  doc.str("workload", workload_name(plan.workload.workload));
  doc.str("mode", mode_name(plan.schedule.mode));
  doc.str("arrival", arrival_name(plan.schedule.arrival));
  doc.field("seed", num(static_cast<std::uint64_t>(plan.seed)));

  doc.open_object("config");
  doc.field("num_docs", num(static_cast<std::uint64_t>(plan.urls.size())));
  doc.field("zipf_alpha", num(plan.workload.zipf_alpha));
  doc.field("update_fraction", num(plan.workload.update_fraction));
  doc.field("num_caches",
            num(static_cast<std::uint64_t>(plan.workload.num_caches)));
  doc.field("doc_bytes", num(plan.workload.doc_bytes));
  doc.field("rate", num(plan.schedule.rate));
  doc.field("warmup_sec", num(plan.schedule.warmup_sec));
  doc.field("duration_sec", num(plan.schedule.duration_sec));
  if (plan.schedule.mode == Mode::Ramp) {
    doc.field("ramp_start", num(plan.schedule.ramp_start));
    doc.field("ramp_step", num(plan.schedule.ramp_step));
    doc.field("ramp_steps",
              num(static_cast<std::int64_t>(plan.schedule.ramp_steps)));
  }
  if (!plan.workload.trace_file.empty()) {
    doc.str("trace_file", plan.workload.trace_file);
  }
  doc.close_object();

  doc.open_object("totals");
  doc.field("planned", num(result.total_planned));
  doc.field("sent", num(result.total_sent));
  doc.field("ok", num(result.total_ok));
  doc.field("errors", num(result.total_errors));
  doc.field("degraded", num(result.total_degraded));
  doc.field("wall_seconds", num(result.wall_seconds));
  doc.close_object();

  doc.open_array("phases");
  for (const PhaseResult& phase : result.phases) {
    doc.open_array_element();
    doc.str("name", phase.name);
    doc.boolean("measured", phase.measured);
    doc.field("offered_rate", num(phase.offered_rate));
    doc.field("duration_sec", num(phase.duration_sec));
    doc.field("planned", num(phase.planned));
    doc.field("sent", num(phase.sent));
    doc.field("ok", num(phase.ok));
    doc.field("errors", num(phase.errors));
    doc.field("degraded", num(phase.degraded));
    doc.field("gets", num(phase.gets));
    doc.field("publishes", num(phase.publishes));
    doc.field("src_local", num(phase.src_local));
    doc.field("src_cloud", num(phase.src_cloud));
    doc.field("src_origin", num(phase.src_origin));
    doc.field("throughput", num(phase.throughput));
    doc.field("latency_count", num(phase.latency_count));
    doc.field("p50", num(phase.p50));
    doc.field("p90", num(phase.p90));
    doc.field("p99", num(phase.p99));
    doc.field("p999", num(phase.p999));
    doc.field("mean", num(phase.mean));
    // Tracing extras appear only when the run stamped trace contexts, so
    // untraced reports stay byte-identical to the pre-tracing schema.
    if (phase.p99_trace != 0 || phase.p999_trace != 0 ||
        !phase.slowest.empty()) {
      doc.str("p99_trace", obs::hex64(phase.p99_trace));
      doc.str("p999_trace", obs::hex64(phase.p999_trace));
      doc.open_array("slowest");
      for (const SlowSample& sample : phase.slowest) {
        doc.open_array_element();
        doc.str("trace_id", obs::hex64(sample.trace_id));
        doc.field("latency_sec", num(sample.latency_sec));
        doc.field("doc", num(static_cast<std::uint64_t>(sample.doc)));
        doc.field("cache", num(static_cast<std::uint64_t>(sample.cache)));
        doc.boolean("publish", sample.publish);
        doc.close_object();
      }
      doc.close_array();
    }
    doc.close_object();
  }
  doc.close_array();

  doc.open_array("nodes");
  for (const NodeStats& node : result.nodes) {
    doc.open_array_element();
    doc.str("role", node.role);
    doc.field("index", num(static_cast<std::uint64_t>(node.index)));
    doc.field("port", num(static_cast<std::uint64_t>(node.port)));
    doc.field("gets", num(node.gets));
    doc.field("degraded", num(node.degraded));
    doc.field("publishes", num(node.publishes));
    doc.close_object();
  }
  doc.close_array();

  doc.open_object("reconciliation");
  const Reconciliation& rec = result.reconciliation;
  doc.field("client_get_ok", num(rec.client_get_ok));
  doc.field("client_get_errors", num(rec.client_get_errors));
  doc.field("client_publish_ok", num(rec.client_publish_ok));
  doc.field("client_publish_errors", num(rec.client_publish_errors));
  doc.field("server_gets", num(rec.server_gets));
  doc.field("server_publishes", num(rec.server_publishes));
  doc.field("unexplained_gets", num(rec.unexplained_gets));
  doc.field("unexplained_publishes", num(rec.unexplained_publishes));
  doc.boolean("consistent", rec.consistent);
  doc.close_object();

  // Pipelining evidence from the shared multiplexed clients: peak
  // in-flight requests on one connection > 1 proves requests overlapped
  // on the wire instead of serializing behind a per-connection lock.
  doc.open_object("transport");
  doc.field("endpoints", num(result.transport.endpoints));
  doc.field("reconnects", num(result.transport.reconnects));
  doc.field("peak_outstanding", num(result.transport.peak_outstanding));
  doc.close_object();

  // The lifecycle section appears only when the driver ran a kill–restart
  // phase, so plain runs stay byte-identical to the pre-disk schema.
  if (result.lifecycle.ran) {
    const LifecycleSummary& life = result.lifecycle;
    doc.open_object("lifecycle");
    doc.field("node", num(static_cast<std::uint64_t>(life.node)));
    doc.field("kill_at_sec", num(life.kill_at_sec));
    doc.field("restart_at_sec", num(life.restart_at_sec));
    doc.field("recovered_docs", num(life.recovered_docs));
    doc.field("announced", num(life.announced));
    doc.field("post_gets", num(life.post_gets));
    doc.field("post_local", num(life.post_local));
    doc.field("post_disk", num(life.post_disk));
    doc.field("post_local_hit_rate", num(life.post_local_hit_rate));
    doc.close_object();
  }

  if (result.ramp.ran) {
    doc.open_object("ramp");
    doc.boolean("saturated", result.ramp.saturated);
    doc.field("knee_rate", num(result.ramp.knee_rate));
    doc.str("knee_phase", result.ramp.knee_phase);
    doc.str("first_saturated_phase", result.ramp.first_saturated_phase);
    doc.close_object();
  }

  // Profiling extras appear only when the run scraped an enabled profiler
  // (--profile), so unprofiled reports stay byte-identical to the
  // pre-profiling schema.
  if (result.contention.enabled) {
    const obs::ContentionSummary& cont = result.contention;
    doc.open_object("contention");
    doc.field("total_wait_sec", num(cont.total_wait_sec));
    doc.open_array("locks");
    for (const obs::LockSummary& lock : cont.locks) {
      doc.open_array_element();
      doc.str("node", lock.node);
      doc.str("lock", lock.lock);
      doc.field("acquisitions", num(lock.acquisitions));
      doc.field("contended", num(lock.contended));
      doc.field("wait_total_sec", num(lock.wait_total_sec));
      doc.field("wait_share", num(lock.wait_share));
      doc.field("wait_p99_sec", num(lock.wait_p99_sec));
      doc.field("hold_total_sec", num(lock.hold_total_sec));
      doc.field("hold_p99_sec", num(lock.hold_p99_sec));
      doc.close_object();
    }
    doc.close_array();
    doc.open_array("workers");
    for (const obs::WorkerSummary& worker : cont.workers) {
      doc.open_array_element();
      doc.str("node", worker.node);
      doc.field("busy_sec", num(worker.busy_sec));
      doc.field("read_wait_sec", num(worker.read_wait_sec));
      doc.field("utilization", num(worker.utilization));
      doc.field("conn_threads", num(worker.conn_threads));
      doc.field("conn_threads_peak", num(worker.conn_threads_peak));
      doc.close_object();
    }
    doc.close_array();
    doc.open_array("io");
    for (const obs::IoSummary& io : cont.io) {
      doc.open_array_element();
      doc.str("node", io.node);
      doc.field("recv_syscalls", num(io.recv_syscalls));
      doc.field("send_syscalls", num(io.send_syscalls));
      doc.field("recv_bytes", num(io.recv_bytes));
      doc.field("send_bytes", num(io.send_bytes));
      doc.field("nodelay_sockets", num(io.nodelay_sockets));
      doc.close_object();
    }
    doc.close_array();
    doc.close_object();
  }

  // Per-interval series appear only when the run sampled timelines
  // (--timeline-out), so untimed reports stay byte-identical to the
  // pre-timeline schema. bench_diff gates on the steady-state medians
  // when both sides carry this section.
  if (result.timeline.ran) {
    const TimelineSummary& tl = result.timeline;
    doc.open_object("timeline");
    doc.field("interval_sec", num(tl.interval_sec));
    doc.field("nodes", num(static_cast<std::uint64_t>(tl.nodes)));
    doc.field("ticks", num(static_cast<std::uint64_t>(tl.t_sec.size())));
    doc.open_array("t_sec");
    for (double t : tl.t_sec) {
      doc.element(num(t));
    }
    doc.close_array();
    doc.open_array("qps");
    for (double v : tl.qps) {
      doc.element(num(v));
    }
    doc.close_array();
    doc.open_array("p99");
    for (double v : tl.p99) {
      doc.element(num(v));
    }
    doc.close_array();
    doc.field("median_qps", num(tl.median_qps));
    doc.field("peak_qps", num(tl.peak_qps));
    doc.field("median_p99", num(tl.median_p99));
    doc.close_object();
  }

  doc.close_object();
  std::string out = doc.take();
  out += '\n';
  return out;
}

std::string default_report_name(const Plan& plan) {
  return std::string("BENCH_live_") +
         workload_name(plan.workload.workload) + ".json";
}

void write_report(const std::string& path, const Plan& plan,
                  const RunResult& result) {
  // Atomic (tmp + fsync + rename): a report that doubles as a bench_diff
  // baseline must never be observable half-written, even if the driver
  // dies mid-flush.
  try {
    util::atomic_write_file(path, render_report(plan, result));
  } catch (const std::exception& e) {
    throw std::runtime_error("loadgen: cannot write report to " + path +
                             ": " + e.what());
  }
}

}  // namespace cachecloud::loadgen
