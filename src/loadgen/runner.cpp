#include "loadgen/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "net/mux_client.hpp"
#include "net/tcp.hpp"
#include "node/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/span_store.hpp"

namespace cachecloud::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_between(Clock::time_point a,
                                     Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Per-(worker, phase) tallies. Workers write their own copy with no
// sharing; the main thread merges after join. Only the latency histograms
// are shared (obs::LatencyHistogram::observe is thread-safe).
struct PhaseTally {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t degraded = 0;
  std::uint64_t gets = 0;
  std::uint64_t publishes = 0;
  std::uint64_t src_local = 0;
  std::uint64_t src_cloud = 0;
  std::uint64_t src_origin = 0;
  // Actual activity span, for closed-mode throughput.
  double first_start = -1.0;
  double last_end = 0.0;
  // Slowest sampled ops this worker saw in this phase (descending
  // latency, bounded at slowest_k); merged across workers afterwards.
  std::vector<SlowSample> slowest;
};

// Keeps `slowest` holding the k largest-latency samples, descending.
void note_slow(std::vector<SlowSample>& slowest, std::size_t k,
               const SlowSample& sample) {
  if (k == 0) return;
  const auto pos = std::upper_bound(
      slowest.begin(), slowest.end(), sample,
      [](const SlowSample& a, const SlowSample& b) {
        return a.latency_sec > b.latency_sec;
      });
  if (pos == slowest.end() && slowest.size() >= k) return;
  slowest.insert(pos, sample);
  if (slowest.size() > k) slowest.pop_back();
}

// The histogram-side twin of HistogramSnapshot::exemplar_at_or_above for a
// standalone LatencyHistogram: the first recorded exemplar from the bucket
// containing `value` upward.
[[nodiscard]] std::uint64_t exemplar_at_or_above(
    const obs::LatencyHistogram& hist, double value) {
  const std::vector<obs::Exemplar> exemplars = hist.exemplar_snapshot();
  const std::vector<double>& bounds = hist.bounds();
  const std::size_t start = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  for (std::size_t i = start; i < exemplars.size(); ++i) {
    if (exemplars[i].trace_id != 0) return exemplars[i].trace_id;
  }
  return 0;
}

// One lazily-connected pipelined connection, shared by several worker
// threads: the workers overlap their requests on one multiplexed
// connection instead of opening one serial connection each — which is
// exactly the pattern the nodes' peer fan-out uses, so the load test
// exercises it. A failed call drops the connection (if nobody replaced
// it yet) and the next op reconnects fresh.
class Stripe {
 public:
  Stripe(std::uint16_t port, double timeout) : port_(port),
                                               timeout_(timeout) {}

  // Returns false (and resets the connection) on any network error.
  bool call(const net::Frame& request, net::Frame& reply) {
    std::shared_ptr<net::MuxClient> client;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!client_) {
        try {
          client_ = std::make_shared<net::MuxClient>(port_, timeout_);
          ++connects_;
        } catch (const net::NetError&) {
          return false;
        }
      }
      client = client_;
    }
    try {
      client->call_into(request, reply);
      note_peak(client->peak_outstanding());
      return true;
    } catch (const net::NetError&) {
      note_peak(client->peak_outstanding());
      const std::lock_guard<std::mutex> lock(mu_);
      if (client_ == client) client_.reset();
      return false;
    }
  }

  // High-water mark of in-flight requests across this endpoint's
  // connections (reconnects included).
  [[nodiscard]] std::uint64_t peak_outstanding() const {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reconnects() const {
    const std::uint64_t connects = connects_.load(std::memory_order_relaxed);
    return connects > 0 ? connects - 1 : 0;
  }

 private:
  void note_peak(std::uint64_t seen) {
    std::uint64_t cur = peak_.load(std::memory_order_relaxed);
    while (seen > cur && !peak_.compare_exchange_weak(
                             cur, seen, std::memory_order_relaxed)) {
    }
  }

  std::uint16_t port_;
  double timeout_;
  std::mutex mu_;
  std::shared_ptr<net::MuxClient> client_;
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> peak_{0};
};

// A small pool of multiplexed connections to one endpoint. One shared
// connection keeps every request in one pipeline but serializes the whole
// worker pool through a single socket at saturation; one connection per
// worker never pipelines at all. A few stripes with several workers each
// gets both: deep pipelines AND no single-socket bottleneck.
class Endpoint {
 public:
  Endpoint(std::uint16_t port, double timeout, std::size_t stripes) {
    for (std::size_t i = 0; i < stripes; ++i) {
      stripes_.emplace_back(port, timeout);
    }
  }

  bool call(const net::Frame& request, net::Frame& reply, std::size_t hint) {
    return stripes_[hint % stripes_.size()].call(request, reply);
  }

  [[nodiscard]] std::uint64_t peak_outstanding() const {
    std::uint64_t peak = 0;
    for (const Stripe& s : stripes_) {
      peak = std::max(peak, s.peak_outstanding());
    }
    return peak;
  }
  [[nodiscard]] std::uint64_t reconnects() const {
    std::uint64_t total = 0;
    for (const Stripe& s : stripes_) total += s.reconnects();
    return total;
  }

 private:
  std::deque<Stripe> stripes_;  // deque: Stripe holds a mutex, not movable
};

// Workers per pipelined connection. Four blocking workers keep a stripe's
// pipeline 2-4 deep at load without funnelling the whole pool through it.
constexpr std::size_t kWorkersPerStripe = 4;

// Scrapes one node's full metrics snapshot.
[[nodiscard]] obs::Snapshot scrape(std::uint16_t port, double timeout) {
  net::MuxClient client(port, timeout);
  const net::Frame reply = client.call(node::StatsReq{}.encode());
  return node::StatsResp::decode(reply).snapshot;
}

struct ScrapeSet {
  std::vector<obs::Snapshot> caches;
  obs::Snapshot origin;
};

[[nodiscard]] ScrapeSet scrape_all(const RunnerConfig& config) {
  ScrapeSet set;
  set.caches.reserve(config.cache_ports.size());
  for (std::uint16_t port : config.cache_ports) {
    set.caches.push_back(scrape(port, config.call_timeout_sec));
  }
  if (config.origin_port != 0) {
    set.origin = scrape(config.origin_port, config.call_timeout_sec);
  }
  return set;
}

[[nodiscard]] std::uint64_t counter_delta(const obs::Snapshot& before,
                                          const obs::Snapshot& after,
                                          const std::string& name) {
  const double b = before.sum_of(name);
  const double a = after.sum_of(name);
  return a > b ? static_cast<std::uint64_t>(a - b + 0.5) : 0;
}

}  // namespace

Runner::Runner(RunnerConfig config) : config_(std::move(config)) {
  if (config_.cache_ports.empty()) {
    throw std::invalid_argument("loadgen: runner needs at least one cache");
  }
  if (config_.threads < 1) {
    throw std::invalid_argument("loadgen: runner needs at least one thread");
  }
}

RunResult Runner::run(const Plan& plan) {
  for (const PlannedOp& op : plan.ops) {
    if (op.kind == PlannedOp::Kind::Get &&
        op.cache >= config_.cache_ports.size()) {
      throw std::invalid_argument(
          "loadgen: plan targets cache index " + std::to_string(op.cache) +
          " but only " + std::to_string(config_.cache_ports.size()) +
          " cache ports were given");
    }
    if (op.kind == PlannedOp::Kind::Publish && config_.origin_port == 0) {
      throw std::invalid_argument(
          "loadgen: plan contains publishes but no origin port was given");
    }
  }

  const std::size_t num_phases = plan.phases.size();
  const int threads = config_.threads;
  const bool open_loop = plan.schedule.mode != Mode::Closed;

  // Shared per-phase latency histograms: fine log-spaced buckets so the
  // interpolated p99/p99.9 stay close to the truth (10us .. 10s).
  std::vector<std::unique_ptr<obs::LatencyHistogram>> latency;
  latency.reserve(num_phases);
  for (std::size_t i = 0; i < num_phases; ++i) {
    latency.push_back(std::make_unique<obs::LatencyHistogram>(
        obs::log_spaced_bounds(1e-5, 10.0, 10)));
  }

  const ScrapeSet before = scrape_all(config_);

  std::vector<std::vector<PhaseTally>> tallies(
      static_cast<std::size_t>(threads), std::vector<PhaseTally>(num_phases));

  // A few pipelined connections per endpoint, several workers each: the
  // server sees a handful of deep pipelines instead of threads-many
  // serial connections.
  const std::size_t stripes = std::max<std::size_t>(
      1, (static_cast<std::size_t>(threads) + kWorkersPerStripe - 1) /
             kWorkersPerStripe);
  std::deque<Endpoint> caches;
  for (std::uint16_t port : config_.cache_ports) {
    caches.emplace_back(port, config_.call_timeout_sec, stripes);
  }
  Endpoint origin(config_.origin_port, config_.call_timeout_sec, stripes);

  const Clock::time_point base = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      std::vector<PhaseTally>& mine = tallies[static_cast<std::size_t>(w)];
      net::Frame reply;  // payload capacity reused across every call

      for (std::size_t i = static_cast<std::size_t>(w); i < plan.ops.size();
           i += static_cast<std::size_t>(threads)) {
        const PlannedOp& op = plan.ops[i];
        PhaseTally& tally = mine[op.phase];

        Clock::time_point intended = base;
        if (open_loop) {
          intended += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(op.at));
          std::this_thread::sleep_until(intended);
        } else {
          intended = Clock::now();
        }
        const double started = seconds_between(base, intended);
        if (tally.first_start < 0.0 || started < tally.first_start) {
          tally.first_start = started;
        }

        ++tally.sent;
        // Client-minted trace context: the client knows the id before the
        // request leaves, so the slowest-K lists below can name traces to
        // pull out of the nodes' span stores afterwards.
        std::uint64_t trace_id = 0;
        bool sampled = false;
        if (config_.trace_sample > 0.0) {
          trace_id = obs::next_trace_id();
          sampled = obs::sample_trace(trace_id, config_.trace_sample);
        }
        const obs::SpanContext ctx{trace_id, 0, sampled};
        bool ok = false;
        if (op.kind == PlannedOp::Kind::Get) {
          ++tally.gets;
          const net::Frame request = node::with_trace(
              node::ClientGetReq{plan.urls[op.doc]}.encode(), ctx);
          if (caches[op.cache].call(request, reply,
                                     static_cast<std::size_t>(w))) {
            try {
              const node::ClientGetResp resp =
                  node::ClientGetResp::decode(reply);
              ok = resp.ok;
              if (resp.degraded) ++tally.degraded;
              if (resp.ok) {
                switch (resp.source) {
                  case 0:
                    ++tally.src_local;
                    break;
                  case 1:
                    ++tally.src_cloud;
                    break;
                  default:
                    ++tally.src_origin;
                    break;
                }
              }
            } catch (const std::exception&) {
              ok = false;
            }
          }
        } else {
          ++tally.publishes;
          const net::Frame request = node::with_trace(
              node::ClientPublishReq{plan.urls[op.doc]}.encode(), ctx);
          if (origin.call(request, reply, static_cast<std::size_t>(w))) {
            try {
              ok = node::ClientPublishResp::decode(reply).ok;
            } catch (const std::exception&) {
              ok = false;
            }
          }
        }

        const Clock::time_point done = Clock::now();
        if (ok) {
          ++tally.ok;
        } else {
          ++tally.errors;
        }
        // Coordinated-omission-safe: in open modes this includes any time
        // the op spent waiting behind a slow predecessor on this worker.
        const double latency_sec = seconds_between(intended, done);
        latency[op.phase]->observe(latency_sec, trace_id);
        if (sampled) {
          // Only sampled ops are guaranteed retrievable from the stores.
          SlowSample sample;
          sample.trace_id = trace_id;
          sample.latency_sec = latency_sec;
          sample.doc = op.doc;
          sample.cache = op.cache;
          sample.publish = op.kind == PlannedOp::Kind::Publish;
          note_slow(tally.slowest, config_.slowest_k, sample);
        }
        const double ended = seconds_between(base, done);
        if (ended > tally.last_end) tally.last_end = ended;
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall = seconds_between(base, Clock::now());

  const ScrapeSet after = scrape_all(config_);

  RunResult result;
  result.wall_seconds = wall;

  // ---- transport summary --------------------------------------------
  result.transport.endpoints = caches.size() +
                               (config_.origin_port != 0 ? 1 : 0);
  for (const Endpoint& cache : caches) {
    result.transport.reconnects += cache.reconnects();
    result.transport.peak_outstanding = std::max(
        result.transport.peak_outstanding, cache.peak_outstanding());
  }
  if (config_.origin_port != 0) {
    result.transport.reconnects += origin.reconnects();
    result.transport.peak_outstanding = std::max(
        result.transport.peak_outstanding, origin.peak_outstanding());
  }

  // ---- merge phase tallies ------------------------------------------
  std::vector<std::uint64_t> planned(num_phases, 0);
  for (const PlannedOp& op : plan.ops) ++planned[op.phase];

  for (std::size_t p = 0; p < num_phases; ++p) {
    const PhaseSpec& spec = plan.phases[p];
    PhaseResult phase;
    phase.name = spec.name;
    phase.offered_rate = spec.offered_rate;
    phase.measured = spec.measured;
    phase.planned = planned[p];

    double first = -1.0;
    double last = 0.0;
    for (const auto& worker : tallies) {
      const PhaseTally& t = worker[p];
      phase.sent += t.sent;
      phase.ok += t.ok;
      phase.errors += t.errors;
      phase.degraded += t.degraded;
      phase.gets += t.gets;
      phase.publishes += t.publishes;
      phase.src_local += t.src_local;
      phase.src_cloud += t.src_cloud;
      phase.src_origin += t.src_origin;
      if (t.first_start >= 0.0 && (first < 0.0 || t.first_start < first)) {
        first = t.first_start;
      }
      if (t.last_end > last) last = t.last_end;
      for (const SlowSample& sample : t.slowest) {
        note_slow(phase.slowest, config_.slowest_k, sample);
      }
    }

    phase.duration_sec = open_loop ? spec.end - spec.start
                                   : (first >= 0.0 ? last - first : 0.0);
    if (phase.duration_sec > 0.0) {
      phase.throughput = static_cast<double>(phase.ok) / phase.duration_sec;
    }

    const obs::LatencyHistogram& hist = *latency[p];
    phase.latency_count = hist.count();
    if (phase.latency_count > 0) {
      const std::vector<double> qs = hist.quantiles({0.5, 0.9, 0.99, 0.999});
      phase.p50 = qs[0];
      phase.p90 = qs[1];
      phase.p99 = qs[2];
      phase.p999 = qs[3];
      phase.mean = hist.sum() / static_cast<double>(phase.latency_count);
      if (config_.trace_sample > 0.0) {
        phase.p99_trace = exemplar_at_or_above(hist, phase.p99);
        phase.p999_trace = exemplar_at_or_above(hist, phase.p999);
      }
    }
    result.phases.push_back(std::move(phase));
  }

  for (const PhaseResult& phase : result.phases) {
    if (!phase.measured) continue;
    result.total_planned += phase.planned;
    result.total_sent += phase.sent;
    result.total_ok += phase.ok;
    result.total_errors += phase.errors;
    result.total_degraded += phase.degraded;
  }

  // ---- server-side deltas -------------------------------------------
  Reconciliation& rec = result.reconciliation;
  for (std::size_t i = 0; i < config_.cache_ports.size(); ++i) {
    NodeStats node;
    node.role = "cache";
    node.index = i;
    node.port = config_.cache_ports[i];
    node.gets = counter_delta(before.caches[i], after.caches[i],
                              "cachecloud_gets_total");
    node.degraded = counter_delta(before.caches[i], after.caches[i],
                                  "cachecloud_degraded_serves_total");
    rec.server_gets += node.gets;
    result.nodes.push_back(std::move(node));
  }
  if (config_.origin_port != 0) {
    NodeStats node;
    node.role = "origin";
    node.port = config_.origin_port;
    node.publishes = counter_delta(
        before.origin, after.origin,
        "cachecloud_origin_updates_published_total");
    rec.server_publishes = node.publishes;
    result.nodes.push_back(std::move(node));
  }

  // ---- client-vs-server reconciliation ------------------------------
  rec.client_get_ok = 0;
  rec.client_get_errors = 0;
  rec.client_publish_ok = 0;
  rec.client_publish_errors = 0;
  for (const PhaseResult& phase : result.phases) {
    // The tallies don't split ok/errors by op kind, but every ok get got a
    // source classification — recover the split from that.
    const std::uint64_t get_ok =
        phase.src_local + phase.src_cloud + phase.src_origin;
    const std::uint64_t publish_ok = phase.ok - get_ok;
    rec.client_get_ok += get_ok;
    rec.client_get_errors += phase.gets - get_ok;
    rec.client_publish_ok += publish_ok;
    rec.client_publish_errors += phase.publishes - publish_ok;
  }
  rec.unexplained_gets =
      static_cast<std::int64_t>(rec.server_gets) -
      static_cast<std::int64_t>(rec.client_get_ok + rec.client_get_errors);
  rec.unexplained_publishes =
      static_cast<std::int64_t>(rec.server_publishes) -
      static_cast<std::int64_t>(rec.client_publish_ok +
                                rec.client_publish_errors);
  const auto covered = [](std::int64_t unexplained, std::uint64_t errors) {
    const std::uint64_t magnitude = static_cast<std::uint64_t>(
        unexplained < 0 ? -unexplained : unexplained);
    return magnitude <= errors;
  };
  rec.consistent =
      covered(rec.unexplained_gets, rec.client_get_errors) &&
      covered(rec.unexplained_publishes, rec.client_publish_errors);

  // ---- ramp saturation ----------------------------------------------
  if (plan.schedule.mode == Mode::Ramp) {
    RampSummary& ramp = result.ramp;
    ramp.ran = true;
    for (const PhaseResult& phase : result.phases) {
      if (!phase.measured) continue;
      const bool step_ok =
          phase.throughput >= config_.saturation_ratio * phase.offered_rate;
      if (step_ok) {
        if (phase.offered_rate >= ramp.knee_rate) {
          ramp.knee_rate = phase.offered_rate;
          ramp.knee_phase = phase.name;
        }
      } else if (!ramp.saturated) {
        ramp.saturated = true;
        ramp.first_saturated_phase = phase.name;
      }
    }
  }

  return result;
}

}  // namespace cachecloud::loadgen
