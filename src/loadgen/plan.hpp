// Deterministic load plans for the live-cluster load generator.
//
// A Plan is the full, pre-materialized schedule of a benchmark run: every
// operation with its intended start time, kind (get / publish), document
// and target cache, plus the phase layout (warmup / measure / ramp steps /
// flash windows). Building the plan up front from (workload, schedule,
// seed) — instead of drawing randomness inside the send loop — is what
// makes runs reproducible: the same seed yields a byte-identical plan
// regardless of thread count, machine speed or how the cluster behaves.
//
// Intended start times are the basis of coordinated-omission-safe latency
// measurement: the runner records each op's latency from the time the plan
// *wanted* it sent, not from when a backed-up worker actually sent it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cachecloud::loadgen {

enum class Workload : std::uint8_t { Zipf, Trace, Flash };
enum class Mode : std::uint8_t { Open, Closed, Ramp };
enum class Arrival : std::uint8_t { Poisson, Fixed };

[[nodiscard]] const char* workload_name(Workload w) noexcept;
[[nodiscard]] const char* mode_name(Mode m) noexcept;
[[nodiscard]] const char* arrival_name(Arrival a) noexcept;
// Parse the --workload / --mode / --arrival flag spellings; throws
// std::invalid_argument on unknown values.
[[nodiscard]] Workload parse_workload(const std::string& s);
[[nodiscard]] Mode parse_mode(const std::string& s);
[[nodiscard]] Arrival parse_arrival(const std::string& s);

struct WorkloadConfig {
  Workload workload = Workload::Zipf;
  // ---- synthetic catalogs (zipf, flash) ---------------------------
  std::size_t num_docs = 1000;
  double zipf_alpha = 0.9;
  std::uint64_t doc_bytes = 2048;  // registered body size per document
  std::string url_prefix = "/bench/doc";
  // Fraction of operations that are origin publishes (version bumps)
  // instead of edge gets.
  double update_fraction = 0.05;
  // Number of edge caches gets are spread over (uniformly).
  std::uint32_t num_caches = 4;
  // ---- trace replay (workload=trace) ------------------------------
  // Path to a src/trace text file; its request/update events are replayed
  // at their recorded times (events beyond the schedule window are
  // dropped). rate / arrival / update_fraction are ignored.
  std::string trace_file;
  // ---- flash crowd (workload=flash) -------------------------------
  // A burst window inside the measure period: offered rate is multiplied
  // by flash_multiplier and flash_hot_fraction of gets concentrate on the
  // first flash_hot_docs documents.
  double flash_start_frac = 0.3;     // burst start, fraction of measure
  double flash_duration_frac = 0.3;  // burst length, fraction of measure
  double flash_multiplier = 5.0;
  std::size_t flash_hot_docs = 8;
  double flash_hot_fraction = 0.9;
};

struct ScheduleConfig {
  Mode mode = Mode::Open;
  Arrival arrival = Arrival::Poisson;
  double rate = 500.0;  // offered ops/sec (open and closed modes)
  double warmup_sec = 2.0;
  double duration_sec = 10.0;  // measure length (per step in ramp mode)
  // ---- ramp mode ---------------------------------------------------
  double ramp_start = 100.0;  // first step's offered rate
  double ramp_step = 100.0;   // added per step
  int ramp_steps = 5;
};

struct PlannedOp {
  enum class Kind : std::uint8_t { Get, Publish };
  double at = 0.0;  // intended start, seconds from run start
  Kind kind = Kind::Get;
  std::uint32_t doc = 0;    // index into Plan::urls
  std::uint32_t cache = 0;  // target cache index (Get only)
  std::uint16_t phase = 0;  // index into Plan::phases

  friend bool operator==(const PlannedOp&, const PlannedOp&) = default;
};

struct PhaseSpec {
  std::string name;  // "warmup", "measure", "step1", "flash", ...
  double start = 0.0;
  double end = 0.0;           // exclusive
  double offered_rate = 0.0;  // ops/sec this phase asks for
  // false for warmup: excluded from totals, reports and regression gates.
  bool measured = true;

  friend bool operator==(const PhaseSpec&, const PhaseSpec&) = default;
};

struct Plan {
  WorkloadConfig workload;
  ScheduleConfig schedule;
  std::uint64_t seed = 0;
  std::vector<PhaseSpec> phases;
  std::vector<PlannedOp> ops;      // sorted by `at`, ties in draw order
  std::vector<std::string> urls;   // catalog: doc index -> url
  std::vector<std::uint64_t> doc_bytes;  // catalog body sizes, same index

  [[nodiscard]] double total_seconds() const noexcept {
    return phases.empty() ? 0.0 : phases.back().end;
  }
};

// Builds the complete deterministic plan. Independent random streams
// (arrivals / op kind / document / cache) are derived from `seed`, so e.g.
// changing the cache count does not perturb which documents get drawn.
// Throws std::invalid_argument on inconsistent configs (non-positive
// rates, trace workload without a readable trace file, trace with ramp).
[[nodiscard]] Plan build_plan(const WorkloadConfig& workload,
                              const ScheduleConfig& schedule,
                              std::uint64_t seed);

}  // namespace cachecloud::loadgen
