// Machine-readable benchmark reports: BENCH_live_<workload>.json.
//
// Schema "cachecloud.bench_live.v1" — consumed by tools/bench_diff (the CI
// perf gate) and by anyone comparing runs across commits. Everything a
// regression check needs is in the file: the exact workload/schedule
// config and seed (so a run is re-creatable), per-phase client-side
// results, server-side counter deltas, and the reconciliation between the
// two. See docs/BENCHMARKING.md for the field-by-field description.
#pragma once

#include <cstdint>
#include <string>

#include "loadgen/plan.hpp"
#include "loadgen/runner.hpp"

namespace cachecloud::loadgen {

inline constexpr const char* kReportSchema = "cachecloud.bench_live.v1";

// Renders the full report as a JSON document (pretty-printed, stable key
// order — diffs between runs stay readable).
[[nodiscard]] std::string render_report(const Plan& plan,
                                        const RunResult& result);

// "BENCH_live_<workload>.json"
[[nodiscard]] std::string default_report_name(const Plan& plan);

// Renders and writes; throws std::runtime_error if the file cannot be
// written.
void write_report(const std::string& path, const Plan& plan,
                  const RunResult& result);

}  // namespace cachecloud::loadgen
