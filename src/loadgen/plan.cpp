#include "loadgen/plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "trace/trace.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace cachecloud::loadgen {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("loadgen: " + what);
}

// Independent random streams per concern, derived from the one user seed.
// Keeping arrivals, op kinds, document draws and cache draws on separate
// streams means changing one knob (say, --caches) cannot perturb the
// others' sequences.
constexpr std::uint64_t kArrivalStream = 0x61727269766c5f31ULL;
constexpr std::uint64_t kKindStream = 0x6b696e645f5f5f32ULL;
constexpr std::uint64_t kDocStream = 0x646f635f5f5f5f33ULL;
constexpr std::uint64_t kCacheStream = 0x63616368655f5f34ULL;

[[nodiscard]] util::Rng derive(std::uint64_t seed, std::uint64_t stream) {
  return util::Rng(util::mix64(seed ^ stream));
}

void validate(const WorkloadConfig& w, const ScheduleConfig& s) {
  if (s.warmup_sec < 0.0) bad("warmup_sec must be >= 0");
  if (s.duration_sec <= 0.0) bad("duration_sec must be > 0");
  if (w.workload == Workload::Trace) {
    if (w.trace_file.empty()) bad("trace workload needs --trace-file");
    if (s.mode != Mode::Open) {
      bad("trace workload replays recorded times; only open mode applies");
    }
    return;
  }
  if (w.num_docs == 0) bad("num_docs must be > 0");
  if (w.num_caches == 0) bad("num_caches must be > 0");
  if (w.update_fraction < 0.0 || w.update_fraction > 1.0) {
    bad("update_fraction must be in [0, 1]");
  }
  if (s.mode == Mode::Ramp) {
    if (s.ramp_steps < 1) bad("ramp_steps must be >= 1");
    if (s.ramp_start <= 0.0) bad("ramp_start must be > 0");
    const double last =
        s.ramp_start + static_cast<double>(s.ramp_steps - 1) * s.ramp_step;
    if (last <= 0.0) bad("ramp steps must keep the offered rate > 0");
  } else {
    if (s.rate <= 0.0) bad("rate must be > 0");
  }
  if (w.workload == Workload::Flash) {
    if (s.mode != Mode::Open) bad("flash workload requires open mode");
    if (w.flash_start_frac < 0.0 || w.flash_duration_frac <= 0.0 ||
        w.flash_start_frac + w.flash_duration_frac > 1.0) {
      bad("flash window must fit inside the measure period");
    }
    if (w.flash_multiplier <= 0.0) bad("flash_multiplier must be > 0");
    if (w.flash_hot_docs == 0 || w.flash_hot_docs > w.num_docs) {
      bad("flash_hot_docs must be in [1, num_docs]");
    }
    if (w.flash_hot_fraction < 0.0 || w.flash_hot_fraction > 1.0) {
      bad("flash_hot_fraction must be in [0, 1]");
    }
  }
}

// Lays out the phase boundaries for synthetic workloads. Warmup (when
// present) is phase 0 and unmeasured.
std::vector<PhaseSpec> layout_phases(const WorkloadConfig& w,
                                     const ScheduleConfig& s) {
  std::vector<PhaseSpec> phases;
  double t = 0.0;
  const double base_rate = s.mode == Mode::Ramp ? s.ramp_start : s.rate;
  if (s.warmup_sec > 0.0) {
    phases.push_back({"warmup", t, t + s.warmup_sec, base_rate, false});
    t += s.warmup_sec;
  }
  if (s.mode == Mode::Ramp) {
    for (int i = 0; i < s.ramp_steps; ++i) {
      const double rate = s.ramp_start + static_cast<double>(i) * s.ramp_step;
      phases.push_back({"step" + std::to_string(i + 1), t, t + s.duration_sec,
                        rate, true});
      t += s.duration_sec;
    }
    return phases;
  }
  if (w.workload == Workload::Flash) {
    const double pre = s.duration_sec * w.flash_start_frac;
    const double burst = s.duration_sec * w.flash_duration_frac;
    const double post = s.duration_sec - pre - burst;
    if (pre > 0.0) phases.push_back({"pre_flash", t, t + pre, s.rate, true});
    t += pre;
    phases.push_back(
        {"flash", t, t + burst, s.rate * w.flash_multiplier, true});
    t += burst;
    if (post > 1e-9) {
      phases.push_back({"post_flash", t, t + post, s.rate, true});
    }
    return phases;
  }
  phases.push_back({"measure", t, t + s.duration_sec, s.rate, true});
  return phases;
}

Plan build_synthetic(const WorkloadConfig& w, const ScheduleConfig& s,
                     std::uint64_t seed) {
  Plan plan;
  plan.workload = w;
  plan.schedule = s;
  plan.seed = seed;
  plan.phases = layout_phases(w, s);

  plan.urls.reserve(w.num_docs);
  plan.doc_bytes.assign(w.num_docs, w.doc_bytes);
  for (std::size_t i = 0; i < w.num_docs; ++i) {
    plan.urls.push_back(w.url_prefix + std::to_string(i));
  }

  util::Rng arrival_rng = derive(seed, kArrivalStream);
  util::Rng kind_rng = derive(seed, kKindStream);
  util::Rng doc_rng = derive(seed, kDocStream);
  util::Rng cache_rng = derive(seed, kCacheStream);
  const util::ZipfSampler popularity(w.num_docs, w.zipf_alpha);

  for (std::uint16_t phase_idx = 0;
       phase_idx < static_cast<std::uint16_t>(plan.phases.size());
       ++phase_idx) {
    const PhaseSpec& phase = plan.phases[phase_idx];
    const bool in_flash = phase.name == "flash";
    auto emit = [&](double at) {
      PlannedOp op;
      op.at = at;
      op.phase = phase_idx;
      const bool publish = kind_rng.next_bool(w.update_fraction);
      op.kind = publish ? PlannedOp::Kind::Publish : PlannedOp::Kind::Get;
      if (in_flash && doc_rng.next_bool(w.flash_hot_fraction)) {
        op.doc = static_cast<std::uint32_t>(
            doc_rng.next_below(w.flash_hot_docs));
      } else {
        op.doc = static_cast<std::uint32_t>(popularity.sample(doc_rng));
      }
      op.cache = static_cast<std::uint32_t>(cache_rng.next_below(
          static_cast<std::uint64_t>(w.num_caches)));
      plan.ops.push_back(op);
    };
    if (s.arrival == Arrival::Fixed) {
      // First op lands exactly on the phase boundary; spacing is 1/rate,
      // so phase k contributes floor(len * rate) + 1-ish ops and the ramp
      // step edges are exact.
      const double gap = 1.0 / phase.offered_rate;
      for (std::uint64_t k = 0;; ++k) {
        const double at = phase.start + static_cast<double>(k) * gap;
        if (at >= phase.end) break;
        emit(at);
      }
    } else {
      double t = phase.start;
      while (true) {
        t += arrival_rng.next_exponential(phase.offered_rate);
        if (t >= phase.end) break;
        emit(t);
      }
    }
  }
  return plan;
}

Plan build_trace_replay(const WorkloadConfig& w, const ScheduleConfig& s,
                        std::uint64_t seed) {
  const trace::Trace tr = trace::read_trace_file(w.trace_file);
  tr.validate();

  Plan plan;
  plan.workload = w;
  plan.schedule = s;
  plan.seed = seed;

  plan.urls.reserve(tr.num_docs());
  plan.doc_bytes.reserve(tr.num_docs());
  for (const auto& doc : tr.catalog()) {
    plan.urls.push_back(doc.url);
    plan.doc_bytes.push_back(doc.size_bytes);
  }

  const std::uint32_t caches =
      w.num_caches == 0 ? 1 : w.num_caches;  // map trace cache ids onto ours
  const double window = s.warmup_sec + s.duration_sec;

  std::uint64_t warmup_ops = 0;
  std::uint64_t measure_ops = 0;
  const bool has_warmup = s.warmup_sec > 0.0;
  for (const auto& event : tr.events()) {
    if (event.time >= window) break;
    PlannedOp op;
    op.at = event.time;
    op.kind = event.type == trace::EventType::Update
                  ? PlannedOp::Kind::Publish
                  : PlannedOp::Kind::Get;
    op.doc = event.doc;
    op.cache = event.cache % caches;
    const bool in_warmup = has_warmup && event.time < s.warmup_sec;
    op.phase = static_cast<std::uint16_t>(in_warmup ? 0 : (has_warmup ? 1 : 0));
    (in_warmup ? warmup_ops : measure_ops) += 1;
    plan.ops.push_back(op);
  }

  if (has_warmup) {
    plan.phases.push_back({"warmup", 0.0, s.warmup_sec,
                           static_cast<double>(warmup_ops) / s.warmup_sec,
                           false});
  }
  plan.phases.push_back({"measure", s.warmup_sec, window,
                         static_cast<double>(measure_ops) / s.duration_sec,
                         true});
  return plan;
}

}  // namespace

const char* workload_name(Workload w) noexcept {
  switch (w) {
    case Workload::Zipf:
      return "zipf";
    case Workload::Trace:
      return "trace";
    case Workload::Flash:
      return "flash";
  }
  return "unknown";
}

const char* mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::Open:
      return "open";
    case Mode::Closed:
      return "closed";
    case Mode::Ramp:
      return "ramp";
  }
  return "unknown";
}

const char* arrival_name(Arrival a) noexcept {
  switch (a) {
    case Arrival::Poisson:
      return "poisson";
    case Arrival::Fixed:
      return "fixed";
  }
  return "unknown";
}

Workload parse_workload(const std::string& s) {
  if (s == "zipf") return Workload::Zipf;
  if (s == "trace") return Workload::Trace;
  if (s == "flash") return Workload::Flash;
  bad("unknown workload '" + s + "' (zipf | trace | flash)");
}

Mode parse_mode(const std::string& s) {
  if (s == "open") return Mode::Open;
  if (s == "closed") return Mode::Closed;
  if (s == "ramp") return Mode::Ramp;
  bad("unknown mode '" + s + "' (open | closed | ramp)");
}

Arrival parse_arrival(const std::string& s) {
  if (s == "poisson") return Arrival::Poisson;
  if (s == "fixed") return Arrival::Fixed;
  bad("unknown arrival '" + s + "' (poisson | fixed)");
}

Plan build_plan(const WorkloadConfig& workload, const ScheduleConfig& schedule,
                std::uint64_t seed) {
  validate(workload, schedule);
  Plan plan = workload.workload == Workload::Trace
                  ? build_trace_replay(workload, schedule, seed)
                  : build_synthetic(workload, schedule, seed);
  // Synthetic phases emit in time order already; trace events are sorted by
  // contract. The stable sort is a cheap invariant either way.
  std::stable_sort(plan.ops.begin(), plan.ops.end(),
                   [](const PlannedOp& a, const PlannedOp& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace cachecloud::loadgen
