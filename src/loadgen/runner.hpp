// Executes a load Plan against a live cluster over real sockets.
//
// A pool of client threads replays the plan's operations: gets go to the
// target cache node's ClientGetReq endpoint, publishes to the origin's
// ClientPublishReq endpoint. In open-loop and ramp modes each op is
// launched at its *intended* time and latency is measured from that
// intended time — a backed-up server therefore shows its queueing delay in
// the percentiles instead of silently suppressing load (coordinated
// omission). Closed-loop mode issues ops back-to-back per thread and
// measures from the actual send.
//
// Around the run the runner scrapes every node's metrics registry
// (StatsReq) and reconciles the server-side deltas with the client-side
// tallies, so a report either adds up or says exactly by how much it
// doesn't.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/plan.hpp"
#include "obs/profile.hpp"

namespace cachecloud::loadgen {

struct RunnerConfig {
  std::vector<std::uint16_t> cache_ports;  // indexed by PlannedOp::cache
  std::uint16_t origin_port = 0;
  int threads = 4;
  double call_timeout_sec = 5.0;
  // Saturation criterion for ramp mode: a step saturates when achieved
  // throughput falls below this fraction of the offered rate.
  double saturation_ratio = 0.95;
  // Distributed tracing: with trace_sample > 0 every op's request frame is
  // stamped with a client-minted trace context (head-sampled at this
  // probability), so the nodes' span stores hold trees the client can look
  // up by id. 0 (the default) leaves frames unstamped — tracing is free.
  double trace_sample = 0.0;
  // How many of the slowest sampled ops to remember per phase.
  std::size_t slowest_k = 5;
};

// One slow-request exemplar: the trace id the client stamped on the op,
// so the matching tree can be pulled from a TraceDump scrape.
struct SlowSample {
  std::uint64_t trace_id = 0;
  double latency_sec = 0.0;
  std::uint32_t doc = 0;
  std::uint32_t cache = 0;      // target cache (gets); unused for publishes
  bool publish = false;
};

struct PhaseResult {
  std::string name;
  double offered_rate = 0.0;
  double duration_sec = 0.0;  // spec duration (open/ramp) or actual (closed)
  bool measured = true;
  std::uint64_t planned = 0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t degraded = 0;
  std::uint64_t gets = 0;
  std::uint64_t publishes = 0;
  // Get-source breakdown from ClientGetResp (ok gets only).
  std::uint64_t src_local = 0;
  std::uint64_t src_cloud = 0;
  std::uint64_t src_origin = 0;
  double throughput = 0.0;  // ok / duration_sec
  // Latency percentiles in seconds, coordinated-omission safe in open
  // modes (measured from intended start).
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double mean = 0.0;
  std::uint64_t latency_count = 0;
  // Tracing extras, populated only when RunnerConfig::trace_sample > 0:
  // the slowest sampled ops (descending latency) and the latency
  // histogram's exemplar trace ids at/above the p99 and p99.9 estimates.
  std::vector<SlowSample> slowest;
  std::uint64_t p99_trace = 0;
  std::uint64_t p999_trace = 0;
};

struct NodeStats {
  std::string role;  // "cache" | "origin"
  std::size_t index = 0;
  std::uint16_t port = 0;
  // Deltas across the run.
  std::uint64_t gets = 0;
  std::uint64_t degraded = 0;
  std::uint64_t publishes = 0;  // origin only
};

struct Reconciliation {
  std::uint64_t client_get_ok = 0;
  std::uint64_t client_get_errors = 0;
  std::uint64_t client_publish_ok = 0;
  std::uint64_t client_publish_errors = 0;
  std::uint64_t server_gets = 0;       // delta over the run, all caches
  std::uint64_t server_publishes = 0;  // delta over the run, origin
  // server_gets - client_get_ok - client_get_errors: requests the server
  // counted that no client accounted for (or vice versa, negative).
  std::int64_t unexplained_gets = 0;
  std::int64_t unexplained_publishes = 0;
  // True when every discrepancy is covered by client-visible errors (an op
  // that died mid-call may or may not have reached the server, so each
  // error pardons one count of drift). With zero errors this means exact
  // agreement.
  bool consistent = false;
};

// Kill–restart lifecycle outcome, filled by the driver when it ran a
// --kill-node phase (the runner itself only drives traffic). `ran=false`
// leaves the report without a lifecycle section.
struct LifecycleSummary {
  bool ran = false;
  std::uint32_t node = 0;
  double kill_at_sec = 0.0;
  double restart_at_sec = 0.0;
  // Documents replayed from the disk manifest at restart (0 on a cold
  // restart) and how many of those were re-announced at beacon points.
  std::uint64_t recovered_docs = 0;
  std::uint64_t announced = 0;
  // The restarted node's counters are all post-restart (its registry was
  // reborn with it), so these measure warm-restart quality directly.
  std::uint64_t post_gets = 0;
  std::uint64_t post_local = 0;  // memory hits
  std::uint64_t post_disk = 0;   // disk-tier hits
  double post_local_hit_rate = 0.0;  // (local + disk) / gets
};

// Per-interval cluster series, filled by the driver's --timeline-out
// sampling thread (StatsReq sweeps folded through client-side
// obs::Timeline objects, restart-safe via counter-reset rates).
// ran=false (the default) keeps the report byte-identical to an
// untimed run. Tick 0 has no predecessor, so the steady-state stats
// cover ticks 1..n-1.
struct TimelineSummary {
  bool ran = false;
  double interval_sec = 0.0;
  std::size_t nodes = 0;    // ports sampled per tick
  std::vector<double> t_sec;  // tick times, seconds since sampling start
  std::vector<double> qps;    // cluster get rate per interval (all classes)
  std::vector<double> p99;    // worst per-node get p99 per interval, sec
  double median_qps = 0.0;
  double peak_qps = 0.0;
  double median_p99 = 0.0;
};

// Pipelining evidence from the shared multiplexed clients: every worker
// thread funnels through one MuxClient per endpoint, so outstanding > 1
// means requests genuinely overlapped on a single connection.
struct TransportSummary {
  std::uint64_t endpoints = 0;         // shared connections (caches + origin)
  std::uint64_t reconnects = 0;        // clients re-dialed after an error
  std::uint64_t peak_outstanding = 0;  // max in-flight on one connection
};

struct RampSummary {
  bool ran = false;
  bool saturated = false;
  // Highest offered rate whose achieved throughput stayed within the
  // saturation ratio; 0 when even the first step saturated.
  double knee_rate = 0.0;
  std::string knee_phase;
  std::string first_saturated_phase;
};

struct RunResult {
  std::vector<PhaseResult> phases;
  // Totals over measured phases only.
  std::uint64_t total_planned = 0;
  std::uint64_t total_sent = 0;
  std::uint64_t total_ok = 0;
  std::uint64_t total_errors = 0;
  std::uint64_t total_degraded = 0;
  double wall_seconds = 0.0;
  std::vector<NodeStats> nodes;
  Reconciliation reconciliation;
  TransportSummary transport;
  RampSummary ramp;
  // Kill–restart outcome, filled by the driver's lifecycle thread;
  // ran=false (the default) keeps the report byte-identical to a run
  // without one.
  LifecycleSummary lifecycle;
  // Contention profile, filled by the driver's --profile post-run scrape
  // (ProfileDumpReq against every node); enabled=false leaves the report
  // without a contention section.
  obs::ContentionSummary contention;
  // Per-interval cluster series, filled by the driver's --timeline-out
  // sampling thread; ran=false leaves the report without one.
  TimelineSummary timeline;
};

class Runner {
 public:
  explicit Runner(RunnerConfig config);

  // Blocks for the full run (plan.total_seconds() plus drain time in open
  // modes). Throws std::invalid_argument when the plan references cache
  // indices outside cache_ports or publishes without an origin port;
  // throws net::NetError only if the pre/post metrics scrape cannot reach
  // a node (per-op network failures are counted, not thrown).
  [[nodiscard]] RunResult run(const Plan& plan);

 private:
  RunnerConfig config_;
};

}  // namespace cachecloud::loadgen
