#include "node/trace_scrape.hpp"

#include <utility>

#include "node/protocol.hpp"
#include "node/scrape.hpp"

namespace cachecloud::node {

ScrapeResult scrape_traces(const std::vector<std::uint16_t>& ports,
                           bool drain, double timeout_sec) {
  ScrapeResult result;
  TraceDumpReq req;
  req.drain = drain;
  // Concurrent fan-out with a per-node timeout: one dead node costs its
  // own timeout and an error line, never the other nodes' spans.
  const std::vector<PortReply> replies =
      scrape_ports(ports, req.encode(), timeout_sec);
  for (const PortReply& reply : replies) {
    if (reply.unreachable) {
      result.errors.push_back("port " + std::to_string(reply.port) + ": " +
                              reply.error);
      continue;
    }
    try {
      TraceDumpResp resp = TraceDumpResp::decode(reply.reply);
      ++result.nodes_scraped;
      for (obs::SpanRecord& span : resp.spans) {
        result.spans.push_back(std::move(span));
      }
    } catch (const std::exception& e) {
      result.errors.push_back("port " + std::to_string(reply.port) + ": " +
                              e.what());
    }
  }
  return result;
}

}  // namespace cachecloud::node
