#include "node/trace_scrape.hpp"

#include <utility>

#include "net/tcp.hpp"
#include "node/protocol.hpp"

namespace cachecloud::node {

ScrapeResult scrape_traces(const std::vector<std::uint16_t>& ports,
                           bool drain, double timeout_sec) {
  ScrapeResult result;
  TraceDumpReq req;
  req.drain = drain;
  const net::Frame request = req.encode();
  for (const std::uint16_t port : ports) {
    try {
      net::TcpClient client(port, timeout_sec);
      TraceDumpResp resp = TraceDumpResp::decode(client.call(request));
      ++result.nodes_scraped;
      for (obs::SpanRecord& span : resp.spans) {
        result.spans.push_back(std::move(span));
      }
    } catch (const std::exception& e) {
      result.errors.push_back("port " + std::to_string(port) + ": " +
                              e.what());
    }
  }
  return result;
}

}  // namespace cachecloud::node
