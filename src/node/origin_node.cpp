#include "node/origin_node.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/build_info.hpp"
#include "obs/span.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace cachecloud::node {

OriginNode::OriginNode(const NodeConfig& config)
    : config_(config),
      rings_(config.num_caches, config.ring_size, config.irh_gen) {
  if (config_.trace.collect) {
    span_store_ = std::make_unique<obs::SpanStore>(config_.trace.store);
  }
  inst_.fetches_served = &registry_.counter(
      "cachecloud_origin_fetches_total",
      "Authoritative document fetches served by the origin",
      {{"result", "hit"}});
  inst_.fetch_misses = &registry_.counter(
      "cachecloud_origin_fetches_total",
      "Authoritative document fetches served by the origin",
      {{"result", "miss"}});
  inst_.updates_published = &registry_.counter(
      "cachecloud_origin_updates_published_total",
      "Document version bumps published by the origin");
  inst_.update_pushes_sent = &registry_.counter(
      "cachecloud_origin_update_pushes_total",
      "UpdatePush messages sent to beacon points (one per cloud)");
  inst_.rebalance_cycles = &registry_.counter(
      "cachecloud_origin_rebalance_cycles_total",
      "Sub-range determination cycles run by the coordinator");
  inst_.handoffs_ordered = &registry_.counter(
      "cachecloud_origin_handoffs_total",
      "HandoffCmd messages issued during re-balancing");
  const auto failover_counter = [this](const char* trigger) {
    return &registry_.counter(
        "cachecloud_origin_failovers_total",
        "Node failovers run by the coordinator, by trigger",
        {{"trigger", trigger}});
  };
  inst_.failovers_operator = failover_counter("operator");
  inst_.failovers_suspicion = failover_counter("suspicion");
  inst_.suspects_received = &registry_.counter(
      "cachecloud_origin_suspects_received_total",
      "SuspectNode reports received from caches");
  inst_.announce_failures = &registry_.counter(
      "cachecloud_origin_announce_failures_total",
      "RangeAnnounce deliveries that failed and were queued for catch-up");
  inst_.peer_call_failures = &registry_.counter(
      "cachecloud_origin_peer_call_failures_total",
      "Failed calls from the origin to cache nodes (one per attempt)");
  inst_.documents = &registry_.gauge(
      "cachecloud_origin_documents",
      "Documents registered at the origin");
  obs::register_build_info(registry_);
  // Contention profiler: bound before the server threads start.
  state_mutex_.bind(registry_, "state_mutex_");
  failover_mutex_.bind(registry_, "failover_mutex_");
  peers_mutex_.bind(registry_, "peers_mutex_");
  if (config_.timeline.enabled) {
    timeline_ = std::make_unique<obs::Timeline>(config_.timeline);
    flight_ = std::make_unique<obs::FlightRecorder>(
        "origin", timeline_.get(), span_store_.get(), config_.flight,
        [this] { return now(); });
    sampler_ = std::make_unique<obs::TimelineSampler>(
        *timeline_, config_.timeline.interval_sec,
        [this] { return metrics_snapshot(); }, [this] { return now(); });
  }
  server_ = std::make_unique<net::EventServer>(
      0, [this](const net::Frame& f) { return handle(f); },
      &wire_metrics_, config_.fault_injector, &registry_);
}

OriginNode::~OriginNode() { stop(); }

double OriginNode::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void OriginNode::stop() {
  if (sampler_) sampler_->stop();
  if (server_) server_->stop();
}

void OriginNode::set_endpoints(const Endpoints& endpoints) {
  const obs::TimedLock lock(peers_mutex_);
  if (endpoints.cache_ports.size() != config_.num_caches) {
    throw std::invalid_argument("OriginNode: endpoint table size mismatch");
  }
  endpoints_ = endpoints;
  endpoints_set_ = true;
  peers_.clear();
}

net::Frame OriginNode::call_cache(NodeId node, const net::Frame& request) {
  std::shared_ptr<net::MuxClient> client;
  try {
    {
      const obs::TimedLock lock(peers_mutex_);
      if (!endpoints_set_) {
        throw net::NetError("OriginNode: endpoints not configured");
      }
      auto& slot = peers_[node];
      if (!slot) {
        slot = std::make_shared<net::MuxClient>(
            endpoints_.cache_ports.at(node), 5.0, &wire_metrics_,
            config_.fault_injector, &registry_);
      }
      client = slot;
    }
    return client->call(request);
  } catch (const net::NetError&) {
    inst_.peer_call_failures->inc();
    // Drop the pooled connection (only if still ours) so the next call
    // reconnects; in-flight users hold their own reference.
    const obs::TimedLock lock(peers_mutex_);
    const auto it = peers_.find(node);
    if (it != peers_.end() && it->second == client) peers_.erase(it);
    throw;
  }
}

std::vector<std::uint8_t> OriginNode::make_body(const std::string& url,
                                                std::uint64_t version,
                                                std::size_t size) {
  std::vector<std::uint8_t> body(size);
  std::uint64_t state =
      util::hash_combine(util::fnv1a64(url), version);
  for (std::size_t i = 0; i < size; ++i) {
    state = util::mix64(state);
    body[i] = static_cast<std::uint8_t>(state);
  }
  return body;
}

void OriginNode::add_document(const std::string& url, std::size_t size) {
  const obs::TimedLock lock(state_mutex_);
  Document doc;
  doc.version = 1;
  doc.size = size;
  documents_[url] = doc;
  inst_.documents->set(static_cast<double>(documents_.size()));
}

std::uint64_t OriginNode::version_of(const std::string& url) const {
  const obs::TimedLock lock(state_mutex_);
  const auto it = documents_.find(url);
  if (it == documents_.end()) {
    throw std::invalid_argument("OriginNode: unknown document " + url);
  }
  return it->second.version;
}

std::uint64_t OriginNode::publish_update(const std::string& url) {
  const std::uint64_t trace_id = obs::next_trace_id();
  const bool sampled =
      obs::sample_trace(trace_id, config_.trace.sample_probability);
  return publish_update(url, obs::SpanContext{trace_id, 0, sampled});
}

std::uint64_t OriginNode::publish_update(const std::string& url,
                                         const obs::SpanContext& ctx) {
  std::uint64_t version;
  std::size_t size;
  {
    const obs::TimedLock lock(state_mutex_);
    const auto it = documents_.find(url);
    if (it == documents_.end()) {
      throw std::invalid_argument("OriginNode: unknown document " + url);
    }
    version = ++it->second.version;
    size = it->second.size;
  }

  inst_.updates_published->inc();

  // One update message per cloud: resolve the beacon point and push.
  obs::Span span(ctx, "publish_update", span_store_.get(), "origin");
  span.tag("node", "origin").tag("url", url).tag("version", version);
  const RingView::Target target = rings_.resolve(url);
  UpdatePush push;
  push.url = url;
  push.version = version;
  push.body = make_body(url, version, size);
  inst_.update_pushes_sent->inc();
  try {
    const Ack ack = Ack::decode(call_cache(
        target.beacon, with_trace(push.encode(), span.child_context())));
    if (!ack.ok) {
      span.mark_error();
      CC_LOG(Warn) << "origin: update push of " << url << " rejected: "
                   << ack.error;
    }
  } catch (...) {
    span.mark_error();
    throw;
  }
  span.tag("beacon", target.beacon);
  return version;
}

OriginNode::RebalanceSummary OriginNode::run_rebalance_cycle() {
  // Heal any node that missed an earlier announce, then gather load
  // reports from every surviving cache node.
  (void)retry_pending_announces();
  std::vector<LoadReport> reports;
  reports.reserve(config_.num_caches);
  for (NodeId node = 0; node < config_.num_caches; ++node) {
    if (node_failed(node)) continue;
    reports.push_back(
        LoadReport::decode(call_cache(node, LoadQuery{}.encode())));
  }

  const RangeAnnounce current = rings_.snapshot();
  RangeAnnounce next = current;
  RebalanceSummary summary;
  std::vector<HandoffCmd> handoffs;

  for (std::uint32_t ring = 0; ring < current.rings.size(); ++ring) {
    const auto& members = current.rings[ring];
    std::vector<core::PointLoad> points(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      points[i].capability = 1.0;
      points[i].range = members[i].range;
      // Find the member's report entry for this ring.
      for (const LoadReport& report : reports) {
        if (report.node != members[i].owner) continue;
        points[i].capability = report.capability;
        for (const RingLoadReport& entry : report.rings) {
          if (entry.ring == ring) {
            points[i].cycle_load = entry.cycle_load;
            points[i].per_irh = entry.per_irh;
          }
        }
      }
      // A node that reported a different (stale) range for this ring keeps
      // the coordinator's view; uniform approximation then applies.
      if (!points[i].per_irh.empty() &&
          points[i].per_irh.size() != points[i].range.length()) {
        points[i].per_irh.clear();
      }
    }

    const auto new_ranges =
        core::determine_subranges(points, config_.irh_gen);
    bool changed = false;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (new_ranges[i] != members[i].range) changed = true;
      next.rings[ring][i].range = new_ranges[i];
    }
    if (!changed) continue;
    ++summary.rings_changed;

    // Hand-off commands: for every IrH interval that changed owner, the old
    // owner ships its records to the new owner. Walk the two partitions.
    std::size_t bi = 0;
    std::size_t ai = 0;
    std::uint32_t pos = 0;
    while (pos < config_.irh_gen) {
      while (members[bi].range.hi < pos) ++bi;
      while (new_ranges[ai].hi < pos) ++ai;
      const std::uint32_t span_hi =
          std::min(members[bi].range.hi, new_ranges[ai].hi);
      if (members[bi].owner != next.rings[ring][ai].owner) {
        HandoffCmd cmd;
        cmd.ring = ring;
        cmd.values = core::SubRange{pos, span_hi};
        cmd.target = next.rings[ring][ai].owner;
        // Issue to the losing node below, after the announce.
        handoffs.push_back(cmd);
        // Remember who loses it (same index bi).
        handoffs.back().values = core::SubRange{pos, span_hi};
      }
      pos = span_hi + 1;
    }
  }

  // Commit locally, announce to every node, then order the hand-offs.
  rings_.apply(next);
  for (NodeId node = 0; node < config_.num_caches; ++node) {
    if (node_failed(node)) continue;
    const Ack ack =
        Ack::decode(call_cache(node, next.encode()));
    if (!ack.ok) {
      CC_LOG(Warn) << "origin: range announce to node " << node
                   << " rejected: " << ack.error;
    }
  }
  for (const HandoffCmd& cmd : handoffs) {
    // The loser is whoever owned cmd.values under `current`.
    NodeId loser = kOriginId;
    for (const RangeEntry& entry : current.rings[cmd.ring]) {
      if (entry.range.contains(cmd.values.lo)) {
        loser = entry.owner;
        break;
      }
    }
    if (loser == kOriginId || loser == cmd.target) continue;
    const Ack ack = Ack::decode(call_cache(loser, cmd.encode()));
    if (!ack.ok) {
      CC_LOG(Warn) << "origin: handoff cmd to node " << loser
                   << " rejected: " << ack.error;
    }
    ++summary.handoffs;
  }
  inst_.rebalance_cycles->inc();
  inst_.handoffs_ordered->inc(summary.handoffs);
  return summary;
}

void OriginNode::announce_to(NodeId node, const RangeAnnounce& announce) {
  try {
    const Ack ack = Ack::decode(call_cache(node, announce.encode()));
    if (!ack.ok) {
      CC_LOG(Warn) << "origin: range announce to node " << node
                   << " rejected: " << ack.error;
    }
    pending_announce_.erase(node);
  } catch (const std::exception& e) {
    // The node missed this assignment; remember it so a later
    // retry_pending_announces() (or the next rebalance cycle) catches it
    // up once it is reachable again.
    inst_.announce_failures->inc();
    pending_announce_.insert(node);
    CC_LOG(Warn) << "origin: failover announce to node " << node
                 << " failed: " << e.what();
  }
}

std::size_t OriginNode::retry_pending_announces() {
  const obs::TimedLock lock(failover_mutex_);
  if (pending_announce_.empty()) return 0;
  const RangeAnnounce current = rings_.snapshot();
  const std::vector<NodeId> pending(pending_announce_.begin(),
                                    pending_announce_.end());
  std::size_t caught_up = 0;
  for (const NodeId node : pending) {
    const std::size_t before = pending_announce_.size();
    announce_to(node, current);
    if (pending_announce_.size() < before) ++caught_up;
  }
  return caught_up;
}

bool OriginNode::node_failed(NodeId node) const {
  const obs::TimedLock lock(failover_mutex_);
  return failed_nodes_.contains(node);
}

OriginNode::FailoverSummary OriginNode::handle_node_failure(NodeId failed) {
  const obs::TimedLock lock(failover_mutex_);
  inst_.failovers_operator->inc();
  return handle_node_failure_locked(failed);
}

OriginNode::FailoverSummary OriginNode::handle_node_failure_locked(
    NodeId failed) {
  if (failed_nodes_.contains(failed)) {
    throw std::invalid_argument("OriginNode: node already failed over");
  }
  const RangeAnnounce current = rings_.snapshot();
  FailoverSummary summary;
  bool found = false;
  RangeAnnounce next = current;

  for (std::uint32_t ring = 0; ring < current.rings.size() && !found;
       ++ring) {
    const auto& members = current.rings[ring];
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].owner != failed) continue;
      if (members.size() == 1) {
        throw std::invalid_argument(
            "OriginNode: cannot fail over a ring's last member");
      }
      // Merge into the predecessor when one exists, else the successor —
      // both keep the partition contiguous (mirrors BeaconRing's rule).
      const std::size_t heir_index = i > 0 ? i - 1 : i + 1;
      summary.heir = members[heir_index].owner;
      summary.ring = ring;
      summary.inherited = members[i].range;

      auto& ring_next = next.rings[ring];
      if (i > 0) {
        ring_next[heir_index].range.hi = members[i].range.hi;
      } else {
        ring_next[heir_index].range.lo = members[i].range.lo;
      }
      ring_next.erase(ring_next.begin() + static_cast<std::ptrdiff_t>(i));
      found = true;
      break;
    }
  }
  if (!found) {
    throw std::invalid_argument("OriginNode: unknown node in failover");
  }

  failed_nodes_.insert(failed);
  rings_.apply(next);
  for (NodeId node = 0; node < config_.num_caches; ++node) {
    if (node == failed || failed_nodes_.contains(node)) continue;
    announce_to(node, next);
  }

  PromoteReplicas promote;
  promote.ring = summary.ring;
  promote.values = summary.inherited;
  promote.failed_node = failed;
  try {
    const Ack ack = Ack::decode(call_cache(summary.heir, promote.encode()));
    if (!ack.ok) {
      CC_LOG(Warn) << "origin: replica promotion at node " << summary.heir
                   << " rejected: " << ack.error;
    }
  } catch (const std::exception& e) {
    // The failover itself stands (ranges are reassigned); the heir just
    // serves the inherited sub-range without the promoted records, so
    // affected documents fall back to origin fetches.
    CC_LOG(Warn) << "origin: replica promotion at node " << summary.heir
                 << " failed: " << e.what();
  }
  return summary;
}

std::uint64_t OriginNode::origin_fetches() const {
  const obs::TimedLock lock(state_mutex_);
  return origin_fetches_;
}

net::Frame OriginNode::handle_suspect(const net::Frame& request) {
  const SuspectNode report = SuspectNode::decode(request);
  inst_.suspects_received->inc();
  const obs::TimedLock lock(failover_mutex_);
  if (failed_nodes_.contains(report.node)) {
    return Ack{}.encode();  // already failed over — idempotent
  }
  CC_LOG(Warn) << "origin: node " << report.node << " reported suspect by "
               << report.reporter << ", running failover";
  try {
    (void)handle_node_failure_locked(report.node);
    inst_.failovers_suspicion->inc();
  } catch (const std::invalid_argument& e) {
    // Unfailable (e.g. last ring member): tell the reporter, keep serving.
    Ack nack;
    nack.ok = false;
    nack.error = e.what();
    return nack.encode();
  }
  return Ack{}.encode();
}

net::Frame OriginNode::handle(const net::Frame& request) {
  // Handled before the hop span opens: ClientPublishReq roots (or adopts)
  // its own trace inside publish_update(), and scrape traffic must not
  // trace itself.
  switch (static_cast<MsgType>(request.type)) {
    case MsgType::StatsReq: {
      StatsResp resp;
      resp.snapshot = metrics_snapshot();
      return resp.encode();
    }
    case MsgType::TraceDumpReq: {
      const TraceDumpReq req = TraceDumpReq::decode(request);
      TraceDumpResp resp;
      resp.node = "origin";
      if (span_store_) {
        resp.spans =
            req.drain ? span_store_->drain() : span_store_->snapshot();
      }
      return resp.encode();
    }
    case MsgType::ProfileDumpReq: {
      (void)ProfileDumpReq::decode(request);
      ProfileDumpResp resp;
      resp.node = "origin";
      resp.enabled = obs::profiling_enabled();
      resp.profile = obs::profile_snapshot(metrics_snapshot());
      return resp.encode();
    }
    case MsgType::TimelineDumpReq: {
      const TimelineDumpReq req = TimelineDumpReq::decode(request);
      if (req.trigger && flight_) flight_->trigger("manual", "TimelineDumpReq");
      TimelineDumpResp resp;
      resp.node = "origin";
      resp.enabled = timeline_ != nullptr;
      if (timeline_) resp.window = timeline_->window();
      if (req.include_flight && flight_) resp.flights = flight_->dumps();
      return resp.encode();
    }
    case MsgType::ClientPublishReq: {
      // Wire face of publish_update() for external update drivers.
      // Failures (unknown document, unreachable beacon) travel back as
      // ClientPublishResp{!ok} so the driver can decode what it sent for.
      const ClientPublishReq req = ClientPublishReq::decode(request);
      ClientPublishResp resp;
      try {
        obs::SpanContext ctx = frame_context(request);
        if (ctx.trace_id == 0) {
          ctx.trace_id = obs::next_trace_id();
          ctx.sampled = obs::sample_trace(
              ctx.trace_id, config_.trace.sample_probability);
        }
        resp.version = publish_update(req.url, ctx);
        resp.ok = true;
      } catch (const std::exception& e) {
        resp.ok = false;
        resp.error = e.what();
      }
      return resp.encode();
    }
    default: break;
  }
  obs::Span span(frame_context(request),
                 std::string(msg_type_name(request.type)), span_store_.get(),
                 "origin");
  span.tag("node", "origin");
  try {
    switch (static_cast<MsgType>(request.type)) {
      case MsgType::FetchReq: {
        const FetchReq req = FetchReq::decode(request);
        const obs::TimedLock lock(state_mutex_);
        FetchResp resp;
        const auto it = documents_.find(req.url);
        if (it != documents_.end()) {
          ++origin_fetches_;
          inst_.fetches_served->inc();
          resp.found = true;
          resp.version = it->second.version;
          resp.body = make_body(req.url, it->second.version, it->second.size);
        } else {
          inst_.fetch_misses->inc();
        }
        return resp.encode();
      }
      case MsgType::SuspectNode:
        return handle_suspect(request);
      case MsgType::Ping:
        return Ack{}.encode();
      default:
        break;
    }
    Ack nack;
    nack.ok = false;
    nack.error = "origin: unsupported message type " +
                 std::to_string(request.type);
    return nack.encode();
  } catch (const std::exception& e) {
    span.mark_error();
    Ack nack;
    nack.ok = false;
    nack.error = e.what();
    return nack.encode();
  }
}

}  // namespace cachecloud::node
