// Client side of the ProfileDump wire scrape: collect the contention &
// resource profiles of a set of live nodes (cache and origin ports alike)
// and fold them into one obs::ContentionSummary. Shared by
// cachecloud_profcat and the load generator's --profile post-run report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/profile.hpp"

namespace cachecloud::node {

struct NodeProfile {
  std::string node;       // the node's own label ("cache-3", "origin")
  bool enabled = false;   // profiling switch state when scraped
  obs::Snapshot profile;  // the profiler's slice of the registry
};

struct ProfileScrapeResult {
  std::vector<NodeProfile> nodes;
  // One human-readable line per node that could not be scraped (connect
  // failure, timeout, decode error); the scrape itself never throws.
  std::vector<std::string> errors;
  std::size_t nodes_scraped = 0;
};

// Scrapes every port via ProfileDumpReq. `timeout_sec` bounds each
// connection and call.
[[nodiscard]] ProfileScrapeResult scrape_profiles(
    const std::vector<std::uint16_t>& ports, double timeout_sec = 5.0);

// Folds all scraped nodes into a finalized contention summary keeping the
// top_k locks by total wait (0 = keep all).
[[nodiscard]] obs::ContentionSummary summarize_profiles(
    const ProfileScrapeResult& scrape, std::size_t top_k = 10);

}  // namespace cachecloud::node
