// A runnable edge cache node: document store + beacon-point role + client
// API, speaking the wire protocol over TCP.
//
// Each node is simultaneously
//   - an edge cache serving application get() calls,
//   - the beacon point for the documents whose (ring, IrH) it owns
//     (lookup records, update propagation, load accounting), and
//   - a peer that serves document bodies to other caches.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/tiered_store.hpp"
#include "core/placement.hpp"
#include "net/event_loop.hpp"
#include "net/mux_client.hpp"
#include "node/protocol.hpp"
#include "node/resilience.hpp"
#include "node/ring_view.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "obs/timeline.hpp"
#include "util/rate.hpp"

namespace cachecloud::node {

struct NodeConfig {
  std::uint32_t num_caches = 4;
  std::uint32_t ring_size = 2;
  std::uint32_t irh_gen = 100;
  std::string placement = "adhoc";  // adhoc | beacon | utility
  core::UtilityConfig utility;
  std::uint64_t capacity_bytes = 0;  // 0 = unlimited
  std::string replacement = "lru";
  double monitor_half_life_sec = 60.0;
  // ---- observability -----------------------------------------------
  // Distributed tracing: `trace.collect` allocates a per-node SpanStore
  // scrapeable via TraceDumpReq; `trace.sample_probability` head-samples
  // trace ids this node mints. Off by default — untraced requests pay
  // only a clock read per span.
  obs::TraceConfig trace;
  // Timeline sampler + flight recorder: `timeline.enabled` starts a
  // background thread snapshotting the registry every interval into ring
  // series (scrapeable via TimelineDumpReq) and arms the flight recorder
  // (breaker-trip, disk-degrade, signal and manual triggers). Off by
  // default — untimed nodes pay one pointer check per trigger site.
  obs::TimelineConfig timeline;
  obs::FlightRecorderConfig flight;
  // ---- resilience --------------------------------------------------
  RetryConfig retry;
  BreakerConfig breaker;
  // Report repeatedly-tripping peers to the coordinator (SuspectNode), so
  // heir promotion runs without an external handle_node_failure call.
  bool auto_failover = true;
  // Deterministic chaos hook, threaded into every client and server this
  // node creates. Not owned; must outlive the node. nullptr = no faults.
  net::FaultInjector* fault_injector = nullptr;
  // ---- persistence -------------------------------------------------
  // Write-behind disk tier. `disk.directory` empty (the default) keeps the
  // node memory-only and byte-identical to the pre-disk behavior. When
  // set, each node uses `<directory>/node-<id>`: memory evictions spill to
  // disk, misses consult disk before peers, and a restart replays the
  // manifest (warm restart). `disk.io_faults` injects seeded I/O errors.
  cache::DiskTierConfig disk;
  // Persist every accepted memory put immediately, not only on eviction.
  bool disk_write_through = false;
  // Fixed listen port (0 = ephemeral). A restarted node must come back on
  // the port its peers already have in their endpoint tables.
  std::uint16_t listen_port = 0;
};

// Endpoint table distributed to every node before traffic starts.
struct Endpoints {
  std::vector<std::uint16_t> cache_ports;  // indexed by NodeId
  std::uint16_t origin_port = 0;
};

class CacheNode {
 public:
  CacheNode(NodeId id, const NodeConfig& config);
  ~CacheNode();
  CacheNode(const CacheNode&) = delete;
  CacheNode& operator=(const CacheNode&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return server_->port(); }

  // Must be called (with every node's final port) before any get() or
  // peer-dependent handling.
  void set_endpoints(const Endpoints& endpoints);

  // ---- application-facing API -------------------------------------
  struct GetResult {
    std::vector<std::uint8_t> body;
    std::uint64_t version = 0;
    enum class Source { Local, Cloud, Origin } source = Source::Local;
    bool stored = false;
    // True when a beacon was unreachable and the request was served with
    // the cooperative lookup skipped (origin fallback).
    bool degraded = false;
  };
  // Executes the full lookup protocol: local store -> beacon lookup ->
  // holder fetch or origin fetch -> placement decision -> registration.
  // Mints a fresh trace context (head-sampled per config.trace).
  [[nodiscard]] GetResult get(const std::string& url);
  // Same flow under a caller-provided trace context: the root "get" span
  // adopts ctx's trace id and parent, so client-stamped requests (wire
  // ClientGetReq) stitch into trees the client can look up by id.
  [[nodiscard]] GetResult get(const std::string& url,
                              const obs::SpanContext& ctx);

  // Lazily mirrors this node's lookup records to its beacon-ring peers
  // (the §2.3 failure-resilience extension). Call periodically — e.g. at
  // cycle boundaries; the coordinator's failover relies on it.
  void sync_replicas();

  // Re-registers documents recovered from the disk tier at their beacon
  // points, so a warm-restarted node's copies count as cloud copies again.
  // Call once after set_endpoints(); returns how many were announced.
  std::size_t announce_recovered();

  // ---- introspection ----------------------------------------------
  [[nodiscard]] std::size_t cached_docs() const;
  [[nodiscard]] std::size_t replica_records() const;
  [[nodiscard]] bool has_cached(const std::string& url) const;
  [[nodiscard]] std::size_t directory_records() const;
  [[nodiscard]] const RingView& ring_view() const noexcept { return rings_; }
  struct Counters {
    std::uint64_t gets = 0;
    std::uint64_t local_hits = 0;
    // Subset of local_hits served from the disk tier.
    std::uint64_t disk_hits = 0;
    std::uint64_t cloud_hits = 0;
    std::uint64_t origin_fetches = 0;
    std::uint64_t lookups_served = 0;
    std::uint64_t updates_served = 0;
    std::uint64_t propagates_received = 0;
    std::uint64_t drops_on_update = 0;
  };
  [[nodiscard]] Counters counters() const;

  // Live metric registry: hit classes, placement decisions, per-MsgType
  // wire traffic, get() latency with phase breakdown. Scrapeable remotely
  // via StatsReq; gauges are refreshed on every snapshot.
  [[nodiscard]] obs::Snapshot metrics_snapshot() const;
  [[nodiscard]] std::string metrics_prometheus() const {
    return obs::to_prometheus(metrics_snapshot());
  }

  // Span store for distributed tracing; nullptr unless config.trace.collect.
  [[nodiscard]] obs::SpanStore* span_store() noexcept {
    return span_store_.get();
  }

  void stop();
  // Crash emulation: stops the server and abandons the disk tier's queued
  // spills without flushing — only what the write-behind writer already
  // committed survives, exactly like a kill -9.
  void hard_kill();
  // Blocks until the write-behind disk queue is committed (no-op without a
  // disk tier). Tests use it to draw the crash-consistency line exactly.
  void flush_disk();

  // Documents replayed from the disk manifest at startup (0 = cold start).
  [[nodiscard]] std::size_t recovered_docs() const;

 private:
  struct DirectoryRecord {
    std::uint64_t version = 0;
    std::vector<NodeId> holders;
  };

  [[nodiscard]] net::Frame handle(const net::Frame& request);
  [[nodiscard]] net::Frame handle_lookup(const net::Frame& request);
  [[nodiscard]] net::Frame handle_register(const net::Frame& request);
  [[nodiscard]] net::Frame handle_deregister(const net::Frame& request);
  [[nodiscard]] net::Frame handle_fetch(const net::Frame& request);
  [[nodiscard]] net::Frame handle_update_push(const net::Frame& request,
                                              const obs::SpanContext& ctx);
  [[nodiscard]] net::Frame handle_propagate(const net::Frame& request);
  [[nodiscard]] net::Frame handle_load_query(const net::Frame& request);
  [[nodiscard]] net::Frame handle_range_announce(const net::Frame& request);
  [[nodiscard]] net::Frame handle_handoff_cmd(const net::Frame& request);
  [[nodiscard]] net::Frame handle_record_handoff(const net::Frame& request);
  [[nodiscard]] net::Frame handle_replica_sync(const net::Frame& request);
  [[nodiscard]] net::Frame handle_promote_replicas(const net::Frame& request);
  [[nodiscard]] net::Frame handle_stats(const net::Frame& request);
  [[nodiscard]] net::Frame handle_trace_dump(const net::Frame& request);
  [[nodiscard]] net::Frame handle_profile_dump(const net::Frame& request);
  [[nodiscard]] net::Frame handle_timeline_dump(const net::Frame& request);
  // Runs after every sampler tick: edge-detects conditions that should
  // trip the flight recorder (currently the disk tier degrading).
  void sample_tick();
  [[nodiscard]] net::Frame handle_client_get(const net::Frame& request);
  // The body of get() under an already-open root span.
  [[nodiscard]] GetResult get_impl(const std::string& url, obs::Span& span);

  // Sends a request to a peer cache (or the origin with id kOriginId) and
  // returns the reply, retrying with jittered exponential backoff behind
  // the peer's circuit breaker. Throws net::NetError once attempts, the
  // call deadline or the breaker give out. Never call while holding
  // state_mutex_ or peers_mutex_.
  [[nodiscard]] net::Frame peer_call(NodeId peer, const net::Frame& request);
  // One attempt over the pooled connection, no retry/breaker involvement.
  [[nodiscard]] net::Frame peer_call_once(NodeId peer,
                                          const net::Frame& request);

  [[nodiscard]] double now() const;
  [[nodiscard]] trace::DocId intern(const std::string& url);
  void record_beacon_load(std::uint32_t ring, std::uint32_t irh,
                          double amount);
  [[nodiscard]] core::PlacementContext make_context(
      const std::string& url, trace::DocId doc, std::size_t cloud_copies,
      bool is_beacon, double at);
  // Store a body locally; handles eviction dereg messages. Returns true if
  // stored. Callers must NOT hold state_mutex_.
  bool store_copy(const std::string& url, trace::DocId doc,
                  const std::vector<std::uint8_t>& body,
                  std::uint64_t version);
  // Deregisters dropped documents at their beacon points (best-effort).
  // Callers must NOT hold state_mutex_.
  void deregister_urls(const std::vector<std::string>& urls);
  // Warm restart: intern manifest-recovered urls, preload what fits into
  // memory and queue the re-announcements. Runs before the server starts.
  void recover_from_disk();

  const NodeId id_;
  const NodeConfig config_;
  const std::chrono::steady_clock::time_point start_;

  // The node's one big lock: it guards the DocumentStore and everything
  // else below down to counters_. Profiled (bound to registry_ as
  // "state_mutex_" in the constructor) because it serializes the whole
  // hot path — quantifying its wait time is what motivates the sharded
  // rewrite (ROADMAP items 1-2).
  mutable obs::TimedMutex state_mutex_;
  // store_ itself lives below, after registry_: its disk tier registers
  // instruments, so it must construct after (and die before) the registry.
  std::unordered_map<std::string, DirectoryRecord> directory_;
  // Lazily replicated copies of ring peers' lookup records; promoted to
  // `directory_` entries when a failed peer's sub-range is inherited.
  std::unordered_map<std::string, DirectoryRecord> replica_directory_;
  std::unordered_map<std::string, trace::DocId> url_to_doc_;
  std::vector<std::string> doc_to_url_;
  std::unordered_map<trace::DocId, util::RateEstimator> access_monitors_;
  std::unordered_map<trace::DocId, util::RateEstimator> update_monitors_;
  util::RateEstimator request_monitor_;
  // Per-ring per-IrH load accounting for rings this node belongs to.
  std::unordered_map<std::uint32_t, std::vector<double>> irh_loads_;
  Counters counters_;

  RingView rings_;
  std::unique_ptr<core::PlacementPolicy> placement_;

  // ---- observability ----------------------------------------------
  // Hot-path instruments are pre-registered pointers: updating one is a
  // relaxed atomic op, never a registry lock. wire_metrics_ is shared by
  // the server and every peer client of this node.
  obs::Registry registry_;
  WireMetrics wire_metrics_{registry_};
  const std::string node_label_;  // span/trace node label, "cache-<id>"
  // The tiered document store (memory + optional write-behind disk),
  // guarded by state_mutex_ like the rest of the node state.
  cache::TieredStore store_;
  // Recovered (url, version) pairs awaiting announce_recovered().
  std::vector<std::pair<std::string, std::uint64_t>> recovery_announce_;
  std::unique_ptr<obs::SpanStore> span_store_;  // null = collection off
  struct Instruments {
    obs::Counter* get_local = nullptr;
    obs::Counter* get_disk = nullptr;
    obs::Counter* get_cloud = nullptr;
    obs::Counter* get_origin = nullptr;
    obs::Counter* placement_accept = nullptr;
    obs::Counter* placement_reject = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* lookups_served = nullptr;
    obs::Counter* updates_served = nullptr;
    obs::Counter* propagates_received = nullptr;
    obs::Counter* drops_on_update = nullptr;
    obs::Counter* replica_syncs = nullptr;
    obs::Counter* replica_sync_records = nullptr;
    obs::Counter* peer_retries = nullptr;
    obs::Counter* peer_failures = nullptr;
    obs::Counter* breaker_trips = nullptr;
    obs::Counter* breaker_short_circuits = nullptr;
    obs::Counter* degraded_lookup = nullptr;
    obs::Counter* degraded_register = nullptr;
    obs::Counter* degraded_beacon_push = nullptr;
    obs::Counter* suspects_reported = nullptr;
    obs::Counter* recovery_announced = nullptr;
    obs::LatencyHistogram* get_latency = nullptr;
    obs::LatencyHistogram* phase_lookup = nullptr;
    obs::LatencyHistogram* phase_fetch = nullptr;
    obs::LatencyHistogram* phase_placement = nullptr;
    obs::Gauge* cached_docs = nullptr;
    obs::Gauge* directory_records = nullptr;
    obs::Gauge* replica_records = nullptr;
    obs::Gauge* recovered_docs = nullptr;
  };
  Instruments inst_;

  // Per-peer connection + breaker state. Clients are shared_ptr so a call
  // in flight on one thread survives another thread dropping the pooled
  // connection after a failure (use-after-erase race). Breakers persist
  // across reconnects; `suspected` latches the one SuspectNode report.
  struct PeerState {
    std::shared_ptr<net::MuxClient> client;
    std::shared_ptr<CircuitBreaker> breaker;
    obs::Gauge* state_gauge = nullptr;
    std::uint64_t reported_trips = 0;
    bool suspected = false;
  };
  // Get-or-create the peer's state (client left null); takes peers_mutex_.
  [[nodiscard]] PeerState& peer_state_locked(NodeId peer);
  [[nodiscard]] std::shared_ptr<CircuitBreaker> breaker_for(NodeId peer);
  // Refresh the breaker gauge, count new trips and decide (under
  // peers_mutex_) whether this failure crosses the suspicion threshold.
  [[nodiscard]] bool note_peer_failure(NodeId peer);
  void report_suspect(NodeId peer);

  mutable obs::TimedMutex peers_mutex_;
  Endpoints endpoints_;
  bool endpoints_set_ = false;
  std::unordered_map<NodeId, PeerState> peers_;
  std::unique_ptr<RetryPolicy> retry_;

  // Timeline sampler + flight recorder (null unless config.timeline
  // .enabled). The sampler thread is declared after what it samples and
  // stopped in stop()/hard_kill() before the server goes down.
  std::unique_ptr<obs::Timeline> timeline_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  bool disk_was_degraded_ = false;  // sample_tick() edge detection
  std::unique_ptr<obs::TimelineSampler> sampler_;

  std::unique_ptr<net::EventServer> server_;
};

}  // namespace cachecloud::node
