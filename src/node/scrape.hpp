// Shared fan-out engine for the node::scrape_* families (traces, profiles,
// stats, timelines): send one request frame to every port CONCURRENTLY,
// each over its own connection with its own timeout, and collect per-port
// outcomes in port order.
//
// Partial-scrape semantics: one dead or slow node costs its own timeout,
// never the whole scrape — its entry comes back `unreachable` with the
// error text, and every other node's reply is unaffected. Consumers that
// render live (cachecloud_top) keep rendering through a kill/restart;
// batch consumers fold the errors into their reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/tcp.hpp"

namespace cachecloud::node {

struct PortReply {
  std::uint16_t port = 0;
  bool unreachable = false;  // connect/call/decode failed; see `error`
  std::string error;         // empty when reachable
  net::Frame reply;          // valid only when !unreachable
};

// One thread per port; blocks until every port answered or timed out, so
// the whole scrape takes one slowest-node timeout, not the sum.
[[nodiscard]] std::vector<PortReply> scrape_ports(
    const std::vector<std::uint16_t>& ports, const net::Frame& request,
    double timeout_sec);

}  // namespace cachecloud::node
