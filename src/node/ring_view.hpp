// A node's thread-safe view of the cloud's beacon-ring assignment.
//
// Every cache node and the origin keep one of these; the coordinator's
// RangeAnnounce messages replace ring assignments atomically. Resolution is
// the paper's two-step process: MD5 ring hash, then the intra-ring
// sub-range table.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "core/url_hash.hpp"
#include "node/protocol.hpp"

namespace cachecloud::node {

class RingView {
 public:
  // Nodes 0..num_nodes-1 are chunked into rings of ring_size in id order
  // (a trailing remainder joins the last ring), each ring's hash space
  // split evenly — the same initial layout DynamicHashAssigner uses.
  RingView(std::uint32_t num_nodes, std::uint32_t ring_size,
           std::uint32_t irh_gen);

  struct Target {
    std::uint32_t ring = 0;
    std::uint32_t irh = 0;
    NodeId beacon = 0;
  };
  [[nodiscard]] Target resolve(std::string_view url) const;
  [[nodiscard]] Target resolve(const core::UrlHash& hash) const;

  void apply(const RangeAnnounce& announce);
  [[nodiscard]] RangeAnnounce snapshot() const;

  [[nodiscard]] std::uint32_t num_rings() const;
  [[nodiscard]] std::uint32_t irh_gen() const noexcept { return irh_gen_; }
  // Rings the given node currently owns a sub-range in.
  [[nodiscard]] std::vector<std::uint32_t> rings_of(NodeId node) const;
  // The node's sub-range within a ring; throws if it owns none.
  [[nodiscard]] core::SubRange range_of(std::uint32_t ring,
                                        NodeId node) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<RangeEntry>> rings_;
  std::uint32_t irh_gen_;
};

}  // namespace cachecloud::node
