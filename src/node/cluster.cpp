#include "node/cluster.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace cachecloud::node {

Cluster::Cluster(const NodeConfig& config)
    : config_(config), crashed_(config.num_caches, false) {
  origin_ = std::make_unique<OriginNode>(config_);
  caches_.reserve(config_.num_caches);
  for (NodeId id = 0; id < config_.num_caches; ++id) {
    caches_.push_back(std::make_unique<CacheNode>(id, config_));
  }

  Endpoints endpoints;
  endpoints.origin_port = origin_->port();
  endpoints.cache_ports.reserve(caches_.size());
  for (const auto& cache : caches_) {
    endpoints.cache_ports.push_back(cache->port());
  }
  origin_->set_endpoints(endpoints);
  for (const auto& cache : caches_) {
    cache->set_endpoints(endpoints);
  }
}

Cluster::~Cluster() { stop_all(); }

void Cluster::crash(NodeId id) {
  caches_.at(id)->stop();
  crashed_.at(id) = true;
}

void Cluster::hard_kill(NodeId id) {
  caches_.at(id)->hard_kill();
  crashed_.at(id) = true;
}

std::size_t Cluster::restart(NodeId id) {
  const std::uint16_t port = caches_.at(id)->port();
  caches_.at(id).reset();  // joins the server and the disk writer

  // Reincarnate on the same port so every peer's endpoint table (and any
  // pooled-but-broken connections, which reconnect lazily) stays valid.
  NodeConfig config = config_;
  config.listen_port = port;
  std::unique_ptr<CacheNode> node;
  for (int attempt = 0;; ++attempt) {
    try {
      node = std::make_unique<CacheNode>(id, config);
      break;
    } catch (const std::exception&) {
      // The old listener can linger in TIME_WAIT for a moment even with
      // SO_REUSEADDR; a short retry covers it.
      if (attempt >= 50) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  Endpoints endpoints;
  endpoints.origin_port = origin_->port();
  endpoints.cache_ports.reserve(caches_.size());
  for (NodeId peer = 0; peer < caches_.size(); ++peer) {
    endpoints.cache_ports.push_back(peer == id ? node->port()
                                               : caches_.at(peer)->port());
  }
  node->set_endpoints(endpoints);
  caches_.at(id) = std::move(node);
  crashed_.at(id) = false;
  return caches_.at(id)->announce_recovered();
}

std::size_t Cluster::live_caches() const {
  std::size_t live = 0;
  for (const bool down : crashed_) {
    if (!down) ++live;
  }
  return live;
}

void Cluster::stop_all() {
  for (const auto& cache : caches_) {
    if (cache) cache->stop();
  }
  if (origin_) origin_->stop();
}

}  // namespace cachecloud::node
