#include "node/cluster.hpp"

namespace cachecloud::node {

Cluster::Cluster(const NodeConfig& config)
    : config_(config), crashed_(config.num_caches, false) {
  origin_ = std::make_unique<OriginNode>(config_);
  caches_.reserve(config_.num_caches);
  for (NodeId id = 0; id < config_.num_caches; ++id) {
    caches_.push_back(std::make_unique<CacheNode>(id, config_));
  }

  Endpoints endpoints;
  endpoints.origin_port = origin_->port();
  endpoints.cache_ports.reserve(caches_.size());
  for (const auto& cache : caches_) {
    endpoints.cache_ports.push_back(cache->port());
  }
  origin_->set_endpoints(endpoints);
  for (const auto& cache : caches_) {
    cache->set_endpoints(endpoints);
  }
}

Cluster::~Cluster() { stop_all(); }

void Cluster::crash(NodeId id) {
  caches_.at(id)->stop();
  crashed_.at(id) = true;
}

std::size_t Cluster::live_caches() const {
  std::size_t live = 0;
  for (const bool down : crashed_) {
    if (!down) ++live;
  }
  return live;
}

void Cluster::stop_all() {
  for (const auto& cache : caches_) {
    if (cache) cache->stop();
  }
  if (origin_) origin_->stop();
}

}  // namespace cachecloud::node
