// Client side of the TimelineDump and Stats wire scrapes, built on the
// partial-scrape fan-out (node/scrape.hpp): one entry per port, in port
// order, dead nodes marked `unreachable` instead of failing the sweep.
// Shared by cachecloud_top (live rendering must survive a kill/restart)
// and the load generator's --timeline-out sampling thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace cachecloud::node {

struct NodeTimeline {
  std::uint16_t port = 0;
  bool unreachable = false;
  std::string error;  // set when unreachable
  std::string node;   // the node's own label ("cache-3", "origin")
  bool enabled = false;  // sampler switch state when scraped
  obs::TimelineWindow window;
  std::vector<obs::FlightDump> flights;  // only when include_flight
};

struct TimelineScrapeResult {
  std::vector<NodeTimeline> nodes;  // one per port, port order
  // One human-readable line per unreachable node; the scrape never throws.
  std::vector<std::string> errors;
  std::size_t nodes_scraped = 0;
};

// Scrapes every port via TimelineDumpReq, concurrently with a per-node
// timeout. `trigger` asks each node for a fresh "manual" flight dump.
[[nodiscard]] TimelineScrapeResult scrape_timelines(
    const std::vector<std::uint16_t>& ports, bool include_flight = false,
    bool trigger = false, double timeout_sec = 5.0);

// One StatsReq sweep with the same partial-scrape semantics, for callers
// that maintain their own client-side obs::Timeline per node (an
// unreachable node's snapshot is empty — feed it anyway so ticks align).
struct NodeStatsScrape {
  std::uint16_t port = 0;
  bool unreachable = false;
  std::string error;
  obs::Snapshot snapshot;
};

[[nodiscard]] std::vector<NodeStatsScrape> scrape_stats(
    const std::vector<std::uint16_t>& ports, double timeout_sec = 5.0);

}  // namespace cachecloud::node
