// Client side of the TraceDump wire scrape: collect the retained spans of
// a set of live nodes (cache and origin ports alike) into one flat list,
// ready for obs::stitch_traces. Shared by cachecloud_tracecat and the load
// generator's post-run trace export.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span_store.hpp"

namespace cachecloud::node {

struct ScrapeResult {
  std::vector<obs::SpanRecord> spans;
  // One human-readable line per node that could not be scraped (connect
  // failure, timeout, decode error); the scrape itself never throws.
  std::vector<std::string> errors;
  std::size_t nodes_scraped = 0;
};

// Scrapes every port via TraceDumpReq. `drain` removes the shipped spans
// from the nodes' stores; `timeout_sec` bounds each connection and call.
[[nodiscard]] ScrapeResult scrape_traces(
    const std::vector<std::uint16_t>& ports, bool drain = false,
    double timeout_sec = 5.0);

}  // namespace cachecloud::node
