// The origin server node, doubling as the cloud coordinator.
//
// Serves authoritative document bodies, publishes updates to each
// document's beacon point (one message per cloud, as the paper prescribes),
// and periodically runs the sub-range determination cycle: it gathers load
// reports from every cache node, recomputes the partition with
// core::determine_subranges, announces the new assignment and orders the
// lookup-record hand-offs.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/event_loop.hpp"
#include "net/mux_client.hpp"
#include "node/cache_node.hpp"  // NodeConfig, Endpoints
#include "node/protocol.hpp"
#include "node/ring_view.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "obs/timeline.hpp"

namespace cachecloud::node {

class OriginNode {
 public:
  explicit OriginNode(const NodeConfig& config);
  ~OriginNode();
  OriginNode(const OriginNode&) = delete;
  OriginNode& operator=(const OriginNode&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return server_->port(); }
  void set_endpoints(const Endpoints& endpoints);
  void stop();

  // ---- authoritative content --------------------------------------
  // Registers a document; its body is deterministic filler of `size` bytes
  // derived from (url, version).
  void add_document(const std::string& url, std::size_t size);
  [[nodiscard]] std::uint64_t version_of(const std::string& url) const;

  // Bumps the document's version and pushes it to its beacon point.
  // Returns the new version. The no-context overload mints a fresh trace
  // context (head-sampled per config.trace); the other adopts the
  // caller's, so wire-driven publishes stitch to the client's trace.
  std::uint64_t publish_update(const std::string& url);
  std::uint64_t publish_update(const std::string& url,
                               const obs::SpanContext& ctx);

  // ---- coordinator -------------------------------------------------
  struct RebalanceSummary {
    std::size_t rings_changed = 0;
    std::size_t handoffs = 0;  // HandoffCmds issued
  };
  // One sub-range determination cycle across all rings.
  RebalanceSummary run_rebalance_cycle();

  // Fails a cache node over: merges its sub-range into a ring neighbour,
  // announces the new assignment to the survivors and promotes the heir's
  // lazily-replicated lookup records (§2.3's resilience extension).
  // The failed node's server may already be unreachable. Survivors whose
  // announce fails are remembered and caught up by
  // retry_pending_announces(). Throws std::invalid_argument if the node is
  // its ring's last member or was already failed over. Also runs
  // automatically when a cache reports the node via SuspectNode.
  struct FailoverSummary {
    NodeId heir = 0;
    std::uint32_t ring = 0;
    core::SubRange inherited;
  };
  FailoverSummary handle_node_failure(NodeId failed);

  // Re-sends the current ring assignment to nodes that missed an announce
  // (e.g. were unreachable during a failover). Returns how many caught up.
  // run_rebalance_cycle() calls this first, so a periodic coordinator loop
  // heals stale views automatically.
  std::size_t retry_pending_announces();
  [[nodiscard]] bool node_failed(NodeId node) const;

  [[nodiscard]] const RingView& ring_view() const noexcept { return rings_; }
  [[nodiscard]] std::uint64_t origin_fetches() const;

  // Live metric registry: fetches served, updates published, per-cloud
  // update fan-out, per-MsgType wire traffic. Scrapeable via StatsReq.
  [[nodiscard]] obs::Snapshot metrics_snapshot() const {
    return registry_.snapshot();
  }
  [[nodiscard]] std::string metrics_prometheus() const {
    return obs::to_prometheus(metrics_snapshot());
  }

  // Span store for distributed tracing; nullptr unless config.trace.collect.
  [[nodiscard]] obs::SpanStore* span_store() noexcept {
    return span_store_.get();
  }

  // Deterministic body for (url, version); exposed so tests can verify
  // end-to-end payload integrity.
  [[nodiscard]] static std::vector<std::uint8_t> make_body(
      const std::string& url, std::uint64_t version, std::size_t size);

 private:
  struct Document {
    std::uint64_t version = 1;
    std::size_t size = 0;
  };

  [[nodiscard]] net::Frame handle(const net::Frame& request);
  [[nodiscard]] net::Frame handle_suspect(const net::Frame& request);
  [[nodiscard]] net::Frame call_cache(NodeId node, const net::Frame& request);
  FailoverSummary handle_node_failure_locked(NodeId failed);
  // Announce `announce` to `node`, tracking pending catch-up on failure.
  void announce_to(NodeId node, const RangeAnnounce& announce);

  [[nodiscard]] double now() const;

  const NodeConfig config_;
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  mutable obs::TimedMutex state_mutex_;
  std::unordered_map<std::string, Document> documents_;
  std::uint64_t origin_fetches_ = 0;

  // ---- observability ----------------------------------------------
  obs::Registry registry_;
  WireMetrics wire_metrics_{registry_};
  std::unique_ptr<obs::SpanStore> span_store_;  // null = collection off
  struct Instruments {
    obs::Counter* fetches_served = nullptr;
    obs::Counter* fetch_misses = nullptr;
    obs::Counter* updates_published = nullptr;
    obs::Counter* update_pushes_sent = nullptr;
    obs::Counter* rebalance_cycles = nullptr;
    obs::Counter* handoffs_ordered = nullptr;
    obs::Counter* failovers_operator = nullptr;
    obs::Counter* failovers_suspicion = nullptr;
    obs::Counter* suspects_received = nullptr;
    obs::Counter* announce_failures = nullptr;
    obs::Counter* peer_call_failures = nullptr;
    obs::Gauge* documents = nullptr;
  };
  Instruments inst_;

  RingView rings_;

  // Serializes failovers (operator calls and concurrent SuspectNode
  // handler threads) and guards the failed/pending bookkeeping.
  mutable obs::TimedMutex failover_mutex_;
  std::unordered_set<NodeId> failed_nodes_;
  std::unordered_set<NodeId> pending_announce_;

  obs::TimedMutex peers_mutex_;
  Endpoints endpoints_;
  bool endpoints_set_ = false;
  // shared_ptr: a call in flight survives a concurrent connection drop.
  std::unordered_map<NodeId, std::shared_ptr<net::MuxClient>> peers_;

  // Timeline sampler + flight recorder (null unless config.timeline
  // .enabled); the sampler is stopped in stop() before the server.
  std::unique_ptr<obs::Timeline> timeline_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::TimelineSampler> sampler_;

  std::unique_ptr<net::EventServer> server_;
};

}  // namespace cachecloud::node
