// Resilience primitives for the live request path: jittered exponential
// retry backoff and a per-peer circuit breaker.
//
// CacheNode wraps every peer_call in both: a failed attempt is retried
// (bounded by attempts and a per-call deadline) with exponential backoff,
// and consecutive failures trip the peer's breaker so subsequent calls
// fail fast instead of burning the full timeout on a dead peer. After a
// cooldown the breaker goes half-open and lets probe calls through; a
// success closes it again. Repeated trips mark the peer *suspect*, which
// feeds the coordinator's automatic failover (§2.3's resilience extension
// driven from the data path instead of an external operator).
#pragma once

#include <cstdint>
#include <mutex>

#include "util/rng.hpp"

namespace cachecloud::node {

struct RetryConfig {
  std::uint32_t max_attempts = 3;     // total tries per peer_call
  double backoff_base_sec = 0.005;    // first retry waits ~this long
  double backoff_cap_sec = 0.1;       // exponential growth clamps here
  double jitter = 0.5;                // each wait scaled by U[1-jitter, 1]
  double call_deadline_sec = 2.0;     // give up retrying past this
  double attempt_timeout_sec = 5.0;   // per-attempt connect/recv timeout
};

// Deterministic given the seed and a single-threaded caller; thread-safe.
class RetryPolicy {
 public:
  RetryPolicy(const RetryConfig& config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  [[nodiscard]] const RetryConfig& config() const noexcept { return config_; }

  // Jittered wait before retry number `retry` (1-based: the wait between
  // attempt N and attempt N+1 is backoff_sec(N)).
  [[nodiscard]] double backoff_sec(std::uint32_t retry);

 private:
  const RetryConfig config_;
  std::mutex mutex_;
  util::Rng rng_;
};

struct BreakerConfig {
  std::uint32_t failure_threshold = 4;    // consecutive failures to trip
  double cooldown_sec = 1.0;              // open -> half-open delay
  std::uint32_t half_open_successes = 1;  // probe successes to close
  // After this many trips the peer is reported suspect to the coordinator
  // (0 disables suspicion reporting for the peer).
  std::uint32_t suspect_after_trips = 2;
};

// Classic closed -> open -> half-open breaker over a monotonic clock the
// caller supplies (CacheNode passes its steady-clock seconds). Thread-safe.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { Closed = 0, Open = 1, HalfOpen = 2 };

  explicit CircuitBreaker(const BreakerConfig& config) : config_(config) {}

  // True if a call may proceed now. Transitions Open -> HalfOpen once the
  // cooldown elapses; in half-open only one probe is admitted at a time.
  [[nodiscard]] bool allow(double now);
  void on_success(double now);
  void on_failure(double now);

  [[nodiscard]] State state() const;
  // Transitions into Open so far (monotone).
  [[nodiscard]] std::uint64_t trips() const;
  [[nodiscard]] const BreakerConfig& config() const noexcept {
    return config_;
  }

 private:
  void trip_locked(double now);

  const BreakerConfig config_;
  mutable std::mutex mutex_;
  State state_ = State::Closed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  double opened_at_ = 0.0;
  std::uint64_t trips_ = 0;
};

// Gauge encoding of a breaker state (see docs/RESILIENCE.md): 0 closed,
// 1 open, 2 half-open.
[[nodiscard]] inline double breaker_state_value(
    CircuitBreaker::State state) noexcept {
  return static_cast<double>(state);
}

}  // namespace cachecloud::node
