// Wire protocol of the distributed cache cloud (src/node/).
//
// Message structs with explicit encode/decode to net::Frame. The protocol
// implements the paper's lookup and update flows plus the coordinator-driven
// sub-range re-balancing:
//
//   client GET at a cache node:
//     Lookup(beacon) -> Fetch(holder | origin) -> RegisterHolder(beacon)
//   origin update:
//     UpdatePush(beacon) -> Propagate(holder...) [holders may drop]
//   re-balance cycle (coordinator):
//     LoadQuery(every node) -> determine_subranges -> RangeAnnounce(all)
//     -> HandoffCmd(losing beacon) -> RecordHandoff(gaining beacon)
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/subrange.hpp"
#include "net/buffer.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "obs/timeline.hpp"

namespace cachecloud::node {

using NodeId = std::uint32_t;
inline constexpr NodeId kOriginId = 0xFFFFFFFFu;

enum class MsgType : std::uint16_t {
  LookupReq = 1,
  LookupResp = 2,
  RegisterHolder = 3,
  DeregisterHolder = 4,
  Ack = 5,
  FetchReq = 6,
  FetchResp = 7,
  UpdatePush = 8,     // origin -> beacon point (new version of a document)
  Propagate = 9,      // beacon point -> holder
  PropagateResp = 10, // holder -> beacon: kept or dropped
  LoadQuery = 11,
  LoadReport = 12,
  RangeAnnounce = 13,
  HandoffCmd = 14,
  RecordHandoff = 15,
  Ping = 16,
  // Failure resilience (§2.3's lazy-replication extension): beacon points
  // lazily copy their lookup records to their ring peers; after a beacon
  // failure the coordinator promotes the heir's replicas.
  ReplicaSync = 17,
  PromoteReplicas = 18,
  // Observability: scrape a live node's metric registry.
  StatsReq = 19,
  StatsResp = 20,
  // Resilience: a cache whose circuit breaker for a peer trips repeatedly
  // reports it to the coordinator, which runs the failover automatically.
  SuspectNode = 21,
  // Client-facing edge API, used by external load drivers: a ClientGetReq
  // at a cache node runs the full cooperative get() flow; a
  // ClientPublishReq at the origin bumps a document's version and pushes
  // the update into the cloud.
  ClientGetReq = 22,
  ClientGetResp = 23,
  ClientPublishReq = 24,
  ClientPublishResp = 25,
  // Observability: scrape a live node's span store (distributed tracing).
  TraceDumpReq = 26,
  TraceDumpResp = 27,
  // Observability: scrape a live node's contention/resource profile.
  ProfileDumpReq = 28,
  ProfileDumpResp = 29,
  // Observability: scrape a live node's timeline ring and flight dumps.
  TimelineDumpReq = 30,
  TimelineDumpResp = 31,
};

// Human-readable name of a wire message type ("LookupReq", ...); unknown
// values render as "Unknown". Used as the `type` label of the per-message
// wire metrics and in span logs.
[[nodiscard]] std::string_view msg_type_name(std::uint16_t type) noexcept;

struct LookupReq {
  std::string url;
  [[nodiscard]] net::Frame encode() const;
  static LookupReq decode(const net::Frame& frame);
};

struct LookupResp {
  bool found = false;
  std::uint64_t version = 0;
  std::vector<NodeId> holders;
  [[nodiscard]] net::Frame encode() const;
  static LookupResp decode(const net::Frame& frame);
};

struct RegisterHolder {
  std::string url;
  NodeId node = 0;
  std::uint64_t version = 0;
  [[nodiscard]] net::Frame encode() const;
  static RegisterHolder decode(const net::Frame& frame);
};

struct DeregisterHolder {
  std::string url;
  NodeId node = 0;
  [[nodiscard]] net::Frame encode() const;
  static DeregisterHolder decode(const net::Frame& frame);
};

struct Ack {
  bool ok = true;
  std::string error;
  [[nodiscard]] net::Frame encode() const;
  static Ack decode(const net::Frame& frame);
};

struct FetchReq {
  std::string url;
  [[nodiscard]] net::Frame encode() const;
  static FetchReq decode(const net::Frame& frame);
};

struct FetchResp {
  bool found = false;
  std::uint64_t version = 0;
  std::vector<std::uint8_t> body;
  [[nodiscard]] net::Frame encode() const;
  static FetchResp decode(const net::Frame& frame);
};

struct UpdatePush {
  std::string url;
  std::uint64_t version = 0;
  std::vector<std::uint8_t> body;
  [[nodiscard]] net::Frame encode(MsgType type = MsgType::UpdatePush) const;
  static UpdatePush decode(const net::Frame& frame);
};

struct PropagateResp {
  bool kept = false;  // false: holder dropped the copy (utility placement)
  [[nodiscard]] net::Frame encode() const;
  static PropagateResp decode(const net::Frame& frame);
};

struct LoadQuery {
  [[nodiscard]] net::Frame encode() const;
  static LoadQuery decode(const net::Frame& frame);
};

// One entry per ring the reporting node is a member of.
struct RingLoadReport {
  std::uint32_t ring = 0;
  core::SubRange range;          // the node's current sub-range
  double cycle_load = 0.0;       // CAvgLoad since the last query
  std::vector<double> per_irh;   // CIrHLd, one per value of `range`
};

struct LoadReport {
  NodeId node = 0;
  double capability = 1.0;
  std::vector<RingLoadReport> rings;
  [[nodiscard]] net::Frame encode() const;
  static LoadReport decode(const net::Frame& frame);
};

struct RangeEntry {
  core::SubRange range;
  NodeId owner = 0;
};

struct RangeAnnounce {
  // ranges[r] lists the sub-range assignment of ring r in ring order.
  std::vector<std::vector<RangeEntry>> rings;
  [[nodiscard]] net::Frame encode() const;
  static RangeAnnounce decode(const net::Frame& frame);
};

struct HandoffCmd {
  std::uint32_t ring = 0;
  core::SubRange values;
  NodeId target = 0;
  [[nodiscard]] net::Frame encode() const;
  static HandoffCmd decode(const net::Frame& frame);
};

struct HandoffRecord {
  std::string url;
  std::uint64_t version = 0;
  std::vector<NodeId> holders;
};

struct RecordHandoff {
  std::vector<HandoffRecord> records;
  // RecordHandoff moves ownership; ReplicaSync lazily mirrors the sender's
  // records into the receiver's replica store (replace semantics).
  [[nodiscard]] net::Frame encode(
      MsgType type = MsgType::RecordHandoff) const;
  static RecordHandoff decode(const net::Frame& frame);
};

// Orders the receiving node to promote its replicas of the given IrH block
// to authoritative lookup records, dropping `failed_node` from every holder
// list on the way.
struct PromoteReplicas {
  std::uint32_t ring = 0;
  core::SubRange values;
  NodeId failed_node = 0;
  [[nodiscard]] net::Frame encode() const;
  static PromoteReplicas decode(const net::Frame& frame);
};

// Cache -> origin: `node` looks dead from `reporter`'s data path (its
// circuit breaker tripped suspect_after_trips times). The origin answers
// Ack{ok} after running (or having already run) the failover, Ack{!ok} if
// the node cannot be failed over (e.g. last ring member).
struct SuspectNode {
  NodeId node = 0;
  NodeId reporter = 0;
  [[nodiscard]] net::Frame encode() const;
  static SuspectNode decode(const net::Frame& frame);
};

// ------------------------------------------------------------- client API

// External client GET served by a cache node over the wire (the socket
// equivalent of CacheNode::get()). The reply ships the body size and a
// cheap integrity check instead of the body itself: load drivers verify
// end-to-end correctness without paying the bandwidth to echo payloads.
struct ClientGetReq {
  std::string url;
  [[nodiscard]] net::Frame encode() const;
  static ClientGetReq decode(const net::Frame& frame);
};

struct ClientGetResp {
  bool ok = false;
  std::string error;                // set when !ok
  std::uint64_t version = 0;
  std::uint8_t source = 0;          // CacheNode::GetResult::Source
  bool degraded = false;            // served while a beacon was unreachable
  std::uint64_t body_bytes = 0;
  std::uint64_t body_hash = 0;      // util::fnv1a64 of the body
  [[nodiscard]] net::Frame encode() const;
  static ClientGetResp decode(const net::Frame& frame);
};

// External update trigger at the origin: bump `url` and push the new
// version to its beacon point (the paper's update flow, §2.2).
struct ClientPublishReq {
  std::string url;
  [[nodiscard]] net::Frame encode() const;
  static ClientPublishReq decode(const net::Frame& frame);
};

struct ClientPublishResp {
  bool ok = false;
  std::string error;
  std::uint64_t version = 0;
  [[nodiscard]] net::Frame encode() const;
  static ClientPublishResp decode(const net::Frame& frame);
};

// ---------------------------------------------------------- observability

struct StatsReq {
  [[nodiscard]] net::Frame encode() const;
  static StatsReq decode(const net::Frame& frame);
};

// A full registry snapshot: every counter/gauge sample plus histograms
// with their bucket layout, so scrapers can re-render Prometheus text or
// JSON (obs::to_prometheus / obs::to_json) without another round trip.
struct StatsResp {
  obs::Snapshot snapshot;
  [[nodiscard]] net::Frame encode() const;
  static StatsResp decode(const net::Frame& frame);
};

// Scrape a node's retained spans (mirrors StatsReq). With `drain`, the
// returned spans are removed from the store, so periodic collectors do not
// re-ship what they already have; without it the scrape is read-only.
struct TraceDumpReq {
  bool drain = false;
  [[nodiscard]] net::Frame encode() const;
  static TraceDumpReq decode(const net::Frame& frame);
};

// The node's retained spans plus its node label ("cache-3", "origin").
// Nodes with collection off answer with an empty span list.
struct TraceDumpResp {
  std::string node;
  std::vector<obs::SpanRecord> spans;
  [[nodiscard]] net::Frame encode() const;
  static TraceDumpResp decode(const net::Frame& frame);
};

// Scrape a node's contention & resource profile (mirrors TraceDumpReq).
struct ProfileDumpReq {
  [[nodiscard]] net::Frame encode() const;
  static ProfileDumpReq decode(const net::Frame& frame);
};

// The profiler's slice of the node's registry snapshot (lock wait/hold
// histograms, worker time, IO counters) plus the node label and whether
// profiling was enabled when scraped. Nodes with profiling off still
// answer — enabled=false tells the scraper the counters are stale/empty.
struct ProfileDumpResp {
  std::string node;
  bool enabled = false;
  obs::Snapshot profile;
  [[nodiscard]] net::Frame encode() const;
  static ProfileDumpResp decode(const net::Frame& frame);
};

// Scrape a node's timeline ring (mirrors ProfileDumpReq). `include_flight`
// also ships the node's retained flight-recorder dumps; `trigger` makes
// the node capture a fresh dump (reason "manual") before answering — the
// wire form of the recorder's explicit-request trigger.
struct TimelineDumpReq {
  bool include_flight = false;
  bool trigger = false;
  [[nodiscard]] net::Frame encode() const;
  static TimelineDumpReq decode(const net::Frame& frame);
};

// The node's timeline window plus (optionally) its flight dumps. Nodes
// with the sampler off answer enabled=false and an empty window.
struct TimelineDumpResp {
  std::string node;
  bool enabled = false;
  obs::TimelineWindow window;
  std::vector<obs::FlightDump> flights;
  [[nodiscard]] net::Frame encode() const;
  static TimelineDumpResp decode(const net::Frame& frame);
};

// net::FrameObserver that feeds per-MsgType message and byte counters:
//
//   cachecloud_net_messages_total{type="LookupReq",dir="rx"|"tx"}
//   cachecloud_net_bytes_total{type="LookupReq",dir="rx"|"tx"}
//
// Counters for every known type are pre-registered at construction, so the
// per-frame path is two relaxed fetch_adds and never takes the registry
// lock. One instance serves a node's server and all of its peer clients.
class WireMetrics : public net::FrameObserver {
 public:
  explicit WireMetrics(obs::Registry& registry);
  void on_frame(const net::Frame& frame, bool inbound) noexcept override;

 private:
  struct Pair {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
  };
  // Indexed [type][dir]; slot 0 catches unknown types. dir 0 = rx, 1 = tx.
  static constexpr std::size_t kMaxType =
      static_cast<std::size_t>(MsgType::TimelineDumpResp);
  std::array<std::array<Pair, 2>, kMaxType + 1> slots_{};
};

// Throws net::DecodeError if the frame's type does not match `expected`.
void expect_type(const net::Frame& frame, MsgType expected);

// Stamps a frame with the sending hop's trace context, so the receiving
// hop's span links to the sender's (ctx is usually span.child_context()).
[[nodiscard]] inline net::Frame with_trace(net::Frame frame,
                                           const obs::SpanContext& ctx) {
  frame.trace_id = ctx.trace_id;
  frame.parent_span_id = ctx.parent_span_id;
  if (ctx.sampled) frame.flags |= net::Frame::kFlagSampled;
  return frame;
}

// The trace context a received frame carries.
[[nodiscard]] inline obs::SpanContext frame_context(const net::Frame& frame) {
  return obs::SpanContext{frame.trace_id, frame.parent_span_id,
                          frame.sampled()};
}

}  // namespace cachecloud::node
