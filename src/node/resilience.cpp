#include "node/resilience.hpp"

#include <algorithm>
#include <cmath>

namespace cachecloud::node {

double RetryPolicy::backoff_sec(std::uint32_t retry) {
  if (retry == 0) return 0.0;
  const double uncapped =
      config_.backoff_base_sec * std::pow(2.0, static_cast<double>(retry - 1));
  const double capped = std::min(uncapped, config_.backoff_cap_sec);
  const std::lock_guard<std::mutex> lock(mutex_);
  const double scale =
      1.0 - config_.jitter * rng_.next_double();  // U[1-jitter, 1]
  return capped * scale;
}

bool CircuitBreaker::allow(double now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open:
      if (now - opened_at_ < config_.cooldown_sec) return false;
      state_ = State::HalfOpen;
      half_open_successes_ = 0;
      probe_in_flight_ = true;
      return true;
    case State::HalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::on_success(double now) {
  (void)now;
  const std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == State::HalfOpen) {
    probe_in_flight_ = false;
    if (++half_open_successes_ >= config_.half_open_successes) {
      state_ = State::Closed;
    }
  }
}

void CircuitBreaker::on_failure(double now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++consecutive_failures_;
  if (state_ == State::HalfOpen) {
    probe_in_flight_ = false;
    trip_locked(now);  // a failed probe re-opens immediately
    return;
  }
  if (state_ == State::Closed &&
      consecutive_failures_ >= config_.failure_threshold) {
    trip_locked(now);
  }
}

void CircuitBreaker::trip_locked(double now) {
  state_ = State::Open;
  opened_at_ = now;
  consecutive_failures_ = 0;
  ++trips_;
}

CircuitBreaker::State CircuitBreaker::state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

}  // namespace cachecloud::node
