#include "node/profile_scrape.hpp"

#include <utility>

#include "net/tcp.hpp"
#include "node/protocol.hpp"

namespace cachecloud::node {

ProfileScrapeResult scrape_profiles(const std::vector<std::uint16_t>& ports,
                                    double timeout_sec) {
  ProfileScrapeResult result;
  const net::Frame request = ProfileDumpReq{}.encode();
  for (const std::uint16_t port : ports) {
    try {
      net::TcpClient client(port, timeout_sec);
      ProfileDumpResp resp = ProfileDumpResp::decode(client.call(request));
      ++result.nodes_scraped;
      NodeProfile node;
      node.node = std::move(resp.node);
      node.enabled = resp.enabled;
      node.profile = std::move(resp.profile);
      result.nodes.push_back(std::move(node));
    } catch (const std::exception& e) {
      result.errors.push_back("port " + std::to_string(port) + ": " +
                              e.what());
    }
  }
  return result;
}

obs::ContentionSummary summarize_profiles(const ProfileScrapeResult& scrape,
                                          std::size_t top_k) {
  obs::ContentionSummary summary;
  for (const NodeProfile& node : scrape.nodes) {
    if (node.enabled) summary.enabled = true;
    obs::append_contention(node.node, node.profile, summary);
  }
  obs::finalize_contention(summary, top_k);
  return summary;
}

}  // namespace cachecloud::node
