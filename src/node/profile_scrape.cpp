#include "node/profile_scrape.hpp"

#include <utility>

#include "node/protocol.hpp"
#include "node/scrape.hpp"

namespace cachecloud::node {

ProfileScrapeResult scrape_profiles(const std::vector<std::uint16_t>& ports,
                                    double timeout_sec) {
  ProfileScrapeResult result;
  // Concurrent fan-out with a per-node timeout: one dead node costs its
  // own timeout and an error line, never the other nodes' profiles.
  const std::vector<PortReply> replies =
      scrape_ports(ports, ProfileDumpReq{}.encode(), timeout_sec);
  for (const PortReply& reply : replies) {
    if (reply.unreachable) {
      result.errors.push_back("port " + std::to_string(reply.port) + ": " +
                              reply.error);
      continue;
    }
    try {
      ProfileDumpResp resp = ProfileDumpResp::decode(reply.reply);
      ++result.nodes_scraped;
      NodeProfile node;
      node.node = std::move(resp.node);
      node.enabled = resp.enabled;
      node.profile = std::move(resp.profile);
      result.nodes.push_back(std::move(node));
    } catch (const std::exception& e) {
      result.errors.push_back("port " + std::to_string(reply.port) + ": " +
                              e.what());
    }
  }
  return result;
}

obs::ContentionSummary summarize_profiles(const ProfileScrapeResult& scrape,
                                          std::size_t top_k) {
  obs::ContentionSummary summary;
  for (const NodeProfile& node : scrape.nodes) {
    if (node.enabled) summary.enabled = true;
    obs::append_contention(node.node, node.profile, summary);
  }
  obs::finalize_contention(summary, top_k);
  return summary;
}

}  // namespace cachecloud::node
