#include "node/protocol.hpp"

namespace cachecloud::node {
namespace {

net::Frame make_frame(MsgType type, net::BufferWriter&& writer) {
  net::Frame frame;
  frame.type = static_cast<std::uint16_t>(type);
  frame.payload = writer.take();
  return frame;
}

}  // namespace

std::string_view msg_type_name(std::uint16_t type) noexcept {
  switch (static_cast<MsgType>(type)) {
    case MsgType::LookupReq: return "LookupReq";
    case MsgType::LookupResp: return "LookupResp";
    case MsgType::RegisterHolder: return "RegisterHolder";
    case MsgType::DeregisterHolder: return "DeregisterHolder";
    case MsgType::Ack: return "Ack";
    case MsgType::FetchReq: return "FetchReq";
    case MsgType::FetchResp: return "FetchResp";
    case MsgType::UpdatePush: return "UpdatePush";
    case MsgType::Propagate: return "Propagate";
    case MsgType::PropagateResp: return "PropagateResp";
    case MsgType::LoadQuery: return "LoadQuery";
    case MsgType::LoadReport: return "LoadReport";
    case MsgType::RangeAnnounce: return "RangeAnnounce";
    case MsgType::HandoffCmd: return "HandoffCmd";
    case MsgType::RecordHandoff: return "RecordHandoff";
    case MsgType::Ping: return "Ping";
    case MsgType::ReplicaSync: return "ReplicaSync";
    case MsgType::PromoteReplicas: return "PromoteReplicas";
    case MsgType::StatsReq: return "StatsReq";
    case MsgType::StatsResp: return "StatsResp";
    case MsgType::SuspectNode: return "SuspectNode";
    case MsgType::ClientGetReq: return "ClientGetReq";
    case MsgType::ClientGetResp: return "ClientGetResp";
    case MsgType::ClientPublishReq: return "ClientPublishReq";
    case MsgType::ClientPublishResp: return "ClientPublishResp";
    case MsgType::TraceDumpReq: return "TraceDumpReq";
    case MsgType::TraceDumpResp: return "TraceDumpResp";
    case MsgType::ProfileDumpReq: return "ProfileDumpReq";
    case MsgType::ProfileDumpResp: return "ProfileDumpResp";
    case MsgType::TimelineDumpReq: return "TimelineDumpReq";
    case MsgType::TimelineDumpResp: return "TimelineDumpResp";
  }
  return "Unknown";
}

void expect_type(const net::Frame& frame, MsgType expected) {
  if (frame.type != static_cast<std::uint16_t>(expected)) {
    throw net::DecodeError("unexpected message type " +
                           std::to_string(frame.type) + ", expected " +
                           std::to_string(static_cast<int>(expected)));
  }
}

// ----------------------------------------------------------- lookup

net::Frame LookupReq::encode() const {
  net::BufferWriter w;
  w.str(url);
  return make_frame(MsgType::LookupReq, std::move(w));
}

LookupReq LookupReq::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::LookupReq);
  net::BufferReader r(frame.payload);
  LookupReq msg;
  msg.url = r.str();
  r.expect_end();
  return msg;
}

net::Frame LookupResp::encode() const {
  net::BufferWriter w;
  w.u8(found ? 1 : 0);
  w.u64(version);
  w.u32(static_cast<std::uint32_t>(holders.size()));
  for (const NodeId h : holders) w.u32(h);
  return make_frame(MsgType::LookupResp, std::move(w));
}

LookupResp LookupResp::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::LookupResp);
  net::BufferReader r(frame.payload);
  LookupResp msg;
  msg.found = r.u8() != 0;
  msg.version = r.u64();
  const std::uint32_t n = r.u32();
  msg.holders.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) msg.holders.push_back(r.u32());
  r.expect_end();
  return msg;
}

// ------------------------------------------------- holder registration

net::Frame RegisterHolder::encode() const {
  net::BufferWriter w;
  w.str(url);
  w.u32(node);
  w.u64(version);
  return make_frame(MsgType::RegisterHolder, std::move(w));
}

RegisterHolder RegisterHolder::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::RegisterHolder);
  net::BufferReader r(frame.payload);
  RegisterHolder msg;
  msg.url = r.str();
  msg.node = r.u32();
  msg.version = r.u64();
  r.expect_end();
  return msg;
}

net::Frame DeregisterHolder::encode() const {
  net::BufferWriter w;
  w.str(url);
  w.u32(node);
  return make_frame(MsgType::DeregisterHolder, std::move(w));
}

DeregisterHolder DeregisterHolder::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::DeregisterHolder);
  net::BufferReader r(frame.payload);
  DeregisterHolder msg;
  msg.url = r.str();
  msg.node = r.u32();
  r.expect_end();
  return msg;
}

net::Frame Ack::encode() const {
  net::BufferWriter w;
  w.u8(ok ? 1 : 0);
  w.str(error);
  return make_frame(MsgType::Ack, std::move(w));
}

Ack Ack::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::Ack);
  net::BufferReader r(frame.payload);
  Ack msg;
  msg.ok = r.u8() != 0;
  msg.error = r.str();
  r.expect_end();
  return msg;
}

// -------------------------------------------------------------- fetch

net::Frame FetchReq::encode() const {
  net::BufferWriter w;
  w.str(url);
  return make_frame(MsgType::FetchReq, std::move(w));
}

FetchReq FetchReq::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::FetchReq);
  net::BufferReader r(frame.payload);
  FetchReq msg;
  msg.url = r.str();
  r.expect_end();
  return msg;
}

net::Frame FetchResp::encode() const {
  net::BufferWriter w;
  w.u8(found ? 1 : 0);
  w.u64(version);
  w.blob(body);
  return make_frame(MsgType::FetchResp, std::move(w));
}

FetchResp FetchResp::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::FetchResp);
  net::BufferReader r(frame.payload);
  FetchResp msg;
  msg.found = r.u8() != 0;
  msg.version = r.u64();
  msg.body = r.blob();
  r.expect_end();
  return msg;
}

// ------------------------------------------------------------- update

net::Frame UpdatePush::encode(MsgType type) const {
  net::BufferWriter w;
  w.str(url);
  w.u64(version);
  w.blob(body);
  return make_frame(type, std::move(w));
}

UpdatePush UpdatePush::decode(const net::Frame& frame) {
  if (frame.type != static_cast<std::uint16_t>(MsgType::UpdatePush) &&
      frame.type != static_cast<std::uint16_t>(MsgType::Propagate)) {
    throw net::DecodeError("unexpected message type for UpdatePush");
  }
  net::BufferReader r(frame.payload);
  UpdatePush msg;
  msg.url = r.str();
  msg.version = r.u64();
  msg.body = r.blob();
  r.expect_end();
  return msg;
}

net::Frame PropagateResp::encode() const {
  net::BufferWriter w;
  w.u8(kept ? 1 : 0);
  return make_frame(MsgType::PropagateResp, std::move(w));
}

PropagateResp PropagateResp::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::PropagateResp);
  net::BufferReader r(frame.payload);
  PropagateResp msg;
  msg.kept = r.u8() != 0;
  r.expect_end();
  return msg;
}

// ---------------------------------------------------------- balancing

net::Frame LoadQuery::encode() const {
  return make_frame(MsgType::LoadQuery, net::BufferWriter{});
}

LoadQuery LoadQuery::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::LoadQuery);
  net::BufferReader r(frame.payload);
  r.expect_end();
  return LoadQuery{};
}

net::Frame LoadReport::encode() const {
  net::BufferWriter w;
  w.u32(node);
  w.f64(capability);
  w.u32(static_cast<std::uint32_t>(rings.size()));
  for (const RingLoadReport& ring : rings) {
    w.u32(ring.ring);
    w.u32(ring.range.lo);
    w.u32(ring.range.hi);
    w.f64(ring.cycle_load);
    w.u32(static_cast<std::uint32_t>(ring.per_irh.size()));
    for (const double v : ring.per_irh) w.f64(v);
  }
  return make_frame(MsgType::LoadReport, std::move(w));
}

LoadReport LoadReport::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::LoadReport);
  net::BufferReader r(frame.payload);
  LoadReport msg;
  msg.node = r.u32();
  msg.capability = r.f64();
  const std::uint32_t nrings = r.u32();
  msg.rings.reserve(nrings);
  for (std::uint32_t i = 0; i < nrings; ++i) {
    RingLoadReport ring;
    ring.ring = r.u32();
    ring.range.lo = r.u32();
    ring.range.hi = r.u32();
    ring.cycle_load = r.f64();
    const std::uint32_t nvals = r.u32();
    ring.per_irh.reserve(nvals);
    for (std::uint32_t k = 0; k < nvals; ++k) ring.per_irh.push_back(r.f64());
    msg.rings.push_back(std::move(ring));
  }
  r.expect_end();
  return msg;
}

net::Frame RangeAnnounce::encode() const {
  net::BufferWriter w;
  w.u32(static_cast<std::uint32_t>(rings.size()));
  for (const auto& ring : rings) {
    w.u32(static_cast<std::uint32_t>(ring.size()));
    for (const RangeEntry& entry : ring) {
      w.u32(entry.range.lo);
      w.u32(entry.range.hi);
      w.u32(entry.owner);
    }
  }
  return make_frame(MsgType::RangeAnnounce, std::move(w));
}

RangeAnnounce RangeAnnounce::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::RangeAnnounce);
  net::BufferReader r(frame.payload);
  RangeAnnounce msg;
  const std::uint32_t nrings = r.u32();
  msg.rings.resize(nrings);
  for (std::uint32_t i = 0; i < nrings; ++i) {
    const std::uint32_t n = r.u32();
    msg.rings[i].reserve(n);
    for (std::uint32_t k = 0; k < n; ++k) {
      RangeEntry entry;
      entry.range.lo = r.u32();
      entry.range.hi = r.u32();
      entry.owner = r.u32();
      msg.rings[i].push_back(entry);
    }
  }
  r.expect_end();
  return msg;
}

net::Frame HandoffCmd::encode() const {
  net::BufferWriter w;
  w.u32(ring);
  w.u32(values.lo);
  w.u32(values.hi);
  w.u32(target);
  return make_frame(MsgType::HandoffCmd, std::move(w));
}

HandoffCmd HandoffCmd::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::HandoffCmd);
  net::BufferReader r(frame.payload);
  HandoffCmd msg;
  msg.ring = r.u32();
  msg.values.lo = r.u32();
  msg.values.hi = r.u32();
  msg.target = r.u32();
  r.expect_end();
  return msg;
}

net::Frame RecordHandoff::encode(MsgType type) const {
  net::BufferWriter w;
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const HandoffRecord& record : records) {
    w.str(record.url);
    w.u64(record.version);
    w.u32(static_cast<std::uint32_t>(record.holders.size()));
    for (const NodeId h : record.holders) w.u32(h);
  }
  return make_frame(type, std::move(w));
}

RecordHandoff RecordHandoff::decode(const net::Frame& frame) {
  if (frame.type != static_cast<std::uint16_t>(MsgType::RecordHandoff) &&
      frame.type != static_cast<std::uint16_t>(MsgType::ReplicaSync)) {
    throw net::DecodeError("unexpected message type for RecordHandoff");
  }
  net::BufferReader r(frame.payload);
  RecordHandoff msg;
  const std::uint32_t n = r.u32();
  msg.records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    HandoffRecord record;
    record.url = r.str();
    record.version = r.u64();
    const std::uint32_t nh = r.u32();
    record.holders.reserve(nh);
    for (std::uint32_t k = 0; k < nh; ++k) record.holders.push_back(r.u32());
    msg.records.push_back(std::move(record));
  }
  r.expect_end();
  return msg;
}

net::Frame SuspectNode::encode() const {
  net::BufferWriter w;
  w.u32(node);
  w.u32(reporter);
  return make_frame(MsgType::SuspectNode, std::move(w));
}

SuspectNode SuspectNode::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::SuspectNode);
  net::BufferReader r(frame.payload);
  SuspectNode msg;
  msg.node = r.u32();
  msg.reporter = r.u32();
  r.expect_end();
  return msg;
}

// ------------------------------------------------------------- client API

net::Frame ClientGetReq::encode() const {
  net::BufferWriter w;
  w.str(url);
  return make_frame(MsgType::ClientGetReq, std::move(w));
}

ClientGetReq ClientGetReq::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::ClientGetReq);
  net::BufferReader r(frame.payload);
  ClientGetReq msg;
  msg.url = r.str();
  r.expect_end();
  return msg;
}

net::Frame ClientGetResp::encode() const {
  net::BufferWriter w;
  w.u8(ok ? 1 : 0);
  w.str(error);
  w.u64(version);
  w.u8(source);
  w.u8(degraded ? 1 : 0);
  w.u64(body_bytes);
  w.u64(body_hash);
  return make_frame(MsgType::ClientGetResp, std::move(w));
}

ClientGetResp ClientGetResp::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::ClientGetResp);
  net::BufferReader r(frame.payload);
  ClientGetResp msg;
  msg.ok = r.u8() != 0;
  msg.error = r.str();
  msg.version = r.u64();
  msg.source = r.u8();
  msg.degraded = r.u8() != 0;
  msg.body_bytes = r.u64();
  msg.body_hash = r.u64();
  r.expect_end();
  return msg;
}

net::Frame ClientPublishReq::encode() const {
  net::BufferWriter w;
  w.str(url);
  return make_frame(MsgType::ClientPublishReq, std::move(w));
}

ClientPublishReq ClientPublishReq::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::ClientPublishReq);
  net::BufferReader r(frame.payload);
  ClientPublishReq msg;
  msg.url = r.str();
  r.expect_end();
  return msg;
}

net::Frame ClientPublishResp::encode() const {
  net::BufferWriter w;
  w.u8(ok ? 1 : 0);
  w.str(error);
  w.u64(version);
  return make_frame(MsgType::ClientPublishResp, std::move(w));
}

ClientPublishResp ClientPublishResp::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::ClientPublishResp);
  net::BufferReader r(frame.payload);
  ClientPublishResp msg;
  msg.ok = r.u8() != 0;
  msg.error = r.str();
  msg.version = r.u64();
  r.expect_end();
  return msg;
}

// ---------------------------------------------------------- observability

net::Frame StatsReq::encode() const {
  return make_frame(MsgType::StatsReq, net::BufferWriter{});
}

StatsReq StatsReq::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::StatsReq);
  net::BufferReader r(frame.payload);
  r.expect_end();
  return StatsReq{};
}

namespace {

void write_labels(net::BufferWriter& w, const obs::Labels& labels) {
  w.u32(static_cast<std::uint32_t>(labels.size()));
  for (const auto& [key, value] : labels) {
    w.str(key);
    w.str(value);
  }
}

obs::Labels read_labels(net::BufferReader& r) {
  obs::Labels labels;
  const std::uint32_t n = r.u32();
  labels.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    std::string value = r.str();
    labels.emplace_back(std::move(key), std::move(value));
  }
  return labels;
}

// Snapshot wire codec, shared by StatsResp (full registry) and
// ProfileDumpResp (the profiler's slice of it).
void write_snapshot(net::BufferWriter& w, const obs::Snapshot& snapshot) {
  w.u32(static_cast<std::uint32_t>(snapshot.samples.size()));
  for (const obs::SampleSnapshot& s : snapshot.samples) {
    w.str(s.name);
    w.str(s.help);
    w.u8(static_cast<std::uint8_t>(s.kind));
    write_labels(w, s.labels);
    w.f64(s.value);
  }
  w.u32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const obs::HistogramSnapshot& h : snapshot.histograms) {
    w.str(h.name);
    w.str(h.help);
    write_labels(w, h.labels);
    w.u32(static_cast<std::uint32_t>(h.bounds.size()));
    for (const double b : h.bounds) w.f64(b);
    for (const std::uint64_t c : h.counts) w.u64(c);
    // Only buckets that recorded an exemplar are shipped.
    std::uint32_t nex = 0;
    for (const obs::Exemplar& e : h.exemplars) nex += e.trace_id != 0;
    w.u32(nex);
    for (std::uint32_t k = 0; k < h.exemplars.size(); ++k) {
      if (h.exemplars[k].trace_id == 0) continue;
      w.u32(k);
      w.f64(h.exemplars[k].value);
      w.u64(h.exemplars[k].trace_id);
    }
    w.f64(h.sum);
    w.u64(h.count);
  }
}

obs::Snapshot read_snapshot(net::BufferReader& r) {
  obs::Snapshot snapshot;
  const std::uint32_t nsamples = r.u32();
  snapshot.samples.reserve(nsamples);
  for (std::uint32_t i = 0; i < nsamples; ++i) {
    obs::SampleSnapshot s;
    s.name = r.str();
    s.help = r.str();
    s.kind = static_cast<obs::MetricKind>(r.u8());
    s.labels = read_labels(r);
    s.value = r.f64();
    snapshot.samples.push_back(std::move(s));
  }
  const std::uint32_t nhists = r.u32();
  snapshot.histograms.reserve(nhists);
  for (std::uint32_t i = 0; i < nhists; ++i) {
    obs::HistogramSnapshot h;
    h.name = r.str();
    h.help = r.str();
    h.labels = read_labels(r);
    const std::uint32_t nbounds = r.u32();
    h.bounds.reserve(nbounds);
    for (std::uint32_t k = 0; k < nbounds; ++k) h.bounds.push_back(r.f64());
    h.counts.reserve(nbounds + 1);
    for (std::uint32_t k = 0; k <= nbounds; ++k) h.counts.push_back(r.u64());
    const std::uint32_t nex = r.u32();
    if (nex > 0) h.exemplars.resize(nbounds + 1);
    for (std::uint32_t k = 0; k < nex; ++k) {
      const std::uint32_t bucket = r.u32();
      obs::Exemplar e;
      e.value = r.f64();
      e.trace_id = r.u64();
      if (bucket <= nbounds) h.exemplars[bucket] = e;
    }
    h.sum = r.f64();
    h.count = r.u64();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

// Span codec, shared by TraceDumpResp and the flight dumps inside
// TimelineDumpResp.
void write_span(net::BufferWriter& w, const obs::SpanRecord& span) {
  w.u64(span.trace_id);
  w.u64(span.span_id);
  w.u64(span.parent_span_id);
  w.str(span.node);
  w.str(span.name);
  w.u64(span.start_us);
  w.u64(span.end_us);
  w.u8(span.error ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(span.tags.size()));
  for (const auto& [key, value] : span.tags) {
    w.str(key);
    w.str(value);
  }
}

obs::SpanRecord read_span(net::BufferReader& r) {
  obs::SpanRecord span;
  span.trace_id = r.u64();
  span.span_id = r.u64();
  span.parent_span_id = r.u64();
  span.node = r.str();
  span.name = r.str();
  span.start_us = r.u64();
  span.end_us = r.u64();
  span.error = r.u8() != 0;
  const std::uint32_t ntags = r.u32();
  span.tags.reserve(ntags);
  for (std::uint32_t k = 0; k < ntags; ++k) {
    std::string key = r.str();
    std::string value = r.str();
    span.tags.emplace_back(std::move(key), std::move(value));
  }
  return span;
}

// Timeline window codec (TimelineDumpResp and its flight dumps). NaN
// values (uncovered ticks) ride the f64 encoding unchanged.
void write_window(net::BufferWriter& w, const obs::TimelineWindow& window) {
  w.f64(window.interval_sec);
  w.u32(static_cast<std::uint32_t>(window.t_sec.size()));
  for (const double t : window.t_sec) w.f64(t);
  w.u32(static_cast<std::uint32_t>(window.series.size()));
  for (const obs::SeriesSnapshot& s : window.series) {
    w.str(s.name);
    write_labels(w, s.labels);
    w.u8(static_cast<std::uint8_t>(s.kind));
    for (const double v : s.values) w.f64(v);
  }
}

obs::TimelineWindow read_window(net::BufferReader& r) {
  obs::TimelineWindow window;
  window.interval_sec = r.f64();
  const std::uint32_t nticks = r.u32();
  window.t_sec.reserve(nticks);
  for (std::uint32_t i = 0; i < nticks; ++i) window.t_sec.push_back(r.f64());
  const std::uint32_t nseries = r.u32();
  window.series.reserve(nseries);
  for (std::uint32_t i = 0; i < nseries; ++i) {
    obs::SeriesSnapshot s;
    s.name = r.str();
    s.labels = read_labels(r);
    s.kind = static_cast<obs::SeriesKind>(r.u8());
    s.values.reserve(nticks);
    for (std::uint32_t k = 0; k < nticks; ++k) s.values.push_back(r.f64());
    window.series.push_back(std::move(s));
  }
  return window;
}

}  // namespace

net::Frame StatsResp::encode() const {
  net::BufferWriter w;
  write_snapshot(w, snapshot);
  return make_frame(MsgType::StatsResp, std::move(w));
}

StatsResp StatsResp::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::StatsResp);
  net::BufferReader r(frame.payload);
  StatsResp msg;
  msg.snapshot = read_snapshot(r);
  r.expect_end();
  return msg;
}

net::Frame TraceDumpReq::encode() const {
  net::BufferWriter w;
  w.u8(drain ? 1 : 0);
  return make_frame(MsgType::TraceDumpReq, std::move(w));
}

TraceDumpReq TraceDumpReq::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::TraceDumpReq);
  net::BufferReader r(frame.payload);
  TraceDumpReq msg;
  msg.drain = r.u8() != 0;
  r.expect_end();
  return msg;
}

net::Frame TraceDumpResp::encode() const {
  net::BufferWriter w;
  w.str(node);
  w.u32(static_cast<std::uint32_t>(spans.size()));
  for (const obs::SpanRecord& span : spans) write_span(w, span);
  return make_frame(MsgType::TraceDumpResp, std::move(w));
}

TraceDumpResp TraceDumpResp::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::TraceDumpResp);
  net::BufferReader r(frame.payload);
  TraceDumpResp msg;
  msg.node = r.str();
  const std::uint32_t n = r.u32();
  msg.spans.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) msg.spans.push_back(read_span(r));
  r.expect_end();
  return msg;
}

net::Frame ProfileDumpReq::encode() const {
  return make_frame(MsgType::ProfileDumpReq, net::BufferWriter{});
}

ProfileDumpReq ProfileDumpReq::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::ProfileDumpReq);
  net::BufferReader r(frame.payload);
  r.expect_end();
  return ProfileDumpReq{};
}

net::Frame ProfileDumpResp::encode() const {
  net::BufferWriter w;
  w.str(node);
  w.u8(enabled ? 1 : 0);
  write_snapshot(w, profile);
  return make_frame(MsgType::ProfileDumpResp, std::move(w));
}

ProfileDumpResp ProfileDumpResp::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::ProfileDumpResp);
  net::BufferReader r(frame.payload);
  ProfileDumpResp msg;
  msg.node = r.str();
  msg.enabled = r.u8() != 0;
  msg.profile = read_snapshot(r);
  r.expect_end();
  return msg;
}

net::Frame TimelineDumpReq::encode() const {
  net::BufferWriter w;
  w.u8(include_flight ? 1 : 0);
  w.u8(trigger ? 1 : 0);
  return make_frame(MsgType::TimelineDumpReq, std::move(w));
}

TimelineDumpReq TimelineDumpReq::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::TimelineDumpReq);
  net::BufferReader r(frame.payload);
  TimelineDumpReq msg;
  msg.include_flight = r.u8() != 0;
  msg.trigger = r.u8() != 0;
  r.expect_end();
  return msg;
}

net::Frame TimelineDumpResp::encode() const {
  net::BufferWriter w;
  w.str(node);
  w.u8(enabled ? 1 : 0);
  write_window(w, window);
  w.u32(static_cast<std::uint32_t>(flights.size()));
  for (const obs::FlightDump& flight : flights) {
    w.str(flight.node);
    w.str(flight.reason);
    w.str(flight.detail);
    w.f64(flight.t_sec);
    w.u64(flight.seq);
    write_window(w, flight.window);
    w.u32(static_cast<std::uint32_t>(flight.spans.size()));
    for (const obs::SpanRecord& span : flight.spans) write_span(w, span);
    w.u32(static_cast<std::uint32_t>(flight.log_tail.size()));
    for (const std::string& line : flight.log_tail) w.str(line);
  }
  return make_frame(MsgType::TimelineDumpResp, std::move(w));
}

TimelineDumpResp TimelineDumpResp::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::TimelineDumpResp);
  net::BufferReader r(frame.payload);
  TimelineDumpResp msg;
  msg.node = r.str();
  msg.enabled = r.u8() != 0;
  msg.window = read_window(r);
  const std::uint32_t nflights = r.u32();
  msg.flights.reserve(nflights);
  for (std::uint32_t i = 0; i < nflights; ++i) {
    obs::FlightDump flight;
    flight.node = r.str();
    flight.reason = r.str();
    flight.detail = r.str();
    flight.t_sec = r.f64();
    flight.seq = r.u64();
    flight.window = read_window(r);
    const std::uint32_t nspans = r.u32();
    flight.spans.reserve(nspans);
    for (std::uint32_t k = 0; k < nspans; ++k) {
      flight.spans.push_back(read_span(r));
    }
    const std::uint32_t nlines = r.u32();
    flight.log_tail.reserve(nlines);
    for (std::uint32_t k = 0; k < nlines; ++k) {
      flight.log_tail.push_back(r.str());
    }
    msg.flights.push_back(std::move(flight));
  }
  r.expect_end();
  return msg;
}

WireMetrics::WireMetrics(obs::Registry& registry) {
  const char* dirs[2] = {"rx", "tx"};
  for (std::size_t type = 0; type <= kMaxType; ++type) {
    const std::string name(type == 0 ? "Unknown"
                                     : msg_type_name(
                                           static_cast<std::uint16_t>(type)));
    for (std::size_t dir = 0; dir < 2; ++dir) {
      const obs::Labels labels{{"type", name}, {"dir", dirs[dir]}};
      slots_[type][dir].messages = &registry.counter(
          "cachecloud_net_messages_total",
          "Wire messages handled, by message type and direction", labels);
      slots_[type][dir].bytes = &registry.counter(
          "cachecloud_net_bytes_total",
          "Wire bytes handled (header + payload), by message type and "
          "direction",
          labels);
    }
  }
}

void WireMetrics::on_frame(const net::Frame& frame, bool inbound) noexcept {
  const std::size_t type =
      frame.type <= kMaxType ? frame.type : 0;  // 0 = unknown bucket
  const Pair& pair = slots_[type][inbound ? 0 : 1];
  pair.messages->inc();
  pair.bytes->inc(frame.wire_bytes());
}

net::Frame PromoteReplicas::encode() const {
  net::BufferWriter w;
  w.u32(ring);
  w.u32(values.lo);
  w.u32(values.hi);
  w.u32(failed_node);
  return make_frame(MsgType::PromoteReplicas, std::move(w));
}

PromoteReplicas PromoteReplicas::decode(const net::Frame& frame) {
  expect_type(frame, MsgType::PromoteReplicas);
  net::BufferReader r(frame.payload);
  PromoteReplicas msg;
  msg.ring = r.u32();
  msg.values.lo = r.u32();
  msg.values.hi = r.u32();
  msg.failed_node = r.u32();
  r.expect_end();
  return msg;
}

}  // namespace cachecloud::node
