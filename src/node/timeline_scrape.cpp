#include "node/timeline_scrape.hpp"

#include <utility>

#include "node/protocol.hpp"
#include "node/scrape.hpp"

namespace cachecloud::node {

TimelineScrapeResult scrape_timelines(const std::vector<std::uint16_t>& ports,
                                      bool include_flight, bool trigger,
                                      double timeout_sec) {
  TimelineScrapeResult result;
  TimelineDumpReq req;
  req.include_flight = include_flight;
  req.trigger = trigger;
  const std::vector<PortReply> replies =
      scrape_ports(ports, req.encode(), timeout_sec);
  result.nodes.reserve(replies.size());
  for (const PortReply& reply : replies) {
    NodeTimeline node;
    node.port = reply.port;
    if (reply.unreachable) {
      node.unreachable = true;
      node.error = reply.error;
      result.errors.push_back("port " + std::to_string(reply.port) + ": " +
                              reply.error);
    } else {
      try {
        TimelineDumpResp resp = TimelineDumpResp::decode(reply.reply);
        node.node = std::move(resp.node);
        node.enabled = resp.enabled;
        node.window = std::move(resp.window);
        node.flights = std::move(resp.flights);
        ++result.nodes_scraped;
      } catch (const std::exception& e) {
        node.unreachable = true;
        node.error = e.what();
        result.errors.push_back("port " + std::to_string(reply.port) + ": " +
                                e.what());
      }
    }
    result.nodes.push_back(std::move(node));
  }
  return result;
}

std::vector<NodeStatsScrape> scrape_stats(
    const std::vector<std::uint16_t>& ports, double timeout_sec) {
  std::vector<NodeStatsScrape> result;
  const std::vector<PortReply> replies =
      scrape_ports(ports, StatsReq{}.encode(), timeout_sec);
  result.reserve(replies.size());
  for (const PortReply& reply : replies) {
    NodeStatsScrape node;
    node.port = reply.port;
    if (reply.unreachable) {
      node.unreachable = true;
      node.error = reply.error;
    } else {
      try {
        node.snapshot = StatsResp::decode(reply.reply).snapshot;
      } catch (const std::exception& e) {
        node.unreachable = true;
        node.error = e.what();
      }
    }
    result.push_back(std::move(node));
  }
  return result;
}

}  // namespace cachecloud::node
