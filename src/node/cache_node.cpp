#include "node/cache_node.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "cache/replacement.hpp"
#include "net/fault_injector.hpp"
#include "obs/build_info.hpp"
#include "obs/span.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace cachecloud::node {
namespace {

const char* source_name(CacheNode::GetResult::Source source) {
  switch (source) {
    case CacheNode::GetResult::Source::Local: return "local";
    case CacheNode::GetResult::Source::Cloud: return "cloud";
    case CacheNode::GetResult::Source::Origin: return "origin";
  }
  return "?";
}

// Builds this node's disk tier, rooted at `<disk.directory>/node-<id>` so
// cluster nodes sharing one cache directory never collide. Empty directory
// (the default) means memory-only. Recovery runs inside the DiskTier
// constructor, before the node's server exists.
std::unique_ptr<cache::DiskTier> make_disk_tier(const NodeConfig& config,
                                                NodeId id,
                                                obs::Registry& registry) {
  if (config.disk.directory.empty()) return nullptr;
  cache::DiskTierConfig cfg = config.disk;
  cfg.directory = (std::filesystem::path(config.disk.directory) /
                   ("node-" + std::to_string(id)))
                      .string();
  return std::make_unique<cache::DiskTier>(cfg, &registry);
}

}  // namespace

CacheNode::CacheNode(NodeId id, const NodeConfig& config)
    : id_(id),
      config_(config),
      start_(std::chrono::steady_clock::now()),
      request_monitor_(config.monitor_half_life_sec),
      rings_(config.num_caches, config.ring_size, config.irh_gen),
      placement_(core::make_placement(config.placement, config.utility)),
      node_label_("cache-" + std::to_string(id)),
      store_(config.capacity_bytes, cache::make_policy(config.replacement),
             make_disk_tier(config, id, registry_),
             config.disk_write_through) {
  if (id_ >= config_.num_caches) {
    throw std::invalid_argument("CacheNode: id outside cluster");
  }
  if (config_.trace.collect) {
    span_store_ = std::make_unique<obs::SpanStore>(config_.trace.store);
  }

  const auto hit_counter = [this](const char* hit_class) {
    return &registry_.counter("cachecloud_gets_total",
                              "Client get() calls served, by hit class",
                              {{"class", hit_class}});
  };
  inst_.get_local = hit_counter("local");
  inst_.get_disk = hit_counter("disk");
  inst_.get_cloud = hit_counter("cloud");
  inst_.get_origin = hit_counter("origin");
  inst_.placement_accept = &registry_.counter(
      "cachecloud_placement_total",
      "Placement decisions for fetched copies at the requester",
      {{"decision", "accept"}});
  inst_.placement_reject = &registry_.counter(
      "cachecloud_placement_total",
      "Placement decisions for fetched copies at the requester",
      {{"decision", "reject"}});
  inst_.evictions = &registry_.counter(
      "cachecloud_evictions_total",
      "Local copies evicted by the replacement policy");
  inst_.lookups_served = &registry_.counter(
      "cachecloud_beacon_requests_total",
      "Requests served in the beacon-point role, by operation",
      {{"op", "lookup"}});
  inst_.updates_served = &registry_.counter(
      "cachecloud_beacon_requests_total",
      "Requests served in the beacon-point role, by operation",
      {{"op", "update_push"}});
  inst_.propagates_received = &registry_.counter(
      "cachecloud_propagates_received_total",
      "Update propagations received as a holder");
  inst_.drops_on_update = &registry_.counter(
      "cachecloud_drops_on_update_total",
      "Copies dropped on update by the placement policy");
  inst_.replica_syncs = &registry_.counter(
      "cachecloud_replica_syncs_total",
      "Lazy replica-sync rounds shipped to ring peers");
  inst_.replica_sync_records = &registry_.counter(
      "cachecloud_replica_sync_records_total",
      "Lookup records shipped by replica syncs");
  inst_.peer_retries = &registry_.counter(
      "cachecloud_peer_retries_total",
      "peer_call attempts re-issued after a failure");
  inst_.peer_failures = &registry_.counter(
      "cachecloud_peer_call_failures_total",
      "peer_call attempts that ended in a transport error");
  inst_.breaker_trips = &registry_.counter(
      "cachecloud_breaker_trips_total",
      "Circuit-breaker transitions to open, across all peers");
  inst_.breaker_short_circuits = &registry_.counter(
      "cachecloud_breaker_short_circuits_total",
      "peer_calls rejected without an attempt by an open breaker");
  const auto degraded_counter = [this](const char* phase) {
    return &registry_.counter(
        "cachecloud_degraded_serves_total",
        "get() protocol phases skipped because a beacon point was "
        "unreachable; the request was still served",
        {{"phase", phase}});
  };
  inst_.degraded_lookup = degraded_counter("lookup");
  inst_.degraded_register = degraded_counter("register");
  inst_.degraded_beacon_push = degraded_counter("beacon_push");
  inst_.suspects_reported = &registry_.counter(
      "cachecloud_suspects_reported_total",
      "SuspectNode reports sent to the coordinator");
  inst_.recovery_announced = &registry_.counter(
      "cachecloud_recovery_announced_total",
      "Disk-recovered documents re-registered at their beacon points");
  inst_.get_latency = &registry_.histogram(
      "cachecloud_get_latency_seconds",
      "End-to-end client get() latency", obs::default_latency_bounds());
  const auto phase_hist = [this](const char* phase) {
    return &registry_.histogram(
        "cachecloud_get_phase_seconds",
        "get() time spent per protocol phase (lookup RTT, holder/origin "
        "fetch, placement + registration)",
        obs::default_latency_bounds(), {{"phase", phase}});
  };
  inst_.phase_lookup = phase_hist("lookup");
  inst_.phase_fetch = phase_hist("fetch");
  inst_.phase_placement = phase_hist("placement");
  inst_.cached_docs = &registry_.gauge(
      "cachecloud_cached_docs", "Documents currently in the local store");
  inst_.directory_records = &registry_.gauge(
      "cachecloud_directory_records",
      "Authoritative lookup records held as a beacon point");
  inst_.replica_records = &registry_.gauge(
      "cachecloud_replica_records",
      "Lazily-replicated lookup records held for ring peers");
  inst_.recovered_docs = &registry_.gauge(
      "cachecloud_recovered_docs",
      "Documents replayed from the disk manifest at the last startup");

  // Per-node retry jitter seed: deterministic, distinct per node.
  retry_ = std::make_unique<RetryPolicy>(
      config_.retry, util::hash_combine(0xC0FFEEULL, id_));

  // Attach the contention profiler before the server's threads exist, so
  // every thread that can touch these mutexes sees bound instruments.
  state_mutex_.bind(registry_, "state_mutex_");
  peers_mutex_.bind(registry_, "peers_mutex_");

  obs::register_build_info(registry_);

  // Replay whatever the disk tier recovered into the node's url table and
  // memory tier before the server can see traffic.
  recover_from_disk();

  if (config_.timeline.enabled) {
    timeline_ = std::make_unique<obs::Timeline>(config_.timeline);
    flight_ = std::make_unique<obs::FlightRecorder>(
        node_label_, timeline_.get(), span_store_.get(), config_.flight,
        [this] { return now(); });
    sampler_ = std::make_unique<obs::TimelineSampler>(
        *timeline_, config_.timeline.interval_sec,
        [this] { return metrics_snapshot(); }, [this] { return now(); },
        [this] { sample_tick(); });
  }

  server_ = std::make_unique<net::EventServer>(
      config_.listen_port, [this](const net::Frame& f) { return handle(f); },
      &wire_metrics_, config_.fault_injector, &registry_);
}

void CacheNode::sample_tick() {
  const cache::DiskTier* disk = store_.disk();
  if (disk == nullptr || flight_ == nullptr) return;
  const bool degraded = disk->degraded();
  if (degraded && !disk_was_degraded_) {
    flight_->trigger("disk_degrade",
                     "disk tier degraded to memory-only operation");
  }
  disk_was_degraded_ = degraded;
}

void CacheNode::recover_from_disk() {
  cache::DiskTier* disk = store_.disk();
  if (!disk) return;
  const obs::TimedLock lock(state_mutex_);
  const auto& recovered = disk->recovered();
  // Most-recently-used last in the manifest: preload from the back so the
  // warm end of the LRU wins the memory budget.
  for (auto it = recovered.rbegin(); it != recovered.rend(); ++it) {
    const trace::DocId doc = intern(it->url);
    (void)store_.load_recovered(doc, it->url, now());
    recovery_announce_.emplace_back(it->url, it->version);
  }
  inst_.recovered_docs->set(static_cast<double>(recovered.size()));
  if (!recovered.empty()) {
    CC_LOG(Info) << "node " << id_ << ": warm restart recovered "
                 << recovered.size() << " documents from disk ("
                 << disk->dropped_records() << " records dropped)";
  }
}

std::size_t CacheNode::announce_recovered() {
  std::vector<std::pair<std::string, std::uint64_t>> pending;
  {
    const obs::TimedLock lock(state_mutex_);
    pending.swap(recovery_announce_);
  }
  std::size_t announced = 0;
  for (const auto& [url, version] : pending) {
    const RingView::Target target = rings_.resolve(url);
    RegisterHolder reg;
    reg.url = url;
    reg.node = id_;
    reg.version = version;
    try {
      (void)peer_call(target.beacon, reg.encode());
      ++announced;
      inst_.recovery_announced->inc();
    } catch (const std::exception& e) {
      CC_LOG(Warn) << "node " << id_ << ": recovery announce of " << url
                   << " at beacon " << target.beacon << " failed: "
                   << e.what();
    }
  }
  return announced;
}

std::size_t CacheNode::recovered_docs() const {
  const cache::DiskTier* disk = store_.disk();
  return disk ? disk->recovered().size() : 0;
}

CacheNode::~CacheNode() { stop(); }

void CacheNode::stop() {
  if (sampler_) sampler_->stop();
  if (server_) server_->stop();
}

void CacheNode::hard_kill() {
  if (sampler_) sampler_->stop();
  if (server_) server_->stop();
  if (cache::DiskTier* disk = store_.disk()) disk->hard_stop();
}

void CacheNode::flush_disk() {
  if (cache::DiskTier* disk = store_.disk()) disk->flush();
}

void CacheNode::set_endpoints(const Endpoints& endpoints) {
  const obs::TimedLock lock(peers_mutex_);
  if (endpoints.cache_ports.size() != config_.num_caches) {
    throw std::invalid_argument("CacheNode: endpoint table size mismatch");
  }
  endpoints_ = endpoints;
  endpoints_set_ = true;
  peers_.clear();
}

double CacheNode::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

trace::DocId CacheNode::intern(const std::string& url) {
  const auto [it, inserted] =
      url_to_doc_.try_emplace(url, static_cast<trace::DocId>(doc_to_url_.size()));
  if (inserted) doc_to_url_.push_back(url);
  return it->second;
}

CacheNode::PeerState& CacheNode::peer_state_locked(NodeId peer) {
  auto [it, inserted] = peers_.try_emplace(peer);
  PeerState& state = it->second;
  if (inserted) {
    state.breaker = std::make_shared<CircuitBreaker>(config_.breaker);
    state.state_gauge = &registry_.gauge(
        "cachecloud_breaker_state",
        "Per-peer circuit-breaker state: 0 closed, 1 open, 2 half-open",
        {{"peer", peer == kOriginId ? "origin" : std::to_string(peer)}});
  }
  return state;
}

std::shared_ptr<CircuitBreaker> CacheNode::breaker_for(NodeId peer) {
  const obs::TimedLock lock(peers_mutex_);
  return peer_state_locked(peer).breaker;
}

net::Frame CacheNode::peer_call_once(NodeId peer, const net::Frame& request) {
  std::shared_ptr<net::MuxClient> client;
  {
    const obs::TimedLock lock(peers_mutex_);
    if (!endpoints_set_) {
      throw net::NetError("CacheNode: endpoints not configured");
    }
    PeerState& state = peer_state_locked(peer);
    if (!state.client) {
      const std::uint16_t port = peer == kOriginId
                                     ? endpoints_.origin_port
                                     : endpoints_.cache_ports.at(peer);
      state.client = std::make_shared<net::MuxClient>(
          port, config_.retry.attempt_timeout_sec, &wire_metrics_,
          config_.fault_injector, &registry_);
    }
    client = state.client;
  }
  try {
    return client->call(request);
  } catch (const net::NetError&) {
    // Drop the pooled connection so the next attempt reconnects; only if
    // it is still the one we used (a concurrent failure may already have
    // replaced it). In-flight calls hold their own shared_ptr.
    const obs::TimedLock lock(peers_mutex_);
    const auto it = peers_.find(peer);
    if (it != peers_.end() && it->second.client == client) {
      it->second.client.reset();
    }
    throw;
  }
}

bool CacheNode::note_peer_failure(NodeId peer) {
  const obs::TimedLock lock(peers_mutex_);
  PeerState& state = peer_state_locked(peer);
  state.state_gauge->set(breaker_state_value(state.breaker->state()));
  const std::uint64_t trips = state.breaker->trips();
  if (trips > state.reported_trips) {
    inst_.breaker_trips->inc(trips - state.reported_trips);
    state.reported_trips = trips;
    // Rare by construction (a trip, not every failure), so the dump's cost
    // under peers_mutex_ is acceptable; trigger() takes no node locks.
    if (flight_) {
      flight_->trigger("breaker_trip",
                       "breaker for peer " +
                           (peer == kOriginId ? std::string("origin")
                                              : std::to_string(peer)) +
                           " opened (trip " + std::to_string(trips) + ")");
    }
  }
  const std::uint32_t suspect_after = config_.breaker.suspect_after_trips;
  if (config_.auto_failover && suspect_after > 0 && peer != kOriginId &&
      !state.suspected && trips >= suspect_after) {
    state.suspected = true;
    return true;
  }
  return false;
}

void CacheNode::report_suspect(NodeId peer) {
  SuspectNode report;
  report.node = peer;
  report.reporter = id_;
  inst_.suspects_reported->inc();
  CC_LOG(Warn) << "node " << id_ << ": peer " << peer
               << " suspected dead, reporting to coordinator";
  try {
    const Ack ack = Ack::decode(peer_call(kOriginId, report.encode()));
    if (!ack.ok) {
      CC_LOG(Warn) << "node " << id_ << ": suspicion of peer " << peer
                   << " rejected: " << ack.error;
    }
  } catch (const std::exception& e) {
    CC_LOG(Warn) << "node " << id_ << ": suspicion report for peer " << peer
                 << " failed: " << e.what();
  }
}

net::Frame CacheNode::peer_call(NodeId peer, const net::Frame& request) {
  const std::shared_ptr<CircuitBreaker> breaker = breaker_for(peer);
  const double start = now();
  if (!breaker->allow(start)) {
    inst_.breaker_short_circuits->inc();
    throw net::NetError("peer " + std::to_string(peer) + ": circuit open");
  }
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      net::Frame reply = peer_call_once(peer, request);
      breaker->on_success(now());
      return reply;
    } catch (const net::NetError&) {
      breaker->on_failure(now());
      inst_.peer_failures->inc();
      const bool suspect = note_peer_failure(peer);
      if (suspect) report_suspect(peer);
      const bool budget_left =
          attempt < config_.retry.max_attempts &&
          now() - start < config_.retry.call_deadline_sec;
      if (!budget_left || !breaker->allow(now())) throw;
      inst_.peer_retries->inc();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(retry_->backoff_sec(attempt)));
    }
  }
}

void CacheNode::record_beacon_load(std::uint32_t ring, std::uint32_t irh,
                                   double amount) {
  auto& loads = irh_loads_[ring];
  if (loads.empty()) loads.assign(config_.irh_gen, 0.0);
  loads[irh] += amount;
}

core::PlacementContext CacheNode::make_context(const std::string& url,
                                               trace::DocId doc,
                                               std::size_t cloud_copies,
                                               bool is_beacon, double at) {
  (void)url;
  core::PlacementContext ctx;
  ctx.cache = id_;
  ctx.doc = doc;
  ctx.now = at;
  ctx.is_beacon = is_beacon;
  const auto access = access_monitors_.find(doc);
  ctx.access_rate = access == access_monitors_.end()
                        ? 0.0
                        : access->second.rate(at);
  const auto update = update_monitors_.find(doc);
  ctx.update_rate = update == update_monitors_.end()
                        ? 0.0
                        : update->second.rate(at);
  const cache::DocumentStore& mem = store_.memory();
  ctx.mean_access_rate_at_cache =
      mem.doc_count() > 0
          ? request_monitor_.rate(at) / static_cast<double>(mem.doc_count())
          : 0.0;
  ctx.cloud_copies = cloud_copies;
  ctx.residence_sec = mem.expected_residence_sec(at);
  return ctx;
}

bool CacheNode::store_copy(const std::string& url, trace::DocId doc,
                           const std::vector<std::uint8_t>& body,
                           std::uint64_t version) {
  cache::TieredPutResult put;
  {
    const obs::TimedLock lock(state_mutex_);
    put = store_.put(doc, url, body, version, now());
  }
  // Memory evictions: spilled copies stay registered (still served from
  // disk); only documents gone from every tier are deregistered.
  inst_.evictions->inc(put.spilled + put.dropped_urls.size());
  deregister_urls(put.dropped_urls);
  return put.stored;
}

void CacheNode::deregister_urls(const std::vector<std::string>& urls) {
  for (const std::string& victim_url : urls) {
    const RingView::Target target = rings_.resolve(victim_url);
    DeregisterHolder dereg;
    dereg.url = victim_url;
    dereg.node = id_;
    try {
      (void)peer_call(target.beacon, dereg.encode());
    } catch (const std::exception& e) {
      CC_LOG(Warn) << "node " << id_ << ": dereg of " << victim_url
                   << " at beacon " << target.beacon << " failed: " << e.what();
    }
  }
}

// --------------------------------------------------------------- get

CacheNode::GetResult CacheNode::get(const std::string& url) {
  const std::uint64_t trace_id = obs::next_trace_id();
  const bool sampled =
      obs::sample_trace(trace_id, config_.trace.sample_probability);
  return get(url, obs::SpanContext{trace_id, 0, sampled});
}

CacheNode::GetResult CacheNode::get(const std::string& url,
                                    const obs::SpanContext& ctx) {
  obs::Span span(ctx, "get", span_store_.get(), node_label_);
  span.tag("node", static_cast<std::uint64_t>(id_)).tag("url", url);
  try {
    return get_impl(url, span);
  } catch (...) {
    span.mark_error();
    throw;
  }
}

CacheNode::GetResult CacheNode::get_impl(const std::string& url,
                                         obs::Span& span) {
  const double at = now();
  const RingView::Target target = rings_.resolve(url);
  trace::DocId doc;
  {
    const obs::TimedLock lock(state_mutex_);
    ++counters_.gets;
    doc = intern(url);
    access_monitors_
        .try_emplace(doc, util::RateEstimator(config_.monitor_half_life_sec))
        .first->second.record(at);
    request_monitor_.record(at);

    cache::TieredStore::ReadResult local = store_.get(doc, url, at);
    if (local.found) {
      ++counters_.local_hits;
      if (local.from_disk) ++counters_.disk_hits;
      GetResult result;
      result.body = std::move(local.body);
      result.version = local.version;
      result.source = GetResult::Source::Local;
      (local.from_disk ? inst_.get_disk : inst_.get_local)->inc();
      inst_.get_latency->observe(span.elapsed_sec(),
                                 span_store_ ? span.trace_id() : 0);
      span.tag("class", local.from_disk ? "disk" : "local");
      return result;
    }
  }

  // Local miss: consult the beacon point. An unreachable beacon degrades
  // the request instead of failing it: skip the cooperative lookup, fetch
  // from the origin and decide placement with local knowledge only.
  obs::Stopwatch phase;
  LookupReq lookup;
  lookup.url = url;
  LookupResp resp;
  bool degraded = false;
  try {
    resp = LookupResp::decode(peer_call(
        target.beacon, with_trace(lookup.encode(), span.child_context())));
  } catch (const net::NetError& e) {
    degraded = true;
    inst_.degraded_lookup->inc();
    CC_LOG(Warn) << "node " << id_ << ": beacon " << target.beacon
                 << " unreachable for " << url
                 << ", serving degraded: " << e.what();
  }
  const double lookup_sec = phase.lap_sec();
  inst_.phase_lookup->observe(lookup_sec);

  GetResult result;
  bool fetched = false;
  std::size_t copies = 0;
  if (resp.found) {
    copies = resp.holders.size();
    for (const NodeId holder : resp.holders) {
      if (holder == id_) continue;
      FetchReq fetch;
      fetch.url = url;
      try {
        const FetchResp body = FetchResp::decode(peer_call(
            holder, with_trace(fetch.encode(), span.child_context())));
        if (body.found) {
          result.body = body.body;
          result.version = body.version;
          result.source = GetResult::Source::Cloud;
          fetched = true;
          break;
        }
      } catch (const std::exception& e) {
        CC_LOG(Warn) << "node " << id_ << ": fetch of " << url
                     << " from holder " << holder << " failed: " << e.what();
      }
    }
  }
  if (!fetched) {
    FetchReq fetch;
    fetch.url = url;
    const FetchResp body = FetchResp::decode(peer_call(
        kOriginId, with_trace(fetch.encode(), span.child_context())));
    if (!body.found) {
      throw std::runtime_error("origin does not know document " + url);
    }
    result.body = body.body;
    result.version = body.version;
    result.source = GetResult::Source::Origin;
  }
  const double fetch_sec = phase.lap_sec();
  inst_.phase_fetch->observe(fetch_sec);

  {
    const obs::TimedLock lock(state_mutex_);
    if (result.source == GetResult::Source::Cloud) {
      ++counters_.cloud_hits;
    } else {
      ++counters_.origin_fetches;
    }
  }
  (result.source == GetResult::Source::Cloud ? inst_.get_cloud
                                             : inst_.get_origin)
      ->inc();

  // Placement decision for the fetched copy.
  bool want_store;
  {
    const obs::TimedLock lock(state_mutex_);
    const core::PlacementContext ctx =
        make_context(url, doc, copies, target.beacon == id_, at);
    want_store = placement_->store_at_requester(ctx);
  }
  (want_store ? inst_.placement_accept : inst_.placement_reject)->inc();
  if (want_store && store_copy(url, doc, result.body, result.version)) {
    result.stored = true;
    if (!degraded) {
      RegisterHolder reg;
      reg.url = url;
      reg.node = id_;
      reg.version = result.version;
      try {
        (void)peer_call(target.beacon,
                        with_trace(reg.encode(), span.child_context()));
      } catch (const net::NetError& e) {
        // The copy stays local-only until the next registration refresh; an
        // unregistered copy is a lost cloud hit, never a correctness issue.
        inst_.degraded_register->inc();
        CC_LOG(Warn) << "node " << id_ << ": registration of " << url
                     << " at beacon " << target.beacon
                     << " failed: " << e.what();
      }
    } else {
      inst_.degraded_register->inc();
    }
  }

  // Beacon-point placement: after an origin fetch, push the single cloud
  // copy to the document's beacon point.
  if (!degraded && result.source == GetResult::Source::Origin &&
      placement_->replicate_to_beacon_on_group_miss() &&
      target.beacon != id_) {
    try {
      UpdatePush push;
      push.url = url;
      push.version = result.version;
      push.body = result.body;
      (void)peer_call(target.beacon,
                      with_trace(push.encode(MsgType::Propagate),
                                 span.child_context()));
      RegisterHolder reg;
      reg.url = url;
      reg.node = target.beacon;
      reg.version = result.version;
      (void)peer_call(target.beacon,
                      with_trace(reg.encode(), span.child_context()));
    } catch (const net::NetError& e) {
      inst_.degraded_beacon_push->inc();
      CC_LOG(Warn) << "node " << id_ << ": beacon placement of " << url
                   << " at " << target.beacon << " failed: " << e.what();
    }
  }
  const double placement_sec = phase.lap_sec();
  inst_.phase_placement->observe(placement_sec);
  inst_.get_latency->observe(span.elapsed_sec(),
                             span_store_ ? span.trace_id() : 0);
  result.degraded = degraded;
  if (degraded) {
    // Degraded serves count as errored for tail retention: they are
    // exactly the requests an operator wants to find in the trace dump.
    span.mark_error();
    span.tag("degraded", static_cast<std::uint64_t>(1));
  }
  span.tag("class", source_name(result.source))
      .tag("beacon", static_cast<std::uint64_t>(target.beacon))
      .phase("lookup", lookup_sec)
      .phase("fetch", fetch_sec)
      .phase("placement", placement_sec);
  return result;
}

// ----------------------------------------------------------- handlers

net::Frame CacheNode::handle(const net::Frame& request) {
  // Handled before the hop span opens: ClientGetReq roots its own trace
  // inside get() (the client-facing span IS the tree root), and scrape
  // traffic (stats, trace dumps) must not trace itself.
  switch (static_cast<MsgType>(request.type)) {
    case MsgType::ClientGetReq: return handle_client_get(request);
    case MsgType::StatsReq: return handle_stats(request);
    case MsgType::TraceDumpReq: return handle_trace_dump(request);
    case MsgType::ProfileDumpReq: return handle_profile_dump(request);
    case MsgType::TimelineDumpReq: return handle_timeline_dump(request);
    default: break;
  }
  // One span per hop, named after the message and linked to the sending
  // hop's span via the frame's trace context: a traced request leaves a
  // Debug line — and, when collection is on, a stored span — at every
  // node it touches.
  obs::Span span(frame_context(request),
                 std::string(msg_type_name(request.type)), span_store_.get(),
                 node_label_);
  span.tag("node", static_cast<std::uint64_t>(id_));
  try {
    switch (static_cast<MsgType>(request.type)) {
      case MsgType::LookupReq: return handle_lookup(request);
      case MsgType::RegisterHolder: return handle_register(request);
      case MsgType::DeregisterHolder: return handle_deregister(request);
      case MsgType::FetchReq: return handle_fetch(request);
      case MsgType::UpdatePush:
        return handle_update_push(request, span.child_context());
      case MsgType::Propagate: return handle_propagate(request);
      case MsgType::LoadQuery: return handle_load_query(request);
      case MsgType::RangeAnnounce: return handle_range_announce(request);
      case MsgType::HandoffCmd: return handle_handoff_cmd(request);
      case MsgType::RecordHandoff: return handle_record_handoff(request);
      case MsgType::ReplicaSync: return handle_replica_sync(request);
      case MsgType::PromoteReplicas: return handle_promote_replicas(request);
      case MsgType::Ping: return Ack{}.encode();
      default: break;
    }
    Ack nack;
    nack.ok = false;
    nack.error = "unsupported message type " + std::to_string(request.type);
    return nack.encode();
  } catch (const std::exception& e) {
    span.mark_error();
    Ack nack;
    nack.ok = false;
    nack.error = e.what();
    return nack.encode();
  }
}

net::Frame CacheNode::handle_lookup(const net::Frame& request) {
  const LookupReq req = LookupReq::decode(request);
  const RingView::Target target = rings_.resolve(req.url);
  const obs::TimedLock lock(state_mutex_);
  ++counters_.lookups_served;
  inst_.lookups_served->inc();
  record_beacon_load(target.ring, target.irh, 1.0);

  LookupResp resp;
  const auto it = directory_.find(req.url);
  if (it != directory_.end() && !it->second.holders.empty()) {
    resp.found = true;
    resp.version = it->second.version;
    resp.holders = it->second.holders;
  }
  return resp.encode();
}

net::Frame CacheNode::handle_register(const net::Frame& request) {
  const RegisterHolder req = RegisterHolder::decode(request);
  const obs::TimedLock lock(state_mutex_);
  DirectoryRecord& record = directory_[req.url];
  record.version = std::max(record.version, req.version);
  const auto it = std::lower_bound(record.holders.begin(),
                                   record.holders.end(), req.node);
  if (it == record.holders.end() || *it != req.node) {
    record.holders.insert(it, req.node);
  }
  return Ack{}.encode();
}

net::Frame CacheNode::handle_deregister(const net::Frame& request) {
  const DeregisterHolder req = DeregisterHolder::decode(request);
  const obs::TimedLock lock(state_mutex_);
  const auto it = directory_.find(req.url);
  if (it != directory_.end()) {
    std::erase(it->second.holders, req.node);
    if (it->second.holders.empty()) directory_.erase(it);
  }
  return Ack{}.encode();
}

net::Frame CacheNode::handle_fetch(const net::Frame& request) {
  const FetchReq req = FetchReq::decode(request);
  const obs::TimedLock lock(state_mutex_);
  FetchResp resp;
  const auto doc_it = url_to_doc_.find(req.url);
  if (doc_it != url_to_doc_.end()) {
    cache::TieredStore::ReadResult doc =
        store_.get(doc_it->second, req.url, now());
    if (doc.found) {
      resp.found = true;
      resp.version = doc.version;
      resp.body = std::move(doc.body);
    }
  }
  return resp.encode();
}

net::Frame CacheNode::handle_update_push(const net::Frame& request,
                                         const obs::SpanContext& ctx) {
  const UpdatePush push = UpdatePush::decode(request);
  const RingView::Target target = rings_.resolve(push.url);

  std::vector<NodeId> holders;
  {
    const obs::TimedLock lock(state_mutex_);
    ++counters_.updates_served;
    inst_.updates_served->inc();
    const trace::DocId doc = intern(push.url);
    update_monitors_
        .try_emplace(doc, util::RateEstimator(config_.monitor_half_life_sec))
        .first->second.record(now());
    const auto it = directory_.find(push.url);
    if (it != directory_.end()) {
      it->second.version = std::max(it->second.version, push.version);
      holders = it->second.holders;
    }
    record_beacon_load(target.ring, target.irh,
                       1.0 + static_cast<double>(holders.size()));
  }

  // Fan the new version out to every holder (including ourselves if we
  // hold a copy — handled via the same local path below for symmetry).
  std::vector<NodeId> dropped;
  for (const NodeId holder : holders) {
    try {
      net::Frame reply;
      const net::Frame propagate =
          with_trace(push.encode(MsgType::Propagate), ctx);
      if (holder == id_) {
        reply = handle_propagate(propagate);
      } else {
        reply = peer_call(holder, propagate);
      }
      const PropagateResp resp = PropagateResp::decode(reply);
      if (!resp.kept) dropped.push_back(holder);
    } catch (const std::exception& e) {
      CC_LOG(Warn) << "node " << id_ << ": propagate of " << push.url
                   << " to holder " << holder << " failed: " << e.what();
    }
  }
  if (!dropped.empty()) {
    const obs::TimedLock lock(state_mutex_);
    const auto it = directory_.find(push.url);
    if (it != directory_.end()) {
      for (const NodeId node : dropped) std::erase(it->second.holders, node);
      if (it->second.holders.empty()) directory_.erase(it);
    }
  }
  return Ack{}.encode();
}

net::Frame CacheNode::handle_propagate(const net::Frame& request) {
  const UpdatePush push = UpdatePush::decode(request);
  const double at = now();
  PropagateResp resp;
  cache::TieredPutResult side;
  {
    const obs::TimedLock lock(state_mutex_);
    ++counters_.propagates_received;
    inst_.propagates_received->inc();
    const trace::DocId doc = intern(push.url);
    update_monitors_
        .try_emplace(doc, util::RateEstimator(config_.monitor_half_life_sec))
        .first->second.record(at);

    if (!store_.holds(doc, push.url)) {
      // Not a holder (e.g. beacon-placement push of a fresh copy): the
      // placement policy decides whether to adopt it. As the designated
      // beacon-placement holder we accept unconditionally (a put into an
      // unlimited store cannot fail; bounded stores may still reject an
      // oversized body).
      const RingView::Target target = rings_.resolve(push.url);
      const core::PlacementContext ctx =
          make_context(push.url, doc, 0, target.beacon == id_, at);
      const bool adopt = (placement_->replicate_to_beacon_on_group_miss() &&
                          target.beacon == id_) ||
                         placement_->store_at_requester(ctx);
      if (adopt) {
        side = store_.put(doc, push.url, push.body, push.version, at);
        resp.kept = side.stored;
      }
    } else {
      const core::PlacementContext ctx =
          make_context(push.url, doc, 1,
                       rings_.resolve(push.url).beacon == id_, at);
      if (placement_->keep_on_update(ctx)) {
        resp.kept = store_.apply_update(doc, push.url, push.body,
                                        push.version, at, &side);
      } else {
        (void)store_.erase(doc, push.url);
        ++counters_.drops_on_update;
        inst_.drops_on_update->inc();
        resp.kept = false;
      }
    }
  }
  // Tier side effects settle outside the lock, exactly like store_copy.
  inst_.evictions->inc(side.spilled + side.dropped_urls.size());
  deregister_urls(side.dropped_urls);
  return resp.encode();
}

net::Frame CacheNode::handle_load_query(const net::Frame& request) {
  (void)LoadQuery::decode(request);
  const obs::TimedLock lock(state_mutex_);
  LoadReport report;
  report.node = id_;
  report.capability = 1.0;
  for (const std::uint32_t ring : rings_.rings_of(id_)) {
    RingLoadReport entry;
    entry.ring = ring;
    entry.range = rings_.range_of(ring, id_);
    const auto it = irh_loads_.find(ring);
    entry.per_irh.assign(entry.range.length(), 0.0);
    if (it != irh_loads_.end()) {
      for (std::uint32_t k = 0; k < entry.range.length(); ++k) {
        entry.per_irh[k] = it->second[entry.range.lo + k];
        entry.cycle_load += entry.per_irh[k];
      }
    }
    report.rings.push_back(std::move(entry));
  }
  // Reporting ends the accounting cycle.
  irh_loads_.clear();
  return report.encode();
}

net::Frame CacheNode::handle_range_announce(const net::Frame& request) {
  const RangeAnnounce announce = RangeAnnounce::decode(request);
  rings_.apply(announce);
  return Ack{}.encode();
}

net::Frame CacheNode::handle_handoff_cmd(const net::Frame& request) {
  const HandoffCmd cmd = HandoffCmd::decode(request);

  RecordHandoff handoff;
  {
    const obs::TimedLock lock(state_mutex_);
    for (auto it = directory_.begin(); it != directory_.end();) {
      const core::UrlHash hash = core::hash_url(it->first);
      const std::uint32_t ring = hash.ring(rings_.num_rings());
      const std::uint32_t irh = hash.irh(config_.irh_gen);
      if (ring == cmd.ring && cmd.values.contains(irh)) {
        HandoffRecord record;
        record.url = it->first;
        record.version = it->second.version;
        record.holders = it->second.holders;
        handoff.records.push_back(std::move(record));
        it = directory_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!handoff.records.empty()) {
    const Ack ack = Ack::decode(peer_call(cmd.target, handoff.encode()));
    if (!ack.ok) {
      throw std::runtime_error("record handoff rejected: " + ack.error);
    }
  }
  return Ack{}.encode();
}

net::Frame CacheNode::handle_record_handoff(const net::Frame& request) {
  const RecordHandoff handoff = RecordHandoff::decode(request);
  const obs::TimedLock lock(state_mutex_);
  for (const HandoffRecord& record : handoff.records) {
    DirectoryRecord& mine = directory_[record.url];
    mine.version = std::max(mine.version, record.version);
    for (const NodeId holder : record.holders) {
      const auto it =
          std::lower_bound(mine.holders.begin(), mine.holders.end(), holder);
      if (it == mine.holders.end() || *it != holder) {
        mine.holders.insert(it, holder);
      }
    }
  }
  return Ack{}.encode();
}

net::Frame CacheNode::handle_replica_sync(const net::Frame& request) {
  const RecordHandoff sync = RecordHandoff::decode(request);
  const obs::TimedLock lock(state_mutex_);
  for (const HandoffRecord& record : sync.records) {
    DirectoryRecord replica;
    replica.version = record.version;
    replica.holders = record.holders;
    replica_directory_[record.url] = std::move(replica);
  }
  return Ack{}.encode();
}

net::Frame CacheNode::handle_promote_replicas(const net::Frame& request) {
  const PromoteReplicas cmd = PromoteReplicas::decode(request);
  const obs::TimedLock lock(state_mutex_);
  for (auto it = replica_directory_.begin();
       it != replica_directory_.end();) {
    const core::UrlHash hash = core::hash_url(it->first);
    const std::uint32_t ring = hash.ring(rings_.num_rings());
    const std::uint32_t irh = hash.irh(config_.irh_gen);
    if (ring != cmd.ring || !cmd.values.contains(irh)) {
      ++it;
      continue;
    }
    DirectoryRecord promoted = it->second;
    // The failed node's copies died with it.
    std::erase(promoted.holders, cmd.failed_node);
    if (!promoted.holders.empty()) {
      DirectoryRecord& mine = directory_[it->first];
      mine.version = std::max(mine.version, promoted.version);
      for (const NodeId holder : promoted.holders) {
        const auto pos = std::lower_bound(mine.holders.begin(),
                                          mine.holders.end(), holder);
        if (pos == mine.holders.end() || *pos != holder) {
          mine.holders.insert(pos, holder);
        }
      }
    }
    it = replica_directory_.erase(it);
  }
  return Ack{}.encode();
}

net::Frame CacheNode::handle_stats(const net::Frame& request) {
  (void)StatsReq::decode(request);
  StatsResp resp;
  resp.snapshot = metrics_snapshot();
  return resp.encode();
}

net::Frame CacheNode::handle_trace_dump(const net::Frame& request) {
  const TraceDumpReq req = TraceDumpReq::decode(request);
  TraceDumpResp resp;
  resp.node = node_label_;
  if (span_store_) {
    resp.spans = req.drain ? span_store_->drain() : span_store_->snapshot();
  }
  return resp.encode();
}

net::Frame CacheNode::handle_profile_dump(const net::Frame& request) {
  (void)ProfileDumpReq::decode(request);
  ProfileDumpResp resp;
  resp.node = node_label_;
  resp.enabled = obs::profiling_enabled();
  resp.profile = obs::profile_snapshot(metrics_snapshot());
  return resp.encode();
}

net::Frame CacheNode::handle_timeline_dump(const net::Frame& request) {
  const TimelineDumpReq req = TimelineDumpReq::decode(request);
  if (req.trigger && flight_) flight_->trigger("manual", "TimelineDumpReq");
  TimelineDumpResp resp;
  resp.node = node_label_;
  resp.enabled = timeline_ != nullptr;
  if (timeline_) resp.window = timeline_->window();
  if (req.include_flight && flight_) resp.flights = flight_->dumps();
  return resp.encode();
}

net::Frame CacheNode::handle_client_get(const net::Frame& request) {
  // The wire face of get(): external load drivers hit this instead of the
  // in-process API. Failures travel back as ClientGetResp{!ok} so a driver
  // can always decode the reply it asked for. A client-stamped trace
  // context on the frame is adopted as-is (the driver knows the ids of the
  // requests it wants to find later); an unstamped frame mints one.
  const ClientGetReq req = ClientGetReq::decode(request);
  ClientGetResp resp;
  try {
    obs::SpanContext ctx = frame_context(request);
    if (ctx.trace_id == 0) {
      ctx.trace_id = obs::next_trace_id();
      ctx.sampled =
          obs::sample_trace(ctx.trace_id, config_.trace.sample_probability);
    }
    const GetResult result = get(req.url, ctx);
    resp.ok = true;
    resp.version = result.version;
    resp.source = static_cast<std::uint8_t>(result.source);
    resp.degraded = result.degraded;
    resp.body_bytes = result.body.size();
    resp.body_hash =
        result.body.empty()
            ? util::fnv1a64("")
            : util::fnv1a64(std::string_view(
                  reinterpret_cast<const char*>(result.body.data()),
                  result.body.size()));
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  return resp.encode();
}

void CacheNode::sync_replicas() {
  // Snapshot my records per ring under the lock, then ship without it.
  std::unordered_map<std::uint32_t, RecordHandoff> per_ring;
  {
    const obs::TimedLock lock(state_mutex_);
    for (const auto& [url, record] : directory_) {
      const core::UrlHash hash = core::hash_url(url);
      HandoffRecord entry;
      entry.url = url;
      entry.version = record.version;
      entry.holders = record.holders;
      per_ring[hash.ring(rings_.num_rings())].records.push_back(
          std::move(entry));
    }
  }
  for (const std::uint32_t ring : rings_.rings_of(id_)) {
    const auto it = per_ring.find(ring);
    if (it == per_ring.end()) continue;
    inst_.replica_syncs->inc();
    inst_.replica_sync_records->inc(it->second.records.size());
    const net::Frame frame = it->second.encode(MsgType::ReplicaSync);
    const RangeAnnounce snapshot = rings_.snapshot();
    for (const RangeEntry& peer : snapshot.rings.at(ring)) {
      if (peer.owner == id_) continue;
      try {
        (void)peer_call(peer.owner, frame);
      } catch (const std::exception& e) {
        CC_LOG(Warn) << "node " << id_ << ": replica sync to " << peer.owner
                     << " failed: " << e.what();
      }
    }
  }
}

// ------------------------------------------------------- introspection

std::size_t CacheNode::cached_docs() const {
  const obs::TimedLock lock(state_mutex_);
  return store_.memory().doc_count();
}

bool CacheNode::has_cached(const std::string& url) const {
  const obs::TimedLock lock(state_mutex_);
  return store_.holds_url(url);
}

std::size_t CacheNode::directory_records() const {
  const obs::TimedLock lock(state_mutex_);
  return directory_.size();
}

std::size_t CacheNode::replica_records() const {
  const obs::TimedLock lock(state_mutex_);
  return replica_directory_.size();
}

CacheNode::Counters CacheNode::counters() const {
  const obs::TimedLock lock(state_mutex_);
  return counters_;
}

obs::Snapshot CacheNode::metrics_snapshot() const {
  // Gauges reflect the state at scrape time.
  {
    const obs::TimedLock lock(state_mutex_);
    inst_.cached_docs->set(static_cast<double>(store_.memory().doc_count()));
    inst_.directory_records->set(static_cast<double>(directory_.size()));
    inst_.replica_records->set(
        static_cast<double>(replica_directory_.size()));
  }
  {
    const obs::TimedLock lock(peers_mutex_);
    for (const auto& [peer, state] : peers_) {
      state.state_gauge->set(breaker_state_value(state.breaker->state()));
    }
  }
  return registry_.snapshot();
}

}  // namespace cachecloud::node
