#include "node/ring_view.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/subrange.hpp"

namespace cachecloud::node {

RingView::RingView(std::uint32_t num_nodes, std::uint32_t ring_size,
                   std::uint32_t irh_gen)
    : irh_gen_(irh_gen) {
  if (num_nodes == 0 || ring_size == 0) {
    throw std::invalid_argument("RingView: empty cluster or zero ring size");
  }
  std::uint32_t i = 0;
  while (i < num_nodes) {
    std::uint32_t end = std::min(i + ring_size, num_nodes);
    const std::uint32_t remaining = num_nodes - end;
    if (remaining > 0 && remaining < ring_size) end = num_nodes;

    const std::uint32_t members = end - i;
    const std::vector<double> caps(members, 1.0);
    const auto ranges = core::initial_subranges(caps, irh_gen_);
    std::vector<RangeEntry> ring(members);
    for (std::uint32_t k = 0; k < members; ++k) {
      ring[k] = RangeEntry{ranges[k], i + k};
    }
    rings_.push_back(std::move(ring));
    i = end;
  }
}

RingView::Target RingView::resolve(std::string_view url) const {
  return resolve(core::hash_url(url));
}

RingView::Target RingView::resolve(const core::UrlHash& hash) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Target target;
  target.ring = hash.ring(static_cast<std::uint32_t>(rings_.size()));
  target.irh = hash.irh(irh_gen_);
  for (const RangeEntry& entry : rings_[target.ring]) {
    if (entry.range.contains(target.irh)) {
      target.beacon = entry.owner;
      return target;
    }
  }
  throw std::logic_error("RingView: sub-ranges do not cover irh " +
                         std::to_string(target.irh));
}

void RingView::apply(const RangeAnnounce& announce) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (announce.rings.size() != rings_.size()) {
    throw std::invalid_argument("RingView::apply: ring count mismatch");
  }
  // Validate each ring partitions [0, irh_gen) before committing.
  for (const auto& ring : announce.rings) {
    std::uint32_t expected_lo = 0;
    for (const RangeEntry& entry : ring) {
      if (entry.range.lo != expected_lo || entry.range.hi < entry.range.lo ||
          entry.range.hi >= irh_gen_) {
        throw std::invalid_argument(
            "RingView::apply: announced ranges are not a partition");
      }
      expected_lo = entry.range.hi + 1;
    }
    if (expected_lo != irh_gen_) {
      throw std::invalid_argument(
          "RingView::apply: announced ranges do not cover the space");
    }
  }
  rings_ = announce.rings;
}

RangeAnnounce RingView::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RangeAnnounce announce;
  announce.rings = rings_;
  return announce;
}

std::uint32_t RingView::num_rings() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::uint32_t>(rings_.size());
}

std::vector<std::uint32_t> RingView::rings_of(NodeId node) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint32_t> out;
  for (std::uint32_t r = 0; r < rings_.size(); ++r) {
    for (const RangeEntry& entry : rings_[r]) {
      if (entry.owner == node) {
        out.push_back(r);
        break;
      }
    }
  }
  return out;
}

core::SubRange RingView::range_of(std::uint32_t ring, NodeId node) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const RangeEntry& entry : rings_.at(ring)) {
    if (entry.owner == node) return entry.range;
  }
  throw std::invalid_argument("RingView::range_of: node owns no sub-range");
}

}  // namespace cachecloud::node
