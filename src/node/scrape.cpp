#include "node/scrape.hpp"

#include "net/mux_client.hpp"

#include <thread>

namespace cachecloud::node {

std::vector<PortReply> scrape_ports(const std::vector<std::uint16_t>& ports,
                                    const net::Frame& request,
                                    double timeout_sec) {
  std::vector<PortReply> replies(ports.size());
  std::vector<std::thread> threads;
  threads.reserve(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    replies[i].port = ports[i];
    threads.emplace_back([&, i] {
      try {
        net::MuxClient client(ports[i], timeout_sec);
        replies[i].reply = client.call(request);
      } catch (const std::exception& e) {
        replies[i].unreachable = true;
        replies[i].error = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return replies;
}

}  // namespace cachecloud::node
