// In-process cluster harness: origin + N cache nodes on loopback TCP.
//
// Used by the integration tests and the distributed example. All nodes run
// real servers on ephemeral ports; the harness wires the endpoint tables
// and provides convenience accessors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "node/cache_node.hpp"
#include "node/origin_node.hpp"

namespace cachecloud::node {

class Cluster {
 public:
  explicit Cluster(const NodeConfig& config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] OriginNode& origin() noexcept { return *origin_; }
  [[nodiscard]] CacheNode& cache(NodeId id) { return *caches_.at(id); }
  [[nodiscard]] std::uint32_t num_caches() const noexcept {
    return static_cast<std::uint32_t>(caches_.size());
  }

  // Stops a cache node's server (simulated crash). Peers will see
  // connection failures when they talk to it.
  void crash(NodeId id);
  // Crash emulation for the persistence path: stops the server AND
  // abandons the disk tier's uncommitted write-behind queue, like kill -9.
  // Only what the writer already made durable survives a later restart().
  void hard_kill(NodeId id);
  // Tears the node down and reconstructs it on the same port (its peers'
  // endpoint tables stay valid). With a disk tier configured this is a
  // warm restart: the manifest is replayed and recovered copies are
  // re-announced at their beacon points. Returns how many were announced.
  std::size_t restart(NodeId id);
  [[nodiscard]] bool crashed(NodeId id) const {
    return crashed_.at(id);
  }
  [[nodiscard]] std::size_t live_caches() const;

  void stop_all();

 private:
  NodeConfig config_;
  std::unique_ptr<OriginNode> origin_;
  std::vector<std::unique_ptr<CacheNode>> caches_;
  std::vector<bool> crashed_;
};

}  // namespace cachecloud::node
