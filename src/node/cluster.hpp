// In-process cluster harness: origin + N cache nodes on loopback TCP.
//
// Used by the integration tests and the distributed example. All nodes run
// real servers on ephemeral ports; the harness wires the endpoint tables
// and provides convenience accessors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "node/cache_node.hpp"
#include "node/origin_node.hpp"

namespace cachecloud::node {

class Cluster {
 public:
  explicit Cluster(const NodeConfig& config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] OriginNode& origin() noexcept { return *origin_; }
  [[nodiscard]] CacheNode& cache(NodeId id) { return *caches_.at(id); }
  [[nodiscard]] std::uint32_t num_caches() const noexcept {
    return static_cast<std::uint32_t>(caches_.size());
  }

  // Stops a cache node's server (simulated crash). Peers will see
  // connection failures when they talk to it.
  void crash(NodeId id);
  [[nodiscard]] bool crashed(NodeId id) const {
    return crashed_.at(id);
  }
  [[nodiscard]] std::size_t live_caches() const;

  void stop_all();

 private:
  NodeConfig config_;
  std::unique_ptr<OriginNode> origin_;
  std::vector<std::unique_ptr<CacheNode>> caches_;
  std::vector<bool> crashed_;
};

}  // namespace cachecloud::node
