#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace cachecloud::sim {

void EventQueue::schedule_at(double at, Action action) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  if (!action) {
    throw std::invalid_argument("EventQueue: empty action");
  }
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(double delay, Action action) {
  if (delay < 0.0) {
    throw std::invalid_argument("EventQueue: negative delay");
  }
  schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the action must be moved out via a copy of
  // the entry — keep entries cheap.
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.at;
  entry.action();
  return true;
}

std::size_t EventQueue::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t EventQueue::run_until(double horizon) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= horizon) {
    step();
    ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

}  // namespace cachecloud::sim
