#include "sim/metrics.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace cachecloud::sim {

std::vector<double> CloudMetrics::beacon_load_per_minute() const {
  std::vector<double> out(beacon_lookups.size(), 0.0);
  const double minutes = measured_sec > 0.0 ? measured_sec / 60.0 : 1.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (beacon_lookups[i] + beacon_updates[i]) / minutes;
  }
  return out;
}

util::OnlineStats CloudMetrics::beacon_load_stats() const {
  const std::vector<double> loads = beacon_load_per_minute();
  return util::summarize(loads);
}

double CloudMetrics::local_hit_rate() const noexcept {
  return requests > 0
             ? static_cast<double>(local_hits) / static_cast<double>(requests)
             : 0.0;
}

double CloudMetrics::cloud_hit_rate() const noexcept {
  return requests > 0 ? static_cast<double>(local_hits + cloud_hits) /
                            static_cast<double>(requests)
                      : 0.0;
}

std::uint64_t CloudMetrics::total_network_bytes() const noexcept {
  return control_bytes + data_bytes_intra + data_bytes_wan +
         record_transfer_bytes;
}

double CloudMetrics::network_mb_per_minute() const noexcept {
  if (measured_sec <= 0.0) return 0.0;
  const double mb = static_cast<double>(total_network_bytes()) / 1.0e6;
  return mb / (measured_sec / 60.0);
}

namespace {

// Advance a counter to `target` (counters are monotone; exports happen
// after the previous export's value, so the delta is never negative in
// normal use — clamp defensively anyway).
void set_counter(obs::Counter& counter, std::uint64_t target) {
  const std::uint64_t current = counter.value();
  if (target > current) counter.inc(target - current);
}

}  // namespace

void CloudMetrics::export_to(obs::Registry& registry) const {
  const std::string gets_help =
      "Requests by hit class (shared name with live CacheNode)";
  set_counter(registry.counter("cachecloud_gets_total", gets_help,
                               {{"class", "local"}}),
              local_hits);
  set_counter(registry.counter("cachecloud_gets_total", gets_help,
                               {{"class", "cloud"}}),
              cloud_hits);
  set_counter(registry.counter("cachecloud_gets_total", gets_help,
                               {{"class", "origin"}}),
              group_misses);
  set_counter(registry.counter("cachecloud_evictions_total",
                               "Local evictions (capacity or update drop)"),
              evictions);
  set_counter(registry.counter("cachecloud_placement_total",
                               "Placement decisions", {{"decision", "accept"}}),
              stored_copies);
  set_counter(registry.counter("cachecloud_updates_total",
                               "Origin updates applied to cloud documents"),
              updates);
  set_counter(registry.counter("cachecloud_origin_messages_total",
                               "Messages handled by the origin server"),
              origin_messages);
  const std::string bytes_help = "Simulated network traffic by link class";
  set_counter(registry.counter("cachecloud_sim_bytes_total", bytes_help,
                               {{"link", "control"}}),
              control_bytes);
  set_counter(registry.counter("cachecloud_sim_bytes_total", bytes_help,
                               {{"link", "intra"}}),
              data_bytes_intra);
  set_counter(registry.counter("cachecloud_sim_bytes_total", bytes_help,
                               {{"link", "wan"}}),
              data_bytes_wan);
  registry
      .gauge("cachecloud_local_hit_rate",
             "Fraction of requests served from the local cache")
      .set(local_hit_rate());
  registry
      .gauge("cachecloud_cloud_hit_rate",
             "Fraction of requests served inside the cloud (cumulative)")
      .set(cloud_hit_rate());
  registry
      .gauge("cachecloud_network_mb_per_minute",
             "Total cloud network load in MB per minute")
      .set(network_mb_per_minute());
}

std::string CloudMetrics::summary() const {
  std::ostringstream out;
  out << "requests=" << requests << " local_hit=" << util::format_double(
             100.0 * local_hit_rate(), 1)
      << "% cloud_hit=" << util::format_double(100.0 * cloud_hit_rate(), 1)
      << "% misses=" << group_misses << " updates=" << updates
      << " stored=" << stored_copies << " evictions=" << evictions << "\n";
  const util::OnlineStats loads = beacon_load_stats();
  out << "beacon load/min: mean=" << util::format_double(loads.mean(), 1)
      << " max=" << util::format_double(loads.max(), 1)
      << " cov=" << util::format_double(loads.coefficient_of_variation(), 3)
      << " max/mean=" << util::format_double(loads.max_to_mean_ratio(), 3)
      << "\n";
  out << "network: total=" << util::format_bytes(total_network_bytes())
      << " (intra=" << util::format_bytes(data_bytes_intra)
      << ", wan=" << util::format_bytes(data_bytes_wan)
      << ", control=" << util::format_bytes(control_bytes)
      << ", update-push=" << util::format_bytes(update_push_bytes)
      << ", records=" << util::format_bytes(record_transfer_bytes) << ")"
      << " rate=" << util::format_double(network_mb_per_minute(), 2)
      << " MB/min\n";
  if (request_latency_sec.count() > 0) {
    out << "latency: mean=" << util::format_double(
               request_latency_sec.mean() * 1000.0, 2)
        << "ms max=" << util::format_double(
               request_latency_sec.max() * 1000.0, 2)
        << "ms\n";
  }
  return out.str();
}

}  // namespace cachecloud::sim
