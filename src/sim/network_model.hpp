// Parametric network cost model of an edge cache cloud.
//
// The paper's clouds contain caches "in close network proximity" talking to
// a distant origin server; we model that as two link classes (intra-cloud
// and WAN) with configurable RTT and bandwidth, plus message-size constants
// for the control traffic of the lookup/update protocols. Experiments
// measure *bytes moved* (Figs 8-9) and use latency only descriptively, so
// absolute constants only scale results, never reorder schemes.
#pragma once

#include <cstdint>

namespace cachecloud::sim {

struct NetworkModel {
  // --- message sizes (bytes) ---
  std::uint64_t control_msg_bytes = 64;     // lookup req, update notify, dereg
  std::uint64_t holder_entry_bytes = 8;     // per holder in a lookup response
  std::uint64_t transfer_header_bytes = 128;  // around each document body
  std::uint64_t lookup_record_bytes = 32;   // per record moved on re-balance

  // --- link characteristics ---
  double intra_rtt_sec = 0.010;  // cache <-> cache within the cloud
  double wan_rtt_sec = 0.100;    // cloud <-> origin server
  double intra_bandwidth_bps = 100e6;  // bits per second
  double wan_bandwidth_bps = 20e6;
  double local_service_sec = 0.001;  // serving a local hit

  [[nodiscard]] double intra_transfer_sec(std::uint64_t bytes) const noexcept {
    return static_cast<double>(bytes) * 8.0 / intra_bandwidth_bps;
  }
  [[nodiscard]] double wan_transfer_sec(std::uint64_t bytes) const noexcept {
    return static_cast<double>(bytes) * 8.0 / wan_bandwidth_bps;
  }
  [[nodiscard]] std::uint64_t document_wire_bytes(
      std::uint64_t body_bytes) const noexcept {
    return body_bytes + transfer_header_bytes;
  }
};

}  // namespace cachecloud::sim
