// The full edge cache network: multiple cache clouds sharing one origin
// server ("Cooperative EC Grid", the paper's framing in [11] and §1).
//
// The clouds are disjoint cooperation domains (formed, in the paper, by the
// landmark-clustering of [12]); the origin resolves each document's beacon
// point *per cloud* and sends one update message per cloud. This layer
// routes a single trace across the clouds — trace cache id `i` is cache
// `i % caches_per_cloud` of cloud `i / caches_per_cloud` — and aggregates
// per-cloud and origin-side metrics.
#pragma once

#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "sim/accounting.hpp"
#include "sim/metrics.hpp"
#include "sim/network_model.hpp"
#include "trace/trace.hpp"

namespace cachecloud::sim {

struct EdgeNetworkConfig {
  std::uint32_t num_clouds = 4;
  // Per-cloud configuration; its num_caches is the cloud size.
  core::CloudConfig cloud;
  NetworkModel net;
  double metrics_start_sec = 0.0;
};

struct EdgeNetworkResult {
  std::vector<CloudMetrics> per_cloud;
  // Origin-side totals across all clouds.
  std::uint64_t origin_messages = 0;
  std::uint64_t origin_wan_bytes = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t served_within_clouds = 0;  // local + cloud hits

  [[nodiscard]] double in_network_hit_rate() const noexcept {
    return total_requests > 0
               ? static_cast<double>(served_within_clouds) /
                     static_cast<double>(total_requests)
               : 0.0;
  }
};

class EdgeNetwork {
 public:
  // The trace must reference caches [0, num_clouds * cloud.num_caches).
  EdgeNetwork(const EdgeNetworkConfig& config, const trace::Trace& trace);

  // Routes one request from the trace-global cache id.
  core::RequestOutcome handle_request(trace::CacheId global_cache,
                                      trace::DocId doc, double now);
  // Publishes one update: the origin notifies each cloud's beacon point.
  void handle_update(trace::DocId doc, double now);
  void maybe_end_cycles(double now);

  [[nodiscard]] std::uint32_t num_clouds() const noexcept {
    return static_cast<std::uint32_t>(clouds_.size());
  }
  [[nodiscard]] core::CacheCloud& cloud(std::uint32_t i) {
    return *clouds_.at(i);
  }

  [[nodiscard]] EdgeNetworkResult finish(double duration);

 private:
  EdgeNetworkConfig config_;
  std::vector<std::unique_ptr<core::CacheCloud>> clouds_;
  std::vector<Accounting> accounts_;  // one per cloud
};

// Convenience driver mirroring run_simulation.
[[nodiscard]] EdgeNetworkResult run_edge_network(
    const EdgeNetworkConfig& config, const trace::Trace& trace);

}  // namespace cachecloud::sim
