// Network/latency/load accounting shared by the single-cloud simulator and
// the multi-cloud edge network.
//
// Translates protocol outcomes (RequestOutcome / UpdateOutcome /
// CycleOutcome) into CloudMetrics under a NetworkModel. One instance per
// cloud.
#pragma once

#include "core/cloud.hpp"
#include "sim/metrics.hpp"
#include "sim/network_model.hpp"

namespace cachecloud::sim {

class Accounting {
 public:
  Accounting(std::uint32_t num_caches, const NetworkModel& net,
             double metrics_start_sec = 0.0, bool collect_latency = true);

  void on_request(const core::RequestOutcome& outcome, double now);
  void on_update(const core::UpdateOutcome& outcome, double now);
  void on_cycle(const core::CycleOutcome& outcome, double now);

  // Finalizes the measurement window and hands the metrics out.
  [[nodiscard]] CloudMetrics finish(double duration);

  [[nodiscard]] std::size_t rebalances() const noexcept {
    return rebalances_;
  }
  [[nodiscard]] std::size_t records_transferred() const noexcept {
    return records_transferred_;
  }
  [[nodiscard]] const CloudMetrics& metrics() const noexcept {
    return metrics_;
  }

 private:
  void account_lookup(const core::RequestOutcome& outcome);
  [[nodiscard]] double discovery_latency(
      const core::RequestOutcome& outcome) const;
  void account_evictions(const std::vector<core::DocId>& evicted);

  std::uint32_t num_caches_;
  NetworkModel net_;
  double metrics_start_sec_;
  bool collect_latency_;
  CloudMetrics metrics_;
  std::size_t rebalances_ = 0;
  std::size_t records_transferred_ = 0;
};

}  // namespace cachecloud::sim
