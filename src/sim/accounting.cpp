#include "sim/accounting.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace cachecloud::sim {

Accounting::Accounting(std::uint32_t num_caches, const NetworkModel& net,
                       double metrics_start_sec, bool collect_latency)
    : num_caches_(num_caches),
      net_(net),
      metrics_start_sec_(metrics_start_sec),
      collect_latency_(collect_latency),
      metrics_(num_caches) {}

void Accounting::on_request(const core::RequestOutcome& outcome, double now) {
  if (now < metrics_start_sec_) return;
  ++metrics_.requests;
  if (outcome.stale_served) ++metrics_.stale_hits;

  double latency = 0.0;
  switch (outcome.kind) {
    case core::RequestKind::LocalHit:
      ++metrics_.local_hits;
      latency = net_.local_service_sec;
      if (outcome.revalidated) {
        // If-Modified-Since round trip to the origin, answered 304.
        ++metrics_.revalidations;
        ++metrics_.origin_messages;
        metrics_.control_bytes += 2 * net_.control_msg_bytes;
        latency += net_.wan_rtt_sec;
      }
      break;
    case core::RequestKind::CloudHit: {
      ++metrics_.cloud_hits;
      account_lookup(outcome);
      // Fetch from the holder: request + body over the intra-cloud link.
      const std::uint64_t wire = net_.document_wire_bytes(outcome.doc_bytes);
      metrics_.control_bytes += net_.control_msg_bytes;
      metrics_.data_bytes_intra += wire;
      latency = discovery_latency(outcome) + net_.intra_rtt_sec +
                net_.intra_transfer_sec(wire);
      break;
    }
    case core::RequestKind::GroupMiss: {
      ++metrics_.group_misses;
      ++metrics_.origin_messages;  // the origin serves this fetch
      if (outcome.refetched) ++metrics_.ttl_refetches;
      // Without cooperation (discovery_hops == 0) there is no beacon
      // lookup: the miss goes straight to the origin.
      if (outcome.discovery_hops > 0) account_lookup(outcome);
      const std::uint64_t wire = net_.document_wire_bytes(outcome.doc_bytes);
      metrics_.control_bytes += net_.control_msg_bytes;
      metrics_.data_bytes_wan += wire;
      latency = discovery_latency(outcome) + net_.wan_rtt_sec +
                net_.wan_transfer_sec(wire);
      break;
    }
  }

  if (outcome.stored) ++metrics_.stored_copies;
  if (outcome.replicated_to_beacon) {
    ++metrics_.stored_copies;
    // The requester forwards the body to the beacon point.
    metrics_.data_bytes_intra += net_.document_wire_bytes(outcome.doc_bytes);
  }
  account_evictions(outcome.evicted_at_requester);
  account_evictions(outcome.evicted_at_beacon);

  if (collect_latency_) metrics_.request_latency_sec.add(latency);
}

void Accounting::on_update(const core::UpdateOutcome& outcome, double now) {
  if (now < metrics_start_sec_) return;
  ++metrics_.updates;

  if (!outcome.pushed) return;  // TTL consistency: nothing sent

  if (outcome.discovery_hops == 0) {
    // No cooperation: the origin pushes the body to every holder
    // individually over the WAN — no beacon point shares the cost.
    const std::uint64_t wire = net_.document_wire_bytes(outcome.doc_bytes);
    for (std::size_t i = 0; i < outcome.holders.size(); ++i) {
      metrics_.control_bytes += net_.control_msg_bytes;
      metrics_.data_bytes_wan += wire;
      metrics_.update_push_bytes += wire;
    }
    metrics_.origin_messages += outcome.holders.size();
    return;
  }
  // Update work at the beacon point: the notification plus the
  // propagation fan-out (one message per holder, kept or dropped).
  metrics_.beacon_updates[outcome.beacon] +=
      1.0 + static_cast<double>(outcome.holders.size() +
                                outcome.dropped.size());

  // The origin notifies the beacon point (control, WAN side) — one
  // message per cloud, however many holders there are.
  ++metrics_.origin_messages;
  metrics_.control_bytes += net_.control_msg_bytes * outcome.discovery_hops;
  // The beacon notifies every holder; holders that drop their copy answer
  // with a deregistration and never receive the body.
  metrics_.control_bytes +=
      net_.control_msg_bytes *
      (outcome.holders.size() + 2 * outcome.dropped.size());
  metrics_.evictions += outcome.dropped.size();

  if (outcome.holders.empty()) return;
  const std::uint64_t wire = net_.document_wire_bytes(outcome.doc_bytes);
  // Body travels origin -> beacon once, then beacon -> each keeping holder
  // other than itself inside the cloud.
  metrics_.data_bytes_wan += wire;
  metrics_.update_push_bytes += wire;
  for (const core::CacheId holder : outcome.holders) {
    if (holder == outcome.beacon) continue;
    metrics_.data_bytes_intra += wire;
    metrics_.update_push_bytes += wire;
  }
}

void Accounting::on_cycle(const core::CycleOutcome& outcome, double now) {
  ++rebalances_;
  records_transferred_ += outcome.records_transferred;
  if (now < metrics_start_sec_ || outcome.moves.empty()) return;
  // New sub-range assignment announced to every cache and the origin.
  metrics_.control_bytes += net_.control_msg_bytes * (num_caches_ + 1);
  metrics_.record_transfer_bytes +=
      outcome.records_transferred * net_.lookup_record_bytes;
}

CloudMetrics Accounting::finish(double duration) {
  // Hit-class accounting must reconcile: every measured request was exactly
  // one of local hit / cloud hit / group miss. Divergence is a bug in the
  // outcome translation above, never a property of the workload.
  if (!metrics_.reconciles()) {
    throw std::logic_error(
        "Accounting::finish: hit classes do not reconcile: requests=" +
        std::to_string(metrics_.requests) + " != local=" +
        std::to_string(metrics_.local_hits) + " + cloud=" +
        std::to_string(metrics_.cloud_hits) + " + miss=" +
        std::to_string(metrics_.group_misses));
  }
  metrics_.measured_sec = std::max(0.0, duration - metrics_start_sec_);
  return std::move(metrics_);
}

void Accounting::account_lookup(const core::RequestOutcome& outcome) {
  metrics_.beacon_lookups[outcome.beacon] += 1.0;
  // Beacon discovery: one control message per hop, plus the holder list
  // in the reply.
  metrics_.control_bytes += net_.control_msg_bytes * outcome.discovery_hops;
  metrics_.control_bytes += net_.control_msg_bytes +
                            net_.holder_entry_bytes * outcome.holders_seen;
}

double Accounting::discovery_latency(
    const core::RequestOutcome& outcome) const {
  // Each discovery hop plus the lookup reply is an intra-cloud round trip.
  return net_.intra_rtt_sec * outcome.discovery_hops;
}

void Accounting::account_evictions(const std::vector<core::DocId>& evicted) {
  // Every eviction deregisters the holder at the document's beacon point.
  metrics_.evictions += evicted.size();
  metrics_.control_bytes += net_.control_msg_bytes * evicted.size();
}

}  // namespace cachecloud::sim
