#include "sim/simulator.hpp"

#include "sim/accounting.hpp"

namespace cachecloud::sim {

SimResult run_simulation(core::CacheCloud& cloud, const trace::Trace& trace,
                         const SimConfig& config) {
  Accounting accounting(cloud.num_caches(), config.net,
                        config.metrics_start_sec, config.collect_latency);

  for (const trace::Event& event : trace.events()) {
    if (const auto cycle = cloud.maybe_end_cycle(event.time)) {
      accounting.on_cycle(*cycle, event.time);
    }
    if (event.type == trace::EventType::Request) {
      const core::RequestOutcome outcome =
          cloud.handle_request(event.cache, event.doc, event.time);
      accounting.on_request(outcome, event.time);
    } else {
      const core::UpdateOutcome outcome =
          cloud.handle_update(event.doc, event.time);
      accounting.on_update(outcome, event.time);
    }
  }

  SimResult result;
  result.rebalances = accounting.rebalances();
  result.records_transferred = accounting.records_transferred();
  result.metrics = accounting.finish(trace.duration());
  return result;
}

}  // namespace cachecloud::sim
