#include "sim/simulator.hpp"

#include "sim/accounting.hpp"

namespace cachecloud::sim {

SimResult run_simulation(core::CacheCloud& cloud, const trace::Trace& trace,
                         const SimConfig& config) {
  Accounting accounting(cloud.num_caches(), config.net,
                        config.metrics_start_sec, config.collect_latency);

  const bool ticks = config.stats_every_sec > 0.0 &&
                     (config.stats_sink || config.registry != nullptr);
  double next_stats = config.stats_every_sec;

  for (const trace::Event& event : trace.events()) {
    while (ticks && event.time >= next_stats) {
      // Export before the sink runs, so a sink that samples the registry
      // (e.g. the CLI's timeline-backed --stats-every) sees this tick.
      if (config.registry) accounting.metrics().export_to(*config.registry);
      if (config.stats_sink) config.stats_sink(next_stats, accounting.metrics());
      next_stats += config.stats_every_sec;
    }
    if (const auto cycle = cloud.maybe_end_cycle(event.time)) {
      accounting.on_cycle(*cycle, event.time);
    }
    if (event.type == trace::EventType::Request) {
      const core::RequestOutcome outcome =
          cloud.handle_request(event.cache, event.doc, event.time);
      accounting.on_request(outcome, event.time);
    } else {
      const core::UpdateOutcome outcome =
          cloud.handle_update(event.doc, event.time);
      accounting.on_update(outcome, event.time);
    }
  }

  SimResult result;
  result.rebalances = accounting.rebalances();
  result.records_transferred = accounting.records_transferred();
  result.metrics = accounting.finish(trace.duration());
  if (config.registry) result.metrics.export_to(*config.registry);
  return result;
}

}  // namespace cachecloud::sim
