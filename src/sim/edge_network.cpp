#include "sim/edge_network.hpp"

#include <stdexcept>

namespace cachecloud::sim {

EdgeNetwork::EdgeNetwork(const EdgeNetworkConfig& config,
                         const trace::Trace& trace)
    : config_(config) {
  if (config_.num_clouds == 0) {
    throw std::invalid_argument("EdgeNetwork: num_clouds must be > 0");
  }
  clouds_.reserve(config_.num_clouds);
  accounts_.reserve(config_.num_clouds);
  for (std::uint32_t i = 0; i < config_.num_clouds; ++i) {
    clouds_.push_back(
        std::make_unique<core::CacheCloud>(config_.cloud, trace));
    accounts_.emplace_back(config_.cloud.num_caches, config_.net,
                           config_.metrics_start_sec,
                           /*collect_latency=*/false);
  }
}

core::RequestOutcome EdgeNetwork::handle_request(trace::CacheId global_cache,
                                                 trace::DocId doc,
                                                 double now) {
  const std::uint32_t cloud_id = global_cache / config_.cloud.num_caches;
  const trace::CacheId local = global_cache % config_.cloud.num_caches;
  if (cloud_id >= clouds_.size()) {
    throw std::out_of_range("EdgeNetwork: cache id outside the network");
  }
  const core::RequestOutcome outcome =
      clouds_[cloud_id]->handle_request(local, doc, now);
  accounts_[cloud_id].on_request(outcome, now);
  return outcome;
}

void EdgeNetwork::handle_update(trace::DocId doc, double now) {
  // "It sends a document update message to these beacon points (one for
  // each cloud), which in turn communicate it to the caches in their cache
  // clouds" — every cloud processes the update independently.
  for (std::uint32_t i = 0; i < clouds_.size(); ++i) {
    const core::UpdateOutcome outcome = clouds_[i]->handle_update(doc, now);
    accounts_[i].on_update(outcome, now);
  }
}

void EdgeNetwork::maybe_end_cycles(double now) {
  for (std::uint32_t i = 0; i < clouds_.size(); ++i) {
    if (const auto cycle = clouds_[i]->maybe_end_cycle(now)) {
      accounts_[i].on_cycle(*cycle, now);
    }
  }
}

EdgeNetworkResult EdgeNetwork::finish(double duration) {
  EdgeNetworkResult result;
  result.per_cloud.reserve(clouds_.size());
  for (auto& account : accounts_) {
    result.per_cloud.push_back(account.finish(duration));
    const CloudMetrics& metrics = result.per_cloud.back();
    result.origin_messages += metrics.origin_messages;
    result.origin_wan_bytes += metrics.data_bytes_wan;
    result.total_requests += metrics.requests;
    result.served_within_clouds += metrics.local_hits + metrics.cloud_hits;
  }
  return result;
}

EdgeNetworkResult run_edge_network(const EdgeNetworkConfig& config,
                                   const trace::Trace& trace) {
  EdgeNetwork network(config, trace);
  for (const trace::Event& event : trace.events()) {
    network.maybe_end_cycles(event.time);
    if (event.type == trace::EventType::Request) {
      network.handle_request(event.cache, event.doc, event.time);
    } else {
      network.handle_update(event.doc, event.time);
    }
  }
  return network.finish(trace.duration());
}

}  // namespace cachecloud::sim
