// Metrics collected by a simulation run — everything the paper's figures
// report, and a few extras (hit classes, latency) for the examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace cachecloud::sim {

struct CloudMetrics {
  // --- request/update accounting ---
  std::uint64_t requests = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t cloud_hits = 0;
  std::uint64_t group_misses = 0;
  std::uint64_t updates = 0;
  std::uint64_t stored_copies = 0;    // placement said yes
  std::uint64_t evictions = 0;
  // Messages the origin server handles (fetches served + update messages
  // sent). Cooperation's second headline benefit (§1) is cutting this:
  // one update message per cloud instead of one per holder.
  std::uint64_t origin_messages = 0;
  // TTL consistency only:
  std::uint64_t stale_hits = 0;      // requests served a stale version
  std::uint64_t revalidations = 0;   // origin contacted, copy still fresh
  std::uint64_t ttl_refetches = 0;   // origin contacted, copy replaced

  // --- beacon-point load: lookups + updates handled per cache (§4.1) ---
  std::vector<double> beacon_lookups;  // indexed by CacheId
  std::vector<double> beacon_updates;

  // --- network traffic (bytes) ---
  std::uint64_t control_bytes = 0;        // protocol messages
  std::uint64_t data_bytes_intra = 0;     // cache-to-cache document bodies
  std::uint64_t data_bytes_wan = 0;       // origin <-> cloud document bodies
  std::uint64_t update_push_bytes = 0;    // consistency-maintenance share
  std::uint64_t record_transfer_bytes = 0;  // re-balance hand-offs

  // --- latency ---
  util::OnlineStats request_latency_sec;

  // --- measurement window ---
  double measured_sec = 0.0;

  CloudMetrics() = default;
  explicit CloudMetrics(std::size_t num_caches)
      : beacon_lookups(num_caches, 0.0), beacon_updates(num_caches, 0.0) {}

  // Combined per-beacon-point load (lookups + updates), in operations per
  // minute — the paper's Y axis in Figs 3-4.
  [[nodiscard]] std::vector<double> beacon_load_per_minute() const;
  // Load-balance summary over the beacon points.
  [[nodiscard]] util::OnlineStats beacon_load_stats() const;

  [[nodiscard]] double local_hit_rate() const noexcept;
  [[nodiscard]] double cloud_hit_rate() const noexcept;  // cumulative in-cloud
  [[nodiscard]] std::uint64_t total_network_bytes() const noexcept;
  // Total cloud network load in MB per minute — the paper's Y axis in
  // Figs 8-9 ("Mbs transferred per unit time").
  [[nodiscard]] double network_mb_per_minute() const noexcept;

  // Every request is exactly one of local hit / cloud hit / group miss;
  // divergence means an accounting bug. Checked by Accounting::finish.
  [[nodiscard]] bool reconciles() const noexcept {
    return requests == local_hits + cloud_hits + group_misses;
  }

  // Mirrors the request/update accounting into an obs::Registry under the
  // SAME metric names the live nodes use (cachecloud_gets_total{class=...},
  // cachecloud_evictions_total, ...), so simulated and live runs can be
  // compared with one dashboard. Counters are set by delta against the
  // registry's current values, so repeated exports are idempotent.
  void export_to(obs::Registry& registry) const;

  [[nodiscard]] std::string summary() const;
};

}  // namespace cachecloud::sim
