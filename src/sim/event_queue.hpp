// Generic discrete-event engine.
//
// A minimal but complete DES core: schedule closures at absolute or relative
// simulated times, run until drained or until a horizon. Determinism: events
// with equal timestamps fire in scheduling order (stable sequence numbers).
// Used by the failure-injection tests and the failover example to interleave
// workload, crashes and re-balancing cycles on one timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cachecloud::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedules `action` at absolute time `at` (must be >= now()).
  void schedule_at(double at, Action action);
  // Schedules `action` `delay` seconds from now (delay >= 0).
  void schedule_in(double delay, Action action);

  // Runs events until the queue is empty. Returns events executed.
  std::size_t run();
  // Runs events with time <= horizon; now() ends up at min(horizon, last
  // event time). Returns events executed.
  std::size_t run_until(double horizon);
  // Executes just the next event, if any. Returns true if one ran.
  bool step();

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

 private:
  struct Entry {
    double at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace cachecloud::sim
