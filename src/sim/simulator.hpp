// Trace-driven simulation of one cache cloud (§4).
//
// Feeds a request/update trace through a CacheCloud and accounts network
// traffic, per-beacon-point load and latency under the NetworkModel. This
// is the harness behind every figure of the paper's evaluation.
#pragma once

#include "core/cloud.hpp"
#include "sim/metrics.hpp"
#include "sim/network_model.hpp"
#include "trace/trace.hpp"

namespace cachecloud::sim {

struct SimConfig {
  NetworkModel net;
  // Events before this time still execute (cache warm-up) but are excluded
  // from the metrics.
  double metrics_start_sec = 0.0;
  bool collect_latency = true;
};

struct SimResult {
  CloudMetrics metrics;
  std::size_t rebalances = 0;
  std::size_t records_transferred = 0;
};

[[nodiscard]] SimResult run_simulation(core::CacheCloud& cloud,
                                       const trace::Trace& trace,
                                       const SimConfig& config = {});

}  // namespace cachecloud::sim
