// Trace-driven simulation of one cache cloud (§4).
//
// Feeds a request/update trace through a CacheCloud and accounts network
// traffic, per-beacon-point load and latency under the NetworkModel. This
// is the harness behind every figure of the paper's evaluation.
#pragma once

#include <functional>

#include "core/cloud.hpp"
#include "obs/metrics.hpp"
#include "sim/metrics.hpp"
#include "sim/network_model.hpp"
#include "trace/trace.hpp"

namespace cachecloud::sim {

struct SimConfig {
  NetworkModel net;
  // Events before this time still execute (cache warm-up) but are excluded
  // from the metrics.
  double metrics_start_sec = 0.0;
  bool collect_latency = true;

  // ---- periodic stats (tentpole observability hooks) ----------------
  // Every `stats_every_sec` of simulated time, the running metrics are
  // handed to `stats_sink` (if set) and exported to `registry` (if set,
  // under the live-node metric names — see CloudMetrics::export_to). The
  // final metrics are exported to `registry` once more at the end of the
  // run. 0 disables periodic ticks (the final export still happens).
  double stats_every_sec = 0.0;
  std::function<void(double now, const CloudMetrics&)> stats_sink;
  obs::Registry* registry = nullptr;
};

struct SimResult {
  CloudMetrics metrics;
  std::size_t rebalances = 0;
  std::size_t records_transferred = 0;
};

[[nodiscard]] SimResult run_simulation(core::CacheCloud& cloud,
                                       const trace::Trace& trace,
                                       const SimConfig& config = {});

}  // namespace cachecloud::sim
