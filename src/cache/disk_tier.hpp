// Write-behind disk tier under the in-memory DocumentStore.
//
// Modeled on slash2's slccd last-use disk cache and Traffic Server's object
// store: documents evicted from (or written through) the memory tier are
// spilled to a per-node cache directory by a background writer thread, and
// survive a process crash so a restarted node rejoins the cloud warm.
//
// Layout of the cache directory:
//
//   obj-<seq>.dat    one document body per file, written as
//                    obj-<seq>.dat.tmp + fsync + rename (crash-consistent:
//                    a body file either exists complete or not at all);
//   manifest         fsync'd append-only log of put/del records, one per
//                    line, each protected by its own CRC32:
//
//      <crc32hex> p <seq> <version> <size> <bodycrc32hex> <file> <url>
//      <crc32hex> d <url>
//
//    The CRC covers everything after the first space. The body file is
//    renamed into place *before* its manifest record is appended, so a
//    record implies a complete body.
//
// Recovery (run in the constructor) replays the manifest, stops at the
// first CRC-invalid record (valid-prefix semantics: an append torn by a
// crash invalidates only the tail), drops records whose body file is
// missing, truncated or fails its body CRC, deletes stray files, compacts
// the manifest via util::atomic_write_file and reports what survived.
//
// Every syscall-shaped operation routes through an IoFaultInjector hook.
// `breaker_failures` consecutive hard I/O errors trip a breaker that
// degrades the tier to a black hole (puts rejected, gets miss, nothing
// crashes) and raises the cachecloud_disk_degraded gauge — the Traffic
// Server "all disks bad -> proxy-only mode" behavior.
//
// Thread safety: fully internally synchronized. Index mutations are
// synchronous under disk_mutex_ (an accepted put is immediately visible to
// get(), served from the queued copy until the writer commits it); only
// file I/O happens on the writer thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/io_fault.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace cachecloud::cache {

struct DiskTierConfig {
  std::string directory;            // required; created if missing
  std::uint64_t capacity_bytes = 0;  // 0 = unlimited
  // Consecutive hard I/O errors before the tier degrades to memory-only.
  std::uint32_t breaker_failures = 3;
  // Seeded I/O chaos hook. Not owned; must outlive the tier. nullptr = off.
  IoFaultInjector* io_faults = nullptr;
};

class DiskTier {
 public:
  struct PutResult {
    bool accepted = false;
    // Documents evicted from *disk* to make room (last-use order). The
    // caller owns deregistering them from the cloud directory.
    std::vector<std::string> evicted;
  };
  struct DiskDoc {
    std::uint64_t version = 0;
    std::vector<std::uint8_t> body;
  };
  struct RecoveredDoc {
    std::string url;
    std::uint64_t version = 0;
    std::uint64_t size = 0;
  };

  // Creates the directory and runs recovery; never throws on I/O failure
  // (the tier starts degraded instead). `registry` may be null (no metrics).
  DiskTier(const DiskTierConfig& config, obs::Registry* registry);
  ~DiskTier();
  DiskTier(const DiskTier&) = delete;
  DiskTier& operator=(const DiskTier&) = delete;

  // What recovery salvaged, most-recently-used last.
  [[nodiscard]] const std::vector<RecoveredDoc>& recovered() const noexcept {
    return recovered_;
  }

  // Write-behind spill. Accepted puts are readable immediately; the body
  // reaches disk asynchronously. Re-putting the version already on disk
  // just refreshes last-use (no rewrite).
  PutResult put(const std::string& url, std::uint64_t version,
                const std::vector<std::uint8_t>& body);

  // Reads a document (queued copy or file), verifying the body CRC; a
  // corrupt file is eradicated (slccd-style) and reported as a miss.
  // Bumps last-use.
  std::optional<DiskDoc> get(const std::string& url);

  [[nodiscard]] bool contains(const std::string& url) const;
  // Version on disk, 0 if absent.
  [[nodiscard]] std::uint64_t version_of(const std::string& url) const;

  bool erase(const std::string& url);

  // Blocks until the write-behind queue is fully committed (tests).
  void flush();
  // Crash emulation: abandon the queue without flushing and stop the
  // writer. Queued-but-uncommitted spills are lost, as in a real crash.
  void hard_stop();

  [[nodiscard]] bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t doc_count() const;
  [[nodiscard]] std::uint64_t used_bytes() const;
  [[nodiscard]] std::uint64_t dropped_records() const noexcept {
    return dropped_records_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string file;
    std::uint64_t version = 0;
    std::uint64_t size = 0;
    std::uint32_t body_crc = 0;
    std::uint64_t use_seq = 0;
    // Set while the body sits in the write-behind queue; get() serves it
    // from here until the writer commits the file.
    std::shared_ptr<const std::vector<std::uint8_t>> queued;
  };
  struct Op {
    enum class Type { Write, Erase } type = Type::Write;
    std::string url;
    std::string file;
    std::uint64_t version = 0;
    std::uint32_t body_crc = 0;
    std::shared_ptr<const std::vector<std::uint8_t>> body;
  };

  void register_instruments(obs::Registry* registry);
  void recover();
  void writer_loop();
  void perform(const Op& op);
  // Body file write: tmp + fsync + rename, all through the fault hooks.
  void write_body_file(const Op& op);
  void append_manifest(const std::string& record_body);
  [[nodiscard]] std::vector<std::uint8_t> read_file_checked(
      const std::string& file, std::uint64_t size);

  void note_io_error(const char* op, const std::string& what);
  void note_io_success();
  // Trips the breaker: drops queue + index, closes the manifest, raises
  // the gauge. Idempotent.
  void degrade(const std::string& why);

  // Under mutex_: moves `entry`'s recency to the tail of the LRU order.
  void touch_locked(const std::string& url, Entry& entry);
  // Under mutex_: evicts last-used entries until `needed` more bytes fit.
  void make_room_locked(std::uint64_t needed,
                        std::vector<std::string>& evicted);
  void drop_entry_locked(const std::string& url, bool log_delete);
  void refresh_gauges_locked();

  [[nodiscard]] std::string path_of(const std::string& file) const {
    return config_.directory + "/" + file;
  }

  const DiskTierConfig config_;

  mutable obs::TimedMutex mutex_;  // bound as "disk_mutex_" when registered
  std::condition_variable_any cv_;
  std::condition_variable_any idle_cv_;
  std::unordered_map<std::string, Entry> index_;
  std::map<std::uint64_t, std::string> lru_;  // use_seq -> url
  std::deque<Op> queue_;
  bool writer_busy_ = false;
  bool stop_ = false;
  bool abandon_queue_ = false;
  std::uint64_t used_ = 0;
  std::uint64_t next_file_seq_ = 1;
  std::uint64_t next_use_seq_ = 1;
  std::uint32_t consecutive_failures_ = 0;
  int manifest_fd_ = -1;

  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> dropped_records_{0};
  std::vector<RecoveredDoc> recovered_;
  std::thread writer_;

  struct Instruments {
    obs::Counter* spills = nullptr;
    obs::Counter* spill_bytes = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* io_errors = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Gauge* docs = nullptr;
    obs::Gauge* bytes = nullptr;
    obs::Gauge* degraded = nullptr;
  };
  Instruments inst_;
};

}  // namespace cachecloud::cache
