#include "cache/replacement.hpp"

#include <stdexcept>

namespace cachecloud::cache {

// ---------------------------------------------------------------- LRU

void LruPolicy::on_insert(DocId id, const DocMeta&) {
  if (index_.count(id) > 0) {
    throw std::logic_error("LruPolicy: duplicate insert of doc " +
                           std::to_string(id));
  }
  order_.push_front(id);
  index_[id] = order_.begin();
}

void LruPolicy::on_access(DocId id, const DocMeta&) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    throw std::logic_error("LruPolicy: access to untracked doc " +
                           std::to_string(id));
  }
  order_.splice(order_.begin(), order_, it->second);
}

void LruPolicy::on_erase(DocId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    throw std::logic_error("LruPolicy: erase of untracked doc " +
                           std::to_string(id));
  }
  order_.erase(it->second);
  index_.erase(it);
}

DocId LruPolicy::victim() const {
  if (order_.empty()) throw std::logic_error("LruPolicy: victim of empty set");
  return order_.back();
}

// ---------------------------------------------------------------- LFU

void LfuPolicy::reinsert(DocId id, std::uint64_t count) {
  const Key key{count, ++tick_, id};
  ranked_.insert(key);
  entries_[id] = key;
}

void LfuPolicy::on_insert(DocId id, const DocMeta&) {
  if (entries_.count(id) > 0) {
    throw std::logic_error("LfuPolicy: duplicate insert of doc " +
                           std::to_string(id));
  }
  reinsert(id, 1);
}

void LfuPolicy::on_access(DocId id, const DocMeta&) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::logic_error("LfuPolicy: access to untracked doc " +
                           std::to_string(id));
  }
  const std::uint64_t count = it->second.count + 1;
  ranked_.erase(it->second);
  reinsert(id, count);
}

void LfuPolicy::on_erase(DocId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::logic_error("LfuPolicy: erase of untracked doc " +
                           std::to_string(id));
  }
  ranked_.erase(it->second);
  entries_.erase(it);
}

DocId LfuPolicy::victim() const {
  if (ranked_.empty()) throw std::logic_error("LfuPolicy: victim of empty set");
  return ranked_.begin()->id;
}

// ---------------------------------------------------------------- GDSF

void GdsfPolicy::rank(DocId id, Entry& e) {
  e.key = Key{
      inflation_ + static_cast<double>(e.frequency) /
                       static_cast<double>(std::max<std::uint64_t>(
                           e.size_bytes, 1)),
      ++tick_, id};
  ranked_.insert(e.key);
}

void GdsfPolicy::on_insert(DocId id, const DocMeta& meta) {
  if (entries_.count(id) > 0) {
    throw std::logic_error("GdsfPolicy: duplicate insert of doc " +
                           std::to_string(id));
  }
  Entry e;
  e.frequency = 1;
  e.size_bytes = meta.size_bytes;
  rank(id, e);
  entries_[id] = e;
}

void GdsfPolicy::on_access(DocId id, const DocMeta&) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::logic_error("GdsfPolicy: access to untracked doc " +
                           std::to_string(id));
  }
  ranked_.erase(it->second.key);
  ++it->second.frequency;
  rank(id, it->second);
}

void GdsfPolicy::on_erase(DocId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::logic_error("GdsfPolicy: erase of untracked doc " +
                           std::to_string(id));
  }
  // Evicted priority inflates everything inserted afterwards (Greedy-Dual
  // aging). erase() is also called for explicit removals; using the same
  // rule there is harmless since priorities only guide eviction order.
  inflation_ = std::max(inflation_, it->second.key.priority);
  ranked_.erase(it->second.key);
  entries_.erase(it);
}

DocId GdsfPolicy::victim() const {
  if (ranked_.empty()) {
    throw std::logic_error("GdsfPolicy: victim of empty set");
  }
  return ranked_.begin()->id;
}

std::unique_ptr<ReplacementPolicy> make_policy(const std::string& name) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "lfu") return std::make_unique<LfuPolicy>();
  if (name == "gdsf") return std::make_unique<GdsfPolicy>();
  throw std::invalid_argument("unknown replacement policy: " + name);
}

}  // namespace cachecloud::cache
