// Byte-accounted document store of a single edge cache.
//
// Stores document *metadata* (id, size, version, access history); bodies are
// opaque to the simulation and only materialized by the distribution layer
// (src/node/). Capacity 0 means unlimited disk (the Fig 7/8 setting);
// otherwise the configured ReplacementPolicy evicts documents until the new
// one fits (Fig 9 uses LRU on 5% disk).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/replacement.hpp"
#include "trace/trace.hpp"

namespace cachecloud::cache {

struct StoredDoc {
  DocId id = 0;
  std::uint64_t size_bytes = 0;
  std::uint64_t version = 0;
  double stored_at = 0.0;
  double last_access = 0.0;
  // When the copy was last known fresh: set on insert, refresh and update,
  // and bumped by touch_validated() after a successful TTL revalidation.
  double validated_at = 0.0;
  std::uint64_t access_count = 0;
};

struct PutResult {
  bool stored = false;
  // Documents evicted to make room, in eviction order. The caller (the
  // cloud's placement layer) must deregister these from the directory.
  std::vector<DocId> evicted;
};

class DocumentStore {
 public:
  // capacity_bytes == 0 means unlimited.
  DocumentStore(std::uint64_t capacity_bytes,
                std::unique_ptr<ReplacementPolicy> policy);

  // Inserts or refreshes a document. A document larger than the whole disk
  // is not stored (stored == false, nothing evicted). Re-putting an existing
  // document refreshes its version/size and counts as an access.
  PutResult put(DocId id, std::uint64_t size_bytes, std::uint64_t version,
                double now);

  // Access for reading; bumps recency/frequency. Returns nullopt on miss.
  std::optional<StoredDoc> get(DocId id, double now);

  // Read-only lookup with no policy side effects.
  [[nodiscard]] const StoredDoc* peek(DocId id) const;
  [[nodiscard]] bool contains(DocId id) const { return peek(id) != nullptr; }

  // Applies a pushed update: new version (and possibly size). Returns false
  // if the document is not cached here. A size increase may evict others;
  // evictions are appended to `evicted` if provided.
  bool apply_update(DocId id, std::uint64_t version, std::uint64_t size_bytes,
                    double now, std::vector<DocId>* evicted = nullptr);

  // Marks the copy as known-fresh at `now` (successful TTL revalidation).
  // Returns false if the document is not cached here.
  bool touch_validated(DocId id, double now);

  // Explicit removal (e.g. placement decided against keeping it).
  bool erase(DocId id);

  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::size_t doc_count() const noexcept { return docs_.size(); }
  [[nodiscard]] bool unlimited() const noexcept { return capacity_bytes_ == 0; }

  // Cumulative bytes ever written into the store (inserts + growth). The
  // DsCC utility component derives the expected residence time of a new copy
  // from the byte-churn rate: residence ≈ capacity / churn-rate.
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  // Expected residence time in seconds given observed churn since t=0;
  // +infinity for unlimited stores or stores with no churn.
  [[nodiscard]] double expected_residence_sec(double now) const noexcept;

  // Mean access count over currently cached documents (AFC normalizer).
  [[nodiscard]] double mean_access_count() const noexcept;

  // Visits every stored document (unspecified order).
  void for_each(const std::function<void(const StoredDoc&)>& fn) const;

 private:
  // Evicts until `needed` bytes fit; appends victims. Precondition:
  // needed <= capacity.
  void make_room(std::uint64_t needed, std::vector<DocId>& evicted);
  // Changes an existing document's size, evicting others as needed; false
  // means it could never fit and was dropped. Precondition: id is stored.
  bool resize_existing(DocId id, std::uint64_t new_size,
                       std::vector<DocId>& evicted);

  std::uint64_t capacity_bytes_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unordered_map<DocId, StoredDoc> docs_;
  std::uint64_t used_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t total_access_count_ = 0;  // sum over cached docs
};

}  // namespace cachecloud::cache
