#include "cache/document_store.hpp"

#include <limits>
#include <stdexcept>

namespace cachecloud::cache {

DocumentStore::DocumentStore(std::uint64_t capacity_bytes,
                             std::unique_ptr<ReplacementPolicy> policy)
    : capacity_bytes_(capacity_bytes), policy_(std::move(policy)) {
  if (!policy_) {
    throw std::invalid_argument("DocumentStore: policy must not be null");
  }
}

void DocumentStore::make_room(std::uint64_t needed,
                              std::vector<DocId>& evicted) {
  while (capacity_bytes_ - used_ < needed) {
    const DocId victim = policy_->victim();
    const auto it = docs_.find(victim);
    if (it == docs_.end()) {
      throw std::logic_error("DocumentStore: policy victim not in store");
    }
    used_ -= it->second.size_bytes;
    total_access_count_ -= it->second.access_count;
    policy_->on_erase(victim);
    docs_.erase(it);
    evicted.push_back(victim);
  }
}

// Resizes an existing document. The old copy is detached first so that the
// eviction scan can never pick the document being resized (which would
// invalidate the caller's view of it). Returns false when the new size can
// never fit; the document is then gone from the store.
bool DocumentStore::resize_existing(DocId id, std::uint64_t new_size,
                                    std::vector<DocId>& evicted) {
  const auto it = docs_.find(id);
  StoredDoc saved = it->second;
  const std::uint64_t old_size = saved.size_bytes;

  if (new_size <= old_size) {
    used_ -= old_size - new_size;
    it->second.size_bytes = new_size;
    return true;
  }

  if (!unlimited()) {
    if (new_size > capacity_bytes_) {
      erase(id);
      return false;
    }
    // Detach, make room, re-attach with history intact.
    used_ -= old_size;
    total_access_count_ -= saved.access_count;
    policy_->on_erase(id);
    docs_.erase(it);
    make_room(new_size, evicted);

    saved.size_bytes = new_size;
    docs_.emplace(id, saved);
    used_ += new_size;
    total_access_count_ += saved.access_count;
    policy_->on_insert(id, DocMeta{new_size, saved.last_access});
  } else {
    it->second.size_bytes = new_size;
    used_ += new_size - old_size;
  }
  bytes_written_ += new_size - old_size;
  return true;
}

PutResult DocumentStore::put(DocId id, std::uint64_t size_bytes,
                             std::uint64_t version, double now) {
  PutResult result;

  if (docs_.count(id) > 0) {
    if (!resize_existing(id, size_bytes, result.evicted)) {
      return result;  // grew beyond the disk and was dropped
    }
    StoredDoc& doc = docs_.at(id);
    doc.version = std::max(doc.version, version);
    doc.last_access = now;
    doc.validated_at = now;
    ++doc.access_count;
    ++total_access_count_;
    policy_->on_access(id, DocMeta{size_bytes, now});
    result.stored = true;
    return result;
  }

  if (!unlimited()) {
    if (size_bytes > capacity_bytes_) return result;  // cannot ever fit
    make_room(size_bytes, result.evicted);
  }

  StoredDoc doc;
  doc.id = id;
  doc.size_bytes = size_bytes;
  doc.version = version;
  doc.stored_at = now;
  doc.last_access = now;
  doc.validated_at = now;
  doc.access_count = 1;
  docs_.emplace(id, doc);
  used_ += size_bytes;
  bytes_written_ += size_bytes;
  ++total_access_count_;
  policy_->on_insert(id, DocMeta{size_bytes, now});
  result.stored = true;
  return result;
}

std::optional<StoredDoc> DocumentStore::get(DocId id, double now) {
  const auto it = docs_.find(id);
  if (it == docs_.end()) return std::nullopt;
  StoredDoc& doc = it->second;
  doc.last_access = now;
  ++doc.access_count;
  ++total_access_count_;
  policy_->on_access(id, DocMeta{doc.size_bytes, now});
  return doc;
}

const StoredDoc* DocumentStore::peek(DocId id) const {
  const auto it = docs_.find(id);
  return it == docs_.end() ? nullptr : &it->second;
}

bool DocumentStore::apply_update(DocId id, std::uint64_t version,
                                 std::uint64_t size_bytes, double now,
                                 std::vector<DocId>* evicted) {
  const auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  if (version <= it->second.version) return true;  // stale or duplicate push

  std::vector<DocId> local;
  const std::uint64_t old_size = it->second.size_bytes;
  if (size_bytes != old_size) {
    if (!resize_existing(id, size_bytes, local)) {
      // Grew beyond the whole disk: the copy is dropped.
      local.push_back(id);
      if (evicted) {
        evicted->insert(evicted->end(), local.begin(), local.end());
      }
      return true;
    }
  } else {
    // Same-size rewrite still writes the body.
    bytes_written_ += size_bytes;
  }
  docs_.at(id).version = version;
  docs_.at(id).validated_at = now;
  if (evicted) evicted->insert(evicted->end(), local.begin(), local.end());
  return true;
}

bool DocumentStore::touch_validated(DocId id, double now) {
  const auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  it->second.validated_at = now;
  return true;
}

bool DocumentStore::erase(DocId id) {
  const auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  used_ -= it->second.size_bytes;
  total_access_count_ -= it->second.access_count;
  policy_->on_erase(id);
  docs_.erase(it);
  return true;
}

double DocumentStore::expected_residence_sec(double now) const noexcept {
  if (unlimited()) return std::numeric_limits<double>::infinity();
  if (now <= 0.0 || bytes_written_ == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double churn_rate =
      static_cast<double>(bytes_written_) / now;  // bytes per second
  return static_cast<double>(capacity_bytes_) / churn_rate;
}

double DocumentStore::mean_access_count() const noexcept {
  if (docs_.empty()) return 0.0;
  return static_cast<double>(total_access_count_) /
         static_cast<double>(docs_.size());
}

void DocumentStore::for_each(
    const std::function<void(const StoredDoc&)>& fn) const {
  for (const auto& [_, doc] : docs_) fn(doc);
}

}  // namespace cachecloud::cache
