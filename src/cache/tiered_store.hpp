// Two-tier document store: byte-accounted in-memory DocumentStore (metadata)
// + owned bodies, over an optional write-behind DiskTier.
//
// This is the storage engine a CacheNode mounts behind its state mutex. It
// owns what used to be the node's separate `store_` and `bodies_` members
// and adds the spill/reload choreography between them and the disk:
//
//   put        memory insert; every memory eviction is offered to the disk
//              tier ("spilled") before being dropped. With write_through
//              the inserted copy is also persisted immediately, so a crash
//              loses nothing that was ever stored.
//   get        memory first (bumps the replacement policy), then disk. Disk
//              hits are served in place, not promoted — after a warm
//              restart the hot set is preloaded by load_recovered instead.
//   apply_update
//              refreshes whichever tiers hold the document so a stale
//              version is never served after a restart.
//
// Eviction outcomes split in two: `spilled` documents remain available
// locally (they stay registered at their beacon point), `dropped_urls` left
// the node entirely and must be deregistered by the caller.
//
// Not internally synchronized (except the DiskTier's own write-behind
// machinery): the owning node serializes access, exactly as it did for the
// raw DocumentStore. With no DiskTier configured, behavior is identical to
// the pre-tiered store+bodies pair.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/disk_tier.hpp"
#include "cache/document_store.hpp"
#include "cache/replacement.hpp"

namespace cachecloud::cache {

struct TieredPutResult {
  bool stored = false;
  // Evicted from memory and spilled to (or already durable on) disk: the
  // node still holds these and they stay registered.
  std::size_t spilled = 0;
  // Gone from every tier — the caller must deregister them.
  std::vector<std::string> dropped_urls;
};

class TieredStore {
 public:
  // `disk` may be null (memory-only). `write_through` persists every
  // accepted memory put immediately instead of only on eviction.
  TieredStore(std::uint64_t mem_capacity_bytes,
              std::unique_ptr<ReplacementPolicy> policy,
              std::unique_ptr<DiskTier> disk, bool write_through = false);

  struct ReadResult {
    bool found = false;
    bool from_disk = false;
    std::uint64_t version = 0;
    std::vector<std::uint8_t> body;
  };

  TieredPutResult put(DocId id, const std::string& url,
                      const std::vector<std::uint8_t>& body,
                      std::uint64_t version, double now);

  // Memory first (policy bump), then disk (last-use bump).
  ReadResult get(DocId id, const std::string& url, double now);

  // Applies a pushed update to every tier holding the document. Returns
  // false if no tier holds it. Eviction side effects land in `side`.
  bool apply_update(DocId id, const std::string& url,
                    const std::vector<std::uint8_t>& body,
                    std::uint64_t version, double now, TieredPutResult* side);

  // Removes the document from every tier. True if any tier had it.
  bool erase(DocId id, const std::string& url);

  // Warm-restart preload: copy a recovered document from disk into memory
  // if it fits without evicting anything. The disk copy stays durable.
  bool load_recovered(DocId id, const std::string& url, double now);

  [[nodiscard]] bool in_memory(DocId id) const { return mem_.contains(id); }
  [[nodiscard]] bool holds(DocId id, const std::string& url) const {
    return mem_.contains(id) || (disk_ && disk_->contains(url));
  }
  [[nodiscard]] bool holds_url(const std::string& url) const {
    return mem_urls_.count(url) > 0 || (disk_ && disk_->contains(url));
  }

  // The memory tier's metadata view (doc_count, used_bytes, residence,
  // mean_access_count ... ) for placement contexts and stats gauges.
  [[nodiscard]] const DocumentStore& memory() const noexcept { return mem_; }
  [[nodiscard]] DiskTier* disk() noexcept { return disk_.get(); }
  [[nodiscard]] const DiskTier* disk() const noexcept { return disk_.get(); }

 private:
  struct Body {
    std::string url;
    std::vector<std::uint8_t> bytes;
    std::uint64_t version = 0;
  };

  // Offers an evicted memory body to the disk tier; classifies the outcome
  // into `result` and folds in any disk-side evictions.
  void spill(Body&& body, TieredPutResult& result);
  void note_disk_evictions(std::vector<std::string>&& evicted,
                           TieredPutResult& result);

  DocumentStore mem_;
  std::unordered_map<DocId, Body> bodies_;
  // Reverse map for memory-resident urls: a disk eviction of a url still
  // held in memory is not a "dropped" document.
  std::unordered_map<std::string, DocId> mem_urls_;
  std::unique_ptr<DiskTier> disk_;
  const bool write_through_;
};

}  // namespace cachecloud::cache
