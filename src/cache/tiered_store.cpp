#include "cache/tiered_store.hpp"

#include <utility>

namespace cachecloud::cache {

TieredStore::TieredStore(std::uint64_t mem_capacity_bytes,
                         std::unique_ptr<ReplacementPolicy> policy,
                         std::unique_ptr<DiskTier> disk, bool write_through)
    : mem_(mem_capacity_bytes, std::move(policy)),
      disk_(std::move(disk)),
      write_through_(write_through && disk_ != nullptr) {}

void TieredStore::note_disk_evictions(std::vector<std::string>&& evicted,
                                      TieredPutResult& result) {
  for (std::string& url : evicted) {
    // Still memory-resident copies remain held (and registered); only
    // documents that just left their last tier must be deregistered.
    if (mem_urls_.count(url) == 0) {
      result.dropped_urls.push_back(std::move(url));
    }
  }
}

void TieredStore::spill(Body&& body, TieredPutResult& result) {
  bool kept = false;
  if (disk_) {
    DiskTier::PutResult dp = disk_->put(body.url, body.version, body.bytes);
    kept = dp.accepted;
    note_disk_evictions(std::move(dp.evicted), result);
  }
  if (kept) {
    ++result.spilled;
  } else {
    result.dropped_urls.push_back(std::move(body.url));
  }
}

TieredPutResult TieredStore::put(DocId id, const std::string& url,
                                 const std::vector<std::uint8_t>& body,
                                 std::uint64_t version, double now) {
  TieredPutResult result;
  const PutResult mem = mem_.put(id, body.size(), version, now);
  result.stored = mem.stored;
  if (mem.stored) {
    const std::uint64_t stored_version = mem_.peek(id)->version;
    bodies_[id] = Body{url, body, stored_version};
    mem_urls_[url] = id;
    if (write_through_) {
      DiskTier::PutResult dp = disk_->put(url, stored_version, body);
      note_disk_evictions(std::move(dp.evicted), result);
    }
  }
  for (const DocId victim : mem.evicted) {
    auto node = bodies_.extract(victim);
    if (node.empty()) continue;
    mem_urls_.erase(node.mapped().url);
    spill(std::move(node.mapped()), result);
  }
  return result;
}

TieredStore::ReadResult TieredStore::get(DocId id, const std::string& url,
                                         double now) {
  ReadResult result;
  if (const auto doc = mem_.get(id, now)) {
    const auto it = bodies_.find(id);
    if (it != bodies_.end()) {
      result.found = true;
      result.version = doc->version;
      result.body = it->second.bytes;
      return result;
    }
  }
  if (disk_) {
    if (auto hit = disk_->get(url)) {
      result.found = true;
      result.from_disk = true;
      result.version = hit->version;
      result.body = std::move(hit->body);
    }
  }
  return result;
}

bool TieredStore::apply_update(DocId id, const std::string& url,
                               const std::vector<std::uint8_t>& body,
                               std::uint64_t version, double now,
                               TieredPutResult* side) {
  TieredPutResult local;
  TieredPutResult& result = side ? *side : local;
  const bool in_mem = mem_.contains(id);
  const bool on_disk = disk_ && disk_->contains(url);
  if (!in_mem && !on_disk) return false;

  if (in_mem) {
    std::vector<DocId> evicted;
    mem_.apply_update(id, version, body.size(), now, &evicted);
    if (mem_.contains(id)) {
      bodies_[id] = Body{url, body, mem_.peek(id)->version};
    } else {
      // The grown document could never fit and was dropped from memory;
      // offer the fresh copy to the disk tier like any other eviction.
      auto node = bodies_.extract(id);
      mem_urls_.erase(url);
      if (!node.empty()) {
        node.mapped().bytes = body;
        node.mapped().version = version;
        spill(std::move(node.mapped()), result);
      }
    }
    for (const DocId victim : evicted) {
      auto node = bodies_.extract(victim);
      if (node.empty()) continue;
      mem_urls_.erase(node.mapped().url);
      spill(std::move(node.mapped()), result);
    }
  }
  if (on_disk && disk_->version_of(url) < version) {
    // Refresh the durable copy so a restart never resurrects a stale
    // version.
    DiskTier::PutResult dp = disk_->put(url, version, body);
    note_disk_evictions(std::move(dp.evicted), result);
  }
  return true;
}

bool TieredStore::erase(DocId id, const std::string& url) {
  const bool had_mem = mem_.erase(id);
  bodies_.erase(id);
  mem_urls_.erase(url);
  const bool had_disk = disk_ && disk_->erase(url);
  return had_mem || had_disk;
}

bool TieredStore::load_recovered(DocId id, const std::string& url,
                                 double now) {
  if (!disk_ || mem_.contains(id)) return false;
  auto hit = disk_->get(url);
  if (!hit) return false;
  if (!mem_.unlimited() &&
      mem_.used_bytes() + hit->body.size() > mem_.capacity_bytes()) {
    return false;  // preload must not evict what is already warm
  }
  const PutResult mem = mem_.put(id, hit->body.size(), hit->version, now);
  if (!mem.stored) return false;
  bodies_[id] = Body{url, std::move(hit->body), mem_.peek(id)->version};
  mem_urls_[url] = id;
  return true;
}

}  // namespace cachecloud::cache
