// Replacement policies for the edge-cache document store.
//
// The paper's limited-disk experiment (Fig 9) uses LRU; LFU and GDSF
// (Greedy-Dual-Size-Frequency, the cost-aware family of Cao & Irani [3],
// which the related-work section cites) are provided for the replacement
// ablation bench.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "trace/trace.hpp"

namespace cachecloud::cache {

using trace::DocId;

// Everything a policy may consult when ranking victims.
struct DocMeta {
  std::uint64_t size_bytes = 0;
  double now = 0.0;  // time of the triggering operation
};

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual void on_insert(DocId id, const DocMeta& meta) = 0;
  virtual void on_access(DocId id, const DocMeta& meta) = 0;
  virtual void on_erase(DocId id) = 0;
  // The next victim under this policy. Precondition: at least one document
  // is tracked. Does not remove it; the store calls on_erase afterwards.
  [[nodiscard]] virtual DocId victim() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

// Least-recently-used. O(1) per operation.
class LruPolicy final : public ReplacementPolicy {
 public:
  void on_insert(DocId id, const DocMeta& meta) override;
  void on_access(DocId id, const DocMeta& meta) override;
  void on_erase(DocId id) override;
  [[nodiscard]] DocId victim() const override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] std::string name() const override { return "lru"; }

 private:
  std::list<DocId> order_;  // front = most recent
  std::unordered_map<DocId, std::list<DocId>::iterator> index_;
};

// Least-frequently-used with LRU tie-break. O(log n) per operation.
class LfuPolicy final : public ReplacementPolicy {
 public:
  void on_insert(DocId id, const DocMeta& meta) override;
  void on_access(DocId id, const DocMeta& meta) override;
  void on_erase(DocId id) override;
  [[nodiscard]] DocId victim() const override;
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] std::string name() const override { return "lfu"; }

 private:
  struct Key {
    std::uint64_t count;
    std::uint64_t tick;  // monotone access stamp for LRU tie-break
    DocId id;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  void reinsert(DocId id, std::uint64_t count);

  std::set<Key> ranked_;
  std::unordered_map<DocId, Key> entries_;
  std::uint64_t tick_ = 0;
};

// Greedy-Dual-Size-Frequency: priority = inflation + frequency / size.
// Evicts the lowest priority; the evicted priority inflates future entries,
// which ages out stale-but-small documents. O(log n) per operation.
class GdsfPolicy final : public ReplacementPolicy {
 public:
  void on_insert(DocId id, const DocMeta& meta) override;
  void on_access(DocId id, const DocMeta& meta) override;
  void on_erase(DocId id) override;
  [[nodiscard]] DocId victim() const override;
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] std::string name() const override { return "gdsf"; }

 private:
  struct Key {
    double priority;
    std::uint64_t tick;
    DocId id;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct Entry {
    Key key;
    std::uint64_t frequency = 0;
    std::uint64_t size_bytes = 0;
  };
  void rank(DocId id, Entry& e);

  std::set<Key> ranked_;
  std::unordered_map<DocId, Entry> entries_;
  double inflation_ = 0.0;
  std::uint64_t tick_ = 0;
};

// Factory by name ("lru", "lfu", "gdsf"); throws std::invalid_argument on
// unknown names.
[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_policy(
    const std::string& name);

}  // namespace cachecloud::cache
