#include "cache/io_fault.hpp"

namespace cachecloud::cache {

void IoFaultInjector::set_profile(const IoFaultProfile& profile) {
  const std::lock_guard<std::mutex> lock(mutex_);
  profile_ = profile;
}

void IoFaultInjector::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  profile_ = IoFaultProfile{};
}

void IoFaultInjector::on_read() {
  bool fire;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fire = rng_.next_bool(profile_.read_error);
  }
  if (fire) {
    bump(Kind::ReadError);
    throw IoError("injected: EIO on read");
  }
}

std::size_t IoFaultInjector::on_write(std::size_t n) {
  // Fixed roll order (error, then short) so the sequence is reproducible.
  bool error;
  bool torn;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    error = rng_.next_bool(profile_.write_error);
    torn = rng_.next_bool(profile_.short_write);
  }
  if (error) {
    bump(Kind::WriteError);
    throw IoError("injected: EIO on write");
  }
  if (torn && n > 1) {
    bump(Kind::ShortWrite);
    return n / 2;
  }
  return n;
}

void IoFaultInjector::on_fsync() {
  bool fire;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fire = rng_.next_bool(profile_.fsync_error);
  }
  if (fire) {
    bump(Kind::FsyncError);
    throw IoError("injected: EIO on fsync");
  }
}

bool IoFaultInjector::corrupt_append() {
  bool fire;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fire = rng_.next_bool(profile_.corrupt_append);
  }
  if (fire) bump(Kind::CorruptAppend);
  return fire;
}

}  // namespace cachecloud::cache
