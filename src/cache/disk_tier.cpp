#include "cache/disk_tier.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/fs.hpp"
#include "util/logging.hpp"

namespace cachecloud::cache {
namespace {

namespace stdfs = std::filesystem;

// Thrown instead of IoError when a body file is simply absent (a rename
// lost to a crash, or an eviction racing a read): a normal artifact, not a
// disk-health signal, so it must not feed the breaker.
struct FileGone {};

[[nodiscard]] std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return std::string(buf);
}

// Parses "obj-<seq>.dat"; returns 0 if the name does not match.
[[nodiscard]] std::uint64_t file_seq(const std::string& file) {
  std::uint64_t seq = 0;
  if (std::sscanf(file.c_str(), "obj-%" SCNu64 ".dat", &seq) != 1) return 0;
  return seq;
}

}  // namespace

DiskTier::DiskTier(const DiskTierConfig& config, obs::Registry* registry)
    : config_(config) {
  if (registry) {
    register_instruments(registry);
    mutex_.bind(*registry, "disk_mutex_");
  }
  recover();
  if (!degraded()) {
    // Open the (freshly compacted) manifest for appending; from here on
    // only the writer thread touches the fd.
    const std::string mpath = path_of("manifest");
    manifest_fd_ = ::open(mpath.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (manifest_fd_ < 0) {
      note_io_error("open", "manifest open: " + std::string(strerror(errno)));
      degrade("cannot open manifest for append");
    }
  }
  writer_ = std::thread([this] { writer_loop(); });
}

DiskTier::~DiskTier() {
  {
    std::unique_lock<obs::TimedMutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (manifest_fd_ >= 0) {
    ::close(manifest_fd_);
    manifest_fd_ = -1;
  }
}

void DiskTier::register_instruments(obs::Registry* registry) {
  inst_.spills = &registry->counter(
      "cachecloud_disk_spills_total",
      "Documents accepted by the write-behind disk tier");
  inst_.spill_bytes = &registry->counter(
      "cachecloud_disk_spill_bytes_total",
      "Body bytes accepted by the write-behind disk tier");
  inst_.hits = &registry->counter(
      "cachecloud_disk_hits_total",
      "Reads served from the disk tier (queued copy or file)");
  inst_.evictions = &registry->counter(
      "cachecloud_disk_evictions_total",
      "Documents evicted from the disk tier by last-use order");
  inst_.io_errors = &registry->counter(
      "cachecloud_disk_io_errors_total",
      "Hard disk I/O failures (real or injected EIO on read/write/fsync)");
  inst_.dropped = &registry->counter(
      "cachecloud_disk_dropped_records_total",
      "Manifest or body records discarded as corrupt, torn or stale");
  inst_.docs = &registry->gauge(
      "cachecloud_disk_docs", "Documents currently held by the disk tier");
  inst_.bytes = &registry->gauge(
      "cachecloud_disk_used_bytes", "Body bytes currently on disk");
  inst_.degraded = &registry->gauge(
      "cachecloud_disk_degraded",
      "1 when persistent disk failure degraded this node to memory-only");
}

// ------------------------------------------------------------ recovery

void DiskTier::recover() {
  std::error_code ec;
  stdfs::create_directories(config_.directory, ec);
  if (ec) {
    note_io_error("mkdir", "create " + config_.directory + ": " + ec.message());
    degrade("cache directory unavailable");
    return;
  }

  // Replay the manifest: CRC-valid prefix only. A record torn by a crash
  // (or bit-flipped on media) invalidates itself and everything after it —
  // appends after a torn tail share its line and are unparseable anyway.
  struct ParsedRec {
    std::string file;
    std::uint64_t version = 0;
    std::uint64_t size = 0;
    std::uint32_t body_crc = 0;
    std::uint64_t rec_seq = 0;  // manifest order, for last-use recency
  };
  std::unordered_map<std::string, ParsedRec> live;
  const std::string mpath = path_of("manifest");
  std::string text;
  if (stdfs::exists(mpath, ec)) {
    try {
      if (config_.io_faults) config_.io_faults->on_read();
      const int fd = ::open(mpath.c_str(), O_RDONLY);
      if (fd < 0) throw IoError("manifest open: " + std::string(strerror(errno)));
      char buf[4096];
      for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
          if (errno == EINTR) continue;
          ::close(fd);
          throw IoError("manifest read: " + std::string(strerror(errno)));
        }
        if (n == 0) break;
        text.append(buf, static_cast<std::size_t>(n));
      }
      ::close(fd);
    } catch (const IoError& e) {
      // A manifest we know exists but cannot read is the strongest
      // possible persistent-failure signal at startup: degrade
      // immediately (Traffic Server's "mark disk bad" on open failure).
      note_io_error("read", e.what());
      degrade("manifest unreadable");
      return;
    }
  }

  std::uint64_t rec_seq = 0;
  std::uint64_t parsed_records = 0;
  std::uint64_t torn_at_line = 0;
  std::size_t pos = 0;
  std::uint64_t total_lines = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      // Trailing bytes with no newline: a torn final append.
      ++total_lines;
      torn_at_line = total_lines;
      break;
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++total_lines;
    const std::size_t sp = line.find(' ');
    bool ok = sp == 8;
    std::uint32_t want_crc = 0;
    if (ok) {
      ok = std::sscanf(line.c_str(), "%8x", &want_crc) == 1 &&
           util::crc32(std::string_view(line).substr(sp + 1)) == want_crc;
    }
    if (ok) {
      const std::string body = line.substr(sp + 1);
      if (body.size() > 2 && body[0] == 'p') {
        ParsedRec rec;
        char bodycrc_hex[9] = {0};
        char file_buf[64] = {0};
        int consumed = 0;
        if (std::sscanf(body.c_str(), "p %" SCNu64 " %" SCNu64 " %8s %63s %n",
                        &rec.version, &rec.size, bodycrc_hex, file_buf,
                        &consumed) == 4 &&
            consumed > 0 && static_cast<std::size_t>(consumed) < body.size() &&
            std::sscanf(bodycrc_hex, "%8x", &rec.body_crc) == 1) {
          rec.file = file_buf;
          rec.rec_seq = ++rec_seq;
          live[body.substr(static_cast<std::size_t>(consumed))] = rec;
          next_file_seq_ = std::max(next_file_seq_, file_seq(rec.file) + 1);
          ++parsed_records;
        } else {
          ok = false;
        }
      } else if (body.size() > 2 && body[0] == 'd') {
        live.erase(body.substr(2));
        ++parsed_records;
      } else {
        ok = false;
      }
    }
    if (!ok) {
      torn_at_line = total_lines;
      break;
    }
  }
  if (torn_at_line != 0) {
    // Everything from the first invalid record on is discarded: count the
    // bad record plus the unreplayed tail.
    std::uint64_t remaining = 1;
    while (pos < text.size()) {
      const std::size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) break;
      pos = eol + 1;
      ++remaining;
    }
    dropped_records_.fetch_add(remaining, std::memory_order_relaxed);
    if (inst_.dropped) inst_.dropped->inc(remaining);
    CC_LOG(Warn) << "disk tier " << config_.directory
                 << ": manifest corrupt at record " << torn_at_line
                 << ", recovering the valid prefix (" << parsed_records
                 << " records), discarding " << remaining;
  }

  // Verify each surviving record's body file, most recent last so use_seq
  // ends up in manifest (≈ last-use) order.
  std::vector<std::pair<std::uint64_t, std::string>> order;
  order.reserve(live.size());
  for (const auto& [url, rec] : live) order.emplace_back(rec.rec_seq, url);
  std::sort(order.begin(), order.end());
  for (const auto& [seq, url] : order) {
    const ParsedRec& rec = live.at(url);
    bool valid = false;
    try {
      const std::vector<std::uint8_t> body =
          read_file_checked(rec.file, rec.size);
      valid = util::crc32(body) == rec.body_crc;
    } catch (const FileGone&) {
      // A rename lost to the crash: the record is stale, the disk is fine.
      valid = false;
    } catch (const IoError& e) {
      // Real EIO: drop the record and feed the breaker — enough of these
      // and recovery itself degrades the tier.
      valid = false;
      note_io_error("read", e.what());
      CC_LOG(Warn) << "disk tier: recovery read of " << rec.file
                   << " failed: " << e.what();
      if (degraded()) return;
    }
    if (!valid) {
      dropped_records_.fetch_add(1, std::memory_order_relaxed);
      if (inst_.dropped) inst_.dropped->inc();
      std::error_code unlink_ec;
      stdfs::remove(path_of(rec.file), unlink_ec);
      continue;
    }
    Entry entry;
    entry.file = rec.file;
    entry.version = rec.version;
    entry.size = rec.size;
    entry.body_crc = rec.body_crc;
    entry.use_seq = next_use_seq_++;
    lru_.emplace(entry.use_seq, url);
    used_ += entry.size;
    index_.emplace(url, std::move(entry));
    recovered_.push_back(RecoveredDoc{url, rec.version, rec.size});
  }

  // Delete strays: tmp leftovers and body files no surviving record names.
  for (const auto& dirent : stdfs::directory_iterator(config_.directory, ec)) {
    const std::string name = dirent.path().filename().string();
    if (name == "manifest" || name == "manifest.tmp") continue;
    bool referenced = false;
    for (const auto& [url, entry] : index_) {
      if (entry.file == name) {
        referenced = true;
        break;
      }
    }
    if (!referenced) {
      std::error_code unlink_ec;
      stdfs::remove(dirent.path(), unlink_ec);
    }
  }

  // Compact: the manifest now describes exactly the surviving set.
  std::string compacted;
  for (const auto& [seq, url] : order) {
    const auto it = index_.find(url);
    if (it == index_.end()) continue;
    const Entry& e = it->second;
    std::string body = "p " + std::to_string(e.version) + " " +
                       std::to_string(e.size) + " " + crc_hex(e.body_crc) +
                       " " + e.file + " " + url;
    compacted += crc_hex(util::crc32(body)) + " " + body + "\n";
  }
  try {
    util::atomic_write_file(mpath, compacted);
  } catch (const std::exception& e) {
    // Non-fatal: the uncompacted manifest still replays to the same state.
    CC_LOG(Warn) << "disk tier: manifest compaction failed: " << e.what();
  }
  refresh_gauges_locked();
  if (!recovered_.empty()) {
    CC_LOG(Info) << "disk tier " << config_.directory << ": recovered "
                 << recovered_.size() << " documents (" << used_ << " bytes)";
  }
}

// ------------------------------------------------------------- data path

DiskTier::PutResult DiskTier::put(const std::string& url,
                                  std::uint64_t version,
                                  const std::vector<std::uint8_t>& body) {
  PutResult result;
  if (degraded()) return result;
  const std::uint64_t size = body.size();
  if (config_.capacity_bytes != 0 && size > config_.capacity_bytes) {
    return result;
  }
  std::unique_lock<obs::TimedMutex> lock(mutex_);
  if (degraded()) return result;

  const auto existing = index_.find(url);
  if (existing != index_.end() && existing->second.version == version &&
      !existing->second.queued) {
    // Same version already durable (e.g. a recovered doc cycling back out
    // of memory): refresh recency, skip the rewrite.
    touch_locked(url, existing->second);
    result.accepted = true;
    return result;
  }
  if (existing != index_.end()) {
    // Replace: retire the old file. A still-queued predecessor is simply
    // superseded (its write op will see the index changed and skip).
    if (!existing->second.queued) {
      Op erase_op;
      erase_op.type = Op::Type::Erase;
      erase_op.url = url;
      erase_op.file = existing->second.file;
      queue_.push_back(std::move(erase_op));
    }
    used_ -= existing->second.size;
    lru_.erase(existing->second.use_seq);
    index_.erase(existing);
  }
  if (config_.capacity_bytes != 0) {
    make_room_locked(size, result.evicted);
  }

  Entry entry;
  entry.file = "obj-" + std::to_string(next_file_seq_++) + ".dat";
  entry.version = version;
  entry.size = size;
  entry.body_crc = util::crc32(body);
  entry.use_seq = next_use_seq_++;
  entry.queued = std::make_shared<const std::vector<std::uint8_t>>(body);
  lru_.emplace(entry.use_seq, url);
  used_ += size;

  Op op;
  op.type = Op::Type::Write;
  op.url = url;
  op.file = entry.file;
  op.version = version;
  op.body_crc = entry.body_crc;
  op.body = entry.queued;
  index_.emplace(url, std::move(entry));
  queue_.push_back(std::move(op));
  refresh_gauges_locked();
  if (inst_.spills) inst_.spills->inc();
  if (inst_.spill_bytes) inst_.spill_bytes->inc(size);
  lock.unlock();
  cv_.notify_one();
  result.accepted = true;
  return result;
}

std::optional<DiskTier::DiskDoc> DiskTier::get(const std::string& url) {
  if (degraded()) return std::nullopt;
  std::string file;
  std::uint64_t version = 0;
  std::uint64_t size = 0;
  std::uint32_t body_crc = 0;
  {
    std::unique_lock<obs::TimedMutex> lock(mutex_);
    const auto it = index_.find(url);
    if (it == index_.end()) return std::nullopt;
    touch_locked(url, it->second);
    if (it->second.queued) {
      // Still in the write-behind queue: serve the in-flight copy.
      if (inst_.hits) inst_.hits->inc();
      return DiskDoc{it->second.version, *it->second.queued};
    }
    file = it->second.file;
    version = it->second.version;
    size = it->second.size;
    body_crc = it->second.body_crc;
  }
  std::vector<std::uint8_t> body;
  try {
    body = read_file_checked(file, size);
  } catch (const FileGone&) {
    return std::nullopt;  // evicted between unlock and read: a plain miss
  } catch (const IoError& e) {
    note_io_error("read", e.what());
    return std::nullopt;
  }
  if (body.size() != size || util::crc32(body) != body_crc) {
    // Corrupt on media: eradicate the copy (slccd) and miss.
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
    if (inst_.dropped) inst_.dropped->inc();
    CC_LOG(Warn) << "disk tier: body CRC mismatch for " << url
                 << " (" << file << "), dropping the copy";
    std::unique_lock<obs::TimedMutex> lock(mutex_);
    const auto it = index_.find(url);
    if (it != index_.end() && it->second.file == file) {
      drop_entry_locked(url, /*log_delete=*/true);
      refresh_gauges_locked();
      lock.unlock();
      cv_.notify_one();
    }
    return std::nullopt;
  }
  note_io_success();
  if (inst_.hits) inst_.hits->inc();
  return DiskDoc{version, std::move(body)};
}

bool DiskTier::contains(const std::string& url) const {
  if (degraded()) return false;
  const obs::TimedLock lock(mutex_);
  return index_.count(url) > 0;
}

std::uint64_t DiskTier::version_of(const std::string& url) const {
  if (degraded()) return 0;
  const obs::TimedLock lock(mutex_);
  const auto it = index_.find(url);
  return it == index_.end() ? 0 : it->second.version;
}

bool DiskTier::erase(const std::string& url) {
  if (degraded()) return false;
  bool found = false;
  {
    std::unique_lock<obs::TimedMutex> lock(mutex_);
    const auto it = index_.find(url);
    if (it != index_.end()) {
      found = true;
      drop_entry_locked(url, /*log_delete=*/true);
      refresh_gauges_locked();
    }
  }
  if (found) cv_.notify_one();
  return found;
}

void DiskTier::flush() {
  std::unique_lock<obs::TimedMutex> lock(mutex_);
  idle_cv_.wait(lock, [&] {
    return degraded() || (queue_.empty() && !writer_busy_);
  });
}

void DiskTier::hard_stop() {
  {
    std::unique_lock<obs::TimedMutex> lock(mutex_);
    stop_ = true;
    abandon_queue_ = true;
    queue_.clear();
    idle_cv_.notify_all();
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

std::size_t DiskTier::doc_count() const {
  const obs::TimedLock lock(mutex_);
  return index_.size();
}

std::uint64_t DiskTier::used_bytes() const {
  const obs::TimedLock lock(mutex_);
  return used_;
}

// --------------------------------------------------------- writer thread

void DiskTier::writer_loop() {
  std::unique_lock<obs::TimedMutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (abandon_queue_) break;
    if (queue_.empty()) {
      if (stop_) break;
      continue;
    }
    Op op = std::move(queue_.front());
    queue_.pop_front();
    writer_busy_ = true;
    lock.unlock();
    perform(op);
    lock.lock();
    writer_busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

void DiskTier::perform(const Op& op) {
  if (degraded()) return;
  if (op.type == Op::Type::Erase) {
    std::error_code ec;
    stdfs::remove(path_of(op.file), ec);  // ENOENT is fine (never written)
    try {
      append_manifest("d " + op.url);
      note_io_success();
    } catch (const IoError& e) {
      note_io_error("write", e.what());
    }
    return;
  }
  {
    // Superseded while queued (replaced or evicted)? Skip the whole op.
    const obs::TimedLock lock(mutex_);
    const auto it = index_.find(op.url);
    if (it == index_.end() || it->second.file != op.file ||
        !it->second.queued) {
      return;
    }
  }
  try {
    write_body_file(op);
    append_manifest("p " + std::to_string(op.version) + " " +
                    std::to_string(op.body->size()) + " " +
                    crc_hex(op.body_crc) + " " + op.file + " " + op.url);
    note_io_success();
    const obs::TimedLock lock(mutex_);
    const auto it = index_.find(op.url);
    if (it != index_.end() && it->second.file == op.file) {
      it->second.queued.reset();  // committed: serve from the file now
    }
  } catch (const IoError& e) {
    note_io_error("write", e.what());
    // The spill never became durable; forget it so gets don't read a
    // half-written file. The memory tier is unaffected.
    std::unique_lock<obs::TimedMutex> lock(mutex_);
    const auto it = index_.find(op.url);
    if (it != index_.end() && it->second.file == op.file) {
      used_ -= it->second.size;
      lru_.erase(it->second.use_seq);
      index_.erase(it);
      refresh_gauges_locked();
    }
  }
}

void DiskTier::write_body_file(const Op& op) {
  const std::string path = path_of(op.file);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw IoError("open " + tmp + ": " + std::strerror(errno));
  const auto* data = reinterpret_cast<const char*>(op.body->data());
  std::size_t remaining = op.body->size();
  std::size_t off = 0;
  try {
    while (remaining > 0) {
      std::size_t allowed = remaining;
      if (config_.io_faults) allowed = config_.io_faults->on_write(remaining);
      const ssize_t n = ::write(fd, data + off, allowed);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw IoError("write " + tmp + ": " + std::strerror(errno));
      }
      off += static_cast<std::size_t>(n);
      remaining -= static_cast<std::size_t>(n);
      if (allowed < remaining + static_cast<std::size_t>(n)) {
        // Injected short write: the tail of the body silently never lands
        // (a torn write). The size/CRC check catches it on read.
        break;
      }
    }
    if (config_.io_faults) config_.io_faults->on_fsync();
    if (::fsync(fd) != 0) {
      throw IoError("fsync " + tmp + ": " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw IoError("rename " + path + ": " + std::strerror(err));
  }
}

void DiskTier::append_manifest(const std::string& record_body) {
  if (manifest_fd_ < 0) throw IoError("manifest closed");
  std::string line = crc_hex(util::crc32(record_body)) + " " + record_body +
                     "\n";
  if (config_.io_faults && config_.io_faults->corrupt_append()) {
    line[line.size() / 2] ^= 0x01;  // latent media bit-flip
  }
  const char* data = line.data();
  std::size_t remaining = line.size();
  std::size_t off = 0;
  while (remaining > 0) {
    std::size_t allowed = remaining;
    if (config_.io_faults) allowed = config_.io_faults->on_write(remaining);
    const ssize_t n = ::write(manifest_fd_, data + off, allowed);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("manifest write: " + std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
    remaining -= static_cast<std::size_t>(n);
    if (allowed < remaining + static_cast<std::size_t>(n)) {
      return;  // torn manifest append; recovery drops the tail
    }
  }
  if (config_.io_faults) config_.io_faults->on_fsync();
  if (::fsync(manifest_fd_) != 0) {
    throw IoError("manifest fsync: " + std::string(std::strerror(errno)));
  }
}

std::vector<std::uint8_t> DiskTier::read_file_checked(const std::string& file,
                                                      std::uint64_t size) {
  if (config_.io_faults) config_.io_faults->on_read();
  const std::string path = path_of(file);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) throw FileGone{};
    throw IoError("open " + path + ": " + std::strerror(errno));
  }
  std::vector<std::uint8_t> body;
  body.reserve(size);
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw IoError("read " + path + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    body.insert(body.end(), buf, buf + n);
  }
  ::close(fd);
  return body;
}

// ------------------------------------------------------------ breaker

void DiskTier::note_io_error(const char* op, const std::string& what) {
  if (inst_.io_errors) inst_.io_errors->inc();
  CC_LOG(Warn) << "disk tier " << config_.directory << ": " << op
               << " failed: " << what;
  std::unique_lock<obs::TimedMutex> lock(mutex_);
  ++consecutive_failures_;
  if (config_.breaker_failures > 0 &&
      consecutive_failures_ >= config_.breaker_failures && !degraded()) {
    degraded_.store(true, std::memory_order_relaxed);
    queue_.clear();
    index_.clear();
    lru_.clear();
    used_ = 0;
    refresh_gauges_locked();
    if (inst_.degraded) inst_.degraded->set(1.0);
    idle_cv_.notify_all();
    CC_LOG(Warn) << "disk tier " << config_.directory << ": breaker tripped ("
                 << consecutive_failures_
                 << " consecutive I/O failures), degrading to memory-only";
  }
}

void DiskTier::note_io_success() {
  const obs::TimedLock lock(mutex_);
  consecutive_failures_ = 0;
}

void DiskTier::degrade(const std::string& why) {
  std::unique_lock<obs::TimedMutex> lock(mutex_);
  if (degraded()) return;
  degraded_.store(true, std::memory_order_relaxed);
  queue_.clear();
  index_.clear();
  lru_.clear();
  used_ = 0;
  refresh_gauges_locked();
  if (inst_.degraded) inst_.degraded->set(1.0);
  idle_cv_.notify_all();
  CC_LOG(Warn) << "disk tier " << config_.directory << ": degraded (" << why
               << ")";
}

// ------------------------------------------------------------ internals

void DiskTier::touch_locked(const std::string& url, Entry& entry) {
  lru_.erase(entry.use_seq);
  entry.use_seq = next_use_seq_++;
  lru_.emplace(entry.use_seq, url);
}

void DiskTier::make_room_locked(std::uint64_t needed,
                                std::vector<std::string>& evicted) {
  while (used_ + needed > config_.capacity_bytes && !lru_.empty()) {
    const auto victim = lru_.begin();
    const std::string url = victim->second;
    drop_entry_locked(url, /*log_delete=*/false);
    if (inst_.evictions) inst_.evictions->inc();
    evicted.push_back(url);
  }
}

void DiskTier::drop_entry_locked(const std::string& url, bool log_delete) {
  (void)log_delete;
  const auto it = index_.find(url);
  if (it == index_.end()) return;
  if (!it->second.queued) {
    Op op;
    op.type = Op::Type::Erase;
    op.url = url;
    op.file = it->second.file;
    queue_.push_back(std::move(op));
  }
  used_ -= it->second.size;
  lru_.erase(it->second.use_seq);
  index_.erase(it);
}

void DiskTier::refresh_gauges_locked() {
  if (inst_.docs) inst_.docs->set(static_cast<double>(index_.size()));
  if (inst_.bytes) inst_.bytes->set(static_cast<double>(used_));
}

}  // namespace cachecloud::cache
