// Deterministic fault injection for disk I/O — the storage-layer sibling of
// net::FaultInjector.
//
// The DiskTier routes every syscall-shaped operation through one of these
// hooks:
//
//   on_read()        before reading a body or manifest byte range — may
//                    throw an injected EIO;
//   on_write(n)      before writing n bytes — may throw an injected EIO, or
//                    return a smaller count (a torn/short write: the caller
//                    writes only that many bytes and stops, so the file ends
//                    up truncated and the CRC catches it later);
//   on_fsync()       before an fsync — may throw an injected EIO;
//   corrupt_append() once per manifest record appended — true means the tier
//                    flips one byte of the record as written, modeling a
//                    latent media bit-flip that recovery must detect.
//
// Like the transport injector, all randomness comes from one seeded
// util::Rng behind a mutex with a fixed roll order per hook, so a
// single-threaded driver replays the same fault sequence run to run.
// Counters are atomics; tests reconcile them against the disk tier's
// error/degrade metrics.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "util/rng.hpp"

namespace cachecloud::cache {

// Probabilities of each fault per hook invocation; default is "no faults".
struct IoFaultProfile {
  double read_error = 0.0;    // P(read fails with injected EIO)
  double write_error = 0.0;   // P(write fails with injected EIO)
  double fsync_error = 0.0;   // P(fsync fails with injected EIO)
  double short_write = 0.0;   // P(write is torn: only half the bytes land)
  double corrupt_append = 0.0;  // P(appended manifest record gets a bit flip)
};

// Thrown by the hooks; the DiskTier treats it exactly like a real EIO.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class IoFaultInjector {
 public:
  enum class Kind : std::size_t {
    ReadError = 0,
    WriteError = 1,
    FsyncError = 2,
    ShortWrite = 3,
    CorruptAppend = 4,
  };
  static constexpr std::size_t kKinds = 5;

  explicit IoFaultInjector(std::uint64_t seed) : rng_(seed) {}
  IoFaultInjector(const IoFaultInjector&) = delete;
  IoFaultInjector& operator=(const IoFaultInjector&) = delete;

  void set_profile(const IoFaultProfile& profile);
  void clear();

  // ---- disk-tier hooks --------------------------------------------
  void on_read();
  // Returns how many of the n requested bytes the caller may write; n when
  // no fault fires, a truncated count on an injected short write.
  [[nodiscard]] std::size_t on_write(std::size_t n);
  void on_fsync();
  [[nodiscard]] bool corrupt_append();

  // ---- accounting --------------------------------------------------
  [[nodiscard]] std::uint64_t count(Kind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  // Faults that surface as a failed disk operation (short writes and
  // bit-flips corrupt silently instead).
  [[nodiscard]] std::uint64_t hard_errors() const noexcept {
    return count(Kind::ReadError) + count(Kind::WriteError) +
           count(Kind::FsyncError);
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return hard_errors() + count(Kind::ShortWrite) +
           count(Kind::CorruptAppend);
  }

 private:
  void bump(Kind kind) noexcept {
    counts_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }

  mutable std::mutex mutex_;
  util::Rng rng_;
  IoFaultProfile profile_;
  std::array<std::atomic<std::uint64_t>, kKinds> counts_{};
};

}  // namespace cachecloud::cache
