// Minimal command-line flag parsing for examples and bench harnesses.
//
// Supports `--name=value`, `--name value` and boolean `--name` /
// `--no-name`. Unknown flags are an error so experiment scripts fail
// loudly, and a flag given more than once (in any spelling — `--x 1 --x=2`,
// `--x --no-x`) is rejected at parse time instead of silently shadowed.
// Numeric flags share one grammar across get_int and get_double: sign,
// decimals and scientific notation all parse (`--rate -250`, `--rate=2e3`,
// `--ramp-step -0.5`); get_int additionally requires an integral value.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cachecloud::util {

class Flags {
 public:
  // Parses argv. Throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  // Typed getters with defaults. Throws std::invalid_argument if the value
  // does not parse as the requested type.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string default_value) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t default_value) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double default_value) const;
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool default_value) const;

  [[nodiscard]] bool has(const std::string& name) const;
  // Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  // Names seen on the command line that were never queried — lets mains
  // reject typos: call after all get_*() calls.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace cachecloud::util
