// Online and batch statistics used by the load-balancing evaluation.
//
// The paper quantifies load balance by the coefficient of variation
// (stddev / mean) of per-beacon-point loads and by the ratio of the heaviest
// load to the mean load (Figs 3-6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cachecloud::util {

// Welford's online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;
  void reset() noexcept { *this = OnlineStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  // Population variance (divide by n), matching the paper's CoV definition
  // over the complete set of beacon points.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  // stddev / mean; 0 when the mean is 0.
  [[nodiscard]] double coefficient_of_variation() const noexcept;
  // max / mean; 0 when the mean is 0.
  [[nodiscard]] double max_to_mean_ratio() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Batch helpers over a value vector (loads of the beacon points).
[[nodiscard]] OnlineStats summarize(std::span<const double> values) noexcept;

// Fixed-width bucket histogram for latency/size distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  // Linear-interpolated quantile estimate, q in [0, 1].
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace cachecloud::util
