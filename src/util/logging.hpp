// Tiny leveled logger. Thread-safe, writes to stderr.
//
// Usage: CC_LOG(Info) << "re-balanced ring " << ring_id;
//
// Each line carries a UTC wall-clock timestamp and a short per-process
// thread id (t0, t1, ...) so multi-node request paths interleaved on
// stderr can be pulled apart:
//
//   [2026-08-05T12:00:00.123Z INFO t3 cache_node.cpp:42] ...
//
// The startup level honours the CACHECLOUD_LOG_LEVEL environment variable
// (debug | info | warn | error | off, case-insensitive); the default is
// Info.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cachecloud::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;
[[nodiscard]] std::string_view log_level_name(LogLevel level) noexcept;
// Parses a level name ("debug", "WARN", ...); `fallback` on no match.
[[nodiscard]] LogLevel log_level_from_name(std::string_view name,
                                           LogLevel fallback) noexcept;
// Small sequential id of the calling thread, unique within the process.
[[nodiscard]] unsigned log_thread_id() noexcept;

// Bounded in-process capture of emitted log lines, feeding the flight
// recorder's "last K lines before the trigger". Off (capacity 0) by
// default — the emit path then pays one branch. grow_log_capture() never
// shrinks, so several recorders can each demand their own K;
// set_log_capture(0) disables and drops the buffer (tests).
void set_log_capture(std::size_t lines);
void grow_log_capture(std::size_t at_least);
[[nodiscard]] std::size_t log_capture_capacity() noexcept;
// The most recent captured lines, oldest first, at most `max_lines`
// (0 = all retained). Lines are stored without the trailing newline.
[[nodiscard]] std::vector<std::string> log_tail(std::size_t max_lines = 0);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();  // emits the accumulated line

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

}  // namespace detail
}  // namespace cachecloud::util

#define CC_LOG(severity)                                                     \
  if (!::cachecloud::util::detail::log_enabled(                              \
          ::cachecloud::util::LogLevel::severity)) {                         \
  } else                                                                     \
    ::cachecloud::util::detail::LogMessage(                                  \
        ::cachecloud::util::LogLevel::severity, __FILE__, __LINE__)
