#include "util/md5.hpp"

#include <cstring>

namespace cachecloud::util {
namespace {

// Per-round left-rotation amounts (RFC 1321 §3.4).
constexpr std::array<std::uint32_t, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i + 1)|) (RFC 1321 §3.4).
constexpr std::array<std::uint32_t, 64> kSine = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr std::uint32_t rotl(std::uint32_t x, std::uint32_t n) noexcept {
  return (x << n) | (x >> (32 - n));
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::uint32_t Md5Digest::word32(std::size_t i) const noexcept {
  return load_le32(bytes.data() + 4 * (i % 4));
}

std::uint64_t Md5Digest::word64(std::size_t i) const noexcept {
  const std::size_t base = 8 * (i % 2);
  return static_cast<std::uint64_t>(load_le32(bytes.data() + base)) |
         (static_cast<std::uint64_t>(load_le32(bytes.data() + base + 4)) << 32);
}

std::string Md5Digest::to_hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out[2 * i] = kHex[bytes[i] >> 4];
    out[2 * i + 1] = kHex[bytes[i] & 0xF];
  }
  return out;
}

void Md5::reset() noexcept {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  total_len_ = 0;
  buffer_len_ = 0;
}

void Md5::update(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    process_block(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), p, len);
    buffer_len_ = len;
  }
}

Md5Digest Md5::finish() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;

  // Padding: 0x80, then zeros until 56 mod 64, then the 64-bit length.
  static constexpr std::uint8_t kPadByte = 0x80;
  update(&kPadByte, 1);
  static constexpr std::uint8_t kZero = 0x00;
  while (buffer_len_ != 56) update(&kZero, 1);

  std::array<std::uint8_t, 8> len_le{};
  for (std::size_t i = 0; i < 8; ++i) {
    len_le[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  update(len_le.data(), len_le.size());

  Md5Digest digest;
  for (std::size_t i = 0; i < 4; ++i) {
    store_le32(digest.bytes.data() + 4 * i, state_[i]);
  }
  return digest;
}

void Md5::process_block(const std::uint8_t* block) noexcept {
  std::array<std::uint32_t, 16> m;
  for (std::size_t i = 0; i < 16; ++i) m[i] = load_le32(block + 4 * i);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];

  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t f;
    std::uint32_t g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

Md5Digest md5(std::string_view s) noexcept {
  Md5 ctx;
  ctx.update(s);
  return ctx.finish();
}

}  // namespace cachecloud::util
