#include "util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace cachecloud::util {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

void write_fully(int fd, const char* data, std::size_t len,
                 const std::string& path) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("atomic_write_file: write", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t state) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = state ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < len; ++i) {
    c = kCrcTable[(c ^ bytes[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

void atomic_write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("atomic_write_file: open", tmp);
  try {
    write_fully(fd, content.data(), content.size(), tmp);
    if (::fsync(fd) != 0) fail("atomic_write_file: fsync", tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("atomic_write_file: close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("atomic_write_file: rename", path);
  }
  // Make the rename durable: fsync the containing directory.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    // Directory fsync is advisory on some filesystems; ignore its errno.
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
}

}  // namespace cachecloud::util
