#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace cachecloud::util {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument("json: " + what + " at byte " +
                              std::to_string(pos));
}

// Recursive-descent parser over a string_view; tracks the byte offset so
// errors point at the offending input.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return value;
  }

 private:
  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        expect_literal("true");
        return JsonValue::make_bool(true);
      case 'f':
        expect_literal("false");
        return JsonValue::make_bool(false);
      case 'n':
        expect_literal("null");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    ++pos_;  // '{'
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail(pos_, "expected ':'");
      ++pos_;
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      fail(pos_, "expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    ++pos_;  // '['
    JsonValue::Array elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(elements));
      }
      fail(pos_, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          append_utf8(parse_hex4(), out);
          break;
        default:
          fail(pos_ - 1, "bad escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "bad hex digit in \\u escape");
      }
    }
    return value;
  }

  // BMP code point -> UTF-8. Surrogate pairs are rare in bench reports;
  // an unpaired surrogate encodes as the replacement character.
  static void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    auto [end, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || end != last || start == pos_) {
      fail(start, "bad number");
    }
    return JsonValue::make_number(value);
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail(pos_, "bad literal");
    }
    pos_ += literal.size();
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_error(std::string_view wanted) {
  throw std::invalid_argument("json: value is not a " + std::string(wanted));
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) kind_error("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) kind_error("string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::Array) kind_error("array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::Object) kind_error("object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) {
    throw std::invalid_argument("json: missing key '" + std::string(key) +
                                "'");
  }
  return *found;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::Bool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::Number;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::String;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(Array v) {
  JsonValue out;
  out.kind_ = Kind::Array;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_object(Object v) {
  JsonValue out;
  out.kind_ = Kind::Object;
  out.object_ = std::move(v);
  return out;
}

}  // namespace cachecloud::util
