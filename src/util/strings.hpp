// String helpers shared by the trace format, wire protocol and harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cachecloud::util {

// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char sep);

// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

// Human-readable byte count, e.g. "1.5 MiB".
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

// Fixed-precision double, e.g. format_double(3.14159, 2) == "3.14".
[[nodiscard]] std::string format_double(double v, int precision);

// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

}  // namespace cachecloud::util
