#include "util/strings.hpp"

#include <array>
#include <cctype>
#include <cstdio>

namespace cachecloud::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace cachecloud::util
