#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cachecloud::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::coefficient_of_variation() const noexcept {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

double OnlineStats::max_to_mean_ratio() const noexcept {
  const double m = mean();
  return m != 0.0 ? max() / m : 0.0;
}

OnlineStats summarize(std::span<const double> values) noexcept {
  OnlineStats s;
  for (const double v : values) s.add(v);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (buckets == 0) throw std::invalid_argument("Histogram: buckets must be > 0");
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(idx, counts_.size() - 1)];
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double seen = static_cast<double>(underflow_);
  if (target <= seen) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (seen + c >= target && c > 0) {
      const double frac = (target - seen) / c;
      return bucket_lo(i) + frac * width_;
    }
    seen += c;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::ostringstream out;
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * max_width / peak;
    out << bucket_lo(i) << "\t" << counts_[i] << "\t"
        << std::string(bar, '#') << "\n";
  }
  return out.str();
}

}  // namespace cachecloud::util
