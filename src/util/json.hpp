// Minimal JSON tree: parse, navigate, and that is all.
//
// Just enough for the perf-regression tooling to read the
// BENCH_live_*.json reports this repository writes itself (bench_diff) and
// for tests to assert on report structure. Numbers are doubles, object
// keys keep insertion order, duplicate keys resolve to the first match.
// Not a general-purpose JSON library: no writer (reports are rendered
// directly), no streaming, no comments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cachecloud::util {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  // Parses a complete JSON document (trailing junk is an error). Throws
  // std::invalid_argument with a byte offset on malformed input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }

  // Typed accessors; throw std::invalid_argument on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // Object member by key; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  // Like find, but throws std::invalid_argument naming the missing key.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  // Dotted-path convenience: number_at("phases.measure.p99") style lookup
  // is not needed; this walks one level per call site instead.
  [[nodiscard]] double number_at(std::string_view key) const {
    return at(key).as_number();
  }

  // Construction (used by the parser; handy in tests).
  JsonValue() = default;
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(Array v);
  static JsonValue make_object(Object v);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace cachecloud::util
