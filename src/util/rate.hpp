// Exponentially-decayed event-rate estimator.
//
// The utility-based placement scheme needs recent access and update rates
// for a document ("request and update patterns of the document collected
// through continued monitoring in the recent time duration", §3.1). An
// exponentially-weighted counter gives exactly that with O(1) state.
#pragma once

#include <cmath>

namespace cachecloud::util {

class RateEstimator {
 public:
  // half_life_sec: time for a past event's weight to halve.
  explicit RateEstimator(double half_life_sec = 600.0) noexcept
      : lambda_(std::log(2.0) / half_life_sec) {}

  void record(double now, double weight = 1.0) noexcept {
    decay_to(now);
    weighted_count_ += weight;
  }

  // Estimated event rate (events per second) as of `now`.
  [[nodiscard]] double rate(double now) const noexcept {
    const double dt = now - last_time_;
    const double decayed =
        dt > 0.0 ? weighted_count_ * std::exp(-lambda_ * dt) : weighted_count_;
    return decayed * lambda_;
  }

  [[nodiscard]] double half_life() const noexcept {
    return std::log(2.0) / lambda_;
  }

  void reset() noexcept {
    weighted_count_ = 0.0;
    last_time_ = 0.0;
  }

 private:
  void decay_to(double now) noexcept {
    if (now > last_time_) {
      weighted_count_ *= std::exp(-lambda_ * (now - last_time_));
      last_time_ = now;
    }
  }

  double lambda_;
  double weighted_count_ = 0.0;
  double last_time_ = 0.0;
};

}  // namespace cachecloud::util
