// Small durable-file helpers shared by the disk tier and report writers.
//
// crc32            IEEE CRC-32 (reflected 0xEDB88320), table-driven. Used as
//                  the per-record checksum of the disk-tier manifest and for
//                  document-body integrity on spill/reload.
// atomic_write_file
//                  Whole-file replace with crash consistency: write to
//                  `<path>.tmp`, fsync, rename over `path`, fsync the parent
//                  directory. After a crash the file holds either the old or
//                  the new content, never a torn mix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cachecloud::util {

// Incremental form: pass the previous return value as `state` to continue a
// running checksum. Starting state is 0.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t state = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32(std::string_view s,
                                         std::uint32_t state = 0) noexcept {
  return crc32(s.data(), s.size(), state);
}

[[nodiscard]] inline std::uint32_t crc32(const std::vector<std::uint8_t>& v,
                                         std::uint32_t state = 0) noexcept {
  return crc32(v.data(), v.size(), state);
}

// Throws std::runtime_error (with errno text) on any failure; the target is
// untouched in that case apart from a possibly leftover `<path>.tmp`.
void atomic_write_file(const std::string& path, std::string_view content);

}  // namespace cachecloud::util
