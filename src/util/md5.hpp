// MD5 message digest (RFC 1321), implemented from scratch.
//
// The paper derives both the beacon-ring id and the intra-ring hash (IrH)
// value of a document from the MD5 digest of its URL, so the library carries
// its own dependency-free implementation. This is *not* a cryptographic
// building block here — it is a stable, well-distributed hash of URLs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace cachecloud::util {

// 128-bit MD5 digest. `words[i]` exposes the digest as four little-endian
// 32-bit words (A, B, C, D of RFC 1321), convenient for deriving several
// independent hash values from one digest.
struct Md5Digest {
  std::array<std::uint8_t, 16> bytes{};

  [[nodiscard]] std::uint32_t word32(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t word64(std::size_t i) const noexcept;
  // Lowercase hex string, e.g. "9e107d9d372bb6826bd81d3542a419d6".
  [[nodiscard]] std::string to_hex() const;

  friend bool operator==(const Md5Digest&, const Md5Digest&) = default;
};

// Incremental MD5 context: update() any number of times, then finish().
class Md5 {
 public:
  Md5() noexcept { reset(); }

  void reset() noexcept;
  void update(const void* data, std::size_t len) noexcept;
  void update(std::string_view s) noexcept { update(s.data(), s.size()); }
  // Finalizes and returns the digest. The context must be reset() before any
  // further update().
  [[nodiscard]] Md5Digest finish() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 4> state_{};
  std::uint64_t total_len_ = 0;          // bytes fed so far
  std::array<std::uint8_t, 64> buffer_{};  // partial block
  std::size_t buffer_len_ = 0;
};

// One-shot convenience.
[[nodiscard]] Md5Digest md5(std::string_view s) noexcept;

}  // namespace cachecloud::util
