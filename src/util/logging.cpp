#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace cachecloud::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_emit_mutex;

const char* basename_of(const char* path) noexcept {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

namespace detail {

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         static_cast<int>(g_level.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << log_level_name(level) << " " << basename_of(file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
  (void)level_;
}

}  // namespace detail
}  // namespace cachecloud::util
