#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <deque>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace cachecloud::util {
namespace {

LogLevel level_from_env() noexcept {
  const char* env = std::getenv("CACHECLOUD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::Info;
  return log_level_from_name(env, LogLevel::Info);
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_emit_mutex;

// Flight-recorder capture ring, guarded by g_emit_mutex (the emit path
// already takes it). Capacity is read with a relaxed atomic so the
// disabled fast path is one load.
std::atomic<std::size_t> g_capture_capacity{0};
std::deque<std::string>& capture_ring() {
  static std::deque<std::string> ring;
  return ring;
}

const char* basename_of(const char* path) noexcept {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

// "2026-08-05T12:00:00.123Z" — UTC so interleaved node logs compare.
void format_timestamp(char* out, std::size_t size) noexcept {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  std::snprintf(out, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel log_level_from_name(std::string_view name,
                             LogLevel fallback) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return fallback;
}

unsigned log_thread_id() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1);
  return id;
}

void set_log_capture(std::size_t lines) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  g_capture_capacity.store(lines, std::memory_order_relaxed);
  auto& ring = capture_ring();
  if (lines == 0) {
    ring.clear();
  } else {
    while (ring.size() > lines) ring.pop_front();
  }
}

void grow_log_capture(std::size_t at_least) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  const std::size_t cur = g_capture_capacity.load(std::memory_order_relaxed);
  if (at_least > cur) {
    g_capture_capacity.store(at_least, std::memory_order_relaxed);
  }
}

std::size_t log_capture_capacity() noexcept {
  return g_capture_capacity.load(std::memory_order_relaxed);
}

std::vector<std::string> log_tail(std::size_t max_lines) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  const auto& ring = capture_ring();
  std::size_t n = ring.size();
  if (max_lines != 0 && max_lines < n) n = max_lines;
  return std::vector<std::string>(ring.end() - static_cast<std::ptrdiff_t>(n),
                                  ring.end());
}

namespace detail {

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         static_cast<int>(g_level.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  char stamp[32];
  format_timestamp(stamp, sizeof(stamp));
  stream_ << "[" << stamp << " " << log_level_name(level) << " t"
          << log_thread_id() << " " << basename_of(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
  const std::size_t cap = g_capture_capacity.load(std::memory_order_relaxed);
  if (cap > 0) {
    auto& ring = capture_ring();
    ring.emplace_back(line.data(), line.size() - 1);  // strip the newline
    while (ring.size() > cap) ring.pop_front();
  }
  (void)level_;
}

}  // namespace detail
}  // namespace cachecloud::util
