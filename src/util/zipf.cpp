#include "util/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cachecloud::util {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (alpha < 0.0) throw std::invalid_argument("ZipfSampler: alpha must be >= 0");

  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  const double total = acc;
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::pmf rank");
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - lo;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace cachecloud::util
