// Deterministic pseudo-random generation for workload synthesis.
//
// All generators in the library take an explicit seed so that traces,
// simulations and tests are exactly reproducible run-to-run.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/hash.hpp"

namespace cachecloud::util {

// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // Expand the single seed through SplitMix64, as the authors recommend.
    for (auto& word : s_) {
      seed = mix64(seed);
      word = seed;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection-free approximation (bias < 2^-64 * bound,
  // negligible for workload synthesis).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  // Bernoulli trial with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  // Exponential with the given rate (events per unit time).
  double next_exponential(double rate) noexcept {
    // 1 - U avoids log(0).
    return -std::log(1.0 - next_double()) / rate;
  }

  // Lognormal with parameters of the underlying normal distribution.
  double next_lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * next_gaussian());
  }

  // Poisson-distributed count with the given mean. Knuth's method for small
  // means, normal approximation for large ones (workload synthesis does not
  // need exact tails there).
  std::uint64_t next_poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      double product = next_double();
      std::uint64_t count = 0;
      while (product > limit) {
        ++count;
        product *= next_double();
      }
      return count;
    }
    const double approx = mean + std::sqrt(mean) * next_gaussian();
    return approx <= 0.0 ? 0 : static_cast<std::uint64_t>(approx + 0.5);
  }

  // Standard normal via Box–Muller (cached second value).
  double next_gaussian() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 1.0 - next_double();
    double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace cachecloud::util
