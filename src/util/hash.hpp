// Small non-cryptographic hash helpers used throughout the library.
#pragma once

#include <cstdint>
#include <string_view>

namespace cachecloud::util {

// SplitMix64 finalizer — a strong 64-bit integer mixer. Good enough to
// derive independent-looking streams from sequential ids.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over bytes; fast string hash for hash tables and the consistent
// hashing circle (where we want a hash other than MD5 to keep baselines
// honest about their own cost profile).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Combines two 64-bit hashes (boost::hash_combine flavor, 64-bit constants).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace cachecloud::util
