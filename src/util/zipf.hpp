// Zipf-distributed sampling over ranks 0..n-1.
//
// The paper's synthetic workloads draw both document accesses and document
// invalidations from Zipf distributions with parameters between 0 and 0.99
// (Figs 3, 6). P(rank k) ∝ 1 / (k+1)^alpha; alpha = 0 degenerates to the
// uniform distribution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace cachecloud::util {

class ZipfSampler {
 public:
  // n: number of ranks; alpha: skew parameter (>= 0).
  // Precomputes the CDF once (O(n)); each sample is a binary search
  // (O(log n)).
  ZipfSampler(std::size_t n, double alpha);

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  // Probability mass of a given rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

  // Draws a rank in [0, n).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  double alpha_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); cdf_.back() == 1
};

}  // namespace cachecloud::util
