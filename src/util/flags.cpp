#include "util/flags.hpp"

#include <stdexcept>

namespace cachecloud::util {
namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (arg.empty()) {  // bare "--": everything after is positional
      for (int j = i + 1; j < argc; ++j) positional_.emplace_back(argv[j]);
      break;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (starts_with(arg, "no-")) {
      values_[arg.substr(3)] = "false";
      continue;
    }
    // `--name value` if the next token is not a flag; else boolean true.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_string(const std::string& name,
                              std::string default_value) const {
  return raw(name).value_or(std::move(default_value));
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t default_value) const {
  const auto v = raw(name);
  if (!v) return default_value;
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                *v + "'");
  }
}

double Flags::get_double(const std::string& name, double default_value) const {
  const auto v = raw(name);
  if (!v) return default_value;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                *v + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool default_value) const {
  const auto v = raw(name);
  if (!v) return default_value;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              *v + "'");
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace cachecloud::util
