#include "util/flags.hpp"

#include <cctype>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cachecloud::util {
namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// `--name value` consumes the next token as the value unless it looks like
// another flag. A token like "-5", "-0.25" or "-1e3" is a negative number,
// not a flag, so `--rate -5` and `--ramp-step -250.5` parse uniformly with
// their `--rate=-5` spellings.
bool looks_like_flag(const std::string& s) {
  if (!starts_with(s, "--")) return false;
  // "--5" / "--.5" would be a malformed flag name anyway; read it as a
  // (redundantly-dashed) number rather than a flag.
  return s.size() <= 2 ||
         !(std::isdigit(static_cast<unsigned char>(s[2])) || s[2] == '.');
}

// Strict full-string parse to double; nullopt on any malformed input.
// Accepts everything std::stod does: sign, decimals, scientific notation.
std::optional<double> parse_number(const std::string& s) {
  if (s.empty()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return parsed;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  // Each flag name may appear at most once: a repeated flag is almost
  // always a script bug (a template variable expanded twice, a copy-pasted
  // line), and silently letting the last spelling win hides it.
  const auto set_once = [this](std::string name, std::string value) {
    const auto [it, inserted] =
        values_.emplace(std::move(name), std::move(value));
    if (!inserted) {
      throw std::invalid_argument("flag --" + it->first +
                                  " given more than once");
    }
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (arg.empty()) {  // bare "--": everything after is positional
      for (int j = i + 1; j < argc; ++j) positional_.emplace_back(argv[j]);
      break;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set_once(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    if (starts_with(arg, "no-")) {
      set_once(arg.substr(3), "false");
      continue;
    }
    // `--name value` if the next token is not a flag; else boolean true.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      set_once(std::move(arg), argv[++i]);
    } else {
      set_once(std::move(arg), "true");
    }
  }
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_string(const std::string& name,
                              std::string default_value) const {
  return raw(name).value_or(std::move(default_value));
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t default_value) const {
  const auto v = raw(name);
  if (!v) return default_value;
  // Exact integer syntax first (full 64-bit range), then any numeric
  // spelling with an integral value ("2e3", "2000.0", "-1.5e2"), so every
  // number-taking flag accepts the same grammar whether it lands in
  // get_int or get_double.
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(*v, &pos);
    if (pos == v->size()) return parsed;
  } catch (const std::exception&) {
  }
  const auto parsed = parse_number(*v);
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (parsed && std::floor(*parsed) == *parsed &&
      std::abs(*parsed) <= kMaxExact) {
    return static_cast<std::int64_t>(*parsed);
  }
  throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                              *v + "'");
}

double Flags::get_double(const std::string& name, double default_value) const {
  const auto v = raw(name);
  if (!v) return default_value;
  const auto parsed = parse_number(*v);
  if (!parsed) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                *v + "'");
  }
  return *parsed;
}

bool Flags::get_bool(const std::string& name, bool default_value) const {
  const auto v = raw(name);
  if (!v) return default_value;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              *v + "'");
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace cachecloud::util
