// Pipelined multiplexed RPC client: one connection, many outstanding
// requests, responses matched out of order by request id.
//
// Each request frame is stamped with an 8-byte mux tag (see tcp.hpp); the
// server's reply carries the tag back and is routed to the waiting
// caller. The send lock is held only for the scatter-gather write of one
// frame — not across the round trip — so N threads sharing a client
// overlap their requests on the wire instead of queueing on
// `client_mutex_` for a full RTT each, which the profiled flash-crowd
// baseline showed as ~96% of all lock wait.
//
// Replies are read leader/follower style: there is no dedicated reader
// thread. The first caller to need its reply takes the reader role and
// pumps the socket, delivering whatever arrives (its own reply or other
// callers'); everyone else waits on a condvar for their slot to settle or
// for the role to free up. A solo caller therefore reads its reply on its
// own thread with zero handoffs — exactly the old blocking TcpClient hot
// path — while concurrent callers still pipeline.
//
// call()/call_into() keep the old TcpClient's blocking signatures; the
// begin()/finish() split exposes the pipeline directly (issue many, then
// collect). A timed-out call abandons its slot — the late reply, if it
// ever arrives, is discarded by the reader and the connection stays
// healthy. Any transport failure (peer EOF, reset, send error) fails every
// outstanding call with the same reason and marks the client dead; callers
// are expected to throw it away and reconnect, which is exactly what the
// node layer's pooled-client handling already does.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/tcp.hpp"
#include "obs/profile.hpp"

namespace cachecloud::net {

class FaultInjector;

class MuxClient {
 public:
  // The optional observer sees every request (outbound, caller thread)
  // and matched reply (inbound, reading caller's thread) and must outlive the
  // client. The optional fault injector may refuse the connect, delay,
  // drop or reset individual calls; every injected disruption surfaces as
  // a NetError (a reset kills the connection, failing all outstanding
  // calls). The optional registry (must outlive the client) attaches the
  // contention profiler to the send lock ("client_mutex_"), the
  // per-syscall IO counters and the NODELAY socket counter; clients
  // sharing a registry aggregate into the same instruments.
  // timeout_sec bounds the connect and each call (measured from begin);
  // 0 = no timeout. max_outstanding callers may wait in flight at once;
  // further begin()s block (up to the timeout) for a slot.
  explicit MuxClient(std::uint16_t port, double timeout_sec = 5.0,
                     FrameObserver* observer = nullptr,
                     FaultInjector* faults = nullptr,
                     obs::Registry* registry = nullptr,
                     std::size_t max_outstanding = 1024);
  ~MuxClient();
  MuxClient(const MuxClient&) = delete;
  MuxClient& operator=(const MuxClient&) = delete;

  [[nodiscard]] Frame call(const Frame& request);
  // Zero-copy-out variant: the reply is decoded into `reply`, whose
  // payload capacity is reused across calls.
  void call_into(const Frame& request, Frame& reply);

  // Pipelined interface. begin() sends the request and returns a ticket;
  // finish() blocks until that reply arrives (or the deadline passes —
  // the slot is then abandoned and the ticket dead). Tickets are
  // single-use. Both are callable from any thread.
  [[nodiscard]] std::uint64_t begin(const Frame& request);
  void finish(std::uint64_t ticket, Frame& reply);

  // Calls currently awaiting a reply, and the high-water mark — the
  // direct measure of how much pipelining the connection actually saw.
  [[nodiscard]] std::size_t outstanding() const;
  [[nodiscard]] std::size_t peak_outstanding() const;

  // Fails all outstanding calls and unblocks any caller pumping the
  // socket. Idempotent; the destructor calls it.
  void close();

  // Test hook: plants the next request id so wraparound paths can be
  // exercised without 2^64 calls. id 0 is reserved (treated as 1).
  void set_next_request_id(std::uint64_t id);

 private:
  enum class SlotState { Waiting, Done, Failed };
  struct Pending {
    SlotState state = SlotState::Waiting;
    Frame reply;
    std::string error;
    std::chrono::steady_clock::time_point deadline{};
  };

  // Pumps at most one reply frame off the socket and settles its slot.
  // Runs with the reader role held and state_mutex_ NOT held; returns at
  // `deadline` (ignored when the client has no timeout) if nothing
  // arrived. Any transport failure fails the connection.
  void read_one(std::chrono::steady_clock::time_point deadline);
  // Marks the client dead (first reason wins), fails every outstanding
  // call and unblocks a caller parked in the reader role. Safe from any
  // thread.
  void fail_connection(const std::string& reason);

  const std::uint16_t port_;
  const double timeout_sec_;
  const std::size_t max_outstanding_;
  FrameObserver* observer_ = nullptr;
  FaultInjector* faults_ = nullptr;
  obs::IoProfile io_profile_;

  // Held for the duration of one frame write only.
  obs::TimedMutex send_mutex_;

  mutable std::mutex state_mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  std::uint64_t next_id_ = 1;
  std::size_t peak_outstanding_ = 0;
  bool dead_ = false;
  // True while some caller holds the reader role (is inside read_one).
  bool reader_active_ = false;
  std::string dead_reason_;

  Socket socket_;
  // Reply scratch buffer, reused across reads. Only the caller holding
  // the reader role touches it — the role is exclusive by construction.
  Frame read_buf_;
};

}  // namespace cachecloud::net
