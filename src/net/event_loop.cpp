#include "net/event_loop.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "net/fault_injector.hpp"

namespace cachecloud::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

using ProfClock = std::chrono::steady_clock;

std::uint64_t ns_between(ProfClock::time_point a,
                         ProfClock::time_point b) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

// ------------------------------------------------------ EventLoop::Conn

EventLoop::Conn::~Conn() = default;

std::size_t EventLoop::Conn::backlog_bytes() const {
  const std::lock_guard<std::mutex> lock(out_mutex_);
  return outq_bytes_;
}

bool EventLoop::Conn::send(const Frame& frame, std::uint64_t mux_id) {
  if (frame.payload.size() > kMaxFrameBytes) {
    close();
    return false;
  }
  bool need_flush = false;
  {
    std::unique_lock<std::mutex> lock(out_mutex_);
    if (write_closed_) return false;
    if (outq_.empty()) {
      // Fast path: no backlog, so frame ordering cannot be violated by
      // writing straight from this thread — one scatter-gather syscall,
      // zero loop handoff.
      std::uint8_t prefix[kWireHeaderMax];
      const std::size_t prefix_len = encode_wire_header(prefix, frame, mux_id);
      const std::size_t total = prefix_len + frame.payload.size();
      std::size_t sent = 0;
      for (;;) {
        iovec iov[2];
        int cnt = 0;
        if (sent < prefix_len) {
          iov[cnt++] = {prefix + sent, prefix_len - sent};
        }
        const std::size_t pay_off = sent > prefix_len ? sent - prefix_len : 0;
        if (pay_off < frame.payload.size()) {
          iov[cnt++] = {
              const_cast<std::uint8_t*>(frame.payload.data()) + pay_off,
              frame.payload.size() - pay_off};
        }
        msghdr msg{};
        msg.msg_iov = iov;
        msg.msg_iovlen = static_cast<std::size_t>(cnt);
        const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          write_closed_ = true;
          lock.unlock();
          close();
          return false;
        }
        if (loop_->io_) loop_->io_->on_send(static_cast<std::size_t>(n));
        sent += static_cast<std::size_t>(n);
        if (sent == total) return true;
      }
      // Kernel buffer full mid-frame: spill the remainder to the queue and
      // let the loop finish it under EPOLLOUT.
      OutEntry entry;
      std::memcpy(entry.prefix.data(), prefix, prefix_len);
      entry.prefix_len = prefix_len;
      entry.prefix_off = sent < prefix_len ? sent : prefix_len;
      entry.payload = frame.payload;
      entry.payload_off = sent > prefix_len ? sent - prefix_len : 0;
      outq_bytes_ += entry.remaining();
      outq_.push_back(std::move(entry));
    } else {
      if (outq_bytes_ > loop_->limits_.max_output_bytes) {
        // Consumer stalled past the hard cap: cut it off rather than
        // buffer without bound.
        lock.unlock();
        close();
        return false;
      }
      OutEntry entry;
      entry.prefix_len = encode_wire_header(entry.prefix.data(), frame, mux_id);
      entry.payload = frame.payload;
      outq_bytes_ += entry.remaining();
      outq_.push_back(std::move(entry));
    }
    need_flush = !flush_posted_.exchange(true, std::memory_order_acq_rel);
  }
  if (need_flush) {
    auto self = shared_from_this();
    if (!loop_->post([self] {
          self->flush_posted_.store(false, std::memory_order_release);
          self->loop_->handle_writable(self);
        })) {
      flush_posted_.store(false, std::memory_order_release);
    }
  }
  return true;
}

void EventLoop::Conn::close() {
  if (close_requested_.exchange(true, std::memory_order_acq_rel)) return;
  {
    const std::lock_guard<std::mutex> lock(out_mutex_);
    write_closed_ = true;
  }
  auto self = shared_from_this();
  loop_->post([self] { self->loop_->detach(self); });
}

// ------------------------------------------------------------ EventLoop

EventLoop::EventLoop(ConnLimits limits, obs::IoProfile* io)
    : limits_(limits), io_(io) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    throw_errno("epoll_ctl(wake)");
  }
}

EventLoop::~EventLoop() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::start() {
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  if (joined_.exchange(true, std::memory_order_acq_rel)) return;
  wake();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(post_mutex_);
    if (!accepting_posts_) return false;
    posted_.push_back(std::move(fn));
  }
  wake();
  return true;
}

EventLoop::ConnPtr EventLoop::adopt(int fd, FrameFn on_frame,
                                    CloseFn on_close) {
  auto conn = std::make_shared<Conn>(this, fd);
  conn->on_frame_ = std::move(on_frame);
  conn->on_close_ = std::move(on_close);
  if (stopping_.load(std::memory_order_acquire) ||
      !post([this, conn] { register_conn(conn); })) {
    // Loop already winding down: the fd never reaches the epoll set, so
    // tear it down here and honor the close callback contract.
    conn->detached_ = true;
    {
      const std::lock_guard<std::mutex> lock(conn->out_mutex_);
      conn->write_closed_ = true;
      ::close(fd);
    }
    if (conn->on_close_) conn->on_close_(conn);
    conn->on_frame_ = nullptr;
    conn->on_close_ = nullptr;
    return nullptr;
  }
  return conn;
}

void EventLoop::add_listener(int fd, std::function<void()> cb) {
  post([this, fd, cb = std::move(cb)]() mutable {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
      listeners_[fd] = std::move(cb);
    }
  });
}

void EventLoop::register_conn(const ConnPtr& conn) {
  if (conn->close_requested_.load(std::memory_order_acquire)) {
    detach(conn);
    return;
  }
  conn->events_ = EPOLLIN;
  epoll_event ev{};
  ev.events = conn->events_;
  ev.data.fd = conn->fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd_, &ev) != 0) {
    detach(conn);
    return;
  }
  conns_[conn->fd_] = conn;
}

void EventLoop::detach(const ConnPtr& conn) {
  if (conn->detached_) return;
  conn->detached_ = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd_, nullptr);
  conns_.erase(conn->fd_);
  {
    // write_closed_ before ::close under the same lock: no sender can be
    // mid-sendmsg on a recycled descriptor.
    const std::lock_guard<std::mutex> lock(conn->out_mutex_);
    conn->write_closed_ = true;
    conn->outq_.clear();
    conn->outq_bytes_ = 0;
    ::close(conn->fd_);
  }
  if (conn->on_close_) conn->on_close_(conn);
  // Break callback capture cycles (they typically hold endpoint state).
  conn->on_frame_ = nullptr;
  conn->on_close_ = nullptr;
}

void EventLoop::detach_all() {
  while (!conns_.empty()) {
    // Copy out first: detach() erases the map node the reference would
    // otherwise point into.
    const ConnPtr conn = conns_.begin()->second;
    detach(conn);
  }
  for (const auto& [fd, cb] : listeners_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  listeners_.clear();
}

void EventLoop::update_interest(const ConnPtr& conn, std::uint32_t events) {
  conn->events_ = events;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = conn->fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd_, &ev);
}

void EventLoop::maybe_pause_reads(const ConnPtr& conn) {
  std::size_t backlog;
  {
    const std::lock_guard<std::mutex> lock(conn->out_mutex_);
    backlog = conn->outq_bytes_;
  }
  if (!conn->read_paused_ && backlog > limits_.high_watermark_bytes) {
    conn->read_paused_ = true;
    update_interest(conn, conn->events_ & ~static_cast<std::uint32_t>(EPOLLIN));
  }
}

void EventLoop::deliver_frame(const ConnPtr& conn) {
  Frame frame = std::move(conn->rframe_);
  conn->rframe_ = Frame{};
  frame.type = conn->rheader_.type;
  frame.trace_id = conn->rheader_.trace_id;
  frame.parent_span_id = conn->rheader_.parent_span_id;
  frame.flags = conn->rheader_.flags &
                static_cast<std::uint8_t>(~Frame::kFlagMuxTagged);
  if (conn->on_frame_) conn->on_frame_(conn, std::move(frame), conn->rmux_);
}

void EventLoop::handle_readable(const ConnPtr& conn) {
  int delivered = 0;
  while (!conn->detached_) {
    std::size_t need = 0;
    std::uint8_t* dst = nullptr;
    switch (conn->rstate_) {
      case Conn::ReadState::Header:
        need = kFrameHeaderBytes - conn->rbuf_got_;
        dst = conn->rbuf_.data() + conn->rbuf_got_;
        break;
      case Conn::ReadState::Tag:
        need = kMuxTagBytes - conn->rbuf_got_;
        dst = conn->rbuf_.data() + conn->rbuf_got_;
        break;
      case Conn::ReadState::Payload:
        need = conn->rframe_.payload.size() - conn->rpayload_got_;
        dst = conn->rframe_.payload.data() + conn->rpayload_got_;
        break;
    }
    if (need > 0) {
      const ssize_t n = ::recv(conn->fd_, dst, need, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        detach(conn);
        return;
      }
      if (n == 0) {
        // EOF: clean at a frame boundary or not, the connection is done.
        detach(conn);
        return;
      }
      if (io_) io_->on_recv(static_cast<std::size_t>(n));
      if (conn->rstate_ == Conn::ReadState::Payload) {
        conn->rpayload_got_ += static_cast<std::size_t>(n);
      } else {
        conn->rbuf_got_ += static_cast<std::size_t>(n);
      }
      if (static_cast<std::size_t>(n) < need) continue;
    }
    // Section complete — advance the state machine.
    switch (conn->rstate_) {
      case Conn::ReadState::Header: {
        conn->rheader_ = decode_wire_header(conn->rbuf_.data());
        try {
          check_wire_header(conn->rheader_);
        } catch (const NetError&) {
          // Malformed header (oversized length, zero-length type-0): the
          // stream is unusable; drop the peer.
          detach(conn);
          return;
        }
        conn->rbuf_got_ = 0;
        conn->rmux_ = 0;
        conn->rpayload_got_ = 0;
        if (conn->rheader_.mux_tagged()) {
          conn->rstate_ = Conn::ReadState::Tag;
        } else {
          conn->rframe_.payload.resize(conn->rheader_.len);
          conn->rstate_ = Conn::ReadState::Payload;
        }
        break;
      }
      case Conn::ReadState::Tag:
        conn->rmux_ = decode_mux_tag(conn->rbuf_.data());
        conn->rbuf_got_ = 0;
        conn->rframe_.payload.resize(conn->rheader_.len - kMuxTagBytes);
        conn->rstate_ = Conn::ReadState::Payload;
        break;
      case Conn::ReadState::Payload:
        deliver_frame(conn);
        conn->rstate_ = Conn::ReadState::Header;
        conn->rbuf_got_ = 0;
        conn->rpayload_got_ = 0;
        ++delivered;
        maybe_pause_reads(conn);
        if (conn->read_paused_) return;
        // Level-triggered epoll re-reports leftover data; yield so one
        // chatty peer cannot monopolize the loop.
        if (delivered >= 32) return;
        break;
    }
  }
}

void EventLoop::handle_writable(const ConnPtr& conn) {
  if (conn->detached_) return;
  bool error = false;
  bool empty = false;
  std::size_t backlog = 0;
  {
    const std::lock_guard<std::mutex> lock(conn->out_mutex_);
    while (!conn->outq_.empty()) {
      // Batch several queued frames into one scatter-gather syscall.
      constexpr int kMaxIov = 16;
      iovec iov[kMaxIov];
      int cnt = 0;
      for (auto it = conn->outq_.begin();
           it != conn->outq_.end() && cnt + 2 <= kMaxIov; ++it) {
        if (it->prefix_off < it->prefix_len) {
          iov[cnt++] = {it->prefix.data() + it->prefix_off,
                        it->prefix_len - it->prefix_off};
        }
        if (it->payload_off < it->payload.size()) {
          iov[cnt++] = {it->payload.data() + it->payload_off,
                        it->payload.size() - it->payload_off};
        }
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<std::size_t>(cnt);
      const ssize_t n = ::sendmsg(conn->fd_, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) error = true;
        break;
      }
      if (io_) io_->on_send(static_cast<std::size_t>(n));
      std::size_t left = static_cast<std::size_t>(n);
      conn->outq_bytes_ -= left;
      while (left > 0) {
        auto& front = conn->outq_.front();
        std::size_t take =
            std::min(left, front.prefix_len - front.prefix_off);
        front.prefix_off += take;
        left -= take;
        take = std::min(left, front.payload.size() - front.payload_off);
        front.payload_off += take;
        left -= take;
        if (front.remaining() == 0) {
          conn->outq_.pop_front();
        }
      }
      while (!conn->outq_.empty() && conn->outq_.front().remaining() == 0) {
        conn->outq_.pop_front();
      }
    }
    empty = conn->outq_.empty();
    backlog = conn->outq_bytes_;
  }
  if (error) {
    detach(conn);
    return;
  }
  std::uint32_t events = conn->events_;
  if (empty) {
    events &= ~static_cast<std::uint32_t>(EPOLLOUT);
  } else {
    events |= EPOLLOUT;
  }
  if (conn->read_paused_ && backlog < limits_.low_watermark_bytes) {
    conn->read_paused_ = false;
    events |= EPOLLIN;
  }
  if (events != conn->events_) update_interest(conn, events);
}

void EventLoop::run() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        std::uint64_t buf;
        while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (const auto it = conns_.find(fd); it != conns_.end()) {
        const ConnPtr conn = it->second;  // keep alive across detach
        if ((ev & EPOLLERR) != 0) {
          detach(conn);
          continue;
        }
        if ((ev & EPOLLOUT) != 0) handle_writable(conn);
        if (!conn->detached_ && (ev & (EPOLLIN | EPOLLHUP)) != 0) {
          handle_readable(conn);
        }
        continue;
      }
      if (const auto it = listeners_.find(fd); it != listeners_.end()) {
        it->second();
      }
    }
    // Cross-thread work: registrations, EPOLLOUT arming, closes.
    std::vector<std::function<void()>> batch;
    {
      const std::lock_guard<std::mutex> lock(post_mutex_);
      batch.swap(posted_);
    }
    for (auto& fn : batch) fn();
  }
  // Drain what was posted before the stop flag, then tear the rest down.
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard<std::mutex> lock(post_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
  detach_all();
  {
    const std::lock_guard<std::mutex> lock(post_mutex_);
    accepting_posts_ = false;
    posted_.clear();
  }
}

// ------------------------------------------------------------ WorkerPool

WorkerPool::WorkerPool(int core, int max, obs::WorkerProfile* profile)
    : core_(core < 1 ? 1 : core),
      max_(max < core_ ? core_ : max),
      profile_(profile) {
  const std::lock_guard<std::mutex> lock(mutex_);
  threads_.reserve(static_cast<std::size_t>(core_));
  for (int i = 0; i < core_; ++i) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

int WorkerPool::threads() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(threads_.size());
}

void WorkerPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    tasks_.push_back(std::move(task));
    // Grow whenever the queue outnumbers the idle workers — every other
    // worker is busy, possibly blocked in a nested peer call, so without
    // a new thread this task could wait behind a cycle that never breaks
    // (distributed deadlock). idle_ only moves under mutex_, so queued
    // tasks beyond the idle count are guaranteed a thread each.
    if (static_cast<int>(tasks_.size()) > idle_ &&
        static_cast<int>(threads_.size()) < max_) {
      threads_.emplace_back([this] { worker_main(); });
    }
  }
  cv_.notify_one();
}

void WorkerPool::stop() {
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    threads.swap(threads_);
  }
  cv_.notify_all();
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  tasks_.clear();
}

void WorkerPool::worker_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Idle time is the event-driven analogue of the old serve loop's
    // blocked-in-read span: waiting for the next request to arrive.
    const bool timing =
        profile_ && profile_->bound() && obs::profiling_enabled();
    ++idle_;
    const auto wait_start = timing ? ProfClock::now() : ProfClock::time_point{};
    cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
    if (timing) {
      profile_->add_read_wait_ns(ns_between(wait_start, ProfClock::now()));
    }
    --idle_;
    if (stopping_) return;
    auto task = std::move(tasks_.front());
    tasks_.pop_front();
    lock.unlock();
    const bool busy_timing =
        profile_ && profile_->bound() && obs::profiling_enabled();
    const auto busy_start =
        busy_timing ? ProfClock::now() : ProfClock::time_point{};
    try {
      task();
    } catch (...) {
      // A task must never take the pool down; handler errors are handled
      // at the connection level before they get here.
    }
    if (busy_timing) {
      profile_->add_busy_ns(ns_between(busy_start, ProfClock::now()));
    }
    lock.lock();
  }
}

// ----------------------------------------------------------- EventServer

struct EventServer::ConnCtx {
  std::mutex mu;
  std::deque<Frame> fifo;
  bool running = false;
};

EventServer::EventServer(std::uint16_t port, Handler handler,
                         FrameObserver* observer, FaultInjector* faults,
                         obs::Registry* registry, EventServerConfig config)
    : listener_(port),
      handler_(std::move(handler)),
      observer_(observer),
      faults_(faults),
      config_(config) {
  if (!handler_) throw std::invalid_argument("EventServer: null handler");
  if (registry) {
    // Bind before the loops start so their threads see fully constructed
    // instruments without further synchronization.
    worker_profile_.bind(*registry);
    io_profile_.bind(*registry, "server");
  }
  listener_.set_nonblocking();
  const int nloops = config_.event_threads < 1 ? 1 : config_.event_threads;
  loops_.reserve(static_cast<std::size_t>(nloops));
  for (int i = 0; i < nloops; ++i) {
    loops_.push_back(
        std::make_unique<EventLoop>(config_.limits, &io_profile_));
  }
  workers_ = std::make_unique<WorkerPool>(
      config_.core_workers, config_.max_workers, &worker_profile_);
  for (auto& loop : loops_) loop->start();
  loops_[0]->add_listener(listener_.fd(), [this] { on_accept(); });
}

EventServer::~EventServer() { stop(); }

void EventServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();
  // Loops first (connections close; no new dispatches), then the workers
  // (running handlers finish; their sends hit closed connections and
  // fail silently, exactly like the old per-connection threads did).
  for (auto& loop : loops_) loop->stop();
  workers_->stop();
}

void EventServer::on_accept() {
  for (;;) {
    const int fd =
        ::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listener was shut down
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    io_profile_.on_nodelay();
    auto& loop =
        *loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
                loops_.size()];
    worker_profile_.conn_opened();
    const auto conn = loop.adopt(
        fd,
        [this](const EventLoop::ConnPtr& c, Frame&& f, std::uint64_t id) {
          dispatch(c, std::move(f), id);
        },
        [this](const EventLoop::ConnPtr&) { worker_profile_.conn_closed(); });
    (void)conn;
  }
}

void EventServer::dispatch(const EventLoop::ConnPtr& conn, Frame&& request,
                           std::uint64_t mux_id) {
  if (stopping_.load()) return;
  if (mux_id != 0) {
    // Tagged requests pipeline: each runs as its own worker task, replies
    // carry the tag back and may complete out of order.
    workers_->submit(
        [this, conn, request = std::move(request), mux_id]() mutable {
          handle_one(conn, request, mux_id);
        });
    return;
  }
  // Untagged requests keep the legacy contract: one in flight per
  // connection, replies in request order. `user` is only touched from
  // this connection's loop thread, so lazy init needs no lock.
  if (!conn->user) conn->user = std::make_shared<ConnCtx>();
  auto ctx = std::static_pointer_cast<ConnCtx>(conn->user);
  bool start = false;
  {
    const std::lock_guard<std::mutex> lock(ctx->mu);
    ctx->fifo.push_back(std::move(request));
    if (!ctx->running) {
      ctx->running = true;
      start = true;
    }
  }
  if (start) {
    workers_->submit([this, conn, ctx] { drain_fifo(conn, ctx); });
  }
}

void EventServer::drain_fifo(const EventLoop::ConnPtr& conn,
                             const std::shared_ptr<ConnCtx>& ctx) {
  for (;;) {
    Frame request;
    {
      const std::lock_guard<std::mutex> lock(ctx->mu);
      if (ctx->fifo.empty()) {
        ctx->running = false;
        return;
      }
      request = std::move(ctx->fifo.front());
      ctx->fifo.pop_front();
    }
    handle_one(conn, request, 0);
  }
}

void EventServer::handle_one(const EventLoop::ConnPtr& conn, Frame& request,
                             std::uint64_t mux_id) {
  if (observer_) observer_->on_frame(request, /*inbound=*/true);
  Frame reply;
  try {
    reply = handler_(request);
  } catch (const std::exception&) {
    // Handler failure drops the connection; the server keeps running.
    conn->close();
    return;
  }
  // Propagate the request's trace context unless the handler set its own.
  if (reply.trace_id == 0) {
    reply.trace_id = request.trace_id;
    reply.parent_span_id = request.parent_span_id;
    reply.flags = request.flags;
  }
  if (faults_ &&
      faults_->on_frame(port()) != FaultInjector::Action::Deliver) {
    // Injected reply drop/reset: close without answering; the client sees
    // the connection die and treats it like any peer failure.
    conn->close();
    return;
  }
  if (observer_) observer_->on_frame(reply, /*inbound=*/false);
  conn->send(reply, mux_id);
}

}  // namespace cachecloud::net
