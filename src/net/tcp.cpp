#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "net/fault_injector.hpp"

namespace cachecloud::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

// Wire header: [u32 len][u16 type][u64 trace_id][u64 parent_span_id]
// [u8 flags], little-endian.
constexpr std::size_t kFrameHeaderBytes = 23;

}  // namespace

std::size_t Frame::wire_bytes() const noexcept {
  return kFrameHeaderBytes + payload.size();
}

// ------------------------------------------------------------- Socket

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_), io_(other.io_) {
  other.fd_ = -1;
  other.io_ = nullptr;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    io_ = other.io_;
    other.fd_ = -1;
    other.io_ = nullptr;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    if (io_) io_->on_send(static_cast<std::size_t>(n));
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

bool Socket::recv_all(void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a boundary
      throw NetError("connection closed mid-message");
    }
    if (io_) io_->on_recv(static_cast<std::size_t>(n));
    got += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

void encode_header(std::uint8_t* header, const Frame& frame) {
  const auto len = static_cast<std::uint32_t>(frame.payload.size());
  header[0] = static_cast<std::uint8_t>(len);
  header[1] = static_cast<std::uint8_t>(len >> 8);
  header[2] = static_cast<std::uint8_t>(len >> 16);
  header[3] = static_cast<std::uint8_t>(len >> 24);
  header[4] = static_cast<std::uint8_t>(frame.type);
  header[5] = static_cast<std::uint8_t>(frame.type >> 8);
  for (int i = 0; i < 8; ++i) {
    header[6 + i] = static_cast<std::uint8_t>(frame.trace_id >> (8 * i));
    header[14 + i] =
        static_cast<std::uint8_t>(frame.parent_span_id >> (8 * i));
  }
  header[22] = frame.flags;
}

}  // namespace

void Socket::write_frame(const Frame& frame) {
  if (!valid()) throw NetError("write on closed socket");
  if (frame.payload.size() > kMaxFrameBytes) {
    throw NetError("frame too large to send");
  }
  std::uint8_t header[kFrameHeaderBytes];
  encode_header(header, frame);
  send_all(header, sizeof(header));
  if (!frame.payload.empty()) {
    send_all(frame.payload.data(), frame.payload.size());
  }
}

void Socket::write_frame(const Frame& frame,
                         std::vector<std::uint8_t>& scratch) {
  if (!valid()) throw NetError("write on closed socket");
  if (frame.payload.size() > kMaxFrameBytes) {
    throw NetError("frame too large to send");
  }
  // Header + payload in one contiguous buffer: one send() instead of two,
  // and the buffer's capacity is the caller's to reuse across frames.
  scratch.resize(kFrameHeaderBytes + frame.payload.size());
  encode_header(scratch.data(), frame);
  if (!frame.payload.empty()) {
    std::memcpy(scratch.data() + kFrameHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
  send_all(scratch.data(), scratch.size());
}

bool Socket::read_frame_into(Frame& out) {
  if (!valid()) throw NetError("read on closed socket");
  std::uint8_t header[kFrameHeaderBytes];
  if (!recv_all(header, sizeof(header))) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > kMaxFrameBytes) throw NetError("oversized frame");
  out.type = static_cast<std::uint16_t>(header[4]) |
             static_cast<std::uint16_t>(header[5] << 8);
  out.trace_id = 0;
  out.parent_span_id = 0;
  for (int i = 0; i < 8; ++i) {
    out.trace_id |= static_cast<std::uint64_t>(header[6 + i]) << (8 * i);
    out.parent_span_id |= static_cast<std::uint64_t>(header[14 + i])
                          << (8 * i);
  }
  out.flags = header[22];
  out.payload.resize(len);
  if (len > 0 && !recv_all(out.payload.data(), len)) {
    throw NetError("connection closed mid-message");
  }
  return true;
}

std::optional<Frame> Socket::read_frame() {
  Frame frame;
  if (!read_frame_into(frame)) return std::nullopt;
  return frame;
}

void Socket::set_recv_timeout(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

// --------------------------------------------------------- TcpListener

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    throw_errno("bind");
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  shutdown();
  if (fd_ >= 0) ::close(fd_);
}

Socket TcpListener::accept() {
  while (!shut_.load(std::memory_order_acquire)) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(client);
    }
    if (errno == EINTR) continue;
    if (shut_.load(std::memory_order_acquire)) break;
    throw_errno("accept");
  }
  return Socket();
}

void TcpListener::shutdown() noexcept {
  if (!shut_.exchange(true, std::memory_order_acq_rel) && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Socket connect_local(std::uint16_t port, double timeout_sec,
                     FaultInjector* faults) {
  if (faults) faults->on_connect(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket socket(fd);  // owns fd from here on
  sockaddr_in addr = loopback(port);

  // Non-blocking connect with a poll deadline, so a black-holed peer fails
  // within timeout_sec instead of the kernel's default (minutes).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (timeout_sec > 0.0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(F_SETFL)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (timeout_sec <= 0.0 || errno != EINPROGRESS) {
      throw_errno("connect to 127.0.0.1:" + std::to_string(port));
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int rc;
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(timeout_sec * 1e3));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) throw_errno("poll(connect)");
    if (rc == 0) {
      throw NetError("connect to 127.0.0.1:" + std::to_string(port) +
                     " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      throw_errno("connect to 127.0.0.1:" + std::to_string(port));
    }
  }
  if (timeout_sec > 0.0 && ::fcntl(fd, F_SETFL, flags) != 0) {
    throw_errno("fcntl(F_SETFL)");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (timeout_sec > 0.0) socket.set_recv_timeout(timeout_sec);
  return socket;
}

// ----------------------------------------------------------- TcpServer

TcpServer::TcpServer(std::uint16_t port, Handler handler,
                     FrameObserver* observer, FaultInjector* faults,
                     obs::Registry* registry)
    : listener_(port),
      handler_(std::move(handler)),
      observer_(observer),
      faults_(faults) {
  if (!handler_) throw std::invalid_argument("TcpServer: null handler");
  if (registry) {
    // Bind before the accept thread starts so connection threads see fully
    // constructed instruments without further synchronization.
    worker_profile_.bind(*registry);
    io_profile_.bind(*registry, "server");
    workers_mutex_.bind(*registry, "workers_mutex_");
    conns_mutex_.bind(*registry, "conns_mutex_");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Kick connection threads out of blocking reads. fds are deregistered
    // before they are closed, so no recycled descriptor can appear here.
    const obs::TimedLock lock(conns_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> workers;
  {
    const obs::TimedLock lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void TcpServer::accept_loop() {
  while (!stopping_.load()) {
    Socket socket;
    try {
      socket = listener_.accept();
    } catch (const NetError&) {
      break;
    }
    if (!socket.valid()) break;
    const obs::TimedLock lock(workers_mutex_);
    workers_.emplace_back(
        [this, s = std::move(socket)]() mutable { serve(std::move(s)); });
  }
}

void TcpServer::serve(Socket socket) {
  {
    const obs::TimedLock lock(conns_mutex_);
    conn_fds_.push_back(socket.fd());
  }
  worker_profile_.conn_opened();
  socket.set_io_profile(&io_profile_);
  using ProfClock = std::chrono::steady_clock;
  try {
    while (!stopping_.load()) {
      // Thread profiling splits each iteration into blocked-in-read (the
      // wait for the next request) and busy (handle + reply write).
      const bool timing =
          worker_profile_.bound() && obs::profiling_enabled();
      const auto read_start = timing ? ProfClock::now() : ProfClock::time_point{};
      std::optional<Frame> request = socket.read_frame();
      const auto read_end = timing ? ProfClock::now() : ProfClock::time_point{};
      if (timing) {
        worker_profile_.add_read_wait_ns(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(read_end -
                                                                 read_start)
                .count()));
      }
      if (!request) break;  // peer closed
      if (observer_) observer_->on_frame(*request, /*inbound=*/true);
      Frame reply = handler_(*request);
      // Propagate the request's trace context unless the handler set its
      // own.
      if (reply.trace_id == 0) {
        reply.trace_id = request->trace_id;
        reply.parent_span_id = request->parent_span_id;
        reply.flags = request->flags;
      }
      if (faults_ &&
          faults_->on_frame(port()) != FaultInjector::Action::Deliver) {
        // Injected reply drop/reset: close without answering; the client
        // sees EOF mid-call and treats it like any peer failure.
        break;
      }
      if (observer_) observer_->on_frame(reply, /*inbound=*/false);
      socket.write_frame(reply);
      if (timing) {
        worker_profile_.add_busy_ns(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                ProfClock::now() - read_end)
                .count()));
      }
    }
  } catch (const std::exception&) {
    // Connection-level failure (bad frame, handler error, reset): drop the
    // connection; the server keeps running.
  }
  worker_profile_.conn_closed();
  const obs::TimedLock lock(conns_mutex_);
  std::erase(conn_fds_, socket.fd());
  // Socket closes after deregistration, so stop() never touches a
  // recycled descriptor.
}

// ----------------------------------------------------------- TcpClient

TcpClient::TcpClient(std::uint16_t port, double timeout_sec,
                     FrameObserver* observer, FaultInjector* faults,
                     obs::Registry* registry)
    : port_(port),
      socket_(connect_local(port, timeout_sec, faults)),
      observer_(observer),
      faults_(faults) {
  if (registry) {
    mutex_.bind(*registry, "client_mutex_");
    io_profile_.bind(*registry, "client");
    socket_.set_io_profile(&io_profile_);
  }
}

Frame TcpClient::call(const Frame& request) {
  Frame reply;
  call_into(request, reply);
  return reply;
}

void TcpClient::call_into(const Frame& request, Frame& reply) {
  const obs::TimedLock lock(mutex_);
  if (faults_) {
    switch (faults_->on_frame(port_)) {
      case FaultInjector::Action::Deliver:
        break;
      case FaultInjector::Action::Drop:
        // The request never reaches the wire; surface it immediately
        // rather than stalling for the recv timeout a real drop causes.
        throw NetError("injected: request frame dropped");
      case FaultInjector::Action::Reset:
        socket_.close();
        throw NetError("injected: connection reset");
    }
  }
  if (observer_) observer_->on_frame(request, /*inbound=*/false);
  socket_.write_frame(request, send_scratch_);
  if (!socket_.read_frame_into(reply)) {
    throw NetError("server closed connection before replying");
  }
  if (observer_) observer_->on_frame(reply, /*inbound=*/true);
}

}  // namespace cachecloud::net
