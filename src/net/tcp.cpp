#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "net/fault_injector.hpp"

namespace cachecloud::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

std::size_t Frame::wire_bytes() const noexcept {
  return kFrameHeaderBytes + payload.size();
}

// -------------------------------------------------------- header codec

std::size_t encode_wire_header(std::uint8_t* out, const Frame& frame,
                               std::uint64_t mux_id) {
  const bool tagged = mux_id != 0;
  const auto len = static_cast<std::uint32_t>(
      frame.payload.size() + (tagged ? kMuxTagBytes : 0));
  out[0] = static_cast<std::uint8_t>(len);
  out[1] = static_cast<std::uint8_t>(len >> 8);
  out[2] = static_cast<std::uint8_t>(len >> 16);
  out[3] = static_cast<std::uint8_t>(len >> 24);
  out[4] = static_cast<std::uint8_t>(frame.type);
  out[5] = static_cast<std::uint8_t>(frame.type >> 8);
  for (int i = 0; i < 8; ++i) {
    out[6 + i] = static_cast<std::uint8_t>(frame.trace_id >> (8 * i));
    out[14 + i] = static_cast<std::uint8_t>(frame.parent_span_id >> (8 * i));
  }
  std::uint8_t flags = frame.flags;
  if (tagged) {
    flags |= Frame::kFlagMuxTagged;
  } else {
    flags &= static_cast<std::uint8_t>(~Frame::kFlagMuxTagged);
  }
  out[22] = flags;
  if (!tagged) return kFrameHeaderBytes;
  for (int i = 0; i < 8; ++i) {
    out[kFrameHeaderBytes + i] = static_cast<std::uint8_t>(mux_id >> (8 * i));
  }
  return kWireHeaderMax;
}

WireHeader decode_wire_header(
    const std::uint8_t header[kFrameHeaderBytes]) noexcept {
  WireHeader out;
  out.len = static_cast<std::uint32_t>(header[0]) |
            (static_cast<std::uint32_t>(header[1]) << 8) |
            (static_cast<std::uint32_t>(header[2]) << 16) |
            (static_cast<std::uint32_t>(header[3]) << 24);
  out.type = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(header[4]) |
      static_cast<std::uint16_t>(header[5] << 8));
  for (int i = 0; i < 8; ++i) {
    out.trace_id |= static_cast<std::uint64_t>(header[6 + i]) << (8 * i);
    out.parent_span_id |= static_cast<std::uint64_t>(header[14 + i])
                          << (8 * i);
  }
  out.flags = header[22];
  return out;
}

std::uint64_t decode_mux_tag(const std::uint8_t tag[kMuxTagBytes]) noexcept {
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<std::uint64_t>(tag[i]) << (8 * i);
  }
  return id;
}

void check_wire_header(const WireHeader& header) {
  const std::uint64_t limit =
      kMaxFrameBytes + (header.mux_tagged() ? kMuxTagBytes : 0);
  if (header.len > limit) throw FrameTooLargeError(header.len, limit);
  if (header.len == 0 && header.type == 0) {
    // A zero-length type-0 frame is no legal message — it is what an
    // all-zero garbage stream decodes to. Reject instead of delivering.
    throw NetError("rejected zero-length type-0 frame");
  }
  if (header.mux_tagged() && header.len < kMuxTagBytes) {
    throw NetError("mux-tagged frame shorter than its tag (len " +
                   std::to_string(header.len) + ")");
  }
}

// ------------------------------------------------------------- Socket

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_), io_(other.io_) {
  other.fd_ = -1;
  other.io_ = nullptr;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    io_ = other.io_;
    other.fd_ = -1;
    other.io_ = nullptr;
  }
  return *this;
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::sendv_all(const Frame& frame, std::uint64_t mux_id) {
  // Scatter-gather write: the stack-assembled header prefix and the
  // payload go out in one sendmsg, no contiguous assembly copy. Partial
  // sends advance the iovec cursor.
  std::uint8_t prefix[kWireHeaderMax];
  const std::size_t prefix_len = encode_wire_header(prefix, frame, mux_id);
  iovec iov[2];
  iov[0] = {prefix, prefix_len};
  iov[1] = {const_cast<std::uint8_t*>(frame.payload.data()),
            frame.payload.size()};
  int idx = 0;
  const int count = frame.payload.empty() ? 1 : 2;
  while (idx < count) {
    msghdr msg{};
    msg.msg_iov = &iov[idx];
    msg.msg_iovlen = static_cast<std::size_t>(count - idx);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("sendmsg");
    }
    if (io_) io_->on_send(static_cast<std::size_t>(n));
    auto left = static_cast<std::size_t>(n);
    while (idx < count && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < count && left > 0) {
      iov[idx].iov_base = static_cast<std::uint8_t*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
}

bool Socket::recv_all(void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a boundary
      throw NetError("connection closed mid-message");
    }
    if (io_) io_->on_recv(static_cast<std::size_t>(n));
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::write_frame(const Frame& frame) {
  if (!valid()) throw NetError("write on closed socket");
  if (frame.payload.size() > kMaxFrameBytes) {
    throw NetError("frame too large to send");
  }
  sendv_all(frame, 0);
}

void Socket::write_frame_tagged(const Frame& frame, std::uint64_t mux_id) {
  if (!valid()) throw NetError("write on closed socket");
  if (mux_id == 0) throw NetError("mux tag 0 is reserved");
  if (frame.payload.size() > kMaxFrameBytes) {
    throw NetError("frame too large to send");
  }
  sendv_all(frame, mux_id);
}

bool Socket::read_frame_into(Frame& out, std::uint64_t* mux_id) {
  if (!valid()) throw NetError("read on closed socket");
  if (mux_id) *mux_id = 0;
  std::uint8_t header[kFrameHeaderBytes];
  if (!recv_all(header, sizeof(header))) return false;
  const WireHeader wire = decode_wire_header(header);
  try {
    check_wire_header(wire);
  } catch (const NetError&) {
    // The stream position after a malformed header is unusable: close
    // before surfacing the typed error so no caller can read on.
    close();
    throw;
  }
  std::uint32_t len = wire.len;
  if (wire.mux_tagged()) {
    std::uint8_t tag[kMuxTagBytes];
    if (!recv_all(tag, sizeof(tag))) {
      throw NetError("connection closed mid-message");
    }
    if (mux_id) *mux_id = decode_mux_tag(tag);
    len -= kMuxTagBytes;
  }
  out.type = wire.type;
  out.trace_id = wire.trace_id;
  out.parent_span_id = wire.parent_span_id;
  out.flags =
      wire.flags & static_cast<std::uint8_t>(~Frame::kFlagMuxTagged);
  out.payload.resize(len);
  if (len > 0 && !recv_all(out.payload.data(), len)) {
    throw NetError("connection closed mid-message");
  }
  return true;
}

std::optional<Frame> Socket::read_frame() {
  Frame frame;
  if (!read_frame_into(frame)) return std::nullopt;
  return frame;
}

void Socket::set_recv_timeout(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

bool Socket::wait_readable(double timeout_sec) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ms = timeout_sec < 0.0
                     ? -1
                     : static_cast<int>(std::ceil(timeout_sec * 1e3));
  int rc;
  do {
    rc = ::poll(&pfd, 1, ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("poll(read)");
  return rc > 0;
}

// --------------------------------------------------------- TcpListener

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    throw_errno("bind");
  }
  if (::listen(fd_, 256) != 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  shutdown();
  if (fd_ >= 0) ::close(fd_);
}

Socket TcpListener::accept() {
  while (!shut_.load(std::memory_order_acquire)) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(client);
    }
    if (errno == EINTR) continue;
    if (shut_.load(std::memory_order_acquire)) break;
    throw_errno("accept");
  }
  return Socket();
}

void TcpListener::set_nonblocking() {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(F_SETFL)");
  }
}

void TcpListener::shutdown() noexcept {
  if (!shut_.exchange(true, std::memory_order_acq_rel) && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Socket connect_local(std::uint16_t port, double timeout_sec,
                     FaultInjector* faults) {
  if (faults) faults->on_connect(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket socket(fd);  // owns fd from here on
  sockaddr_in addr = loopback(port);

  // Non-blocking connect with a poll deadline, so a black-holed peer fails
  // within timeout_sec instead of the kernel's default (minutes).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (timeout_sec > 0.0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(F_SETFL)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (timeout_sec <= 0.0 || errno != EINPROGRESS) {
      throw_errno("connect to 127.0.0.1:" + std::to_string(port));
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int rc;
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(timeout_sec * 1e3));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) throw_errno("poll(connect)");
    if (rc == 0) {
      throw NetError("connect to 127.0.0.1:" + std::to_string(port) +
                     " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      throw_errno("connect to 127.0.0.1:" + std::to_string(port));
    }
  }
  if (timeout_sec > 0.0 && ::fcntl(fd, F_SETFL, flags) != 0) {
    throw_errno("fcntl(F_SETFL)");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (timeout_sec > 0.0) socket.set_recv_timeout(timeout_sec);
  return socket;
}

}  // namespace cachecloud::net
