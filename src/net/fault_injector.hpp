// Deterministic in-process fault injection for the TCP transport.
//
// A FaultInjector is installed on MuxClient / EventServer (via NodeConfig
// in the node layer) and consulted at two points:
//
//   on_connect(port)  before a client connect — may throw an injected
//                     connection refusal;
//   on_frame(port)    once per frame a client sends or a server replies —
//                     may add latency (sleeps in place), drop the frame or
//                     reset the connection (the caller acts on the verdict).
//
// Faults are keyed by the *destination* port (the server's listening port),
// so "make node 3 flaky" is one set_profile call: its inbound client
// traffic and its outbound replies both roll against the same profile.
//
// All randomness comes from one seeded util::Rng behind a mutex, with a
// fixed roll order per frame (latency, drop, reset), so a single-threaded
// driver replays the exact same fault sequence run to run. Counters are
// atomics; chaos harnesses reconcile them against the resilience metrics
// the nodes expose.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "util/rng.hpp"

namespace cachecloud::net {

// Per-destination fault probabilities; all default to "no faults".
struct FaultProfile {
  double connect_refused = 0.0;  // P(client connect attempt refused)
  double frame_drop = 0.0;       // P(frame vanishes; the peer times out/EOFs)
  double extra_latency = 0.0;    // P(frame delayed by latency_sec)
  double latency_sec = 0.0;      // delay applied when latency fires
  double reset = 0.0;            // P(connection reset instead of delivery)
};

class FaultInjector {
 public:
  enum class Kind : std::size_t {
    ConnectRefused = 0,
    FrameDrop = 1,
    ExtraLatency = 2,
    Reset = 3,
  };
  static constexpr std::size_t kKinds = 4;

  // What the transport should do with the current frame.
  enum class Action { Deliver, Drop, Reset };

  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // The default profile applies to every port without an explicit one.
  void set_default_profile(const FaultProfile& profile);
  void set_profile(std::uint16_t port, const FaultProfile& profile);
  void clear_profile(std::uint16_t port);
  // Drops every per-port profile and zeroes the default (counters persist).
  void clear_all();

  // ---- transport hooks --------------------------------------------
  // Throws NetError when a connect refusal is injected for `port`.
  void on_connect(std::uint16_t port);
  // Rolls latency (sleeping in place when it fires), then drop, then reset.
  [[nodiscard]] Action on_frame(std::uint16_t port);

  // ---- accounting --------------------------------------------------
  [[nodiscard]] std::uint64_t count(Kind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  // Faults that surface as a peer_call failure: refusals + drops + resets
  // (latency only slows the call down).
  [[nodiscard]] std::uint64_t disruptions() const noexcept {
    return count(Kind::ConnectRefused) + count(Kind::FrameDrop) +
           count(Kind::Reset);
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return disruptions() + count(Kind::ExtraLatency);
  }

 private:
  [[nodiscard]] FaultProfile profile_for_locked(std::uint16_t port) const;
  void bump(Kind kind) noexcept {
    counts_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }

  mutable std::mutex mutex_;
  util::Rng rng_;
  FaultProfile default_;
  std::unordered_map<std::uint16_t, FaultProfile> per_port_;
  std::array<std::atomic<std::uint64_t>, kKinds> counts_{};
};

}  // namespace cachecloud::net
