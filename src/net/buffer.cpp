#include "net/buffer.hpp"

#include <cstring>

namespace cachecloud::net {

namespace {
// The protocol never carries strings or blobs anywhere near this large; the
// cap bounds memory allocation on malformed input.
constexpr std::uint32_t kMaxFieldBytes = 64u * 1024 * 1024;
}  // namespace

void BufferWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BufferWriter::str(std::string_view s) {
  if (s.size() > kMaxFieldBytes) {
    throw std::invalid_argument("BufferWriter::str: field too large");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void BufferWriter::blob(const std::vector<std::uint8_t>& data) {
  if (data.size() > kMaxFieldBytes) {
    throw std::invalid_argument("BufferWriter::blob: field too large");
  }
  u32(static_cast<std::uint32_t>(data.size()));
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void BufferReader::need(std::size_t n) const {
  if (size_ - pos_ < n) {
    throw DecodeError("truncated message: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(size_ - pos_));
  }
}

std::uint64_t BufferReader::read_le(int width) {
  need(static_cast<std::size_t>(width));
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += static_cast<std::size_t>(width);
  return v;
}

std::uint8_t BufferReader::u8() {
  return static_cast<std::uint8_t>(read_le(1));
}
std::uint16_t BufferReader::u16() {
  return static_cast<std::uint16_t>(read_le(2));
}
std::uint32_t BufferReader::u32() {
  return static_cast<std::uint32_t>(read_le(4));
}
std::uint64_t BufferReader::u64() { return read_le(8); }

double BufferReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BufferReader::str() {
  const std::uint32_t len = u32();
  if (len > kMaxFieldBytes) throw DecodeError("string field too large");
  need(len);
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return out;
}

std::vector<std::uint8_t> BufferReader::blob() {
  const std::uint32_t len = u32();
  if (len > kMaxFieldBytes) throw DecodeError("blob field too large");
  need(len);
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

void BufferReader::expect_end() const {
  if (pos_ != size_) {
    throw DecodeError("trailing bytes in message: " +
                      std::to_string(size_ - pos_));
  }
}

}  // namespace cachecloud::net
