// Bounds-checked binary serialization for the wire protocol.
//
// All integers are little-endian. Strings and byte blobs are length-prefixed
// with a u32. BufferReader throws net::DecodeError on any truncated or
// malformed read, so protocol handlers never consume garbage silently.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cachecloud::net {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class BufferWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v, 2); }
  void u32(std::uint32_t v) { append_le(v, 4); }
  void u64(std::uint64_t v) { append_le(v, 8); }
  void f64(double v);
  void str(std::string_view s);
  void blob(const std::vector<std::uint8_t>& data);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(bytes_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  void append_le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> bytes_;
};

class BufferReader {
 public:
  explicit BufferReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  BufferReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::uint8_t> blob();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - pos_;
  }
  // Call at the end of a message to reject trailing junk.
  void expect_end() const;

 private:
  [[nodiscard]] std::uint64_t read_le(int width);
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace cachecloud::net
