// Event-driven server transport: a small pool of epoll loops multiplexes
// every connection instead of one blocked thread per socket.
//
//   EventLoop    one epoll instance + one thread. Owns the read side of
//                its connections (per-connection header/tag/payload state
//                machine over non-blocking reads) and the draining of
//                their bounded output queues (scatter-gather writev,
//                EPOLLOUT only while a backlog exists). An eventfd wakes
//                the loop for cross-thread work (post()).
//   Conn         one multiplexed connection. send() is callable from any
//                thread: it writev()s straight from the caller when the
//                queue is empty (common case — zero handoff latency) and
//                spills the remainder into the queue under backpressure.
//                When the queue crosses the high watermark the loop stops
//                reading from that peer until it drains below the low
//                watermark — a slow consumer throttles itself, not the
//                server.
//   WorkerPool   elastic handler pool (core threads always alive, grows
//                toward max when every worker is busy) so handlers may
//                block — disk tiers, nested peer_call fan-out — without
//                stalling the event threads.
//   EventServer  drop-in replacement for the old thread-per-connection
//                TcpServer: same constructor shape, same Handler contract,
//                same FrameObserver / FaultInjector / trace-propagation /
//                profiling semantics. Mux-tagged requests dispatch
//                concurrently and reply out of order; untagged requests
//                keep the legacy one-at-a-time-per-connection ordering.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/tcp.hpp"
#include "obs/profile.hpp"

namespace cachecloud::net {

class FaultInjector;
class EventLoop;

// Output-queue bounds, per connection.
struct ConnLimits {
  // Stop reading from the peer while its output backlog exceeds this.
  std::size_t high_watermark_bytes = 8u * 1024 * 1024;
  // Resume reading once the backlog drains below this.
  std::size_t low_watermark_bytes = 1u * 1024 * 1024;
  // Hard cap: a connection whose backlog still grows past this (consumer
  // stalled while handlers were already in flight) is closed.
  std::size_t max_output_bytes = 256u * 1024 * 1024;
};

class EventLoop {
 public:
  class Conn;
  using ConnPtr = std::shared_ptr<Conn>;
  // Delivered on the loop thread for every complete frame; the mux tag
  // (0 = untagged) has been stripped from the frame already.
  using FrameFn = std::function<void(const ConnPtr&, Frame&&, std::uint64_t)>;
  using CloseFn = std::function<void(const ConnPtr&)>;

  // One multiplexed connection, owned by exactly one loop. Thread-safe
  // surface: send() and close() from anywhere; everything else is loop
  // internals.
  class Conn : public std::enable_shared_from_this<Conn> {
   public:
    Conn(EventLoop* loop, int fd) noexcept : loop_(loop), fd_(fd) {}
    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;
    ~Conn();

    // Queues a frame for writing (mux_id != 0 stamps the tag). Writes
    // directly from the calling thread when there is no backlog. Returns
    // false if the connection is (being) closed; never blocks and never
    // throws on peer failure — a dead peer turns into on_close.
    bool send(const Frame& frame, std::uint64_t mux_id);
    // Asynchronously tears the connection down; on_close fires once, on
    // the loop thread. Idempotent, callable from any thread.
    void close();

    [[nodiscard]] int fd() const noexcept { return fd_; }
    // Bytes currently queued for write (diagnostic).
    [[nodiscard]] std::size_t backlog_bytes() const;

    // Endpoint-owner context (the server parks its per-connection dispatch
    // state here); shared_ptr so late-running handler tasks can outlive
    // the connection safely.
    std::shared_ptr<void> user;

   private:
    friend class EventLoop;

    struct OutEntry {
      std::array<std::uint8_t, kWireHeaderMax> prefix;
      std::size_t prefix_len = 0;
      std::size_t prefix_off = 0;
      std::vector<std::uint8_t> payload;
      std::size_t payload_off = 0;

      [[nodiscard]] std::size_t remaining() const noexcept {
        return (prefix_len - prefix_off) + (payload.size() - payload_off);
      }
    };

    enum class ReadState { Header, Tag, Payload };

    EventLoop* loop_;
    const int fd_;

    // ---- write side (out_mutex_) ----------------------------------
    mutable std::mutex out_mutex_;
    bool write_closed_ = false;  // sends rejected; fd closing or closed
    std::deque<OutEntry> outq_;
    std::size_t outq_bytes_ = 0;
    std::atomic<bool> flush_posted_{false};
    std::atomic<bool> close_requested_{false};

    // ---- read side (loop thread only) -----------------------------
    ReadState rstate_ = ReadState::Header;
    std::array<std::uint8_t, kWireHeaderMax> rbuf_{};
    std::size_t rbuf_got_ = 0;
    WireHeader rheader_{};
    Frame rframe_;
    std::size_t rpayload_got_ = 0;
    std::uint64_t rmux_ = 0;

    // ---- loop bookkeeping (loop thread only) ----------------------
    std::uint32_t events_ = 0;   // current epoll interest mask
    bool read_paused_ = false;   // EPOLLIN off for backpressure
    bool detached_ = false;      // removed from the loop; fd closed
    FrameFn on_frame_;
    CloseFn on_close_;
  };

  EventLoop(ConnLimits limits, obs::IoProfile* io);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void start();
  // Detaches every connection (their on_close callbacks fire), runs the
  // remaining posted work and joins the loop thread. Idempotent.
  void stop();

  // Runs fn on the loop thread (soon); from the loop thread itself fn is
  // still deferred, never run inline. Returns false (fn dropped) once the
  // loop has stopped accepting work.
  bool post(std::function<void()> fn);

  // Registers a connected fd (must already be non-blocking). Callbacks run
  // on the loop thread. Thread-safe. Returns the connection handle; if the
  // loop is stopping the fd is closed and nullptr returned.
  ConnPtr adopt(int fd, FrameFn on_frame, CloseFn on_close);

  // Watches an auxiliary readable fd (listener); cb runs on the loop
  // thread each time it is readable. Not owned: the fd is deregistered at
  // stop but never closed here.
  void add_listener(int fd, std::function<void()> cb);

 private:
  void run();
  void wake();
  void register_conn(const ConnPtr& conn);
  void detach(const ConnPtr& conn);
  void detach_all();
  void handle_readable(const ConnPtr& conn);
  void handle_writable(const ConnPtr& conn);
  void deliver_frame(const ConnPtr& conn);
  void update_interest(const ConnPtr& conn, std::uint32_t events);
  void maybe_pause_reads(const ConnPtr& conn);

  const ConnLimits limits_;
  obs::IoProfile* io_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> joined_{false};

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  bool accepting_posts_ = true;  // post_mutex_

  // Loop-thread-only maps from epoll data.fd.
  std::unordered_map<int, ConnPtr> conns_;
  std::unordered_map<int, std::function<void()>> listeners_;
};

// Elastic handler pool: `core` threads live for the pool's lifetime; when
// a task arrives and no worker is idle, a new thread is spawned up to
// `max`. Handlers may therefore block (nested peer calls, disk) without
// deadlocking the dispatch path, while steady-state stays at a few
// threads. Busy/idle time feeds the WorkerProfile: busy = handler
// execution, read_wait = idle waiting for the next request (the same
// split the thread-per-connection server reported).
class WorkerPool {
 public:
  WorkerPool(int core, int max, obs::WorkerProfile* profile);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void submit(std::function<void()> task);
  // Finishes running tasks, discards queued ones, joins all threads.
  void stop();

  [[nodiscard]] int threads() const;

 private:
  void worker_main();

  const int core_;
  const int max_;
  obs::WorkerProfile* profile_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  int idle_ = 0;
  bool stopping_ = false;
};

// Transport tuning for EventServer; the defaults suit tests and
// single-host clusters.
struct EventServerConfig {
  int event_threads = 2;
  int core_workers = 4;
  int max_workers = 256;
  ConnLimits limits;
};

// Request/response server over the event loops: for every inbound frame
// the handler produces the reply frame. Handlers run on the worker pool;
// mux-tagged requests from one connection run concurrently and their
// replies are matched by tag on the client side, so they may complete out
// of order. Untagged requests keep the legacy serve-loop ordering: one at
// a time per connection, replies in request order.
class EventServer {
 public:
  using Handler = std::function<Frame(const Frame&)>;

  // port 0 = ephemeral. The handler must be thread-safe. A handler
  // exception closes that connection only. The optional observer sees
  // every request (inbound) and reply (outbound) frame and must outlive
  // the server. The optional fault injector rolls against this server's
  // listening port before each reply is written: an injected drop or reset
  // closes the connection without replying. The optional registry (must
  // outlive the server) attaches the contention & resource profiler:
  // worker busy/read-wait accounting, live/peak connection gauges, the
  // per-syscall IO counters and the NODELAY socket counter all register
  // under it (samples accumulate only while obs::profiling_enabled(),
  // except the connection gauges and socket counters).
  EventServer(std::uint16_t port, Handler handler,
              FrameObserver* observer = nullptr,
              FaultInjector* faults = nullptr,
              obs::Registry* registry = nullptr,
              EventServerConfig config = {});
  ~EventServer();
  EventServer(const EventServer&) = delete;
  EventServer& operator=(const EventServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }
  void stop();

 private:
  struct ConnCtx;

  void on_accept();
  void dispatch(const EventLoop::ConnPtr& conn, Frame&& request,
                std::uint64_t mux_id);
  void drain_fifo(const EventLoop::ConnPtr& conn,
                  const std::shared_ptr<ConnCtx>& ctx);
  void handle_one(const EventLoop::ConnPtr& conn, Frame& request,
                  std::uint64_t mux_id);

  TcpListener listener_;
  Handler handler_;
  FrameObserver* observer_ = nullptr;
  FaultInjector* faults_ = nullptr;
  EventServerConfig config_;
  // Profiler state; bound to the optional registry before the loops start,
  // inert otherwise.
  obs::WorkerProfile worker_profile_;
  obs::IoProfile io_profile_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> next_loop_{0};
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::unique_ptr<WorkerPool> workers_;
};

}  // namespace cachecloud::net
