// Framed TCP wire layer: one frame =
// [u32 len][u16 type][u64 trace_id][u64 parent_span_id][u8 flags][payload].
//
// This file owns the wire format and the blocking building blocks (RAII
// socket, listener, connect helper). The live endpoints sit on top:
// net::EventServer (event_loop.hpp) serves frames from a non-blocking
// epoll loop, net::MuxClient (mux_client.hpp) pipelines many outstanding
// requests over one connection. The trace fields are observability-only
// (trace_id 0 = untraced): the node layer stamps one context per client
// get() and every hop propagates it — parent_span_id links the receiving
// hop's span to the sender's, and the sampled flag carries the
// head-sampling verdict — so request paths can be stitched across nodes
// from TraceDump scrapes or Debug span logs.
//
// Multiplexing rides on the same 23-byte header: a frame whose flags carry
// kFlagMuxTagged holds an 8-byte little-endian request id as the first
// bytes of its length-counted body, before the payload proper. The tag is
// a transport detail — read paths strip it (and the flag) before anyone
// above the transport sees the frame, so handlers, observers and the
// payload codecs are byte-identical with or without pipelining. Untagged
// frames are the pre-mux wire format, unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/profile.hpp"

namespace cachecloud::net {

class FaultInjector;

class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

// A peer announced a frame longer than the transport accepts. The
// connection is closed before this is thrown — the stream position after
// an oversized announcement is unusable.
class FrameTooLargeError : public NetError {
 public:
  FrameTooLargeError(std::uint64_t announced, std::uint64_t limit)
      : NetError("oversized frame: announced " + std::to_string(announced) +
                 " bytes, limit " + std::to_string(limit)),
        announced_(announced) {}

  [[nodiscard]] std::uint64_t announced_bytes() const noexcept {
    return announced_;
  }

 private:
  std::uint64_t announced_;
};

struct Frame {
  // flags bit 0: the trace's head-sampling verdict travels with it so
  // every hop reaches the same keep/drop decision without coordination.
  static constexpr std::uint8_t kFlagSampled = 0x01;
  // flags bit 1: the frame body starts with an 8-byte request id (mux
  // tag). Set and consumed by the transport; never visible above it.
  static constexpr std::uint8_t kFlagMuxTagged = 0x02;

  std::uint16_t type = 0;
  // Request-path trace id, propagated hop to hop; 0 means untraced.
  std::uint64_t trace_id = 0;
  // Span id of the sending hop's span; 0 = no parent (trace root).
  std::uint64_t parent_span_id = 0;
  std::uint8_t flags = 0;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] bool sampled() const noexcept {
    return (flags & kFlagSampled) != 0;
  }

  // Bytes this frame occupies on the wire (header + payload, untagged).
  [[nodiscard]] std::size_t wire_bytes() const noexcept;
};

// Per-frame accounting hook for the transport. Implementations must be
// thread-safe: servers invoke it from event-loop and worker threads,
// clients from any calling thread.
class FrameObserver {
 public:
  virtual ~FrameObserver() = default;
  // `inbound` is from the owning endpoint's point of view: a server sees
  // requests inbound and replies outbound; a client the reverse.
  virtual void on_frame(const Frame& frame, bool inbound) noexcept = 0;
};

// Frames larger than this are rejected on read (malformed/hostile peer).
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

// Fixed wire header and the optional mux tag that may follow it.
inline constexpr std::size_t kFrameHeaderBytes = 23;
inline constexpr std::size_t kMuxTagBytes = 8;
// Largest header+tag prefix a writer assembles contiguously.
inline constexpr std::size_t kWireHeaderMax = kFrameHeaderBytes + kMuxTagBytes;

// Decoded fixed header. len counts the body: mux tag (if flagged) + payload.
struct WireHeader {
  std::uint32_t len = 0;
  std::uint16_t type = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint8_t flags = 0;

  [[nodiscard]] bool mux_tagged() const noexcept {
    return (flags & Frame::kFlagMuxTagged) != 0;
  }
};

// Header codec, shared by the blocking Socket paths and the event loop's
// per-connection state machines. encode writes the 23-byte header plus the
// 8-byte tag when mux_id != 0 (setting kFlagMuxTagged and growing len) and
// returns the prefix length; `out` must hold kWireHeaderMax bytes.
std::size_t encode_wire_header(std::uint8_t* out, const Frame& frame,
                               std::uint64_t mux_id);
[[nodiscard]] WireHeader decode_wire_header(
    const std::uint8_t header[kFrameHeaderBytes]) noexcept;
[[nodiscard]] std::uint64_t decode_mux_tag(
    const std::uint8_t tag[kMuxTagBytes]) noexcept;

// Validates a decoded header: throws FrameTooLargeError when len exceeds
// the frame limit (plus tag allowance), NetError for a zero-length type-0
// frame (never a legal message; classic garbage-stream signature) or a
// tagged frame too short to hold its tag. Callers close the connection
// before throwing — the stream is unusable after a malformed header.
void check_wire_header(const WireHeader& header);

// RAII wrapper over a connected stream socket (blocking I/O paths).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  // Blocking frame I/O. Writes are scatter-gather (one writev over header
  // + payload, no assembly copy). write_frame_tagged stamps the mux tag;
  // mux_id must be non-zero. read_frame returns nullopt on clean EOF at a
  // frame boundary; throws NetError on mid-frame EOF or I/O failure.
  void write_frame(const Frame& frame);
  void write_frame_tagged(const Frame& frame, std::uint64_t mux_id);
  [[nodiscard]] std::optional<Frame> read_frame();

  // Allocation-light read for hot callers: reuses out.payload's capacity,
  // returns false on clean EOF at a frame boundary. A tagged frame has its
  // tag stripped (stored to *mux_id when given, else discarded) and the
  // flag cleared; *mux_id is 0 for untagged frames. A malformed header
  // (oversized length — typed FrameTooLargeError naming it — zero-length
  // type-0, or a tag that doesn't fit its length) closes the socket before
  // throwing.
  [[nodiscard]] bool read_frame_into(Frame& out,
                                     std::uint64_t* mux_id = nullptr);

  // Receive timeout for subsequent reads (0 = no timeout).
  void set_recv_timeout(double seconds);

  // Blocks until the socket has something to read (data, EOF and errors
  // all count). timeout_sec < 0 waits forever; returns false if the
  // timeout passed with nothing pending.
  [[nodiscard]] bool wait_readable(double timeout_sec);

  // Resource profiling: every subsequent send/recv syscall is reported to
  // `profile` (bytes moved, one call per syscall) while obs profiling is
  // on. Not owned; must outlive the socket. nullptr detaches.
  void set_io_profile(obs::IoProfile* profile) noexcept { io_ = profile; }

  // Half-closes both directions (unblocks a peer thread parked in recv on
  // this fd) without releasing the descriptor.
  void shutdown() noexcept;
  void close() noexcept;

 private:
  void sendv_all(const Frame& frame, std::uint64_t mux_id);
  // Returns false on EOF before any byte; throws on partial reads.
  bool recv_all(void* data, std::size_t len);

  int fd_ = -1;
  obs::IoProfile* io_ = nullptr;
};

// Listening socket on 127.0.0.1. Port 0 picks an ephemeral port.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  // Blocks until a connection arrives; returns an invalid Socket if the
  // listener has been shut down.
  [[nodiscard]] Socket accept();
  // Switches the listening fd to non-blocking accepts (event-loop use).
  void set_nonblocking();
  // Unblocks pending/future accept() calls.
  void shutdown() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> shut_{false};
};

// Connects to 127.0.0.1:port. timeout_sec bounds both the connect itself
// (non-blocking connect + poll, so a black-holed peer cannot stall the
// caller for the kernel default) and subsequent reads; 0 = no timeout. The
// optional injector may refuse the connect (deterministic chaos). Every
// transport socket leaves here with TCP_NODELAY set — pipelined small
// frames must not eat Nagle delay.
[[nodiscard]] Socket connect_local(std::uint16_t port,
                                   double timeout_sec = 5.0,
                                   FaultInjector* faults = nullptr);

}  // namespace cachecloud::net
