// Framed TCP transport: blocking sockets, one frame =
// [u32 len][u16 type][u64 trace_id][u64 parent_span_id][u8 flags][payload].
//
// Deliberately simple ("standard sockets"): RAII socket wrapper, a
// listener, a threaded request/response server and a blocking client. The
// node layer builds the cache-cloud wire protocol on top. The trace
// fields are observability-only (trace_id 0 = untraced): the node layer
// stamps one context per client get() and every hop propagates it —
// parent_span_id links the receiving hop's span to the sender's, and the
// sampled flag carries the head-sampling verdict — so request paths can
// be stitched across nodes from TraceDump scrapes or Debug span logs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/profile.hpp"

namespace cachecloud::net {

class FaultInjector;

class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

struct Frame {
  // flags bit 0: the trace's head-sampling verdict travels with it so
  // every hop reaches the same keep/drop decision without coordination.
  static constexpr std::uint8_t kFlagSampled = 0x01;

  std::uint16_t type = 0;
  // Request-path trace id, propagated hop to hop; 0 means untraced.
  std::uint64_t trace_id = 0;
  // Span id of the sending hop's span; 0 = no parent (trace root).
  std::uint64_t parent_span_id = 0;
  std::uint8_t flags = 0;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] bool sampled() const noexcept {
    return (flags & kFlagSampled) != 0;
  }

  // Bytes this frame occupies on the wire (header + payload).
  [[nodiscard]] std::size_t wire_bytes() const noexcept;
};

// Per-frame accounting hook for the transport. Implementations must be
// thread-safe: the server invokes it from every connection thread.
class FrameObserver {
 public:
  virtual ~FrameObserver() = default;
  // `inbound` is from the owning endpoint's point of view: a server sees
  // requests inbound and replies outbound; a client the reverse.
  virtual void on_frame(const Frame& frame, bool inbound) noexcept = 0;
};

// Frames larger than this are rejected on read (malformed/hostile peer).
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

// RAII wrapper over a connected stream socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  // Blocking frame I/O. read_frame returns nullopt on clean EOF at a frame
  // boundary; throws NetError on mid-frame EOF or I/O failure.
  void write_frame(const Frame& frame);
  [[nodiscard]] std::optional<Frame> read_frame();

  // Allocation-light variants for hot callers. The write overload
  // assembles header + payload into `scratch` (capacity is reused across
  // calls) and ships one send; read_frame_into reuses `out.payload`'s
  // capacity and returns false on clean EOF at a frame boundary.
  void write_frame(const Frame& frame, std::vector<std::uint8_t>& scratch);
  [[nodiscard]] bool read_frame_into(Frame& out);

  // Receive timeout for subsequent reads (0 = no timeout).
  void set_recv_timeout(double seconds);

  // Resource profiling: every subsequent send/recv syscall is reported to
  // `profile` (bytes moved, one call per syscall) while obs profiling is
  // on. Not owned; must outlive the socket. nullptr detaches.
  void set_io_profile(obs::IoProfile* profile) noexcept { io_ = profile; }

  void close() noexcept;

 private:
  void send_all(const void* data, std::size_t len);
  // Returns false on EOF before any byte; throws on partial reads.
  bool recv_all(void* data, std::size_t len);

  int fd_ = -1;
  obs::IoProfile* io_ = nullptr;
};

// Listening socket on 127.0.0.1. Port 0 picks an ephemeral port.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  // Blocks until a connection arrives; returns an invalid Socket if the
  // listener has been shut down.
  [[nodiscard]] Socket accept();
  // Unblocks pending/future accept() calls.
  void shutdown() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> shut_{false};
};

// Connects to 127.0.0.1:port. timeout_sec bounds both the connect itself
// (non-blocking connect + poll, so a black-holed peer cannot stall the
// caller for the kernel default) and subsequent reads; 0 = no timeout. The
// optional injector may refuse the connect (deterministic chaos).
[[nodiscard]] Socket connect_local(std::uint16_t port,
                                   double timeout_sec = 5.0,
                                   FaultInjector* faults = nullptr);

// Request/response server: for every inbound frame the handler produces the
// reply frame. One thread per connection; connections are served until the
// peer closes or the server stops.
class TcpServer {
 public:
  using Handler = std::function<Frame(const Frame&)>;

  // port 0 = ephemeral. The handler runs on connection threads and must be
  // thread-safe. A handler exception closes that connection only. The
  // optional observer sees every request (inbound) and reply (outbound)
  // frame and must outlive the server. The optional fault injector rolls
  // against this server's listening port before each reply is written: an
  // injected drop or reset closes the connection without replying. The
  // optional registry (must outlive the server) attaches the contention &
  // resource profiler: the internal mutexes, the worker busy/read-wait
  // accounting, the connection-thread gauges and the per-syscall IO
  // counters all register under it (samples accumulate only while
  // obs::profiling_enabled(), except the connection gauges).
  TcpServer(std::uint16_t port, Handler handler,
            FrameObserver* observer = nullptr,
            FaultInjector* faults = nullptr,
            obs::Registry* registry = nullptr);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }
  void stop();

 private:
  void accept_loop();
  void serve(Socket socket);

  TcpListener listener_;
  Handler handler_;
  FrameObserver* observer_ = nullptr;
  FaultInjector* faults_ = nullptr;
  // Profiler state; bound to the optional registry before accept_thread_
  // starts, inert (plain mutexes, no counters) otherwise.
  obs::WorkerProfile worker_profile_;
  obs::IoProfile io_profile_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  obs::TimedMutex workers_mutex_;
  std::vector<std::thread> workers_;
  obs::TimedMutex conns_mutex_;
  std::vector<int> conn_fds_;  // live connection fds, for shutdown on stop
};

// Blocking RPC client with a single connection; call() is serialized so the
// client can be shared across threads.
class TcpClient {
 public:
  // The optional observer sees every request (outbound) and reply
  // (inbound) frame and must outlive the client. The optional fault
  // injector may refuse the connect, delay, drop or reset individual
  // calls; every injected disruption surfaces as a NetError. The optional
  // registry (must outlive the client) attaches the contention profiler to
  // the call mutex and the per-syscall IO counters; clients sharing a
  // registry aggregate into the same instruments.
  explicit TcpClient(std::uint16_t port, double timeout_sec = 5.0,
                     FrameObserver* observer = nullptr,
                     FaultInjector* faults = nullptr,
                     obs::Registry* registry = nullptr);

  [[nodiscard]] Frame call(const Frame& request);

  // Zero-copy-out variant: the reply is decoded into `reply`, whose
  // payload capacity is reused across calls. Combined with the per-client
  // scratch send buffer, a steady-state call makes no allocations — this
  // is what keeps the load generator's client threads off the allocator.
  void call_into(const Frame& request, Frame& reply);

 private:
  obs::TimedMutex mutex_;
  obs::IoProfile io_profile_;
  std::uint16_t port_ = 0;
  Socket socket_;
  FrameObserver* observer_ = nullptr;
  FaultInjector* faults_ = nullptr;
  // Send-side assembly buffer, reused by every call (guarded by mutex_).
  std::vector<std::uint8_t> send_scratch_;
};

}  // namespace cachecloud::net
