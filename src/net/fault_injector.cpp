#include "net/fault_injector.hpp"

#include <chrono>
#include <string>
#include <thread>

#include "net/tcp.hpp"

namespace cachecloud::net {

void FaultInjector::set_default_profile(const FaultProfile& profile) {
  const std::lock_guard<std::mutex> lock(mutex_);
  default_ = profile;
}

void FaultInjector::set_profile(std::uint16_t port,
                                const FaultProfile& profile) {
  const std::lock_guard<std::mutex> lock(mutex_);
  per_port_[port] = profile;
}

void FaultInjector::clear_profile(std::uint16_t port) {
  const std::lock_guard<std::mutex> lock(mutex_);
  per_port_.erase(port);
}

void FaultInjector::clear_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  per_port_.clear();
  default_ = FaultProfile{};
}

FaultProfile FaultInjector::profile_for_locked(std::uint16_t port) const {
  const auto it = per_port_.find(port);
  return it == per_port_.end() ? default_ : it->second;
}

void FaultInjector::on_connect(std::uint16_t port) {
  bool refuse = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const FaultProfile profile = profile_for_locked(port);
    if (profile.connect_refused > 0.0) {
      refuse = rng_.next_bool(profile.connect_refused);
    }
  }
  if (refuse) {
    bump(Kind::ConnectRefused);
    throw NetError("injected: connect to 127.0.0.1:" + std::to_string(port) +
                   " refused");
  }
}

FaultInjector::Action FaultInjector::on_frame(std::uint16_t port) {
  double sleep_sec = 0.0;
  Action action = Action::Deliver;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const FaultProfile profile = profile_for_locked(port);
    // Fixed roll order keeps single-threaded runs bit-for-bit reproducible.
    if (profile.extra_latency > 0.0 &&
        rng_.next_bool(profile.extra_latency)) {
      sleep_sec = profile.latency_sec;
    }
    if (profile.frame_drop > 0.0 && rng_.next_bool(profile.frame_drop)) {
      action = Action::Drop;
    } else if (profile.reset > 0.0 && rng_.next_bool(profile.reset)) {
      action = Action::Reset;
    }
  }
  if (sleep_sec > 0.0) {
    bump(Kind::ExtraLatency);
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_sec));
  }
  if (action == Action::Drop) bump(Kind::FrameDrop);
  if (action == Action::Reset) bump(Kind::Reset);
  return action;
}

}  // namespace cachecloud::net
