#include "net/mux_client.hpp"

#include "net/fault_injector.hpp"

namespace cachecloud::net {

MuxClient::MuxClient(std::uint16_t port, double timeout_sec,
                     FrameObserver* observer, FaultInjector* faults,
                     obs::Registry* registry, std::size_t max_outstanding)
    : port_(port),
      timeout_sec_(timeout_sec),
      max_outstanding_(max_outstanding < 1 ? 1 : max_outstanding),
      observer_(observer),
      faults_(faults),
      socket_(connect_local(port, timeout_sec, faults)) {
  // connect_local's SO_RCVTIMEO stays armed: the reading caller waits
  // between frames in wait_readable (bounded by its own deadline), so the
  // recv timeout can only fire mid-frame — a genuinely stalled peer,
  // which correctly fails the connection.
  if (registry) {
    send_mutex_.bind(*registry, "client_mutex_");
    io_profile_.bind(*registry, "client");
    socket_.set_io_profile(&io_profile_);
    io_profile_.on_nodelay();  // connect_local set TCP_NODELAY
  }
}

MuxClient::~MuxClient() { close(); }

void MuxClient::close() { fail_connection("client closed"); }

Frame MuxClient::call(const Frame& request) {
  Frame reply;
  call_into(request, reply);
  return reply;
}

void MuxClient::call_into(const Frame& request, Frame& reply) {
  finish(begin(request), reply);
}

std::size_t MuxClient::outstanding() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return pending_.size();
}

std::size_t MuxClient::peak_outstanding() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return peak_outstanding_;
}

void MuxClient::set_next_request_id(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  next_id_ = id == 0 ? 1 : id;
}

std::uint64_t MuxClient::begin(const Frame& request) {
  if (faults_) {
    switch (faults_->on_frame(port_)) {
      case FaultInjector::Action::Deliver:
        break;
      case FaultInjector::Action::Drop:
        // The request never reaches the wire; surface it immediately
        // rather than stalling for the deadline a real drop causes.
        throw NetError("injected: request frame dropped");
      case FaultInjector::Action::Reset:
        fail_connection("injected: connection reset");
        throw NetError("injected: connection reset");
    }
  }
  auto slot = std::make_shared<Pending>();
  if (timeout_sec_ > 0.0) {
    slot->deadline = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(timeout_sec_));
  }
  std::uint64_t id = 0;
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (dead_) throw NetError(dead_reason_);
    if (pending_.size() >= max_outstanding_) {
      const auto have_slot = [this] {
        return dead_ || pending_.size() < max_outstanding_;
      };
      if (timeout_sec_ > 0.0) {
        if (!cv_.wait_until(lock, slot->deadline, have_slot)) {
          throw NetError("mux window full: " +
                         std::to_string(max_outstanding_) +
                         " requests outstanding");
        }
      } else {
        cv_.wait(lock, have_slot);
      }
      if (dead_) throw NetError(dead_reason_);
    }
    // Ids increase monotonically and wrap; 0 is reserved for "untagged"
    // and a still-outstanding id is skipped, so reuse cannot collide.
    do {
      id = next_id_++;
      if (next_id_ == 0) next_id_ = 1;
    } while (id == 0 || pending_.count(id) != 0);
    pending_.emplace(id, slot);
    if (pending_.size() > peak_outstanding_) {
      peak_outstanding_ = pending_.size();
    }
  }
  if (observer_) observer_->on_frame(request, /*inbound=*/false);
  try {
    const obs::TimedLock send_lock(send_mutex_);
    socket_.write_frame_tagged(request, id);
  } catch (const std::exception& e) {
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      pending_.erase(id);
    }
    cv_.notify_all();
    // A failed send may have left a partial frame on the wire; nothing
    // after it can be framed correctly.
    fail_connection(e.what());
    throw;
  }
  return id;
}

void MuxClient::finish(std::uint64_t ticket, Frame& reply) {
  std::shared_ptr<Pending> slot;
  bool timed_out = false;
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    {
      const auto it = pending_.find(ticket);
      if (it == pending_.end()) {
        throw NetError("unknown or already-finished mux ticket " +
                       std::to_string(ticket));
      }
      slot = it->second;
    }
    // Leader/follower: whoever needs a reply while nobody is reading
    // takes the reader role and pumps the socket; everyone else waits for
    // their slot to settle or for the role to free up.
    for (;;) {
      if (slot->state != SlotState::Waiting) break;
      if (timeout_sec_ > 0.0 &&
          std::chrono::steady_clock::now() >= slot->deadline) {
        timed_out = true;
        break;
      }
      if (!reader_active_) {
        reader_active_ = true;
        lock.unlock();
        read_one(slot->deadline);
        lock.lock();
        reader_active_ = false;
        // Wake followers: one takes the role if we are done, the rest
        // see their settled slots.
        cv_.notify_all();
        continue;
      }
      const auto ready = [&] {
        return slot->state != SlotState::Waiting || !reader_active_;
      };
      if (timeout_sec_ > 0.0) {
        cv_.wait_until(lock, slot->deadline, ready);
      } else {
        cv_.wait(lock, ready);
      }
    }
    // Success, failure or abandonment: the slot is spent either way. A
    // late reply for an abandoned ticket finds no entry and is discarded
    // by whoever reads it — the connection survives the timeout.
    pending_.erase(ticket);
  }
  cv_.notify_all();  // a window slot freed up
  if (timed_out) {
    throw NetError("call timed out after " + std::to_string(timeout_sec_) +
                   "s (ticket " + std::to_string(ticket) + ")");
  }
  if (slot->state == SlotState::Failed) throw NetError(slot->error);
  reply = std::move(slot->reply);
}

void MuxClient::read_one(std::chrono::steady_clock::time_point deadline) {
  try {
    double wait_sec = -1.0;  // no timeout: park until a frame or failure
    if (timeout_sec_ > 0.0) {
      wait_sec = std::chrono::duration<double>(
                     deadline - std::chrono::steady_clock::now())
                     .count();
      if (wait_sec < 0.0) wait_sec = 0.0;
    }
    // Wait for readability separately from the frame read: a quiet wire
    // at the deadline is a caller timeout, not a connection failure.
    if (!socket_.wait_readable(wait_sec)) return;
    std::uint64_t id = 0;
    if (!socket_.read_frame_into(read_buf_, &id)) {
      fail_connection("server closed connection before replying");
      return;
    }
    if (id == 0) {
      fail_connection("untagged reply on multiplexed connection");
      return;
    }
    const std::lock_guard<std::mutex> lock(state_mutex_);
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;  // abandoned (timed-out) call
    if (observer_) observer_->on_frame(read_buf_, /*inbound=*/true);
    it->second->reply = std::move(read_buf_);
    read_buf_ = Frame{};
    it->second->state = SlotState::Done;
  } catch (const std::exception& e) {
    fail_connection(e.what());
  }
}

void MuxClient::fail_connection(const std::string& reason) {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (!dead_) {
      dead_ = true;
      dead_reason_ = reason;
      for (auto& [id, slot] : pending_) {
        if (slot->state == SlotState::Waiting) {
          slot->state = SlotState::Failed;
          slot->error = reason;
        }
      }
    }
  }
  cv_.notify_all();
  // Unblock a caller holding the reader role, parked in poll or recv
  // (no-op if that caller raised this).
  socket_.shutdown();
}

}  // namespace cachecloud::net
