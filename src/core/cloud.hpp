// CacheCloud: a cooperative group of edge caches (§2).
//
// Ties together the beacon-point assignment scheme (static / consistent /
// dynamic hashing), the lookup directory, the per-cache document stores and
// the placement policy, and executes the document lookup and update
// protocols:
//
//   request at cache c for document d:
//     local hit  -> serve;
//     otherwise  -> resolve d's beacon point, fetch the holder list,
//                   retrieve from a holder (cloud hit) or from the origin
//                   server (group miss), then let the placement policy
//                   decide whether the retrieved copy is kept.
//
//   update of d at the origin:
//     origin resolves d's beacon point per cloud and sends one update
//     message; the beacon point pushes the new version to every current
//     holder.
//
// All outcomes carry enough detail for the simulator to account network
// traffic, latency and per-beacon-point load exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/document_store.hpp"
#include "core/assigner.hpp"
#include "core/directory.hpp"
#include "core/placement.hpp"
#include "core/url_hash.hpp"
#include "trace/trace.hpp"
#include "util/rate.hpp"

namespace cachecloud::core {

struct CloudConfig {
  std::uint32_t num_caches = 10;
  std::uint64_t per_cache_capacity_bytes = 0;  // 0 = unlimited disk
  std::string replacement = "lru";

  // When false, the caches do not cooperate at all — the paper's "edge
  // network without cooperation" baseline (§4): every local miss goes
  // straight to the origin server, and the origin must push each update to
  // every holder individually instead of sending one message per cloud.
  bool cooperative = true;

  enum class Hashing { Static, Consistent, Dynamic };
  Hashing hashing = Hashing::Dynamic;
  // Dynamic hashing parameters (§2.2-2.3).
  std::uint32_t ring_size = 2;
  std::uint32_t irh_gen = 1000;
  bool track_per_irh = true;
  double cycle_sec = 3600.0;
  // Consistent hashing parameter.
  std::uint32_t virtual_nodes = 32;

  std::string placement = "utility";  // adhoc | beacon | utility
  UtilityConfig utility;

  // Consistency mechanism. Push is the paper's: the origin sends the new
  // version to the beacon point which fans it out. Ttl is the weaker
  // mechanism of earlier cooperative-cache work (§5): copies are served
  // without contact for `ttl_sec` after their last validation, then
  // revalidated at the origin — cheap, but stale copies can be served.
  enum class Consistency { Push, Ttl };
  Consistency consistency = Consistency::Push;
  double ttl_sec = 300.0;

  // Half-life of the EWMA request/update monitors feeding the utility
  // function.
  double monitor_half_life_sec = 900.0;
  // Per-cache capability (Cp); empty means all 1.0.
  std::vector<double> capabilities;
};

enum class RequestKind { LocalHit, CloudHit, GroupMiss };

struct RequestOutcome {
  RequestKind kind = RequestKind::LocalHit;
  CacheId requester = 0;
  CacheId beacon = 0;                 // resolved beacon (not set on local hit)
  std::uint32_t discovery_hops = 0;   // 0 on local hit
  std::optional<CacheId> source;      // holder served from, on cloud hit
  std::uint32_t holders_seen = 0;     // holder-list length in the lookup reply
  std::uint64_t doc_bytes = 0;
  bool stored = false;                // requester kept the copy
  bool replicated_to_beacon = false;  // beacon-point policy push after miss
  // TTL consistency only:
  bool stale_served = false;   // copy served although the origin has newer
  bool revalidated = false;    // origin contacted; copy was still current
  bool refetched = false;      // origin contacted; copy was stale, refetched
  std::vector<DocId> evicted_at_requester;
  std::vector<DocId> evicted_at_beacon;
};

struct UpdateOutcome {
  CacheId beacon = 0;
  // False under TTL consistency: the origin records the new version but
  // sends nothing; caches discover it on revalidation.
  bool pushed = true;
  std::uint32_t discovery_hops = 1;
  std::vector<CacheId> holders;  // caches the new version was pushed to
  // Holders that re-evaluated the copy's utility on this update and dropped
  // it instead of refreshing (utility placement only).
  std::vector<CacheId> dropped;
  std::uint64_t doc_bytes = 0;
};

struct CycleOutcome {
  std::vector<OwnershipMove> moves;
  std::size_t records_transferred = 0;  // lookup records handed over
};

class CacheCloud {
 public:
  // The trace supplies the document catalog (URLs and sizes); its events are
  // not consumed here.
  CacheCloud(const CloudConfig& config, const trace::Trace& trace);

  RequestOutcome handle_request(CacheId at, DocId doc, double now);
  UpdateOutcome handle_update(DocId doc, double now);

  // Runs the sub-range determination when the cycle is due; returns the
  // outcome of the re-balance that ran, if any.
  std::optional<CycleOutcome> maybe_end_cycle(double now);
  CycleOutcome end_cycle_now();

  // Fails a cache: removes it from the assignment scheme and purges its
  // holder records. Requests can no longer be issued at it.
  std::vector<OwnershipMove> fail_cache(CacheId cache);
  [[nodiscard]] bool is_failed(CacheId cache) const {
    return failed_.at(cache);
  }

  [[nodiscard]] const CloudConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t num_caches() const noexcept {
    return config_.num_caches;
  }
  [[nodiscard]] const cache::DocumentStore& store(CacheId cache) const {
    return *stores_.at(cache);
  }
  [[nodiscard]] cache::DocumentStore& store(CacheId cache) {
    return *stores_.at(cache);
  }
  [[nodiscard]] const LookupDirectory& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] const BeaconAssigner& assigner() const noexcept {
    return *assigner_;
  }
  [[nodiscard]] const PlacementPolicy& placement() const noexcept {
    return *placement_;
  }
  [[nodiscard]] std::uint64_t doc_version(DocId doc) const {
    return versions_.at(doc);
  }
  [[nodiscard]] std::uint64_t doc_bytes(DocId doc) const {
    return sizes_.at(doc);
  }
  [[nodiscard]] const UrlHash& doc_hash(DocId doc) const {
    return hashes_.at(doc);
  }
  [[nodiscard]] CacheId beacon_of_doc(DocId doc) const {
    return assigner_->beacon_of(hashes_.at(doc)).beacon;
  }

  // Diagnostic: the utility breakdown the placement policy would see for
  // (cache, doc) right now.
  [[nodiscard]] UtilityBreakdown utility_of(CacheId cache, DocId doc,
                                            double now) const;

 private:
  [[nodiscard]] PlacementContext build_context(CacheId cache, DocId doc,
                                               double now,
                                               CacheId beacon) const;
  void note_eviction(CacheId cache, const std::vector<DocId>& evicted);
  [[nodiscard]] static std::uint64_t monitor_key(CacheId cache,
                                                 DocId doc) noexcept {
    return (static_cast<std::uint64_t>(cache) << 32) | doc;
  }

  CloudConfig config_;
  std::vector<std::unique_ptr<cache::DocumentStore>> stores_;
  std::unique_ptr<BeaconAssigner> assigner_;
  std::unique_ptr<PlacementPolicy> placement_;
  LookupDirectory directory_;

  std::vector<UrlHash> hashes_;         // per doc
  std::vector<std::uint64_t> sizes_;    // per doc
  std::vector<std::uint64_t> versions_; // per doc, origin-side truth
  std::vector<bool> failed_;

  // Monitors feeding the utility components.
  mutable std::unordered_map<std::uint64_t, util::RateEstimator>
      access_monitors_;  // (cache, doc) -> request rate
  std::vector<util::RateEstimator> update_monitors_;   // per doc
  std::vector<util::RateEstimator> request_monitors_;  // per cache, all docs

  double next_cycle_at_ = 0.0;
};

}  // namespace cachecloud::core
