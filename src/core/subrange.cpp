#include "core/subrange.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace cachecloud::core {
namespace {

void validate(std::span<const PointLoad> points, std::uint32_t irh_gen) {
  if (points.empty()) {
    throw std::invalid_argument("determine_subranges: no beacon points");
  }
  if (irh_gen < points.size()) {
    throw std::invalid_argument(
        "determine_subranges: irh_gen smaller than point count");
  }
  std::uint32_t expected_lo = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointLoad& p = points[i];
    if (p.capability <= 0.0) {
      throw std::invalid_argument("determine_subranges: capability <= 0");
    }
    if (p.cycle_load < 0.0) {
      throw std::invalid_argument("determine_subranges: negative load");
    }
    if (p.range.lo != expected_lo || p.range.hi < p.range.lo ||
        p.range.hi >= irh_gen) {
      throw std::invalid_argument(
          "determine_subranges: ranges do not partition [0, irh_gen) at point " +
          std::to_string(i));
    }
    if (!p.per_irh.empty() && p.per_irh.size() != p.range.length()) {
      throw std::invalid_argument(
          "determine_subranges: per_irh size mismatch at point " +
          std::to_string(i));
    }
    expected_lo = p.range.hi + 1;
  }
  if (expected_lo != irh_gen) {
    throw std::invalid_argument(
        "determine_subranges: ranges do not cover [0, irh_gen)");
  }
}

// Boundaries proportional to cumulative capability, each range non-empty.
std::vector<SubRange> capability_split(std::span<const double> capabilities,
                                       std::uint32_t irh_gen) {
  const std::size_t n = capabilities.size();
  double total_cap = 0.0;
  for (const double c : capabilities) total_cap += c;

  std::vector<SubRange> out(n);
  std::uint32_t next_lo = 0;
  double cap_acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cap_acc += capabilities[i];
    std::uint32_t hi;
    if (i + 1 == n) {
      hi = irh_gen - 1;
    } else {
      const auto ideal = static_cast<std::uint32_t>(
          std::round(static_cast<double>(irh_gen) * cap_acc / total_cap));
      const std::uint32_t min_hi = next_lo;                         // >= 1 value
      const std::uint32_t max_hi =
          irh_gen - 1 - static_cast<std::uint32_t>(n - 1 - i);      // leave room
      hi = std::clamp(ideal == 0 ? 0 : ideal - 1, min_hi, max_hi);
    }
    out[i] = SubRange{next_lo, hi};
    next_lo = hi + 1;
  }
  return out;
}

}  // namespace

std::vector<SubRange> initial_subranges(std::span<const double> capabilities,
                                        std::uint32_t irh_gen) {
  if (capabilities.empty()) {
    throw std::invalid_argument("initial_subranges: no beacon points");
  }
  if (irh_gen < capabilities.size()) {
    throw std::invalid_argument(
        "initial_subranges: irh_gen smaller than point count");
  }
  for (const double c : capabilities) {
    if (c <= 0.0) {
      throw std::invalid_argument("initial_subranges: capability <= 0");
    }
  }
  return capability_split(capabilities, irh_gen);
}

std::vector<SubRange> determine_subranges(std::span<const PointLoad> points,
                                          std::uint32_t irh_gen) {
  validate(points, irh_gen);
  const std::size_t n = points.size();

  // Reconstruct the per-IrH-value load vector over the whole ring, using
  // CIrHLd where available and the CAvgLoad uniform approximation otherwise.
  std::vector<double> load(irh_gen, 0.0);
  double total_load = 0.0;
  double total_cap = 0.0;
  for (const PointLoad& p : points) {
    total_cap += p.capability;
    total_load += p.cycle_load;
    if (!p.per_irh.empty()) {
      for (std::uint32_t k = 0; k < p.range.length(); ++k) {
        load[p.range.lo + k] = p.per_irh[k];
      }
    } else {
      const double avg =
          p.cycle_load / static_cast<double>(p.range.length());
      for (std::uint32_t k = p.range.lo; k <= p.range.hi; ++k) {
        load[k] = avg;
      }
    }
  }

  if (total_load <= 0.0) {
    // Nothing observed: fall back to the capability-proportional split.
    std::vector<double> caps(n);
    for (std::size_t i = 0; i < n; ++i) caps[i] = points[i].capability;
    return capability_split(caps, irh_gen);
  }

  // Walk the ring once. Point i's boundary lands where the cumulative load
  // first meets its cumulative fair share; the deviation is carried to the
  // next point, which matches the paper's surplus/deficit neighbour shifts.
  std::vector<SubRange> out(n);
  std::uint32_t next_lo = 0;
  double cum_load = 0.0;
  double cap_acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cap_acc += points[i].capability;
    if (i + 1 == n) {
      out[i] = SubRange{next_lo, irh_gen - 1};
      break;
    }
    const double target = total_load * cap_acc / total_cap;
    const std::uint32_t min_hi = next_lo;
    const std::uint32_t max_hi =
        irh_gen - 1 - static_cast<std::uint32_t>(n - 1 - i);

    std::uint32_t hi = min_hi;
    double cum = cum_load + load[hi];
    while (hi < max_hi && cum < target) {
      // Include the next value only if that brings us closer to the target
      // than stopping here (half-step rule keeps boundaries unbiased).
      const double with_next = cum + load[hi + 1];
      if (std::abs(with_next - target) <= std::abs(cum - target)) {
        ++hi;
        cum = with_next;
      } else {
        break;
      }
    }
    out[i] = SubRange{next_lo, hi};
    next_lo = hi + 1;
    cum_load = cum;
  }
  return out;
}

}  // namespace cachecloud::core
