// Lookup records: which caches of the cloud currently hold each document.
//
// Conceptually each beacon point maintains the records of the documents it
// is responsible for; the in-process implementation keeps one table for the
// whole cloud and derives ownership from the assigner. The distribution
// layer (src/node/) partitions the same structure physically.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace cachecloud::core {

using trace::CacheId;
using trace::DocId;

class LookupDirectory {
 public:
  struct Record {
    std::uint64_t version = 0;
    // Small sorted set; clouds have at most a few dozen caches.
    std::vector<CacheId> holders;
  };

  // Registers `cache` as a holder. Idempotent.
  void add_holder(DocId doc, CacheId cache);
  // Deregisters; removes the record entirely when it has no holders left
  // and version information is no longer interesting. Returns true if the
  // holder was present.
  bool remove_holder(DocId doc, CacheId cache);
  // Drops every record naming `cache` (cache failure). Returns the number
  // of records touched.
  std::size_t remove_cache(CacheId cache);

  void set_version(DocId doc, std::uint64_t version);

  [[nodiscard]] const Record* find(DocId doc) const;
  [[nodiscard]] std::size_t holder_count(DocId doc) const;
  [[nodiscard]] bool is_holder(DocId doc, CacheId cache) const;
  [[nodiscard]] std::size_t record_count() const noexcept {
    return records_.size();
  }

 private:
  std::unordered_map<DocId, Record> records_;
};

}  // namespace cachecloud::core
