// A beacon ring: the unit of dynamic load balancing (§2.2-2.3).
//
// Each ring owns a disjoint slice of the document space (documents whose
// ring hash equals this ring's id) and divides its intra-ring hash space
// among its member beacon points. Load observed during a cycle drives the
// next cycle's sub-range assignment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/subrange.hpp"
#include "trace/trace.hpp"

namespace cachecloud::core {

using trace::CacheId;

class BeaconRing {
 public:
  struct Config {
    std::uint32_t irh_gen = 1000;
    // Track per-IrH-value load (CIrHLd). When false, re-balancing uses the
    // CAvgLoad uniform approximation (paper Fig 2-C).
    bool track_per_irh = true;
  };

  // members / capabilities: the beacon points in ring order. Capabilities
  // must be positive.
  BeaconRing(std::vector<CacheId> members, std::vector<double> capabilities,
             const Config& config);

  // The beacon point currently owning this IrH value.
  [[nodiscard]] CacheId resolve(std::uint32_t irh) const;
  [[nodiscard]] std::size_t resolve_index(std::uint32_t irh) const;

  // Accounts one unit (or `amount`) of lookup/update work for the IrH value.
  void record_load(std::uint32_t irh, double amount = 1.0);

  // A contiguous IrH interval whose ownership changed in a re-balance; the
  // new owner must obtain the lookup records of these values from the old
  // owner ("Beacon points that have been assigned new IrH values obtain
  // lookup records of the documents belonging to the new IrH values from
  // their current beacon points").
  struct Move {
    CacheId from = 0;
    CacheId to = 0;
    SubRange values;
  };

  // Ends the current cycle: computes next-cycle sub-ranges from the observed
  // loads, clears the accumulators, and reports the ownership moves.
  std::vector<Move> rebalance();

  // Failure handling: removes a member; its sub-range merges into the ring
  // neighbour (predecessor if any, else successor). Returns the moves.
  // Throws std::invalid_argument if the cache is not a member or it is the
  // last member.
  std::vector<Move> remove_member(CacheId cache);

  // Adds a member at the end of the ring order with the given capability.
  // It receives a slice of the currently largest sub-range.
  std::vector<Move> add_member(CacheId cache, double capability);

  [[nodiscard]] const std::vector<CacheId>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] const std::vector<SubRange>& ranges() const noexcept {
    return ranges_;
  }
  [[nodiscard]] const std::vector<double>& capabilities() const noexcept {
    return capabilities_;
  }
  // Load accumulated by each member in the current (unfinished) cycle.
  [[nodiscard]] const std::vector<double>& cycle_loads() const noexcept {
    return cycle_loads_;
  }
  [[nodiscard]] std::uint32_t irh_gen() const noexcept { return config_.irh_gen; }
  [[nodiscard]] bool tracks_per_irh() const noexcept {
    return config_.track_per_irh;
  }

 private:
  [[nodiscard]] std::vector<Move> diff_ranges(
      const std::vector<SubRange>& before, const std::vector<SubRange>& after,
      const std::vector<CacheId>& before_members) const;
  void reset_cycle();

  Config config_;
  std::vector<CacheId> members_;
  std::vector<double> capabilities_;
  std::vector<SubRange> ranges_;
  std::vector<double> cycle_loads_;          // per member
  std::vector<double> irh_loads_;            // per IrH value (if tracked)
};

}  // namespace cachecloud::core
