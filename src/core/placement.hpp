// Document placement policies (§3).
//
// On every miss the retrieving cache decides whether the fetched copy is
// worth keeping. The paper compares:
//   - ad hoc placement: store at every cache that saw a request;
//   - beacon-point placement: store only at the document's beacon point;
//   - utility-based placement: store iff a weighted benefit/cost score
//     exceeds a threshold. The four components are formulated in DESIGN.md
//     §3.4 (the paper defers the math to its technical report [11], which
//     is not publicly available).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/trace.hpp"

namespace cachecloud::core {

using trace::CacheId;
using trace::DocId;

// Everything a policy may consult, gathered by the cloud at miss time.
struct PlacementContext {
  CacheId cache = 0;
  DocId doc = 0;
  double now = 0.0;
  bool is_beacon = false;  // requesting cache is the document's beacon point

  double access_rate = 0.0;   // of this doc at this cache (1/s, EWMA)
  double update_rate = 0.0;   // of this doc at the origin (1/s, EWMA)
  double mean_access_rate_at_cache = 0.0;  // across docs cached here
  std::size_t cloud_copies = 0;            // current holders in the cloud
  // Expected residence time of a new copy at this cache (seconds;
  // +inf for unlimited disks): capacity / byte-churn rate.
  double residence_sec = 0.0;
};

struct UtilityConfig {
  // Weights of the four components; the paper sets each active component to
  // 1/(number of active components). A weight of 0 turns a component off.
  double w_consistency = 1.0 / 3.0;   // CMC
  double w_access_frequency = 1.0 / 3.0;  // AFC
  double w_availability = 1.0 / 3.0;  // DAC
  double w_disk_contention = 0.0;     // DsCC (off in the unlimited-disk runs)
  double threshold = 0.5;             // UtilThreshold
};

struct UtilityBreakdown {
  double cmc = 0.0;
  double afc = 0.0;
  double dac = 0.0;
  double dscc = 0.0;
  double utility = 0.0;  // weighted sum, normalized by the weight total
};

// Pure scoring function; exposed separately so tests can pin each
// component's behaviour.
[[nodiscard]] UtilityBreakdown compute_utility(const PlacementContext& ctx,
                                               const UtilityConfig& config);

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Should the requesting cache keep the copy it just retrieved?
  [[nodiscard]] virtual bool store_at_requester(
      const PlacementContext& ctx) = 0;

  // After a *group* miss (document fetched from the origin), should a copy
  // additionally be pushed to the document's beacon point? Only the
  // beacon-point policy wants this: it keeps exactly one copy per cloud, at
  // the beacon.
  [[nodiscard]] virtual bool replicate_to_beacon_on_group_miss() const {
    return false;
  }

  // When an update is pushed to a holder, should the holder keep (and
  // refresh) its copy, or drop it? Utility-based placement re-evaluates the
  // copy's worth at this point — an update is exactly the moment its
  // consistency-maintenance cost materializes — which is what lets the
  // fraction of stored documents track the update rate (paper Fig 7).
  // The other policies always keep.
  [[nodiscard]] virtual bool keep_on_update(const PlacementContext& ctx) {
    (void)ctx;
    return true;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

class AdHocPlacement final : public PlacementPolicy {
 public:
  bool store_at_requester(const PlacementContext&) override { return true; }
  [[nodiscard]] std::string name() const override { return "adhoc"; }
};

class BeaconPointPlacement final : public PlacementPolicy {
 public:
  bool store_at_requester(const PlacementContext& ctx) override {
    return ctx.is_beacon;
  }
  [[nodiscard]] bool replicate_to_beacon_on_group_miss() const override {
    return true;
  }
  [[nodiscard]] std::string name() const override { return "beacon"; }
};

class UtilityPlacement final : public PlacementPolicy {
 public:
  explicit UtilityPlacement(const UtilityConfig& config);

  bool store_at_requester(const PlacementContext& ctx) override;
  bool keep_on_update(const PlacementContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "utility"; }
  [[nodiscard]] const UtilityConfig& config() const noexcept { return config_; }

 private:
  UtilityConfig config_;
};

// Factory by name ("adhoc", "beacon", "utility").
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_placement(
    const std::string& name, const UtilityConfig& utility_config = {});

}  // namespace cachecloud::core
