#include "core/directory.hpp"

#include <algorithm>

namespace cachecloud::core {

void LookupDirectory::add_holder(DocId doc, CacheId cache) {
  Record& record = records_[doc];
  const auto it =
      std::lower_bound(record.holders.begin(), record.holders.end(), cache);
  if (it == record.holders.end() || *it != cache) {
    record.holders.insert(it, cache);
  }
}

bool LookupDirectory::remove_holder(DocId doc, CacheId cache) {
  const auto rec_it = records_.find(doc);
  if (rec_it == records_.end()) return false;
  auto& holders = rec_it->second.holders;
  const auto it = std::lower_bound(holders.begin(), holders.end(), cache);
  if (it == holders.end() || *it != cache) return false;
  holders.erase(it);
  if (holders.empty()) records_.erase(rec_it);
  return true;
}

std::size_t LookupDirectory::remove_cache(CacheId cache) {
  std::size_t touched = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    auto& holders = it->second.holders;
    const auto h =
        std::lower_bound(holders.begin(), holders.end(), cache);
    if (h != holders.end() && *h == cache) {
      holders.erase(h);
      ++touched;
    }
    if (holders.empty()) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  return touched;
}

void LookupDirectory::set_version(DocId doc, std::uint64_t version) {
  const auto it = records_.find(doc);
  if (it != records_.end()) {
    it->second.version = std::max(it->second.version, version);
  }
}

const LookupDirectory::Record* LookupDirectory::find(DocId doc) const {
  const auto it = records_.find(doc);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t LookupDirectory::holder_count(DocId doc) const {
  const Record* record = find(doc);
  return record ? record->holders.size() : 0;
}

bool LookupDirectory::is_holder(DocId doc, CacheId cache) const {
  const Record* record = find(doc);
  if (!record) return false;
  return std::binary_search(record->holders.begin(), record->holders.end(),
                            cache);
}

}  // namespace cachecloud::core
