#include "core/beacon_ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace cachecloud::core {

BeaconRing::BeaconRing(std::vector<CacheId> members,
                       std::vector<double> capabilities, const Config& config)
    : config_(config),
      members_(std::move(members)),
      capabilities_(std::move(capabilities)) {
  if (members_.empty()) {
    throw std::invalid_argument("BeaconRing: must have at least one member");
  }
  if (members_.size() != capabilities_.size()) {
    throw std::invalid_argument(
        "BeaconRing: members/capabilities size mismatch");
  }
  if (config_.irh_gen < members_.size()) {
    throw std::invalid_argument("BeaconRing: irh_gen smaller than ring size");
  }
  ranges_ = initial_subranges(capabilities_, config_.irh_gen);
  reset_cycle();
}

void BeaconRing::reset_cycle() {
  cycle_loads_.assign(members_.size(), 0.0);
  if (config_.track_per_irh) {
    irh_loads_.assign(config_.irh_gen, 0.0);
  } else {
    irh_loads_.clear();
  }
}

std::size_t BeaconRing::resolve_index(std::uint32_t irh) const {
  if (irh >= config_.irh_gen) {
    throw std::out_of_range("BeaconRing::resolve: irh out of range");
  }
  // Ranges are consecutive and sorted; binary-search the first range whose
  // hi >= irh. Ring sizes are small (2-10), but clouds may configure one big
  // ring, so keep it logarithmic.
  const auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), irh,
      [](const SubRange& r, std::uint32_t v) { return r.hi < v; });
  return static_cast<std::size_t>(it - ranges_.begin());
}

CacheId BeaconRing::resolve(std::uint32_t irh) const {
  return members_[resolve_index(irh)];
}

void BeaconRing::record_load(std::uint32_t irh, double amount) {
  const std::size_t idx = resolve_index(irh);
  cycle_loads_[idx] += amount;
  if (config_.track_per_irh) irh_loads_[irh] += amount;
}

std::vector<BeaconRing::Move> BeaconRing::diff_ranges(
    const std::vector<SubRange>& before, const std::vector<SubRange>& after,
    const std::vector<CacheId>& before_members) const {
  std::vector<Move> moves;
  std::size_t bi = 0;
  std::size_t ai = 0;
  std::uint32_t pos = 0;
  while (pos < config_.irh_gen) {
    while (before[bi].hi < pos) ++bi;
    while (after[ai].hi < pos) ++ai;
    const std::uint32_t span_hi = std::min(before[bi].hi, after[ai].hi);
    const CacheId old_owner = before_members[bi];
    const CacheId new_owner = members_[ai];
    if (old_owner != new_owner) {
      // Coalesce with the previous move when it is contiguous and has the
      // same endpoints.
      if (!moves.empty() && moves.back().from == old_owner &&
          moves.back().to == new_owner && moves.back().values.hi + 1 == pos) {
        moves.back().values.hi = span_hi;
      } else {
        moves.push_back(Move{old_owner, new_owner, SubRange{pos, span_hi}});
      }
    }
    pos = span_hi + 1;
  }
  return moves;
}

std::vector<BeaconRing::Move> BeaconRing::rebalance() {
  std::vector<PointLoad> points(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    points[i].capability = capabilities_[i];
    points[i].range = ranges_[i];
    points[i].cycle_load = cycle_loads_[i];
    if (config_.track_per_irh) {
      points[i].per_irh.assign(irh_loads_.begin() + ranges_[i].lo,
                               irh_loads_.begin() + ranges_[i].hi + 1);
    }
  }
  std::vector<SubRange> next = determine_subranges(points, config_.irh_gen);
  std::vector<Move> moves = diff_ranges(ranges_, next, members_);
  ranges_ = std::move(next);
  reset_cycle();
  return moves;
}

std::vector<BeaconRing::Move> BeaconRing::remove_member(CacheId cache) {
  const auto it = std::find(members_.begin(), members_.end(), cache);
  if (it == members_.end()) {
    throw std::invalid_argument("BeaconRing::remove_member: not a member");
  }
  if (members_.size() == 1) {
    throw std::invalid_argument(
        "BeaconRing::remove_member: cannot remove the last member");
  }
  const auto idx = static_cast<std::size_t>(it - members_.begin());
  const SubRange freed = ranges_[idx];
  // Merge into the predecessor when one exists, else the successor; both
  // keep the partition contiguous.
  const std::size_t heir = idx > 0 ? idx - 1 : idx + 1;
  const CacheId heir_cache = members_[heir];
  if (idx > 0) {
    ranges_[heir].hi = freed.hi;
  } else {
    ranges_[heir].lo = freed.lo;
  }

  members_.erase(members_.begin() + static_cast<std::ptrdiff_t>(idx));
  capabilities_.erase(capabilities_.begin() + static_cast<std::ptrdiff_t>(idx));
  ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(idx));

  // Loads of the failed member are lost with it; start a fresh cycle so the
  // next re-balance is not skewed by a half-observed cycle.
  reset_cycle();
  return {Move{cache, heir_cache, freed}};
}

std::vector<BeaconRing::Move> BeaconRing::add_member(CacheId cache,
                                                     double capability) {
  if (capability <= 0.0) {
    throw std::invalid_argument("BeaconRing::add_member: capability <= 0");
  }
  if (std::find(members_.begin(), members_.end(), cache) != members_.end()) {
    throw std::invalid_argument("BeaconRing::add_member: already a member");
  }
  // Split the widest sub-range; the newcomer takes its upper half and sits
  // directly after the donor in ring order, keeping ranges consecutive.
  std::size_t widest = 0;
  for (std::size_t i = 1; i < ranges_.size(); ++i) {
    if (ranges_[i].length() > ranges_[widest].length()) widest = i;
  }
  if (ranges_[widest].length() < 2) {
    throw std::invalid_argument(
        "BeaconRing::add_member: no sub-range left to split");
  }
  const SubRange donor = ranges_[widest];
  const std::uint32_t mid = donor.lo + donor.length() / 2;
  ranges_[widest] = SubRange{donor.lo, mid - 1};
  const SubRange taken{mid, donor.hi};
  const CacheId donor_cache = members_[widest];

  const auto pos = static_cast<std::ptrdiff_t>(widest) + 1;
  members_.insert(members_.begin() + pos, cache);
  capabilities_.insert(capabilities_.begin() + pos, capability);
  ranges_.insert(ranges_.begin() + pos, taken);
  reset_cycle();
  return {Move{donor_cache, cache, taken}};
}

}  // namespace cachecloud::core
