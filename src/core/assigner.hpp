// Beacon-point assignment schemes (§2.1-2.2).
//
// Three ways to decide which cache in a cloud is the beacon point of a
// document:
//   - StaticHashAssigner: random hash of the URL onto the cache list — the
//     paper's "static hashing" baseline;
//   - ConsistentHashAssigner: caches and URLs on a hash circle, document
//     owned by its successor — the consistent-hashing baseline, whose
//     *distributed* beacon discovery costs O(log n) hops;
//   - DynamicHashAssigner: the paper's contribution — beacon rings with
//     periodically re-balanced intra-ring sub-ranges.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/beacon_ring.hpp"
#include "core/url_hash.hpp"

namespace cachecloud::core {

struct BeaconTarget {
  CacheId beacon = 0;
  // Network hops a cache (or the origin) spends discovering the beacon
  // point. Direct-mapping schemes resolve in 1 hop; distributed successor
  // lookup on the consistent-hash circle takes O(log n).
  std::uint32_t discovery_hops = 1;
};

// A contiguous block of document ownership that moved between two caches —
// the new owner must fetch the corresponding lookup records.
struct OwnershipMove {
  CacheId from = 0;
  CacheId to = 0;
  std::uint32_t ring = 0;  // beacon ring id; 0 for non-ring schemes
  SubRange values;         // IrH values whose ownership moved
};

class BeaconAssigner {
 public:
  virtual ~BeaconAssigner() = default;

  [[nodiscard]] virtual BeaconTarget beacon_of(const UrlHash& hash) const = 0;

  // Accounts lookup/update work against the scheme's balancing state.
  // No-op for schemes without feedback.
  virtual void record_load(const UrlHash& hash, double amount) {
    (void)hash; (void)amount;
  }

  // Ends a balancing cycle; returns ownership moves (empty for schemes that
  // never move ownership).
  virtual std::vector<OwnershipMove> end_cycle() { return {}; }

  // Removes a failed cache from the scheme. Returns the ownership moves the
  // scheme can enumerate (static hashing remaps globally and returns empty).
  virtual std::vector<OwnershipMove> remove_cache(CacheId cache) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

class StaticHashAssigner final : public BeaconAssigner {
 public:
  explicit StaticHashAssigner(std::vector<CacheId> caches);

  [[nodiscard]] BeaconTarget beacon_of(const UrlHash& hash) const override;
  std::vector<OwnershipMove> remove_cache(CacheId cache) override;
  [[nodiscard]] std::string name() const override { return "static"; }

 private:
  std::vector<CacheId> caches_;
};

class ConsistentHashAssigner final : public BeaconAssigner {
 public:
  // virtual_nodes: circle points per cache (Karger-style replication).
  ConsistentHashAssigner(std::vector<CacheId> caches,
                         std::uint32_t virtual_nodes = 32);

  [[nodiscard]] BeaconTarget beacon_of(const UrlHash& hash) const override;
  std::vector<OwnershipMove> remove_cache(CacheId cache) override;
  [[nodiscard]] std::string name() const override { return "consistent"; }

  [[nodiscard]] std::size_t circle_size() const noexcept {
    return circle_.size();
  }

 private:
  void rebuild_hops();

  struct Point {
    std::uint64_t position;
    CacheId cache;
  };
  std::vector<Point> circle_;  // sorted by position
  std::size_t num_caches_;
  std::uint32_t virtual_nodes_;
  std::uint32_t discovery_hops_ = 1;
};

class DynamicHashAssigner final : public BeaconAssigner {
 public:
  struct Config {
    std::uint32_t ring_size = 2;  // beacon points per ring (>= 1)
    std::uint32_t irh_gen = 1000;
    bool track_per_irh = true;
  };

  // Caches are chunked into rings of `ring_size` in the given order; a
  // remainder smaller than ring_size joins the last ring.
  DynamicHashAssigner(const std::vector<CacheId>& caches,
                      const std::vector<double>& capabilities,
                      const Config& config);

  [[nodiscard]] BeaconTarget beacon_of(const UrlHash& hash) const override;
  void record_load(const UrlHash& hash, double amount) override;
  std::vector<OwnershipMove> end_cycle() override;
  std::vector<OwnershipMove> remove_cache(CacheId cache) override;
  [[nodiscard]] std::string name() const override { return "dynamic"; }

  [[nodiscard]] std::uint32_t num_rings() const noexcept {
    return static_cast<std::uint32_t>(rings_.size());
  }
  [[nodiscard]] const BeaconRing& ring(std::uint32_t i) const {
    return rings_.at(i);
  }

 private:
  std::vector<BeaconRing> rings_;
  Config config_;
};

}  // namespace cachecloud::core
