// Sub-range determination for one beacon ring (§2.3).
//
// Every cycle, a beacon ring re-divides the intra-ring hash space
// [0, IrHGen) into consecutive non-overlapping sub-ranges — one per beacon
// point — so that each point's expected load in the next cycle is
// proportional to its capability. Points with a load surplus shed trailing
// IrH values to their ring successor; points with a deficit acquire leading
// values from it. Walking the points in ring order while tracking the
// cumulative fair share implements exactly that neighbour-shifting scan.
//
// This is a pure function: it takes the observed loads and produces the new
// partition, so it can be property-tested exhaustively.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cachecloud::core {

// Inclusive IrH interval [lo, hi].
struct SubRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  [[nodiscard]] std::uint32_t length() const noexcept { return hi - lo + 1; }
  [[nodiscard]] bool contains(std::uint32_t irh) const noexcept {
    return irh >= lo && irh <= hi;
  }
  friend bool operator==(const SubRange&, const SubRange&) = default;
};

struct PointLoad {
  double capability = 1.0;  // Cp: relative power of the hosting machine
  SubRange range;           // current cycle's sub-range
  double cycle_load = 0.0;  // CAvgLoad: lookups+updates handled this cycle
  // Optional CIrHLd: load per IrH value of `range` (size == range.length()).
  // Empty means unavailable; the algorithm then approximates each value's
  // load by cycle_load / range.length() (the paper's Fig 2-C variant).
  std::vector<double> per_irh;
};

// Computes the sub-ranges for the next cycle.
//
// Preconditions (checked, std::invalid_argument):
//   - points is non-empty and its ranges partition [0, irh_gen) in order;
//   - capabilities are positive; loads are non-negative;
//   - per_irh, when present, has exactly range.length() entries;
//   - irh_gen >= points.size() (every point must receive >= 1 value).
//
// Postconditions (tested): the result partitions [0, irh_gen) in order with
// non-empty ranges; if total load is zero, ranges are proportional to
// capability.
[[nodiscard]] std::vector<SubRange> determine_subranges(
    std::span<const PointLoad> points, std::uint32_t irh_gen);

// Equal split of [0, irh_gen) used for cycle 0, weighted by capability.
[[nodiscard]] std::vector<SubRange> initial_subranges(
    std::span<const double> capabilities, std::uint32_t irh_gen);

}  // namespace cachecloud::core
