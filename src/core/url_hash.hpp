// Document-to-hash-value mapping (§2.2).
//
// The paper derives both hash coordinates of a document from the MD5 digest
// of its URL: the *beacon ring* id (`MD5(url) mod R`) and the *intra-ring
// hash value* IrH (`MD5(url) mod IrHGen`). We take the two values from
// different 64-bit words of the digest so they are statistically
// independent even when R divides IrHGen.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/md5.hpp"

namespace cachecloud::core {

struct UrlHash {
  std::uint64_t ring_word = 0;  // drives beacon-ring selection
  std::uint64_t irh_word = 0;   // drives the intra-ring hash value

  [[nodiscard]] std::uint32_t ring(std::uint32_t num_rings) const noexcept {
    return static_cast<std::uint32_t>(ring_word % num_rings);
  }
  [[nodiscard]] std::uint32_t irh(std::uint32_t irh_gen) const noexcept {
    return static_cast<std::uint32_t>(irh_word % irh_gen);
  }
};

[[nodiscard]] inline UrlHash hash_url(std::string_view url) noexcept {
  const util::Md5Digest digest = util::md5(url);
  return UrlHash{digest.word64(0), digest.word64(1)};
}

}  // namespace cachecloud::core
