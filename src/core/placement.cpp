#include "core/placement.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cachecloud::core {
namespace {

// Guarded ratio a / (a + b) that degrades to 0.5 ("no evidence either way")
// when both terms vanish, and handles infinities: inf/(inf+x) -> 1,
// x/(x+inf) -> 0, inf/(inf+inf) -> 0.5.
double ratio(double a, double b) noexcept {
  const bool a_inf = std::isinf(a);
  const bool b_inf = std::isinf(b);
  if (a_inf && b_inf) return 0.5;
  if (a_inf) return 1.0;
  if (b_inf) return 0.0;
  const double total = a + b;
  return total > 0.0 ? a / total : 0.5;
}

}  // namespace

UtilityBreakdown compute_utility(const PlacementContext& ctx,
                                 const UtilityConfig& config) {
  UtilityBreakdown out;

  // CMC: the copy pays for itself when it is read more often than it is
  // invalidated; frequent updates mean frequent consistency pushes.
  out.cmc = ratio(ctx.access_rate, ctx.update_rate);

  // AFC: how hot this document is relative to what the cache already holds.
  out.afc = ratio(ctx.access_rate, ctx.mean_access_rate_at_cache);

  // DAC: marginal availability gain of one more copy in the cloud.
  out.dac = 1.0 / (1.0 + static_cast<double>(ctx.cloud_copies));

  // DsCC: will the new copy live long enough to be used again? Under disk
  // contention the copy's expected residence (disk ÷ churn rate) is
  // compared with its expected re-access interval (1/access-rate): a copy
  // likely to be evicted before its next access only churns the disk and
  // displaces more valuable documents. Unlimited disks (residence = +inf)
  // have no contention and score 1.
  const double reaccess_sec = ctx.access_rate > 0.0
                                  ? 1.0 / ctx.access_rate
                                  : std::numeric_limits<double>::infinity();
  out.dscc = ratio(ctx.residence_sec, reaccess_sec);

  const double weight_total = config.w_consistency +
                              config.w_access_frequency +
                              config.w_availability + config.w_disk_contention;
  if (weight_total <= 0.0) {
    throw std::invalid_argument("compute_utility: all weights are zero");
  }
  out.utility = (config.w_consistency * out.cmc +
                 config.w_access_frequency * out.afc +
                 config.w_availability * out.dac +
                 config.w_disk_contention * out.dscc) /
                weight_total;
  return out;
}

UtilityPlacement::UtilityPlacement(const UtilityConfig& config)
    : config_(config) {
  const double total = config.w_consistency + config.w_access_frequency +
                       config.w_availability + config.w_disk_contention;
  if (total <= 0.0) {
    throw std::invalid_argument("UtilityPlacement: all weights are zero");
  }
  if (config.threshold < 0.0 || config.threshold > 1.0) {
    throw std::invalid_argument("UtilityPlacement: threshold outside [0,1]");
  }
}

bool UtilityPlacement::store_at_requester(const PlacementContext& ctx) {
  return compute_utility(ctx, config_).utility > config_.threshold;
}

bool UtilityPlacement::keep_on_update(const PlacementContext& ctx) {
  return compute_utility(ctx, config_).utility > config_.threshold;
}

std::unique_ptr<PlacementPolicy> make_placement(
    const std::string& name, const UtilityConfig& utility_config) {
  if (name == "adhoc") return std::make_unique<AdHocPlacement>();
  if (name == "beacon") return std::make_unique<BeaconPointPlacement>();
  if (name == "utility") return std::make_unique<UtilityPlacement>(utility_config);
  throw std::invalid_argument("unknown placement policy: " + name);
}

}  // namespace cachecloud::core
