#include "core/assigner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hash.hpp"

namespace cachecloud::core {
namespace {

std::uint32_t log2_hops(std::size_t n) noexcept {
  std::uint32_t hops = 1;
  while ((std::size_t{1} << hops) < n) ++hops;
  return std::max<std::uint32_t>(hops, 1);
}

}  // namespace

// ------------------------------------------------------------- static

StaticHashAssigner::StaticHashAssigner(std::vector<CacheId> caches)
    : caches_(std::move(caches)) {
  if (caches_.empty()) {
    throw std::invalid_argument("StaticHashAssigner: no caches");
  }
}

BeaconTarget StaticHashAssigner::beacon_of(const UrlHash& hash) const {
  // "hash the document's URL to one of the edge caches" — one modulo, one
  // direct hop.
  return BeaconTarget{caches_[hash.irh_word % caches_.size()], 1};
}

std::vector<OwnershipMove> StaticHashAssigner::remove_cache(CacheId cache) {
  const auto it = std::find(caches_.begin(), caches_.end(), cache);
  if (it == caches_.end()) {
    throw std::invalid_argument("StaticHashAssigner: unknown cache");
  }
  if (caches_.size() == 1) {
    throw std::invalid_argument("StaticHashAssigner: cannot remove last cache");
  }
  caches_.erase(it);
  // The modulus changed: almost every document's beacon moved. The scheme
  // cannot enumerate the moves compactly — this is exactly its documented
  // resilience weakness.
  return {};
}

// --------------------------------------------------------- consistent

ConsistentHashAssigner::ConsistentHashAssigner(std::vector<CacheId> caches,
                                               std::uint32_t virtual_nodes)
    : num_caches_(caches.size()), virtual_nodes_(virtual_nodes) {
  if (caches.empty()) {
    throw std::invalid_argument("ConsistentHashAssigner: no caches");
  }
  if (virtual_nodes_ == 0) {
    throw std::invalid_argument("ConsistentHashAssigner: virtual_nodes == 0");
  }
  circle_.reserve(caches.size() * virtual_nodes_);
  for (const CacheId cache : caches) {
    for (std::uint32_t v = 0; v < virtual_nodes_; ++v) {
      const std::uint64_t position = util::mix64(
          util::hash_combine(static_cast<std::uint64_t>(cache) + 1, v));
      circle_.push_back(Point{position, cache});
    }
  }
  std::sort(circle_.begin(), circle_.end(),
            [](const Point& a, const Point& b) {
              return a.position < b.position;
            });
  rebuild_hops();
}

void ConsistentHashAssigner::rebuild_hops() {
  // Distributed successor lookup (finger-table walk a la Chord): O(log n)
  // hops on average. This is the "might take up to log(n) timesteps" cost
  // §2.1 attributes to consistent hashing.
  discovery_hops_ = log2_hops(num_caches_);
}

BeaconTarget ConsistentHashAssigner::beacon_of(const UrlHash& hash) const {
  const std::uint64_t position = hash.irh_word;
  auto it = std::lower_bound(circle_.begin(), circle_.end(), position,
                             [](const Point& p, std::uint64_t v) {
                               return p.position < v;
                             });
  if (it == circle_.end()) it = circle_.begin();  // wrap around
  return BeaconTarget{it->cache, discovery_hops_};
}

std::vector<OwnershipMove> ConsistentHashAssigner::remove_cache(CacheId cache) {
  const std::size_t before = circle_.size();
  std::erase_if(circle_, [cache](const Point& p) { return p.cache == cache; });
  if (circle_.size() == before) {
    throw std::invalid_argument("ConsistentHashAssigner: unknown cache");
  }
  if (circle_.empty()) {
    throw std::invalid_argument(
        "ConsistentHashAssigner: cannot remove last cache");
  }
  --num_caches_;
  rebuild_hops();
  // Ownership moves only to circle successors; affected documents are those
  // of the removed arcs. Enumerating them needs the document set, which the
  // assigner does not hold; the cloud handles this via its directory.
  return {};
}

// ------------------------------------------------------------ dynamic

DynamicHashAssigner::DynamicHashAssigner(
    const std::vector<CacheId>& caches, const std::vector<double>& capabilities,
    const Config& config)
    : config_(config) {
  if (caches.empty()) {
    throw std::invalid_argument("DynamicHashAssigner: no caches");
  }
  if (caches.size() != capabilities.size()) {
    throw std::invalid_argument(
        "DynamicHashAssigner: caches/capabilities size mismatch");
  }
  if (config_.ring_size == 0) {
    throw std::invalid_argument("DynamicHashAssigner: ring_size == 0");
  }

  const BeaconRing::Config ring_config{config_.irh_gen, config_.track_per_irh};
  std::size_t i = 0;
  while (i < caches.size()) {
    std::size_t end = std::min(i + config_.ring_size, caches.size());
    // A trailing remainder smaller than ring_size joins the last full ring
    // instead of forming an undersized one.
    const std::size_t remaining_after = caches.size() - end;
    if (remaining_after > 0 && remaining_after < config_.ring_size) {
      end = caches.size();
    }
    rings_.emplace_back(
        std::vector<CacheId>(caches.begin() + static_cast<std::ptrdiff_t>(i),
                             caches.begin() + static_cast<std::ptrdiff_t>(end)),
        std::vector<double>(
            capabilities.begin() + static_cast<std::ptrdiff_t>(i),
            capabilities.begin() + static_cast<std::ptrdiff_t>(end)),
        ring_config);
    i = end;
  }
}

BeaconTarget DynamicHashAssigner::beacon_of(const UrlHash& hash) const {
  const std::uint32_t ring_id = hash.ring(num_rings());
  const std::uint32_t irh = hash.irh(config_.irh_gen);
  // Two-step resolution, both local table walks: one direct hop.
  return BeaconTarget{rings_[ring_id].resolve(irh), 1};
}

void DynamicHashAssigner::record_load(const UrlHash& hash, double amount) {
  rings_[hash.ring(num_rings())].record_load(hash.irh(config_.irh_gen),
                                             amount);
}

std::vector<OwnershipMove> DynamicHashAssigner::end_cycle() {
  std::vector<OwnershipMove> moves;
  for (std::uint32_t r = 0; r < num_rings(); ++r) {
    for (const BeaconRing::Move& m : rings_[r].rebalance()) {
      moves.push_back(OwnershipMove{m.from, m.to, r, m.values});
    }
  }
  return moves;
}

std::vector<OwnershipMove> DynamicHashAssigner::remove_cache(CacheId cache) {
  for (std::uint32_t r = 0; r < num_rings(); ++r) {
    const auto& members = rings_[r].members();
    if (std::find(members.begin(), members.end(), cache) != members.end()) {
      std::vector<OwnershipMove> moves;
      for (const BeaconRing::Move& m : rings_[r].remove_member(cache)) {
        moves.push_back(OwnershipMove{m.from, m.to, r, m.values});
      }
      return moves;
    }
  }
  throw std::invalid_argument("DynamicHashAssigner: unknown cache");
}

}  // namespace cachecloud::core
