#include "core/cloud.hpp"

#include <stdexcept>

namespace cachecloud::core {
namespace {

std::unique_ptr<BeaconAssigner> make_assigner(const CloudConfig& config,
                                              const std::vector<CacheId>& ids,
                                              const std::vector<double>& caps) {
  switch (config.hashing) {
    case CloudConfig::Hashing::Static:
      return std::make_unique<StaticHashAssigner>(ids);
    case CloudConfig::Hashing::Consistent:
      return std::make_unique<ConsistentHashAssigner>(ids,
                                                      config.virtual_nodes);
    case CloudConfig::Hashing::Dynamic: {
      DynamicHashAssigner::Config dyn;
      dyn.ring_size = config.ring_size;
      dyn.irh_gen = config.irh_gen;
      dyn.track_per_irh = config.track_per_irh;
      return std::make_unique<DynamicHashAssigner>(ids, caps, dyn);
    }
  }
  throw std::invalid_argument("CacheCloud: unknown hashing scheme");
}

}  // namespace

CacheCloud::CacheCloud(const CloudConfig& config, const trace::Trace& trace)
    : config_(config) {
  if (config_.num_caches == 0) {
    throw std::invalid_argument("CacheCloud: num_caches must be > 0");
  }
  std::vector<double> caps = config_.capabilities;
  if (caps.empty()) {
    caps.assign(config_.num_caches, 1.0);
  } else if (caps.size() != config_.num_caches) {
    throw std::invalid_argument(
        "CacheCloud: capabilities size must match num_caches");
  }
  config_.capabilities = caps;

  std::vector<CacheId> ids(config_.num_caches);
  for (std::uint32_t i = 0; i < config_.num_caches; ++i) ids[i] = i;

  stores_.reserve(config_.num_caches);
  for (std::uint32_t i = 0; i < config_.num_caches; ++i) {
    stores_.push_back(std::make_unique<cache::DocumentStore>(
        config_.per_cache_capacity_bytes,
        cache::make_policy(config_.replacement)));
  }
  assigner_ = make_assigner(config_, ids, caps);
  placement_ = make_placement(config_.placement, config_.utility);

  const auto& catalog = trace.catalog();
  hashes_.reserve(catalog.size());
  sizes_.reserve(catalog.size());
  for (const auto& doc : catalog) {
    hashes_.push_back(hash_url(doc.url));
    sizes_.push_back(doc.size_bytes);
  }
  versions_.assign(catalog.size(), 1);
  failed_.assign(config_.num_caches, false);

  update_monitors_.assign(catalog.size(),
                          util::RateEstimator(config_.monitor_half_life_sec));
  request_monitors_.assign(config_.num_caches,
                           util::RateEstimator(config_.monitor_half_life_sec));
  next_cycle_at_ = config_.cycle_sec;
}

PlacementContext CacheCloud::build_context(CacheId cache, DocId doc,
                                           double now, CacheId beacon) const {
  PlacementContext ctx;
  ctx.cache = cache;
  ctx.doc = doc;
  ctx.now = now;
  ctx.is_beacon = cache == beacon;

  const auto monitor = access_monitors_.find(monitor_key(cache, doc));
  ctx.access_rate =
      monitor == access_monitors_.end() ? 0.0 : monitor->second.rate(now);
  ctx.update_rate = update_monitors_[doc].rate(now);

  const cache::DocumentStore& local = *stores_[cache];
  const double cache_rate = request_monitors_[cache].rate(now);
  ctx.mean_access_rate_at_cache =
      local.doc_count() > 0
          ? cache_rate / static_cast<double>(local.doc_count())
          : 0.0;

  const LookupDirectory::Record* record = directory_.find(doc);
  ctx.cloud_copies = record ? record->holders.size() : 0;
  ctx.residence_sec = local.expected_residence_sec(now);
  return ctx;
}

void CacheCloud::note_eviction(CacheId cache,
                               const std::vector<DocId>& evicted) {
  for (const DocId doc : evicted) {
    directory_.remove_holder(doc, cache);
  }
}

RequestOutcome CacheCloud::handle_request(CacheId at, DocId doc, double now) {
  if (at >= config_.num_caches) {
    throw std::out_of_range("CacheCloud::handle_request: bad cache id");
  }
  if (failed_[at]) {
    throw std::invalid_argument(
        "CacheCloud::handle_request: cache has failed");
  }
  if (doc >= hashes_.size()) {
    throw std::out_of_range("CacheCloud::handle_request: bad doc id");
  }

  // Monitors observe every request, hit or miss.
  access_monitors_
      .try_emplace(monitor_key(at, doc),
                   util::RateEstimator(config_.monitor_half_life_sec))
      .first->second.record(now);
  request_monitors_[at].record(now);

  RequestOutcome outcome;
  outcome.requester = at;
  outcome.doc_bytes = sizes_[doc];

  if (const auto local = stores_[at]->get(doc, now)) {
    if (config_.consistency == CloudConfig::Consistency::Ttl) {
      if (now - local->validated_at > config_.ttl_sec) {
        // Expired: revalidate with the origin.
        if (local->version >= versions_[doc]) {
          stores_[at]->touch_validated(doc, now);
          outcome.kind = RequestKind::LocalHit;
          outcome.revalidated = true;
          return outcome;
        }
        // Stale: refetch the current version from the origin.
        stores_[at]->apply_update(doc, versions_[doc], sizes_[doc], now);
        directory_.set_version(doc, versions_[doc]);
        outcome.kind = RequestKind::GroupMiss;
        outcome.refetched = true;
        return outcome;
      }
      // Within TTL: served blind — possibly stale.
      outcome.stale_served = local->version < versions_[doc];
    }
    outcome.kind = RequestKind::LocalHit;
    return outcome;
  }

  if (!config_.cooperative) {
    // No cooperation: the miss goes straight to the origin. The copy is
    // still registered so the origin can push updates to it (origin-side
    // holder registry, as CDN invalidation services keep).
    outcome.kind = RequestKind::GroupMiss;
    const PlacementContext ctx = build_context(at, doc, now, /*beacon=*/at);
    if (placement_->store_at_requester(ctx)) {
      cache::PutResult put =
          stores_[at]->put(doc, sizes_[doc], versions_[doc], now);
      if (put.stored) {
        outcome.stored = true;
        directory_.add_holder(doc, at);
        note_eviction(at, put.evicted);
        outcome.evicted_at_requester = std::move(put.evicted);
      }
    }
    return outcome;
  }

  // Local miss: resolve the beacon point and consult its lookup record.
  const UrlHash& hash = hashes_[doc];
  const BeaconTarget target = assigner_->beacon_of(hash);
  assigner_->record_load(hash, 1.0);
  outcome.beacon = target.beacon;
  outcome.discovery_hops = target.discovery_hops;

  const LookupDirectory::Record* record = directory_.find(doc);
  std::optional<CacheId> source;
  if (record) {
    outcome.holders_seen = static_cast<std::uint32_t>(record->holders.size());
    for (const CacheId holder : record->holders) {
      if (holder != at && !failed_[holder]) {
        source = holder;
        break;
      }
    }
  }

  std::uint64_t version = versions_[doc];
  if (source) {
    outcome.kind = RequestKind::CloudHit;
    outcome.source = source;
    // Serving the copy counts as an access at the holder. Under TTL
    // consistency the holder's copy — and hence the served version — may
    // lag the origin.
    const auto held = stores_[*source]->get(doc, now);
    if (config_.consistency == CloudConfig::Consistency::Ttl && held) {
      version = held->version;
      outcome.stale_served = version < versions_[doc];
    }
  } else {
    outcome.kind = RequestKind::GroupMiss;
  }

  // Placement decision for the retrieved copy.
  const PlacementContext ctx = build_context(at, doc, now, target.beacon);
  if (placement_->store_at_requester(ctx)) {
    cache::PutResult put = stores_[at]->put(doc, sizes_[doc], version, now);
    if (put.stored) {
      outcome.stored = true;
      directory_.add_holder(doc, at);
      directory_.set_version(doc, version);
      note_eviction(at, put.evicted);
      outcome.evicted_at_requester = std::move(put.evicted);
    }
  }

  // Beacon-point placement keeps the cloud's single copy at the beacon.
  if (outcome.kind == RequestKind::GroupMiss &&
      placement_->replicate_to_beacon_on_group_miss() &&
      target.beacon != at && !failed_[target.beacon] &&
      !stores_[target.beacon]->contains(doc)) {
    cache::PutResult put =
        stores_[target.beacon]->put(doc, sizes_[doc], version, now);
    if (put.stored) {
      outcome.replicated_to_beacon = true;
      directory_.add_holder(doc, target.beacon);
      directory_.set_version(doc, version);
      note_eviction(target.beacon, put.evicted);
      outcome.evicted_at_beacon = std::move(put.evicted);
    }
  }

  return outcome;
}

UpdateOutcome CacheCloud::handle_update(DocId doc, double now) {
  if (doc >= hashes_.size()) {
    throw std::out_of_range("CacheCloud::handle_update: bad doc id");
  }
  update_monitors_[doc].record(now);
  const std::uint64_t version = ++versions_[doc];

  if (config_.consistency == CloudConfig::Consistency::Ttl) {
    // TTL consistency: the origin records the new version and sends
    // nothing; caches keep serving their copies until expiry.
    UpdateOutcome outcome;
    outcome.pushed = false;
    outcome.discovery_hops = 0;
    outcome.doc_bytes = sizes_[doc];
    return outcome;
  }

  if (!config_.cooperative) {
    // The origin pushes the new version to every holder individually.
    UpdateOutcome outcome;
    outcome.discovery_hops = 0;  // no beacon involved
    outcome.doc_bytes = sizes_[doc];
    if (const LookupDirectory::Record* record = directory_.find(doc)) {
      const std::vector<CacheId> holders = record->holders;
      for (const CacheId holder : holders) {
        if (failed_[holder]) continue;
        std::vector<DocId> evicted;
        stores_[holder]->apply_update(doc, version, sizes_[doc], now,
                                      &evicted);
        note_eviction(holder, evicted);
        outcome.holders.push_back(holder);
      }
      directory_.set_version(doc, version);
    }
    return outcome;
  }

  const UrlHash& hash = hashes_[doc];
  const BeaconTarget target = assigner_->beacon_of(hash);

  UpdateOutcome outcome;
  outcome.beacon = target.beacon;
  outcome.discovery_hops = target.discovery_hops;
  outcome.doc_bytes = sizes_[doc];

  const LookupDirectory::Record* record = directory_.find(doc);
  if (record) {
    // Copy: apply_update may drop documents and mutate the directory.
    const std::vector<CacheId> holders = record->holders;
    for (const CacheId holder : holders) {
      if (failed_[holder]) continue;
      // The holder re-evaluates the copy's worth now that its consistency
      // cost has materialized; utility placement may decide to drop it
      // rather than pay for the refresh.
      PlacementContext ctx = build_context(holder, doc, now, target.beacon);
      if (ctx.cloud_copies > 0) --ctx.cloud_copies;  // exclude the copy itself
      if (!placement_->keep_on_update(ctx)) {
        stores_[holder]->erase(doc);
        directory_.remove_holder(doc, holder);
        outcome.dropped.push_back(holder);
        continue;
      }
      std::vector<DocId> evicted;
      stores_[holder]->apply_update(doc, version, sizes_[doc], now, &evicted);
      note_eviction(holder, evicted);
      outcome.holders.push_back(holder);
    }
    directory_.set_version(doc, version);
  }
  // The beacon point's update work is the notification it receives plus the
  // propagation fan-out to every holder ("load due to document lookup and
  // update propagation", §2.3) — a hot, widely replicated document costs its
  // beacon point more than a cold one.
  assigner_->record_load(
      hash, 1.0 + static_cast<double>(outcome.holders.size() +
                                      outcome.dropped.size()));
  return outcome;
}

std::optional<CycleOutcome> CacheCloud::maybe_end_cycle(double now) {
  if (!config_.cooperative) return std::nullopt;  // nothing to re-balance
  if (config_.cycle_sec <= 0.0 || now < next_cycle_at_) return std::nullopt;
  while (next_cycle_at_ <= now) next_cycle_at_ += config_.cycle_sec;
  return end_cycle_now();
}

CycleOutcome CacheCloud::end_cycle_now() {
  CycleOutcome outcome;
  outcome.moves = assigner_->end_cycle();
  if (outcome.moves.empty()) return outcome;

  // Count the lookup records that change owner: documents with a directory
  // record whose (ring, IrH) falls into a moved block.
  const auto* dynamic = dynamic_cast<const DynamicHashAssigner*>(assigner_.get());
  if (dynamic) {
    for (DocId doc = 0; doc < hashes_.size(); ++doc) {
      if (!directory_.find(doc)) continue;
      const std::uint32_t ring = hashes_[doc].ring(dynamic->num_rings());
      const std::uint32_t irh = hashes_[doc].irh(config_.irh_gen);
      for (const OwnershipMove& move : outcome.moves) {
        if (move.ring == ring && move.values.contains(irh)) {
          ++outcome.records_transferred;
          break;
        }
      }
    }
  }
  return outcome;
}

std::vector<OwnershipMove> CacheCloud::fail_cache(CacheId cache) {
  if (cache >= config_.num_caches) {
    throw std::out_of_range("CacheCloud::fail_cache: bad cache id");
  }
  if (failed_[cache]) {
    throw std::invalid_argument("CacheCloud::fail_cache: already failed");
  }
  failed_[cache] = true;
  directory_.remove_cache(cache);
  return assigner_->remove_cache(cache);
}

UtilityBreakdown CacheCloud::utility_of(CacheId cache, DocId doc,
                                        double now) const {
  const BeaconTarget target = assigner_->beacon_of(hashes_.at(doc));
  const PlacementContext ctx = build_context(cache, doc, now, target.beacon);
  UtilityConfig weights = config_.utility;
  return compute_utility(ctx, weights);
}

}  // namespace cachecloud::core
