// Failure drill: beacon-point failure and hashing-scheme resilience.
//
//   $ ./failover_drill
//
// Uses the discrete-event engine to interleave a request workload with a
// cache failure on one timeline, then compares how each beacon-assignment
// scheme re-maps ownership:
//   - dynamic hashing merges the failed point's sub-range into its ring
//     neighbour (bounded, enumerable ownership moves),
//   - consistent hashing moves only the failed node's arcs,
//   - static hashing re-maps almost the whole document space (mod N-1).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "sim/event_queue.hpp"
#include "trace/generators.hpp"

using namespace cachecloud;

namespace {

// Fraction of documents whose beacon changed when `victim` failed.
double remap_fraction(core::CloudConfig::Hashing hashing,
                      const trace::Trace& trace, trace::CacheId victim) {
  core::CloudConfig config;
  config.num_caches = 6;
  config.hashing = hashing;
  config.ring_size = 2;
  config.placement = "adhoc";
  core::CacheCloud cloud(config, trace);

  std::map<trace::DocId, trace::CacheId> before;
  for (trace::DocId d = 0; d < trace.num_docs(); ++d) {
    before[d] = cloud.beacon_of_doc(d);
  }
  cloud.fail_cache(victim);
  std::size_t moved = 0;
  std::size_t survivors = 0;
  for (trace::DocId d = 0; d < trace.num_docs(); ++d) {
    if (before[d] == victim) continue;  // had to move, any scheme
    ++survivors;
    if (cloud.beacon_of_doc(d) != before[d]) ++moved;
  }
  return static_cast<double>(moved) / static_cast<double>(survivors);
}

}  // namespace

int main() {
  trace::ZipfTraceConfig workload;
  workload.num_docs = 3'000;
  workload.num_caches = 6;
  workload.duration_sec = 600.0;
  workload.requests_per_sec = 30.0;
  workload.updates_per_minute = 30.0;
  const trace::Trace trace = trace::generate_zipf_trace(workload);

  // --- Part 1: live failure on the event timeline -------------------
  core::CloudConfig config;
  config.num_caches = 6;
  config.hashing = core::CloudConfig::Hashing::Dynamic;
  config.ring_size = 2;
  config.cycle_sec = 120.0;
  config.placement = "utility";
  core::CacheCloud cloud(config, trace);

  sim::EventQueue timeline;
  std::uint64_t served = 0, skipped = 0, misses = 0;
  const trace::CacheId victim = 3;
  bool victim_down = false;

  timeline.schedule_at(300.0, [&] {
    std::printf("t=300s: cache %u fails — its sub-range merges into the "
                "ring neighbour, holder records purged\n",
                victim);
    const auto moves = cloud.fail_cache(victim);
    for (const auto& move : moves) {
      std::printf("  ring %u: IrH [%u, %u] re-assigned %u -> %u\n", move.ring,
                  move.values.lo, move.values.hi, move.from, move.to);
    }
    victim_down = true;
  });
  for (const trace::Event& event : trace.events()) {
    timeline.schedule_at(event.time, [&, event] {
      cloud.maybe_end_cycle(event.time);
      if (event.type == trace::EventType::Update) {
        cloud.handle_update(event.doc, event.time);
        return;
      }
      if (victim_down && event.cache == victim) {
        ++skipped;  // this edge location is dark; clients go elsewhere
        return;
      }
      const auto outcome =
          cloud.handle_request(event.cache, event.doc, event.time);
      ++served;
      if (outcome.kind == core::RequestKind::GroupMiss) ++misses;
    });
  }
  timeline.run();
  std::printf("timeline done: %llu requests served, %llu at the dark site, "
              "%llu origin fetches — the cloud kept answering throughout\n\n",
              static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(skipped),
              static_cast<unsigned long long>(misses));

  // --- Part 2: ownership churn per hashing scheme --------------------
  std::printf("ownership moved among surviving documents when one of 6 "
              "caches fails:\n");
  const struct {
    const char* name;
    core::CloudConfig::Hashing hashing;
  } schemes[] = {
      {"dynamic (beacon rings)", core::CloudConfig::Hashing::Dynamic},
      {"consistent hashing", core::CloudConfig::Hashing::Consistent},
      {"static hashing", core::CloudConfig::Hashing::Static},
  };
  for (const auto& scheme : schemes) {
    std::printf("  %-24s %5.1f%%\n", scheme.name,
                100.0 * remap_fraction(scheme.hashing, trace, victim));
  }
  std::printf("\n(dynamic and consistent hashing move only the failed "
              "node's share; static hashing reshuffles nearly everything)\n");
  return 0;
}
