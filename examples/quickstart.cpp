// Quickstart: build a cache cloud, push a workload through it, inspect the
// outcome of the cooperative protocols.
//
//   $ ./quickstart
//
// Walks through the public API end to end:
//   1. synthesize a small Zipf trace (catalog + request/update events),
//   2. assemble a CacheCloud with dynamic hashing and utility placement,
//   3. drive it through the simulator,
//   4. read back hit rates, beacon-point load balance and network cost.
#include <cstdio>

#include "core/cloud.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

using namespace cachecloud;

int main() {
  // 1. A workload: 2,000 documents, 8 caches, 30 minutes, Zipf-0.9
  //    popularity, ~60 updates/minute at the origin.
  trace::ZipfTraceConfig workload;
  workload.num_docs = 2'000;
  workload.num_caches = 8;
  workload.duration_sec = 30.0 * 60.0;
  workload.requests_per_sec = 40.0;
  workload.updates_per_minute = 60.0;
  const trace::Trace trace = trace::generate_zipf_trace(workload);
  std::printf("workload: %zu docs, %zu requests, %zu updates\n",
              trace.num_docs(), trace.request_count(), trace.update_count());

  // 2. The cache cloud: 4 beacon rings x 2 beacon points, utility-based
  //    placement with the paper's defaults.
  core::CloudConfig config;
  config.num_caches = 8;
  config.hashing = core::CloudConfig::Hashing::Dynamic;
  config.ring_size = 2;
  config.irh_gen = 1000;
  config.cycle_sec = 300.0;  // re-balance every 5 minutes
  config.placement = "utility";
  core::CacheCloud cloud(config, trace);

  // 3. Run the trace through the cloud.
  const sim::SimResult result = sim::run_simulation(cloud, trace);

  // 4. What happened?
  std::printf("\n--- outcome ---\n%s", result.metrics.summary().c_str());
  std::printf("re-balance cycles run: %zu (lookup records handed over: %zu)\n",
              result.rebalances, result.records_transferred);

  // Poke at a single document: where is it, who is its beacon point, what
  // does the utility function think about one more copy?
  const trace::DocId doc = trace.events().front().doc;
  std::printf("\ndoc '%s' (%llu bytes):\n", trace.doc(doc).url.c_str(),
              static_cast<unsigned long long>(cloud.doc_bytes(doc)));
  std::printf("  beacon point: cache %u\n", cloud.beacon_of_doc(doc));
  std::printf("  copies in cloud: %zu\n",
              cloud.directory().holder_count(doc));
  const auto utility = cloud.utility_of(0, doc, trace.duration());
  std::printf("  utility of one more copy at cache 0: %.3f "
              "(cmc=%.2f afc=%.2f dac=%.2f)\n",
              utility.utility, utility.cmc, utility.afc, utility.dac);
  return 0;
}
