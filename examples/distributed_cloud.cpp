// Distributed cache cloud over real TCP sockets.
//
//   $ ./distributed_cloud [--caches=4] [--docs=60] [--requests=400]
//
// Boots an origin server and N edge cache nodes in one process (each with
// its own TCP server on 127.0.0.1), then exercises the actual wire
// protocol:
//   - client GETs at random caches (lookup -> fetch -> register),
//   - origin-driven update pushes through the beacon points,
//   - a coordinator-run sub-range re-balance with lookup-record hand-off.
#include <cstdio>
#include <string>

#include "node/cluster.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

using namespace cachecloud;
using node::CacheNode;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto caches = static_cast<std::uint32_t>(flags.get_int("caches", 4));
  const int docs = static_cast<int>(flags.get_int("docs", 60));
  const int requests = static_cast<int>(flags.get_int("requests", 400));

  node::NodeConfig config;
  config.num_caches = caches;
  config.ring_size = 2;
  config.irh_gen = 200;
  config.placement = "utility";
  node::Cluster cluster(config);
  std::printf("cluster up: origin on :%u, %u cache nodes\n",
              cluster.origin().port(), caches);

  for (int i = 0; i < docs; ++i) {
    cluster.origin().add_document("/site/page" + std::to_string(i) + ".html",
                                  256 + 32 * (i % 10));
  }

  // Phase 1: request traffic (Zipf-ish: low doc indices are hot).
  util::Rng rng(7);
  std::uint64_t local = 0, cloud_hits = 0, origin_fetches = 0;
  for (int i = 0; i < requests; ++i) {
    const int doc = static_cast<int>(
        static_cast<double>(docs) *
        (rng.next_double() * rng.next_double()));  // quadratic skew
    const auto at = static_cast<node::NodeId>(rng.next_below(caches));
    const CacheNode::GetResult result =
        cluster.cache(at).get("/site/page" + std::to_string(doc) + ".html");
    switch (result.source) {
      case CacheNode::GetResult::Source::Local: ++local; break;
      case CacheNode::GetResult::Source::Cloud: ++cloud_hits; break;
      case CacheNode::GetResult::Source::Origin: ++origin_fetches; break;
    }
  }
  std::printf("\nphase 1 — %d GETs: %llu local, %llu cloud, %llu origin "
              "(origin served %llu fetches total)\n",
              requests, static_cast<unsigned long long>(local),
              static_cast<unsigned long long>(cloud_hits),
              static_cast<unsigned long long>(origin_fetches),
              static_cast<unsigned long long>(
                  cluster.origin().origin_fetches()));

  // Phase 2: the origin publishes updates; one message per cloud, fanned
  // out by the beacon points to the holders.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      cluster.origin().publish_update("/site/page" + std::to_string(i) +
                                      ".html");
    }
  }
  const auto fresh = cluster.cache(0).get("/site/page0.html");
  std::printf("\nphase 2 — 15 update pushes published; cache 0 serves "
              "/site/page0.html at version %llu from %s\n",
              static_cast<unsigned long long>(fresh.version),
              fresh.source == CacheNode::GetResult::Source::Local ? "local"
                                                                  : "remote");

  // Phase 3: coordinator runs a sub-range determination cycle.
  const auto summary = cluster.origin().run_rebalance_cycle();
  std::printf("\nphase 3 — re-balance cycle: %zu rings changed, %zu record "
              "hand-offs issued\n",
              summary.rings_changed, summary.handoffs);

  // Everything still resolves after the re-balance.
  std::uint64_t post_origin = cluster.origin().origin_fetches();
  for (int i = 0; i < docs; ++i) {
    (void)cluster.cache(static_cast<node::NodeId>(i) % caches)
        .get("/site/page" + std::to_string(i) + ".html");
  }
  std::printf("post-rebalance sweep of all %d docs: %llu origin fetches "
              "(only documents whose copies the utility policy dropped "
              "earlier — the hand-off lost no lookup records)\n",
              docs,
              static_cast<unsigned long long>(
                  cluster.origin().origin_fetches() - post_origin));

  std::printf("\nper-node state:\n");
  for (node::NodeId id = 0; id < caches; ++id) {
    const CacheNode::Counters counters = cluster.cache(id).counters();
    std::printf("  node %u: %zu docs cached, %zu lookup records, "
                "%llu lookups served, %llu update pushes handled\n",
                id, cluster.cache(id).cached_docs(),
                cluster.cache(id).directory_records(),
                static_cast<unsigned long long>(counters.lookups_served),
                static_cast<unsigned long long>(counters.updates_served));
  }
  return 0;
}
