// A day in the life of an edge CDN serving a live sports site.
//
//   $ ./edge_cdn_day [--caches=10] [--scale=0.3] [--placement=utility]
//
// Replays a synthetic 24-hour Sydney-Olympics-style trace (diurnal request
// curve, persistent front pages, rotating live events, scoreboard update
// stream) through a cache cloud and prints an hour-by-hour operations view:
// hit rates, origin offload and network cost — the workload the paper's
// introduction motivates.
#include <cstdio>
#include <string>

#include "core/cloud.hpp"
#include "sim/metrics.hpp"
#include "sim/network_model.hpp"
#include "trace/generators.hpp"
#include "util/flags.hpp"

using namespace cachecloud;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto caches = static_cast<std::uint32_t>(flags.get_int("caches", 10));
  const double scale = flags.get_double("scale", 0.3);
  const std::string placement = flags.get_string("placement", "utility");

  trace::SydneyTraceConfig workload;
  workload.num_caches = caches;
  workload.peak_requests_per_sec = 15.0 * scale;
  const trace::Trace trace = trace::generate_sydney_trace(workload);
  std::printf("sydney-like day: %zu docs, %zu requests, %zu updates\n\n",
              trace.num_docs(), trace.request_count(), trace.update_count());

  core::CloudConfig config;
  config.num_caches = caches;
  config.hashing = core::CloudConfig::Hashing::Dynamic;
  config.ring_size = 2;
  config.cycle_sec = 3600.0;
  config.placement = placement;
  core::CacheCloud cloud(config, trace);

  const sim::NetworkModel net;
  std::printf("%-6s %10s %10s %10s %12s %12s\n", "hour", "requests",
              "local%", "cloud%", "origin", "MB moved");

  // Drive the trace hour by hour so we can print a rolling operations view.
  std::size_t event_index = 0;
  const auto& events = trace.events();
  for (int hour = 0; hour < 24; ++hour) {
    const double end = (hour + 1) * 3600.0;
    std::uint64_t requests = 0, local = 0, cloud_hits = 0, origin = 0;
    std::uint64_t bytes = 0;
    while (event_index < events.size() && events[event_index].time < end) {
      const trace::Event& event = events[event_index++];
      cloud.maybe_end_cycle(event.time);
      if (event.type == trace::EventType::Request) {
        const core::RequestOutcome outcome =
            cloud.handle_request(event.cache, event.doc, event.time);
        ++requests;
        switch (outcome.kind) {
          case core::RequestKind::LocalHit: ++local; break;
          case core::RequestKind::CloudHit:
            ++cloud_hits;
            bytes += net.document_wire_bytes(outcome.doc_bytes);
            break;
          case core::RequestKind::GroupMiss:
            ++origin;
            bytes += net.document_wire_bytes(outcome.doc_bytes);
            break;
        }
      } else {
        const core::UpdateOutcome outcome =
            cloud.handle_update(event.doc, event.time);
        if (!outcome.holders.empty()) {
          bytes += net.document_wire_bytes(outcome.doc_bytes) *
                   (1 + outcome.holders.size());
        }
      }
    }
    if (requests == 0) continue;
    std::printf("%-6d %10llu %9.1f%% %9.1f%% %12llu %12.1f\n", hour,
                static_cast<unsigned long long>(requests),
                100.0 * static_cast<double>(local) /
                    static_cast<double>(requests),
                100.0 * static_cast<double>(cloud_hits) /
                    static_cast<double>(requests),
                static_cast<unsigned long long>(origin),
                static_cast<double>(bytes) / 1e6);
  }

  std::printf("\nfinal state: ");
  std::uint64_t total_docs = 0;
  for (std::uint32_t c = 0; c < caches; ++c) {
    total_docs += cloud.store(c).doc_count();
  }
  std::printf("%llu cached copies across %u caches (%.1f%% of catalog each "
              "on average), %zu lookup records\n",
              static_cast<unsigned long long>(total_docs), caches,
              100.0 * static_cast<double>(total_docs) /
                  (static_cast<double>(caches) *
                   static_cast<double>(trace.num_docs())),
              cloud.directory().record_count());
  return 0;
}
