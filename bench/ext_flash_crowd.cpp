// Extension: flash-crowd adaptation — the "sudden changes in the request
// and update patterns" §1 says the dynamic scheme anticipates.
//
// A Zipf workload runs for 6 hours; between t=2h and t=4h a flash crowd
// sends 40% of all requests to one previously cold document. The bench
// prints the per-30-minute beacon-load imbalance for static and dynamic
// hashing: static stays distorted for the whole flash; dynamic re-balances
// away the distortion after one cycle and recovers after the crowd leaves.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace cachecloud;

namespace {

trace::Trace with_flash_crowd(const trace::Trace& base, trace::DocId target,
                              double start, double end, double fraction,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<trace::Event> events = base.events();
  for (trace::Event& event : events) {
    if (event.type == trace::EventType::Request && event.time >= start &&
        event.time < end && rng.next_bool(fraction)) {
      event.doc = target;
    }
  }
  trace::Trace out(base.catalog(), std::move(events));
  out.validate();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.5);

  bench::print_header(
      "Extension — flash crowd: adaptation of the dynamic hashing scheme",
      "§1/§2's adaptivity claim under a sudden request-pattern shift");

  trace::ZipfTraceConfig tc = bench::zipf_config(scale);
  const trace::Trace base = trace::generate_zipf_trace(tc);
  // A cold document becomes the flash target.
  const trace::DocId target = 20'000;
  const double flash_start = 2.0 * 3600.0;
  const double flash_end = 4.0 * 3600.0;
  const trace::Trace trace =
      with_flash_crowd(base, target, flash_start, flash_end, 0.40, 99);

  std::printf("window(min)  ");
  for (const char* name : {"static", "dynamic"}) std::printf("%12s", name);
  std::printf("   (max/mean beacon load per 30-min window)\n");

  constexpr double kWindow = 1800.0;
  const int windows = static_cast<int>(trace.duration() / kWindow) + 1;
  std::vector<std::vector<double>> series(2);

  for (int scheme = 0; scheme < 2; ++scheme) {
    core::CloudConfig config =
        bench::make_cloud_config(bench::CloudSetup{}, 10);
    config.placement = "beacon";
    config.hashing = scheme == 0 ? core::CloudConfig::Hashing::Static
                                 : core::CloudConfig::Hashing::Dynamic;
    core::CacheCloud cloud(config, trace);

    std::vector<std::vector<double>> window_loads(
        static_cast<std::size_t>(windows), std::vector<double>(10, 0.0));
    for (const trace::Event& event : trace.events()) {
      cloud.maybe_end_cycle(event.time);
      const auto w = static_cast<std::size_t>(event.time / kWindow);
      if (event.type == trace::EventType::Request) {
        const auto outcome =
            cloud.handle_request(event.cache, event.doc, event.time);
        if (outcome.kind != core::RequestKind::LocalHit) {
          window_loads[w][outcome.beacon] += 1.0;
        }
      } else {
        const auto outcome = cloud.handle_update(event.doc, event.time);
        window_loads[w][outcome.beacon] +=
            1.0 + static_cast<double>(outcome.holders.size());
      }
    }
    for (const auto& loads : window_loads) {
      series[static_cast<std::size_t>(scheme)].push_back(
          util::summarize(loads).max_to_mean_ratio());
    }
  }

  for (int w = 0; w < windows; ++w) {
    const double minute = w * 30.0;
    const bool in_flash = minute * 60.0 >= flash_start &&
                          minute * 60.0 < flash_end;
    std::printf("%8.0f     %12.2f%12.2f%s\n", minute, series[0][w],
                series[1][w], in_flash ? "   <- flash crowd active" : "");
  }
  std::printf("\n(static hashing stays distorted for the whole flash; "
              "dynamic hashing strips everything else off the hot value's "
              "beacon point at the next 1-hour cycle boundary — down to the "
              "floor a single unsplittable document imposes — and "
              "re-converges to ~1.1 after the crowd leaves)\n");
  return 0;
}
