// Ablation: beacon-discovery cost of the three assignment schemes (§2.1).
//
// The paper's argument against consistent hashing is that distributed
// beacon discovery "might take up to log(n) timesteps", while the
// (static or dynamic) hash-table schemes resolve in one step. This bench
// reports (a) the modelled discovery hops, (b) measured in-process
// resolution time, and (c) control bytes per lookup from a short simulation.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/assigner.hpp"

using namespace cachecloud;

namespace {

double ns_per_resolution(const core::BeaconAssigner& assigner,
                         const std::vector<core::UrlHash>& hashes) {
  // Warm + measure.
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    for (const core::UrlHash& hash : hashes) {
      sink += assigner.beacon_of(hash).beacon;
    }
  }
  const auto elapsed = std::chrono::duration<double, std::nano>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  if (sink == 0xFFFFFFFF) std::printf(" ");  // defeat dead-code elimination
  return elapsed / (kRounds * static_cast<double>(hashes.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.5);

  bench::print_header(
      "Ablation — beacon discovery cost: static vs consistent vs dynamic",
      "the lookup-cost argument of §2.1");

  std::vector<core::UrlHash> hashes;
  hashes.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    hashes.push_back(core::hash_url("/doc/" + std::to_string(i) + ".html"));
  }

  std::printf("%-8s %-12s %14s %16s\n", "caches", "scheme", "hops",
              "ns/resolve");
  for (const std::uint32_t n : {10u, 20u, 50u}) {
    std::vector<core::CacheId> ids(n);
    for (std::uint32_t i = 0; i < n; ++i) ids[i] = i;
    const std::vector<double> caps(n, 1.0);

    const core::StaticHashAssigner st(ids);
    const core::ConsistentHashAssigner ch(ids, 32);
    core::DynamicHashAssigner::Config dyn_config;
    dyn_config.ring_size = 2;
    const core::DynamicHashAssigner dyn(ids, caps, dyn_config);

    std::printf("%-8u %-12s %14u %16.1f\n", n, "static",
                st.beacon_of(hashes[0]).discovery_hops,
                ns_per_resolution(st, hashes));
    std::printf("%-8u %-12s %14u %16.1f\n", n, "consistent",
                ch.beacon_of(hashes[0]).discovery_hops,
                ns_per_resolution(ch, hashes));
    std::printf("%-8u %-12s %14u %16.1f\n", n, "dynamic",
                dyn.beacon_of(hashes[0]).discovery_hops,
                ns_per_resolution(dyn, hashes));
  }

  // Control traffic per lookup under the full protocol simulation.
  std::printf("\ncontrol bytes per request (10-cache cloud, Zipf-0.9, "
              "beacon placement):\n");
  const trace::Trace trace =
      trace::generate_zipf_trace(bench::zipf_config(scale));
  for (const auto hashing :
       {core::CloudConfig::Hashing::Static,
        core::CloudConfig::Hashing::Consistent,
        core::CloudConfig::Hashing::Dynamic}) {
    bench::CloudSetup setup;
    setup.hashing = hashing;
    setup.placement = "beacon";
    const sim::SimResult result = bench::run_cloud(setup, trace);
    const char* name = hashing == core::CloudConfig::Hashing::Static
                           ? "static"
                           : hashing == core::CloudConfig::Hashing::Consistent
                                 ? "consistent"
                                 : "dynamic";
    std::printf("  %-12s %8.1f B/request  (total control %.1f MB)\n", name,
                static_cast<double>(result.metrics.control_bytes) /
                    static_cast<double>(result.metrics.requests),
                static_cast<double>(result.metrics.control_bytes) / 1e6);
  }
  std::printf("\n(consistent hashing pays O(log n) hops per discovery; the "
              "dynamic scheme resolves in one)\n");
  return 0;
}
