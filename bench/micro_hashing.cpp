// Microbenchmarks (google-benchmark) for the hot paths of the library:
// MD5, URL hashing, beacon resolution under each scheme, sub-range
// determination, Zipf sampling and the document store.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cache/document_store.hpp"
#include "cache/replacement.hpp"
#include "core/assigner.hpp"
#include "core/subrange.hpp"
#include "core/url_hash.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

using namespace cachecloud;

namespace {

void BM_Md5(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::md5(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HashUrl(benchmark::State& state) {
  const std::string url = "/sydney/event/swimming/heat7/results.html";
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hash_url(url));
  }
}
BENCHMARK(BM_HashUrl);

std::vector<core::UrlHash> test_hashes(int n) {
  std::vector<core::UrlHash> hashes;
  hashes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    hashes.push_back(core::hash_url("/doc/" + std::to_string(i)));
  }
  return hashes;
}

std::vector<core::CacheId> ids(std::uint32_t n) {
  std::vector<core::CacheId> out(n);
  for (std::uint32_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

void BM_StaticResolve(benchmark::State& state) {
  const core::StaticHashAssigner assigner(
      ids(static_cast<std::uint32_t>(state.range(0))));
  const auto hashes = test_hashes(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.beacon_of(hashes[i++ & 1023]));
  }
}
BENCHMARK(BM_StaticResolve)->Arg(10)->Arg(50);

void BM_ConsistentResolve(benchmark::State& state) {
  const core::ConsistentHashAssigner assigner(
      ids(static_cast<std::uint32_t>(state.range(0))), 64);
  const auto hashes = test_hashes(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.beacon_of(hashes[i++ & 1023]));
  }
}
BENCHMARK(BM_ConsistentResolve)->Arg(10)->Arg(50);

void BM_DynamicResolve(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  core::DynamicHashAssigner::Config config;
  config.ring_size = 2;
  const core::DynamicHashAssigner assigner(ids(n),
                                           std::vector<double>(n, 1.0),
                                           config);
  const auto hashes = test_hashes(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.beacon_of(hashes[i++ & 1023]));
  }
}
BENCHMARK(BM_DynamicResolve)->Arg(10)->Arg(50);

// Cost of one sub-range determination for a ring of the given size — the
// "cost and complexity of the sub-range determination process" the paper
// weighs against ring size (§2.3).
void BM_DetermineSubranges(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kIrhGen = 1000;
  util::Rng rng(1);
  std::vector<double> caps(m, 1.0);
  const auto ranges = core::initial_subranges(caps, kIrhGen);
  std::vector<core::PointLoad> points(m);
  for (std::size_t i = 0; i < m; ++i) {
    points[i].capability = 1.0;
    points[i].range = ranges[i];
    points[i].per_irh.resize(ranges[i].length());
    for (double& v : points[i].per_irh) {
      v = rng.next_double() * 10.0;
      points[i].cycle_load += v;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::determine_subranges(points, kIrhGen));
  }
}
BENCHMARK(BM_DetermineSubranges)->Arg(2)->Arg(5)->Arg(10);

void BM_ZipfSample(benchmark::State& state) {
  const util::ZipfSampler sampler(
      static_cast<std::size_t>(state.range(0)), 0.9);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(25'000)->Arg(58'000);

void BM_DocumentStorePutGet(benchmark::State& state) {
  cache::DocumentStore store(10ull << 20, cache::make_policy("lru"));
  util::Rng rng(5);
  double now = 0.0;
  for (auto _ : state) {
    const auto doc = static_cast<trace::DocId>(rng.next_below(4096));
    now += 0.001;
    if (rng.next_bool(0.3)) {
      benchmark::DoNotOptimize(store.put(doc, 2048, 1, now));
    } else {
      benchmark::DoNotOptimize(store.get(doc, now));
    }
  }
}
BENCHMARK(BM_DocumentStorePutGet);

}  // namespace

BENCHMARK_MAIN();
