// Figure 8: total network load in the cache cloud vs document update rate,
// with unlimited disk space (DsCC turned off).
//
// Paper's shape: utility-based placement generates the least traffic at all
// update rates; its advantage over ad hoc grows with the update rate (fewer
// replicas -> cheaper consistency maintenance); beacon-point placement is
// expensive throughout because every request is a remote fetch.
#include <cstdio>

#include "bench_common.hpp"

using namespace cachecloud;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 1.0);

  bench::print_header(
      "Fig 8 — Network load (MB/min) vs update rate "
      "(Sydney, unlimited disk, DsCC off)",
      "ICDCS'05 Figure 8");

  const trace::Trace base =
      trace::generate_sydney_trace(bench::sydney_placement_config(scale));

  std::printf("\n%-12s %10s %10s %10s\n", "upd/min", "adhoc", "utility",
              "beacon");
  for (const double rate : bench::kUpdateRates) {
    const trace::Trace trace = base.with_update_rate(rate, 78);
    double row[3] = {0, 0, 0};
    const char* policies[3] = {"adhoc", "utility", "beacon"};
    for (int p = 0; p < 3; ++p) {
      bench::CloudSetup setup;
      setup.placement = policies[p];
      const auto result = bench::run_cloud(setup, trace);
      row[p] = result.metrics.network_mb_per_minute();
    }
    const char* marker = rate == bench::kObservedUpdateRate
                             ? "   <- observed update rate"
                             : "";
    std::printf("%-12.0f %10.2f %10.2f %10.2f%s\n", rate, row[0], row[1],
                row[2], marker);
  }
  std::printf("\n(paper: utility lowest at all rates; utility-vs-adhoc gap "
              "widens with update rate)\n");
  return 0;
}
