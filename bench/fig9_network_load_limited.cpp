// Figure 9: total network load vs update rate with *limited* disk space.
//
// Each cache's disk is 5% of the total catalog bytes; LRU replacement; the
// disk-space-contention component of the utility function is turned on
// (all four weights 0.25). Paper's shape: utility still generates the least
// traffic, and its improvement over ad hoc at *low* update rates is much
// larger than in the unlimited-disk case (it also fights disk contention).
#include <cstdio>

#include "bench_common.hpp"

using namespace cachecloud;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 1.0);
  const double disk_fraction = flags.get_double("disk-fraction", 0.05);

  bench::print_header(
      "Fig 9 — Network load (MB/min) vs update rate "
      "(Sydney, disk = 5% of catalog, LRU, DsCC on)",
      "ICDCS'05 Figure 9");

  const trace::Trace base =
      trace::generate_sydney_trace(bench::sydney_placement_config(scale));
  const std::uint64_t disk_bytes = static_cast<std::uint64_t>(
      disk_fraction * static_cast<double>(base.total_catalog_bytes()));
  std::printf("per-cache disk: %.1f MB (%.0f%% of %.1f MB catalog)\n",
              disk_bytes / 1e6, disk_fraction * 100.0,
              base.total_catalog_bytes() / 1e6);

  std::printf("\n%-12s %10s %10s %10s\n", "upd/min", "adhoc", "utility",
              "beacon");
  for (const double rate : bench::kUpdateRates) {
    const trace::Trace trace = base.with_update_rate(rate, 79);
    double row[3] = {0, 0, 0};
    const char* policies[3] = {"adhoc", "utility", "beacon"};
    for (int p = 0; p < 3; ++p) {
      bench::CloudSetup setup;
      setup.placement = policies[p];
      setup.per_cache_capacity_bytes = disk_bytes;
      setup.replacement = "lru";
      setup.dscc_on = true;
      const auto result = bench::run_cloud(setup, trace);
      row[p] = result.metrics.network_mb_per_minute();
    }
    const char* marker = rate == bench::kObservedUpdateRate
                             ? "   <- observed update rate"
                             : "";
    std::printf("%-12.0f %10.2f %10.2f %10.2f%s\n", rate, row[0], row[1],
                row[2], marker);
  }
  std::printf("\n(paper: utility lowest; its improvement over adhoc at low "
              "rates exceeds the unlimited-disk case)\n");
  return 0;
}
