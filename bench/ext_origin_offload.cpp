// Extension: how much does cooperation offload the origin server?
//
// §1 motivates cache clouds with two origin-side benefits: fewer misses
// reach the remote server, and consistency costs one update message per
// cloud instead of one per holder. The paper's simulator has an "edge
// network without cooperation" configuration but no figure for it; this
// bench supplies the comparison.
#include <cstdio>

#include "bench_common.hpp"

using namespace cachecloud;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.5);

  bench::print_header(
      "Extension — origin-server offload from cooperation",
      "the two §1 claims; 'edge network without cooperation' baseline of §4");

  const trace::Trace base =
      trace::generate_sydney_trace(bench::sydney_placement_config(scale));

  std::printf("%-10s %-16s %14s %14s %12s\n", "upd/min", "architecture",
              "origin msg/min", "wan MB/min", "local hit");
  for (const double rate : {10.0, bench::kObservedUpdateRate, 1000.0}) {
    const trace::Trace trace = base.with_update_rate(rate, 81);
    const double minutes = trace.duration() / 60.0;

    struct Arch {
      const char* name;
      bool cooperative;
      core::CloudConfig::Hashing hashing;
    };
    const Arch archs[] = {
        {"no cooperation", false, core::CloudConfig::Hashing::Static},
        {"coop static", true, core::CloudConfig::Hashing::Static},
        {"coop dynamic", true, core::CloudConfig::Hashing::Dynamic},
    };
    for (const Arch& arch : archs) {
      core::CloudConfig config =
          bench::make_cloud_config(bench::CloudSetup{}, 10);
      config.placement = "adhoc";  // isolate the cooperation effect
      config.cooperative = arch.cooperative;
      config.hashing = arch.hashing;
      core::CacheCloud cloud(config, trace);
      const sim::SimResult result = sim::run_simulation(cloud, trace);
      std::printf("%-10.0f %-16s %14.1f %14.2f %11.1f%%\n", rate, arch.name,
                  static_cast<double>(result.metrics.origin_messages) /
                      minutes,
                  static_cast<double>(result.metrics.data_bytes_wan) / 1e6 /
                      minutes,
                  100.0 * result.metrics.local_hit_rate());
    }
  }
  std::printf("\n(cooperation cuts origin messages both by absorbing misses "
              "in the cloud and by sending one update message per cloud "
              "instead of one per holder)\n");
  return 0;
}
