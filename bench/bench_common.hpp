// Shared set-up for the figure-reproduction benches.
//
// Every bench binary accepts --scale=<f> (default 1.0) which multiplies the
// workload volume (request rate), so the harness can be run quickly on small
// machines (--scale=0.2) or at full fidelity (--scale=1). Catalog sizes and
// rate *ratios* are fixed to the paper's values; see DESIGN.md §4 for the
// constants chosen where the paper's text is OCR-garbled.
#pragma once

#include <cstdio>
#include <string>

#include "core/cloud.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/flags.hpp"

namespace cachecloud::bench {

// The update rates swept in Figs 7-9, in updates per minute. 195 is the
// trace's observed rate (the dashed vertical marker in the paper's plots).
inline constexpr double kUpdateRates[] = {10, 50, 100, 195, 500, 1000};
inline constexpr double kObservedUpdateRate = 195.0;

inline trace::SydneyTraceConfig sydney_config(double scale,
                                              std::uint32_t num_caches = 10) {
  trace::SydneyTraceConfig config;
  config.num_docs = 58'000;
  config.num_caches = num_caches;
  config.duration_sec = 24.0 * 3600.0;
  config.peak_requests_per_sec = 15.0 * scale;
  config.updates_per_minute = kObservedUpdateRate;
  config.seed = 2020;
  return config;
}

// Calibration of the Sydney stand-in for the placement experiments
// (Figs 7-9). Differences from the load-balance calibration above, chosen to
// land in the regime the paper's placement figures exhibit (DESIGN.md §4):
//  - request volume high enough that ad hoc placement reaches ~100% of the
//    catalog per cache over the day;
//  - updates touch the whole catalog, concentrated on popular pages
//    (pages regenerate roughly as often as they are viewed), so that the
//    update-rate sweep moves documents across the store/don't-store
//    boundary instead of shifting them all together.
inline trace::SydneyTraceConfig sydney_placement_config(
    double scale, std::uint32_t num_caches = 10) {
  trace::SydneyTraceConfig config;
  config.num_docs = 8'000;
  config.num_caches = num_caches;
  config.duration_sec = 24.0 * 3600.0;
  config.peak_requests_per_sec = 60.0 * scale;
  config.updates_per_minute = kObservedUpdateRate;
  config.update_hot_docs = config.num_docs;  // whole catalog is dynamic
  config.update_alpha = 1.0;
  config.seed = 2021;
  return config;
}

inline trace::ZipfTraceConfig zipf_config(double scale, double alpha = 0.9,
                                          std::uint32_t num_caches = 10) {
  trace::ZipfTraceConfig config;
  config.num_docs = 25'000;
  config.num_caches = num_caches;
  config.duration_sec = 6.0 * 3600.0;
  config.requests_per_sec = 40.0 * scale;
  config.updates_per_minute = kObservedUpdateRate;
  config.request_alpha = alpha;
  config.update_alpha = alpha;
  config.seed = 1905;
  return config;
}

struct CloudSetup {
  core::CloudConfig::Hashing hashing = core::CloudConfig::Hashing::Dynamic;
  std::uint32_t ring_size = 2;
  std::string placement = "adhoc";
  std::uint64_t per_cache_capacity_bytes = 0;
  std::string replacement = "lru";
  bool dscc_on = false;  // enables the disk-space-contention component
};

inline core::CloudConfig make_cloud_config(const CloudSetup& setup,
                                           std::uint32_t num_caches) {
  core::CloudConfig config;
  config.num_caches = num_caches;
  config.hashing = setup.hashing;
  config.ring_size = setup.ring_size;
  config.irh_gen = 1000;        // paper §4.1
  config.cycle_sec = 3600.0;    // "cycle length ... set to 1 hour"
  config.placement = setup.placement;
  config.per_cache_capacity_bytes = setup.per_cache_capacity_bytes;
  config.replacement = setup.replacement;
  if (setup.dscc_on) {
    // Fig 9: all four components on, weights 0.25 each.
    config.utility.w_consistency = 0.25;
    config.utility.w_access_frequency = 0.25;
    config.utility.w_availability = 0.25;
    config.utility.w_disk_contention = 0.25;
  } else {
    // Figs 7-8: DsCC off, remaining three weighted 1/3 each.
    config.utility.w_consistency = 1.0 / 3.0;
    config.utility.w_access_frequency = 1.0 / 3.0;
    config.utility.w_availability = 1.0 / 3.0;
    config.utility.w_disk_contention = 0.0;
  }
  config.utility.threshold = 0.5;  // UtilThreshold
  return config;
}

inline sim::SimResult run_cloud(const CloudSetup& setup,
                                const trace::Trace& trace,
                                double metrics_start_sec = 0.0) {
  core::CacheCloud cloud(
      make_cloud_config(setup, static_cast<std::uint32_t>(
                                   std::max<trace::CacheId>(trace.num_caches(), 1))),
      trace);
  sim::SimConfig sim_config;
  sim_config.metrics_start_sec = metrics_start_sec;
  return sim::run_simulation(cloud, trace, sim_config);
}

// Mean fraction (in %) of the catalog stored per cache at the end of a run.
inline double mean_percent_docs_stored(const core::CacheCloud& cloud,
                                       std::size_t num_docs) {
  double total = 0.0;
  for (std::uint32_t c = 0; c < cloud.num_caches(); ++c) {
    total += static_cast<double>(cloud.store(c).doc_count());
  }
  return 100.0 * total /
         (static_cast<double>(cloud.num_caches()) *
          static_cast<double>(num_docs));
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s)\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace cachecloud::bench
