// Figure 5: effect of beacon ring size on load balancing (Sydney dataset).
//
// Clouds of 10, 20 and 50 caches; static hashing vs dynamic hashing with 2,
// 5 and 10 beacon points per ring. Paper's shape: dynamic with 2-point
// rings is already far better than static; larger rings improve the balance
// incrementally.
#include <cstdio>

#include "bench_common.hpp"

using namespace cachecloud;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 1.0);

  bench::print_header(
      "Fig 5 — Impact of beacon ring size on load balancing (Sydney)",
      "ICDCS'05 Figure 5");

  const std::uint32_t cloud_sizes[] = {10, 20, 50};
  const std::uint32_t ring_sizes[] = {2, 5, 10};
  const double warmup = 2.0 * 3600.0;

  std::printf("%-8s %-26s %10s %10s\n", "caches", "scheme", "CoV",
              "max/mean");
  for (const std::uint32_t caches : cloud_sizes) {
    const trace::Trace trace =
        trace::generate_sydney_trace(bench::sydney_config(scale, caches));

    bench::CloudSetup setup;
    setup.placement = "beacon";
    setup.hashing = core::CloudConfig::Hashing::Static;
    {
      const auto result = bench::run_cloud(setup, trace, warmup);
      const auto stats = result.metrics.beacon_load_stats();
      std::printf("%-8u %-26s %10.3f %10.3f\n", caches, "static",
                  stats.coefficient_of_variation(),
                  stats.max_to_mean_ratio());
    }
    setup.hashing = core::CloudConfig::Hashing::Dynamic;
    for (const std::uint32_t ring : ring_sizes) {
      setup.ring_size = ring;
      const auto result = bench::run_cloud(setup, trace, warmup);
      const auto stats = result.metrics.beacon_load_stats();
      char label[64];
      std::snprintf(label, sizeof(label), "dynamic (%u pts/ring)", ring);
      std::printf("%-8u %-26s %10.3f %10.3f\n", caches, label,
                  stats.coefficient_of_variation(),
                  stats.max_to_mean_ratio());
    }
  }
  std::printf("\n(paper: static worst; dynamic improves with ring size)\n");
  return 0;
}
