// Figure 3: load distribution across the 10 beacon points of a cache cloud,
// static vs dynamic hashing, on the Zipf-0.9 dataset.
//
// Paper's shape: static hashing's heaviest beacon point carries ~1.9x the
// mean load; dynamic hashing (5 rings x 2 beacon points) reduces that to
// ~1.2x and cuts the coefficient of variation sharply.
//
// The realized imbalance of *one* run depends heavily on where the handful
// of hottest URLs happen to hash (the paper reports a single draw); this
// harness therefore averages over --trials catalogs (URL salt re-rolls the
// hash placement) and also prints the per-beacon distribution of trial 0.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace cachecloud;

namespace {

void print_distribution(const char* name, const sim::SimResult& result) {
  std::vector<double> loads = result.metrics.beacon_load_per_minute();
  std::sort(loads.begin(), loads.end(), std::greater<>());
  const auto stats = result.metrics.beacon_load_stats();

  std::printf("\n%s hashing (trial 0) — beacon points in decreasing load "
              "order (lookups+updates per minute):\n",
              name);
  std::printf("%6s %12s\n", "rank", "load");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::printf("%6zu %12.1f\n", i + 1, loads[i]);
  }
  std::printf("mean=%.1f  max/mean=%.3f  CoV=%.3f\n", stats.mean(),
              stats.max_to_mean_ratio(), stats.coefficient_of_variation());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 1.0);
  const int trials = static_cast<int>(flags.get_int("trials", 5));

  bench::print_header(
      "Fig 3 — Load distribution, Zipf-0.9 dataset, 10-cache cloud",
      "ICDCS'05 Figure 3");

  const double warmup = 2.0 * 3600.0;
  double static_cov = 0.0, dynamic_cov = 0.0;
  double static_mm = 0.0, dynamic_mm = 0.0;

  std::printf("\n%-7s %12s %12s %14s %14s\n", "trial", "static CoV",
              "dyn CoV", "static max/mu", "dyn max/mu");
  for (int trial = 0; trial < trials; ++trial) {
    trace::ZipfTraceConfig tc = bench::zipf_config(scale);
    tc.url_prefix = "/zipf/t" + std::to_string(trial) + "/doc";
    tc.seed += static_cast<std::uint64_t>(trial);
    const trace::Trace trace = trace::generate_zipf_trace(tc);

    bench::CloudSetup setup;
    setup.placement = "beacon";  // §4.1 measures beacon lookup/update load
    setup.hashing = core::CloudConfig::Hashing::Static;
    const sim::SimResult s = bench::run_cloud(setup, trace, warmup);
    setup.hashing = core::CloudConfig::Hashing::Dynamic;
    setup.ring_size = 2;  // 5 beacon rings x 2 beacon points
    const sim::SimResult d = bench::run_cloud(setup, trace, warmup);

    const auto ss = s.metrics.beacon_load_stats();
    const auto ds = d.metrics.beacon_load_stats();
    std::printf("%-7d %12.3f %12.3f %14.3f %14.3f\n", trial,
                ss.coefficient_of_variation(), ds.coefficient_of_variation(),
                ss.max_to_mean_ratio(), ds.max_to_mean_ratio());
    static_cov += ss.coefficient_of_variation();
    dynamic_cov += ds.coefficient_of_variation();
    static_mm += ss.max_to_mean_ratio();
    dynamic_mm += ds.max_to_mean_ratio();

    if (trial == 0) {
      print_distribution("Static", s);
      print_distribution("Dynamic", d);
    }
  }

  static_cov /= trials;
  dynamic_cov /= trials;
  static_mm /= trials;
  dynamic_mm /= trials;
  std::printf("\nMeans over %d trials "
              "(paper, single draw: static max/mean ~1.9 -> dynamic ~1.2):\n",
              trials);
  std::printf("  max/mean: static=%.2f dynamic=%.2f (%.0f%% improvement)\n",
              static_mm, dynamic_mm,
              100.0 * (static_mm - dynamic_mm) / static_mm);
  std::printf("  CoV:      static=%.3f dynamic=%.3f (%.0f%% improvement)\n",
              static_cov, dynamic_cov,
              100.0 * (static_cov - dynamic_cov) / static_cov);
  return 0;
}
