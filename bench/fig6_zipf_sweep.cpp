// Figure 6: impact of the dataset's Zipf parameter on load balancing.
//
// Datasets with Zipf parameter 0 .. 0.99 on a 10-cache cloud (5 rings x 2
// beacon points). Paper's shape: both schemes degrade as skew grows, static
// hashing much faster; at alpha = 0.9 static hashing's CoV is roughly
// [45]% above dynamic hashing's.
#include <cstdio>

#include "bench_common.hpp"

using namespace cachecloud;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 1.0);

  bench::print_header(
      "Fig 6 — Impact of Zipf parameter on load balancing",
      "ICDCS'05 Figure 6");

  const double alphas[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                           0.6, 0.7, 0.8, 0.9, 0.99};
  const double warmup = 2.0 * 3600.0;

  std::printf("%-8s %12s %12s %14s\n", "alpha", "static CoV", "dynamic CoV",
              "static/dyn");
  for (const double alpha : alphas) {
    const trace::Trace trace =
        trace::generate_zipf_trace(bench::zipf_config(scale, alpha));

    bench::CloudSetup setup;
    setup.placement = "beacon";

    setup.hashing = core::CloudConfig::Hashing::Static;
    const auto static_result = bench::run_cloud(setup, trace, warmup);
    setup.hashing = core::CloudConfig::Hashing::Dynamic;
    setup.ring_size = 2;
    const auto dynamic_result = bench::run_cloud(setup, trace, warmup);

    const double sc =
        static_result.metrics.beacon_load_stats().coefficient_of_variation();
    const double dc =
        dynamic_result.metrics.beacon_load_stats().coefficient_of_variation();
    std::printf("%-8.2f %12.3f %12.3f %14.2f\n", alpha, sc, dc,
                dc > 0.0 ? sc / dc : 0.0);
  }
  std::printf("\n(paper: CoV grows with skew for both, much faster for "
              "static hashing)\n");
  return 0;
}
