// Ablation: replacement policy under the limited-disk placement experiment.
//
// The paper fixes LRU for Fig 9 and cites the cost-aware replacement
// literature [3, 9] in related work. This bench re-runs the Fig 9 setting
// (disk = 5% of catalog, DsCC on, observed update rate) with LRU, LFU and
// GDSF to show how much the replacement choice moves the result.
#include <cstdio>

#include "bench_common.hpp"

using namespace cachecloud;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.5);

  bench::print_header(
      "Ablation — replacement policy (LRU vs LFU vs GDSF) in the "
      "limited-disk setting",
      "Fig 9 configuration, policy swept");

  const trace::Trace base =
      trace::generate_sydney_trace(bench::sydney_placement_config(scale));
  const trace::Trace trace =
      base.with_update_rate(bench::kObservedUpdateRate, 80);
  const auto disk_bytes = static_cast<std::uint64_t>(
      0.05 * static_cast<double>(base.total_catalog_bytes()));

  std::printf("%-22s %-8s %12s %10s %10s\n", "placement", "policy", "MB/min",
              "local%", "cloud%");
  for (const char* placement : {"adhoc", "utility"}) {
    for (const char* policy : {"lru", "lfu", "gdsf"}) {
      bench::CloudSetup setup;
      setup.placement = placement;
      setup.per_cache_capacity_bytes = disk_bytes;
      setup.replacement = policy;
      setup.dscc_on = true;
      core::CacheCloud cloud(bench::make_cloud_config(setup, 10), trace);
      const sim::SimResult result = sim::run_simulation(cloud, trace);
      std::printf("%-22s %-8s %12.2f %9.1f%% %9.1f%%\n", placement, policy,
                  result.metrics.network_mb_per_minute(),
                  100.0 * result.metrics.local_hit_rate(),
                  100.0 * result.metrics.cloud_hit_rate());
    }
  }
  std::printf("\n(the utility scheme's advantage persists across "
              "replacement policies; GDSF trades large-object misses for "
              "more small-object hits)\n");
  return 0;
}
