// Extension: push consistency (the paper's mechanism) vs TTL consistency
// (the mechanism of the earlier cooperative-cache work the paper's §5
// contrasts against).
//
// TTL trades freshness for traffic: within the TTL a copy is served blind
// (possibly stale); at expiry it costs a revalidation round trip. Push is
// never stale but pays a fan-out per update. This bench sweeps the TTL and
// prints the staleness/traffic frontier next to push consistency.
#include <cstdio>

#include "bench_common.hpp"

using namespace cachecloud;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.5);

  bench::print_header(
      "Extension — push vs TTL consistency (staleness/traffic frontier)",
      "§5's 'stronger consistency mechanisms' claim, quantified");

  const trace::Trace base =
      trace::generate_sydney_trace(bench::sydney_placement_config(scale));
  const trace::Trace trace =
      base.with_update_rate(bench::kObservedUpdateRate, 82);

  const auto run_with = [&](core::CloudConfig::Consistency consistency,
                            double ttl_sec) {
    core::CloudConfig config =
        bench::make_cloud_config(bench::CloudSetup{}, 10);
    config.placement = "adhoc";
    config.consistency = consistency;
    config.ttl_sec = ttl_sec;
    core::CacheCloud cloud(config, trace);
    return sim::run_simulation(cloud, trace);
  };

  std::printf("%-14s %12s %12s %14s %14s\n", "consistency", "MB/min",
              "stale hits", "revalidations", "refetches");
  {
    const sim::SimResult push =
        run_with(core::CloudConfig::Consistency::Push, 0.0);
    std::printf("%-14s %12.2f %11.2f%% %14llu %14llu\n", "push",
                push.metrics.network_mb_per_minute(),
                0.0, 0ull, 0ull);
  }
  for (const double ttl : {30.0, 120.0, 600.0, 3600.0}) {
    const sim::SimResult result =
        run_with(core::CloudConfig::Consistency::Ttl, ttl);
    char label[32];
    std::snprintf(label, sizeof(label), "ttl %.0fs", ttl);
    std::printf("%-14s %12.2f %11.2f%% %14llu %14llu\n", label,
                result.metrics.network_mb_per_minute(),
                100.0 * static_cast<double>(result.metrics.stale_hits) /
                    static_cast<double>(result.metrics.requests),
                static_cast<unsigned long long>(
                    result.metrics.revalidations),
                static_cast<unsigned long long>(
                    result.metrics.ttl_refetches));
  }
  std::printf("\n(push: zero staleness at the cost of update fan-out; TTL: "
              "traffic drops as the TTL grows but stale service rises — "
              "the trade the paper's stronger mechanism avoids)\n");
  return 0;
}
