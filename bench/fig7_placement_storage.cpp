// Figure 7: percentage of the trace's documents stored per cache, as the
// document update rate is swept (Sydney dataset, unlimited disk, DsCC off).
//
// Paper's shape: ad hoc stores ~100% at every rate; beacon-point placement
// stores ~10% (1/N); utility-based placement stores a large fraction at low
// update rates and sheds documents as updates grow more expensive.
#include <cstdio>

#include "bench_common.hpp"

using namespace cachecloud;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 1.0);

  bench::print_header(
      "Fig 7 — % of documents stored per cache vs update rate "
      "(Sydney, unlimited disk, DsCC off)",
      "ICDCS'05 Figure 7");

  const trace::Trace base =
      trace::generate_sydney_trace(bench::sydney_placement_config(scale));
  std::printf("trace: %zu docs, %zu requests, observed update rate %.0f/min\n",
              base.num_docs(), base.request_count(),
              bench::kObservedUpdateRate);

  std::printf("\n%-12s %10s %10s %10s\n", "upd/min", "adhoc", "utility",
              "beacon");
  for (const double rate : bench::kUpdateRates) {
    const trace::Trace trace = base.with_update_rate(rate, 77);
    double row[3] = {0, 0, 0};
    const char* policies[3] = {"adhoc", "utility", "beacon"};
    for (int p = 0; p < 3; ++p) {
      bench::CloudSetup setup;
      setup.placement = policies[p];
      core::CacheCloud cloud(make_cloud_config(setup, 10), trace);
      (void)sim::run_simulation(cloud, trace);
      row[p] = bench::mean_percent_docs_stored(cloud, trace.num_docs());
    }
    const char* marker = rate == bench::kObservedUpdateRate
                             ? "   <- observed update rate"
                             : "";
    std::printf("%-12.0f %9.1f%% %9.1f%% %9.1f%%%s\n", rate, row[0], row[1],
                row[2], marker);
  }
  std::printf("\n(paper: adhoc ~100%%, beacon ~10%%, utility decreasing "
              "with update rate)\n");
  return 0;
}
