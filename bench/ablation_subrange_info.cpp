// Ablation: complete (CIrHLd) vs approximate (CAvgLoad) load information in
// the sub-range determination (§2.3, Fig 2-B vs 2-C).
//
// "The scheme is more accurate when the load information is available at
// the granularity of IrH values." This bench quantifies that on (a) the
// paper's worked example, (b) iterated balancing of synthetic skewed loads,
// and (c) a full cloud simulation with per-IrH tracking on/off.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/beacon_ring.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace cachecloud;

namespace {

// Realized per-point loads of `ring` under a fixed per-IrH load vector.
util::OnlineStats realized(const core::BeaconRing& ring,
                           const std::vector<double>& loads) {
  std::vector<double> per_point(ring.members().size(), 0.0);
  for (std::size_t i = 0; i < ring.ranges().size(); ++i) {
    for (std::uint32_t k = ring.ranges()[i].lo; k <= ring.ranges()[i].hi;
         ++k) {
      per_point[i] += loads[k];
    }
  }
  return util::summarize(per_point);
}

void iterated_ring(bool track_per_irh) {
  constexpr std::uint32_t kIrhGen = 1000;
  util::Rng rng(4242);
  std::vector<double> loads(kIrhGen);
  for (std::uint32_t k = 0; k < kIrhGen; ++k) {
    loads[k] = 1000.0 /
               std::pow(static_cast<double>(rng.next_below(kIrhGen)) + 1.0,
                        0.9);
  }

  core::BeaconRing::Config config;
  config.irh_gen = kIrhGen;
  config.track_per_irh = track_per_irh;
  core::BeaconRing ring({0, 1}, {1.0, 1.0}, config);

  std::printf("  %-12s", track_per_irh ? "complete:" : "approximate:");
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (std::uint32_t k = 0; k < kIrhGen; ++k) ring.record_load(k, loads[k]);
    const util::OnlineStats stats = realized(ring, loads);
    std::printf(" %5.3f", stats.max_to_mean_ratio());
    ring.rebalance();
  }
  std::printf("  (max/mean per cycle)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.5);

  bench::print_header(
      "Ablation — sub-range determination with complete vs approximate "
      "per-IrH load information",
      "§2.3 / Figure 2-B vs 2-C");

  // (a) The paper's worked example: loads 135,175,100,60,30 | 25,50,75,50,100.
  {
    const std::vector<double> loads{135, 175, 100, 60, 30,
                                    25,  50,  75,  50, 100};
    for (const bool complete : {true, false}) {
      core::BeaconRing::Config config;
      config.irh_gen = 10;
      config.track_per_irh = complete;
      core::BeaconRing ring({0, 1}, {1.0, 1.0}, config);
      for (std::uint32_t k = 0; k < 10; ++k) ring.record_load(k, loads[k]);
      ring.rebalance();
      const util::OnlineStats stats = realized(ring, loads);
      std::printf("paper example, %-12s loads %3.0f / %3.0f (paper: %s)\n",
                  complete ? "complete:" : "approximate:", stats.max(),
                  stats.sum() - stats.max(),
                  complete ? "410/390" : "one value shifted");
    }
  }

  // (b) Iterated balancing on a skewed synthetic ring.
  std::printf("\niterated 2-point ring, Zipf-0.9 load over 1000 IrH values:\n");
  iterated_ring(true);
  iterated_ring(false);

  // (c) Full cloud simulation with tracking on/off.
  std::printf("\nfull cloud (10 caches, 5x2 rings, Zipf-0.9 trace):\n");
  const trace::Trace trace =
      trace::generate_zipf_trace(bench::zipf_config(scale));
  for (const bool complete : {true, false}) {
    core::CloudConfig config =
        bench::make_cloud_config(bench::CloudSetup{}, 10);
    config.placement = "beacon";
    config.track_per_irh = complete;
    core::CacheCloud cloud(config, trace);
    sim::SimConfig sim_config;
    sim_config.metrics_start_sec = 2.0 * 3600.0;
    const sim::SimResult result =
        sim::run_simulation(cloud, trace, sim_config);
    const auto stats = result.metrics.beacon_load_stats();
    std::printf("  %-12s CoV=%.3f max/mean=%.3f records moved=%zu\n",
                complete ? "complete:" : "approximate:",
                stats.coefficient_of_variation(), stats.max_to_mean_ratio(),
                result.records_transferred);
  }
  return 0;
}
