// Extension: how should an edge network of fixed size be partitioned into
// cache clouds?
//
// §1 poses this as an open design question ("these caches need to be
// organized into cooperative groups such that the cooperation ... is
// effective and beneficial"). With 40 caches total, this bench sweeps the
// partition — 1x40, 2x20, 4x10, 8x5, 40x1 — and reports the trade-off:
// bigger clouds serve more requests inside the network and cost the origin
// fewer update messages; smaller clouds bound cooperation overhead and
// blast radius.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/edge_network.hpp"

using namespace cachecloud;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.5);

  bench::print_header(
      "Extension — cloud granularity: one edge network, five partitions",
      "the cache-cloud construction question of §1");

  constexpr std::uint32_t kTotalCaches = 40;
  trace::SydneyTraceConfig tc = bench::sydney_placement_config(scale, kTotalCaches);
  const trace::Trace trace = trace::generate_sydney_trace(tc);
  std::printf("trace: %zu docs, %zu requests, %zu updates, %u caches\n\n",
              trace.num_docs(), trace.request_count(), trace.update_count(),
              kTotalCaches);

  std::printf("%-12s %14s %16s %14s %12s\n", "partition", "in-net hit",
              "origin msg/min", "wan MB/min", "intra MB/min");
  const std::uint32_t cloud_counts[] = {1, 2, 4, 8, 40};
  for (const std::uint32_t clouds : cloud_counts) {
    sim::EdgeNetworkConfig config;
    config.num_clouds = clouds;
    config.cloud = bench::make_cloud_config(bench::CloudSetup{},
                                            kTotalCaches / clouds);
    config.cloud.placement = "utility";
    if (clouds == kTotalCaches) {
      // Single-cache "clouds" cannot cooperate at all.
      config.cloud.cooperative = false;
    }
    const sim::EdgeNetworkResult result =
        sim::run_edge_network(config, trace);

    std::uint64_t intra = 0;
    for (const auto& metrics : result.per_cloud) {
      intra += metrics.data_bytes_intra;
    }
    const double minutes = trace.duration() / 60.0;
    char label[32];
    std::snprintf(label, sizeof(label), "%ux%u", clouds,
                  kTotalCaches / clouds);
    std::printf("%-12s %13.1f%% %16.1f %14.2f %12.2f\n", label,
                100.0 * result.in_network_hit_rate(),
                static_cast<double>(result.origin_messages) / minutes,
                static_cast<double>(result.origin_wan_bytes) / 1e6 / minutes,
                static_cast<double>(intra) / 1e6 / minutes);
  }
  std::printf("\n(bigger clouds absorb more misses and cost the origin "
              "fewer per-cloud update messages, at the price of more "
              "intra-cloud traffic and larger cooperation domains)\n");
  return 0;
}
