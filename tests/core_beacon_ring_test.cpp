#include "core/beacon_ring.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace cachecloud::core {
namespace {

BeaconRing::Config small_config() {
  BeaconRing::Config config;
  config.irh_gen = 10;
  config.track_per_irh = true;
  return config;
}

TEST(BeaconRingTest, ConstructionSplitsEvenly) {
  const BeaconRing ring({7, 9}, {1.0, 1.0}, small_config());
  EXPECT_EQ(ring.ranges()[0], (SubRange{0, 4}));
  EXPECT_EQ(ring.ranges()[1], (SubRange{5, 9}));
  EXPECT_EQ(ring.resolve(0), 7u);
  EXPECT_EQ(ring.resolve(4), 7u);
  EXPECT_EQ(ring.resolve(5), 9u);
  EXPECT_EQ(ring.resolve(9), 9u);
}

TEST(BeaconRingTest, RejectsBadConstruction) {
  EXPECT_THROW(BeaconRing({}, {}, small_config()), std::invalid_argument);
  EXPECT_THROW(BeaconRing({1}, {1.0, 1.0}, small_config()),
               std::invalid_argument);
  BeaconRing::Config tiny;
  tiny.irh_gen = 1;
  EXPECT_THROW(BeaconRing({1, 2}, {1.0, 1.0}, tiny), std::invalid_argument);
}

TEST(BeaconRingTest, ResolveRejectsOutOfRange) {
  const BeaconRing ring({0, 1}, {1.0, 1.0}, small_config());
  EXPECT_THROW((void)ring.resolve(10), std::out_of_range);
}

TEST(BeaconRingTest, RebalanceMovesValuesAndReportsMoves) {
  BeaconRing ring({0, 1}, {1.0, 1.0}, small_config());
  // Paper Fig 2 loads.
  const double loads[] = {135, 175, 100, 60, 30, 25, 50, 75, 50, 100};
  for (std::uint32_t k = 0; k < 10; ++k) ring.record_load(k, loads[k]);
  EXPECT_DOUBLE_EQ(ring.cycle_loads()[0], 500.0);
  EXPECT_DOUBLE_EQ(ring.cycle_loads()[1], 300.0);

  const auto moves = ring.rebalance();
  EXPECT_EQ(ring.ranges()[0], (SubRange{0, 2}));
  EXPECT_EQ(ring.ranges()[1], (SubRange{3, 9}));
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 0u);
  EXPECT_EQ(moves[0].to, 1u);
  EXPECT_EQ(moves[0].values, (SubRange{3, 4}));
  // Accumulators reset after the cycle.
  EXPECT_DOUBLE_EQ(ring.cycle_loads()[0], 0.0);
  EXPECT_DOUBLE_EQ(ring.cycle_loads()[1], 0.0);
}

TEST(BeaconRingTest, RebalanceWithoutLoadKeepsCapabilitySplit) {
  BeaconRing ring({0, 1}, {1.0, 1.0}, small_config());
  const auto moves = ring.rebalance();
  EXPECT_TRUE(moves.empty());
  EXPECT_EQ(ring.ranges()[0], (SubRange{0, 4}));
}

TEST(BeaconRingTest, ApproximateModeStillBalances) {
  BeaconRing::Config config;
  config.irh_gen = 10;
  config.track_per_irh = false;
  BeaconRing ring({0, 1}, {1.0, 1.0}, config);
  const double loads[] = {135, 175, 100, 60, 30, 25, 50, 75, 50, 100};
  for (std::uint32_t k = 0; k < 10; ++k) ring.record_load(k, loads[k]);
  ring.rebalance();
  // Fig 2-C: only one value moves under the CAvgLoad approximation.
  EXPECT_EQ(ring.ranges()[0], (SubRange{0, 3}));
}

TEST(BeaconRingTest, RemoveMemberMergesRangeIntoPredecessor) {
  BeaconRing ring({4, 5, 6}, {1.0, 1.0, 1.0}, small_config());
  const auto before = ring.ranges();
  const auto moves = ring.remove_member(5);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 5u);
  EXPECT_EQ(moves[0].to, 4u);
  EXPECT_EQ(moves[0].values, before[1]);
  ASSERT_EQ(ring.members().size(), 2u);
  EXPECT_EQ(ring.ranges()[0].lo, 0u);
  EXPECT_EQ(ring.ranges()[0].hi, before[1].hi);
  EXPECT_EQ(ring.ranges()[1].hi, 9u);
}

TEST(BeaconRingTest, RemoveFirstMemberMergesIntoSuccessor) {
  BeaconRing ring({4, 5}, {1.0, 1.0}, small_config());
  const auto moves = ring.remove_member(4);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].to, 5u);
  EXPECT_EQ(ring.ranges()[0], (SubRange{0, 9}));
}

TEST(BeaconRingTest, RemoveRejectsUnknownAndLast) {
  BeaconRing ring({4, 5}, {1.0, 1.0}, small_config());
  EXPECT_THROW(ring.remove_member(99), std::invalid_argument);
  ring.remove_member(4);
  EXPECT_THROW(ring.remove_member(5), std::invalid_argument);
}

TEST(BeaconRingTest, AddMemberSplitsWidestRange) {
  BeaconRing ring({4, 5}, {1.0, 1.0}, small_config());
  const auto moves = ring.add_member(6, 1.0);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].to, 6u);
  ASSERT_EQ(ring.members().size(), 3u);
  // Partition invariant still holds.
  std::uint32_t expected_lo = 0;
  for (const auto& r : ring.ranges()) {
    EXPECT_EQ(r.lo, expected_lo);
    expected_lo = r.hi + 1;
  }
  EXPECT_EQ(expected_lo, 10u);
}

TEST(BeaconRingTest, AddMemberRejectsDuplicatesAndBadCapability) {
  BeaconRing ring({4, 5}, {1.0, 1.0}, small_config());
  EXPECT_THROW(ring.add_member(4, 1.0), std::invalid_argument);
  EXPECT_THROW(ring.add_member(6, 0.0), std::invalid_argument);
}

// Repeated rebalances under a skewed, drifting load keep the partition
// valid and converge the loads.
TEST(BeaconRingTest, ManyCyclesKeepInvariant) {
  BeaconRing::Config config;
  config.irh_gen = 200;
  BeaconRing ring({0, 1, 2, 3}, {1.0, 1.0, 1.0, 1.0}, config);
  for (int cycle = 0; cycle < 20; ++cycle) {
    // Hotspot drifts across the hash space.
    const std::uint32_t hot = static_cast<std::uint32_t>(cycle * 10 % 200);
    for (std::uint32_t k = 0; k < 200; ++k) {
      ring.record_load(k, k == hot ? 500.0 : 1.0);
    }
    ring.rebalance();
    std::uint32_t expected_lo = 0;
    for (const auto& r : ring.ranges()) {
      ASSERT_EQ(r.lo, expected_lo);
      ASSERT_GE(r.hi, r.lo);
      expected_lo = r.hi + 1;
    }
    ASSERT_EQ(expected_lo, 200u);
  }
}

}  // namespace
}  // namespace cachecloud::core
