#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace cachecloud::sim {
namespace {

trace::Trace test_trace(double updates_per_minute = 20.0) {
  trace::ZipfTraceConfig config;
  config.num_docs = 300;
  config.num_caches = 5;
  config.duration_sec = 300.0;
  config.requests_per_sec = 20.0;
  config.updates_per_minute = updates_per_minute;
  config.seed = 11;
  return trace::generate_zipf_trace(config);
}

core::CloudConfig cloud_config(const std::string& placement) {
  core::CloudConfig config;
  config.num_caches = 5;
  config.hashing = core::CloudConfig::Hashing::Dynamic;
  config.ring_size = 2;
  config.placement = placement;
  config.cycle_sec = 60.0;
  return config;
}

TEST(EventQueueTest, OrdersByTimeThenFifo) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(1.0, [&] { order.push_back(11); });
  EXPECT_EQ(queue.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2}));
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueueTest, RelativeSchedulingAndNesting) {
  EventQueue queue;
  std::vector<double> times;
  queue.schedule_in(1.0, [&] {
    times.push_back(queue.now());
    queue.schedule_in(0.5, [&] { times.push_back(queue.now()); });
  });
  queue.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueueTest, RunUntilHorizon) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1.0, [&] { ++fired; });
  queue.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(queue.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueueTest, RejectsPastAndEmptyActions) {
  EventQueue queue;
  queue.schedule_at(5.0, [] {});
  queue.run();
  EXPECT_THROW(queue.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule_in(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule_at(10.0, nullptr), std::invalid_argument);
}

TEST(SimulatorTest, AccountsEveryEvent) {
  const trace::Trace t = test_trace();
  core::CacheCloud cloud(cloud_config("adhoc"), t);
  const SimResult result = run_simulation(cloud, t);

  EXPECT_EQ(result.metrics.requests, t.request_count());
  EXPECT_EQ(result.metrics.updates, t.update_count());
  EXPECT_EQ(result.metrics.local_hits + result.metrics.cloud_hits +
                result.metrics.group_misses,
            result.metrics.requests);
  EXPECT_GT(result.metrics.local_hit_rate(), 0.2);  // ad hoc caches hard
  EXPECT_GT(result.metrics.total_network_bytes(), 0u);
  EXPECT_GT(result.metrics.request_latency_sec.count(), 0u);
  EXPECT_NEAR(result.metrics.measured_sec, t.duration(), 1e-9);
  EXPECT_GE(result.rebalances, 4u);  // 300 s of 60 s cycles
}

TEST(SimulatorTest, WarmupExcludedFromMetrics) {
  const trace::Trace t = test_trace();
  core::CacheCloud cloud(cloud_config("adhoc"), t);
  SimConfig config;
  config.metrics_start_sec = 150.0;
  const SimResult result = run_simulation(cloud, t, config);
  EXPECT_LT(result.metrics.requests, t.request_count());
  EXPECT_NEAR(result.metrics.measured_sec, t.duration() - 150.0, 1e-9);
}

TEST(SimulatorTest, BeaconLoadsCoverAllLookupsAndUpdates) {
  const trace::Trace t = test_trace();
  core::CacheCloud cloud(cloud_config("utility"), t);
  const SimResult result = run_simulation(cloud, t);

  double lookups = 0.0;
  double updates = 0.0;
  for (std::size_t i = 0; i < result.metrics.beacon_lookups.size(); ++i) {
    lookups += result.metrics.beacon_lookups[i];
    updates += result.metrics.beacon_updates[i];
  }
  // Update work counts the notification plus the per-holder fan-out, so it
  // is at least one unit per update event.
  EXPECT_GE(updates, static_cast<double>(result.metrics.updates));
  EXPECT_DOUBLE_EQ(
      lookups, static_cast<double>(result.metrics.cloud_hits +
                                   result.metrics.group_misses));
}

TEST(SimulatorTest, PlacementPoliciesOrderAsInPaper) {
  const trace::Trace t = test_trace(/*updates_per_minute=*/200.0);

  auto run_with = [&](const std::string& placement) {
    core::CloudConfig config = cloud_config(placement);
    if (placement == "utility") {
      config.utility.threshold = 0.5;
    }
    core::CacheCloud cloud(config, t);
    return run_simulation(cloud, t);
  };

  const SimResult adhoc = run_with("adhoc");
  const SimResult beacon = run_with("beacon");
  const SimResult utility = run_with("utility");

  // Paper Fig 8 at high update rates: utility generates the least traffic;
  // beacon placement suffers from per-request transfers.
  EXPECT_LT(utility.metrics.total_network_bytes(),
            adhoc.metrics.total_network_bytes());
  EXPECT_LT(utility.metrics.total_network_bytes(),
            beacon.metrics.total_network_bytes());
  // Ad hoc keeps the most copies; beacon the fewest.
  EXPECT_GT(adhoc.metrics.stored_copies, utility.metrics.stored_copies);
  // Beacon placement: local hit rate is poor by design.
  EXPECT_LT(beacon.metrics.local_hit_rate(), adhoc.metrics.local_hit_rate());
}

TEST(SimulatorTest, DynamicHashingBalancesBetterThanStatic) {
  trace::ZipfTraceConfig tc;
  tc.num_docs = 2000;
  tc.num_caches = 10;
  tc.duration_sec = 1800.0;
  tc.requests_per_sec = 50.0;
  tc.updates_per_minute = 100.0;
  tc.seed = 21;
  const trace::Trace t = trace::generate_zipf_trace(tc);

  auto covariance_for = [&](core::CloudConfig::Hashing hashing) {
    core::CloudConfig config;
    config.num_caches = 10;
    config.hashing = hashing;
    config.ring_size = 2;
    config.placement = "utility";
    config.cycle_sec = 300.0;
    core::CacheCloud cloud(config, t);
    const SimResult result = run_simulation(cloud, t);
    return result.metrics.beacon_load_stats().coefficient_of_variation();
  };

  const double static_cov =
      covariance_for(core::CloudConfig::Hashing::Static);
  const double dynamic_cov =
      covariance_for(core::CloudConfig::Hashing::Dynamic);
  EXPECT_LT(dynamic_cov, static_cov);
}

}  // namespace
}  // namespace cachecloud::sim
