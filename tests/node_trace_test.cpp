// End-to-end distributed tracing: client-stamped requests leave linked
// spans at every hop, the TraceDump wire scrape collects them, and
// stitching yields one rooted tree per request.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/mux_client.hpp"
#include "net/tcp.hpp"
#include "node/cluster.hpp"
#include "node/protocol.hpp"
#include "node/trace_scrape.hpp"
#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "obs/trace_stitch.hpp"
#include "util/json.hpp"

namespace cachecloud::node {
namespace {

NodeConfig traced_config() {
  NodeConfig config;
  config.num_caches = 4;
  config.ring_size = 2;
  config.irh_gen = 100;
  config.trace.collect = true;
  // A generous slow threshold keeps tail retention out of these tests:
  // only the explicit sampled bit (or an error) retains a span.
  config.trace.store.slow_threshold_sec = 10.0;
  return config;
}

[[nodiscard]] std::vector<std::uint16_t> all_ports(Cluster& cluster) {
  std::vector<std::uint16_t> ports;
  for (NodeId id = 0; id < cluster.num_caches(); ++id) {
    ports.push_back(cluster.cache(id).port());
  }
  ports.push_back(cluster.origin().port());
  return ports;
}

// A URL whose beacon point is NOT `client`, so the traced get must cross
// the wire for its lookup.
[[nodiscard]] std::string remote_beacon_url(Cluster& cluster,
                                            NodeId client) {
  for (int i = 0; i < 1000; ++i) {
    const std::string url = "/trace/doc" + std::to_string(i);
    if (cluster.cache(client).ring_view().resolve(url).beacon != client) {
      return url;
    }
  }
  ADD_FAILURE() << "no URL with a remote beacon found";
  return "/trace/doc0";
}

TEST(NodeTraceTest, ClientGetThroughRemoteBeaconStitchesToOneRootedTree) {
  Cluster cluster(traced_config());
  const NodeId client = 0;
  const std::string url = remote_beacon_url(cluster, client);
  const NodeId beacon = cluster.cache(client).ring_view().resolve(url).beacon;
  cluster.origin().add_document(url, 512);

  // The wire client stamps its own trace context, sampled.
  const std::uint64_t trace_id = obs::next_trace_id();
  net::MuxClient wire(cluster.cache(client).port());
  const net::Frame reply = wire.call(with_trace(
      ClientGetReq{url}.encode(), obs::SpanContext{trace_id, 0, true}));
  ASSERT_TRUE(ClientGetResp::decode(reply).ok);

  // Scrape every node (caches and origin alike) and stitch.
  const ScrapeResult scraped = scrape_traces(all_ports(cluster));
  EXPECT_TRUE(scraped.errors.empty());
  EXPECT_EQ(scraped.nodes_scraped, cluster.num_caches() + 1);
  std::vector<obs::SpanRecord> ours;
  for (const obs::SpanRecord& span : scraped.spans) {
    if (span.trace_id == trace_id) ours.push_back(span);
  }
  const std::vector<obs::TraceTree> traces = obs::stitch_traces(ours);
  ASSERT_EQ(traces.size(), 1u) << "one request must stitch to one trace";
  const obs::TraceTree& tree = traces[0];

  // Root: the client-facing get at the requesting cache.
  ASSERT_TRUE(tree.rooted());
  EXPECT_EQ(tree.spans[tree.root].name, "get");
  EXPECT_EQ(tree.spans[tree.root].node,
            "cache-" + std::to_string(client));
  EXPECT_EQ(tree.spans[tree.root].parent_span_id, 0u);

  // Children cover every hop: the lookup at the remote beacon and the
  // body fetch at the origin (first access, so the cloud is empty).
  bool saw_lookup = false;
  bool saw_origin_fetch = false;
  for (std::size_t i = 0; i < tree.spans.size(); ++i) {
    const obs::SpanRecord& span = tree.spans[i];
    if (span.name == "LookupReq") {
      saw_lookup = true;
      EXPECT_EQ(span.node, "cache-" + std::to_string(beacon));
      EXPECT_EQ(span.parent_span_id, tree.spans[tree.root].span_id);
    }
    if (span.name == "FetchReq" && span.node == "origin") {
      saw_origin_fetch = true;
      EXPECT_EQ(span.parent_span_id, tree.spans[tree.root].span_id);
    }
    if (i != tree.root) {
      EXPECT_NE(tree.parent[i], obs::kNoSpan)
          << span.name << " at " << span.node << " has a dangling parent";
    }
  }
  EXPECT_TRUE(saw_lookup);
  EXPECT_TRUE(saw_origin_fetch);
  EXPECT_GE(tree.spans.size(), 3u);

  // The Chrome-trace export of the full scrape parses as JSON.
  const util::JsonValue doc =
      util::JsonValue::parse(obs::to_chrome_trace(traces));
  ASSERT_TRUE(doc.is_object());
  EXPECT_GE(doc.at("traceEvents").as_array().size(), tree.spans.size());

  cluster.stop_all();
}

TEST(NodeTraceTest, ClientPublishTracesUpdateFlowThroughBeacon) {
  Cluster cluster(traced_config());
  const std::string url = "/trace/update-doc";
  cluster.origin().add_document(url, 256);
  // Seed a holder so the update has somewhere to propagate.
  (void)cluster.cache(1).get(url);

  const std::uint64_t trace_id = obs::next_trace_id();
  net::MuxClient wire(cluster.origin().port());
  const net::Frame reply = wire.call(with_trace(
      ClientPublishReq{url}.encode(), obs::SpanContext{trace_id, 0, true}));
  ASSERT_TRUE(ClientPublishResp::decode(reply).ok);

  const ScrapeResult scraped = scrape_traces(all_ports(cluster));
  std::vector<obs::SpanRecord> ours;
  for (const obs::SpanRecord& span : scraped.spans) {
    if (span.trace_id == trace_id) ours.push_back(span);
  }
  const std::vector<obs::TraceTree> traces = obs::stitch_traces(ours);
  ASSERT_EQ(traces.size(), 1u);
  const obs::TraceTree& tree = traces[0];
  ASSERT_TRUE(tree.rooted());
  EXPECT_EQ(tree.spans[tree.root].name, "publish_update");
  EXPECT_EQ(tree.spans[tree.root].node, "origin");
  bool saw_push = false;
  for (const obs::SpanRecord& span : tree.spans) {
    if (span.name == "UpdatePush") saw_push = true;
  }
  EXPECT_TRUE(saw_push) << "beacon's UpdatePush hop missing from the tree";

  cluster.stop_all();
}

TEST(NodeTraceTest, UnsampledTrafficLeavesStoresEmpty) {
  NodeConfig config = traced_config();
  config.trace.sample_probability = 0.0;  // node-minted traces: never keep
  Cluster cluster(config);
  const std::string url = "/trace/unsampled";
  cluster.origin().add_document(url, 128);
  for (NodeId id = 0; id < cluster.num_caches(); ++id) {
    (void)cluster.cache(id).get(url);
  }
  const ScrapeResult scraped = scrape_traces(all_ports(cluster));
  EXPECT_TRUE(scraped.errors.empty());
  EXPECT_TRUE(scraped.spans.empty())
      << "unsampled fast spans must not be retained";
  cluster.stop_all();
}

TEST(NodeTraceTest, TraceDumpDrainEmptiesTheStores) {
  Cluster cluster(traced_config());
  const std::string url = "/trace/drain";
  cluster.origin().add_document(url, 128);
  net::MuxClient wire(cluster.cache(0).port());
  (void)wire.call(with_trace(ClientGetReq{url}.encode(),
                             obs::SpanContext{obs::next_trace_id(), 0, true}));

  const ScrapeResult first =
      scrape_traces(all_ports(cluster), /*drain=*/true);
  EXPECT_FALSE(first.spans.empty());
  const ScrapeResult second = scrape_traces(all_ports(cluster));
  EXPECT_TRUE(second.spans.empty()) << "drain must clear the stores";
  cluster.stop_all();
}

TEST(NodeTraceTest, CollectionOffAnswersEmptyTraceDump) {
  NodeConfig config;
  config.num_caches = 2;
  config.ring_size = 2;
  Cluster cluster(config);  // trace.collect defaults to off
  const std::string url = "/trace/off";
  cluster.origin().add_document(url, 128);
  (void)cluster.cache(0).get(url);
  const ScrapeResult scraped = scrape_traces(all_ports(cluster));
  EXPECT_TRUE(scraped.errors.empty());
  EXPECT_EQ(scraped.nodes_scraped, cluster.num_caches() + 1);
  EXPECT_TRUE(scraped.spans.empty());
  cluster.stop_all();
}

}  // namespace
}  // namespace cachecloud::node
