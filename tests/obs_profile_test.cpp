// Unit tests for the contention & resource profiler: the TimedMutex
// collectors (dormant, uncontended, contended and mid-hold-toggle paths),
// worker/IO accounting, the profile-metric snapshot filter and the
// summarize/report pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace cachecloud::obs {
namespace {

// Every test that flips the process-wide switch restores it, so test order
// never leaks profiling state.
class ProfilingGuard {
 public:
  explicit ProfilingGuard(bool on) { set_profiling_enabled(on); }
  ~ProfilingGuard() { set_profiling_enabled(false); }
};

// The registry handles a bound TimedMutex writes through; same instrument
// lookup the mutex itself performed in bind().
struct LockInstruments {
  Counter& acquisitions;
  Counter& contended;
  LatencyHistogram& wait;
  LatencyHistogram& hold;
};

LockInstruments lock_instruments(Registry& registry, const std::string& name) {
  const Labels labels{{"lock", name}};
  return {
      registry.counter("cachecloud_lock_acquire_total", "", labels),
      registry.counter("cachecloud_lock_contended_total", "", labels),
      registry.histogram("cachecloud_lock_wait_seconds", "",
                         profile_time_bounds(), labels),
      registry.histogram("cachecloud_lock_hold_seconds", "",
                         profile_time_bounds(), labels),
  };
}

// ------------------------------------------------------------- TimedMutex

TEST(TimedMutexTest, UnboundBehavesLikePlainMutex) {
  const ProfilingGuard guard(true);  // even with profiling on
  TimedMutex mu;
  EXPECT_TRUE(mu.name().empty());
  {
    const TimedLock lock(mu);
    EXPECT_FALSE(mu.try_lock());
  }
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
  // Mutual exclusion still holds: concurrent increments land exactly.
  int shared = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        const TimedLock lock(mu);
        ++shared;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(shared, 40'000);
}

TEST(TimedMutexTest, DormantWhileProfilingOff) {
  const ProfilingGuard guard(false);
  Registry registry;
  TimedMutex mu;
  mu.bind(registry, "m");
  EXPECT_EQ(mu.name(), "m");
  for (int i = 0; i < 100; ++i) {
    const TimedLock lock(mu);
  }
  const LockInstruments ins = lock_instruments(registry, "m");
  EXPECT_EQ(ins.acquisitions.value(), 0u);
  EXPECT_EQ(ins.contended.value(), 0u);
  EXPECT_EQ(ins.wait.count(), 0u);
  EXPECT_EQ(ins.hold.count(), 0u);
}

TEST(TimedMutexTest, UncontendedAcquisitionsRecordHoldTimes) {
  const ProfilingGuard guard(true);
  Registry registry;
  TimedMutex mu;
  mu.bind(registry, "m");
  constexpr std::uint64_t kAcquisitions = 50;
  for (std::uint64_t i = 0; i < kAcquisitions; ++i) {
    const TimedLock lock(mu);
  }
  const LockInstruments ins = lock_instruments(registry, "m");
  EXPECT_EQ(ins.acquisitions.value(), kAcquisitions);
  EXPECT_EQ(ins.contended.value(), 0u);  // single thread never waits
  EXPECT_EQ(ins.wait.count(), 0u);
  EXPECT_EQ(ins.hold.count(), kAcquisitions);
  EXPECT_GE(ins.hold.sum(), 0.0);
}

TEST(TimedMutexTest, TryLockCountsSuccessOnly) {
  const ProfilingGuard guard(true);
  Registry registry;
  TimedMutex mu;
  mu.bind(registry, "m");
  ASSERT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());  // failed attempt: no counters, no wait
  mu.unlock();
  const LockInstruments ins = lock_instruments(registry, "m");
  EXPECT_EQ(ins.acquisitions.value(), 1u);
  EXPECT_EQ(ins.contended.value(), 0u);
  EXPECT_EQ(ins.hold.count(), 1u);
}

TEST(TimedMutexTest, ContendedAcquisitionTimesTheWait) {
  const ProfilingGuard guard(true);
  Registry registry;
  TimedMutex mu;
  mu.bind(registry, "m");
  const LockInstruments ins = lock_instruments(registry, "m");

  // The holder keeps the lock until it can see the main thread blocked:
  // lock() bumps the contended counter *before* parking on the mutex, so
  // waiting for it makes the contention deterministic, not timing-luck.
  std::atomic<bool> held{false};
  std::thread holder([&] {
    const TimedLock lock(mu);
    held.store(true);
    while (ins.contended.value() == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  });
  while (!held.load()) std::this_thread::yield();
  {
    const TimedLock lock(mu);  // must wait for the holder
  }
  holder.join();

  EXPECT_EQ(ins.acquisitions.value(), 2u);
  EXPECT_EQ(ins.contended.value(), 1u);
  EXPECT_EQ(ins.wait.count(), 1u);
  EXPECT_GT(ins.wait.sum(), 0.0);
  EXPECT_EQ(ins.hold.count(), 2u);
  EXPECT_GT(ins.hold.sum(), 0.0);  // holder held for >= 500us
}

TEST(TimedMutexTest, EnablingMidHoldRecordsNoTornSample) {
  const ProfilingGuard guard(false);
  Registry registry;
  TimedMutex mu;
  mu.bind(registry, "m");
  mu.lock();  // dormant acquisition: no timestamp taken
  set_profiling_enabled(true);
  mu.unlock();  // must not observe a hold with a garbage start time
  const LockInstruments ins = lock_instruments(registry, "m");
  EXPECT_EQ(ins.hold.count(), 0u);
  // The next full acquisition records normally.
  {
    const TimedLock lock(mu);
  }
  EXPECT_EQ(ins.hold.count(), 1u);
}

// ---------------------------------------------------------- WorkerProfile

TEST(WorkerProfileTest, ConnGaugesTrackLiveAndPeak) {
  const ProfilingGuard guard(false);  // gauges run even with profiling off
  Registry registry;
  WorkerProfile worker;
  EXPECT_FALSE(worker.bound());
  worker.conn_opened();  // unbound: safe no-op
  worker.bind(registry);
  ASSERT_TRUE(worker.bound());

  worker.conn_opened();
  worker.conn_opened();
  worker.conn_opened();
  worker.conn_closed();
  const Snapshot snap = registry.snapshot();
  const SampleSnapshot* live = snap.find("cachecloud_conn_threads");
  const SampleSnapshot* peak = snap.find("cachecloud_conn_threads_peak");
  ASSERT_NE(live, nullptr);
  ASSERT_NE(peak, nullptr);
  EXPECT_DOUBLE_EQ(live->value, 2.0);
  EXPECT_DOUBLE_EQ(peak->value, 3.0);  // high-water mark survives closes
}

TEST(WorkerProfileTest, TimeCountersAccumulatePerState) {
  Registry registry;
  WorkerProfile worker;
  worker.add_busy_ns(1);  // unbound: safe no-op
  worker.bind(registry);
  worker.add_busy_ns(1'000);
  worker.add_busy_ns(500);
  worker.add_read_wait_ns(2'000);
  const Snapshot snap = registry.snapshot();
  const SampleSnapshot* busy =
      snap.find("cachecloud_worker_time_ns_total", {{"state", "busy"}});
  const SampleSnapshot* read_wait =
      snap.find("cachecloud_worker_time_ns_total", {{"state", "read_wait"}});
  ASSERT_NE(busy, nullptr);
  ASSERT_NE(read_wait, nullptr);
  EXPECT_DOUBLE_EQ(busy->value, 1'500.0);
  EXPECT_DOUBLE_EQ(read_wait->value, 2'000.0);
}

// -------------------------------------------------------------- IoProfile

TEST(IoProfileTest, CountersAreGatedOnTheProfilingSwitch) {
  const ProfilingGuard guard(false);
  Registry registry;
  IoProfile io;
  io.on_recv(100);  // unbound: safe no-op
  io.bind(registry, "server");
  ASSERT_TRUE(io.bound());

  io.on_recv(100);  // profiling off: dropped
  io.on_send(200);
  set_profiling_enabled(true);
  io.on_recv(10);
  io.on_recv(20);
  io.on_send(30);

  const Snapshot snap = registry.snapshot();
  const Labels recv{{"op", "recv"}, {"role", "server"}};
  const Labels send{{"op", "send"}, {"role", "server"}};
  EXPECT_DOUBLE_EQ(snap.find("cachecloud_io_syscalls_total", recv)->value,
                   2.0);
  EXPECT_DOUBLE_EQ(snap.find("cachecloud_io_bytes_total", recv)->value, 30.0);
  EXPECT_DOUBLE_EQ(snap.find("cachecloud_io_syscalls_total", send)->value,
                   1.0);
  EXPECT_DOUBLE_EQ(snap.find("cachecloud_io_bytes_total", send)->value, 30.0);
}

// ------------------------------------------------------- snapshot filter

TEST(ProfileSnapshotTest, FilterKeepsOnlyProfilerFamilies) {
  EXPECT_TRUE(is_profile_metric("cachecloud_lock_wait_seconds"));
  EXPECT_TRUE(is_profile_metric("cachecloud_conn_threads"));
  EXPECT_FALSE(is_profile_metric("cachecloud_gets_total"));

  const ProfilingGuard guard(true);
  Registry registry;
  TimedMutex mu;
  mu.bind(registry, "m");
  {
    const TimedLock lock(mu);
  }
  registry.counter("cachecloud_gets_total", "app metric").inc(7);
  registry.histogram("cachecloud_latency_seconds", "app hist", {0.1})
      .observe(0.05);

  const Snapshot filtered = profile_snapshot(registry.snapshot());
  EXPECT_EQ(filtered.find("cachecloud_gets_total"), nullptr);
  EXPECT_EQ(filtered.find_histogram("cachecloud_latency_seconds"), nullptr);
  ASSERT_NE(filtered.find("cachecloud_lock_acquire_total", {{"lock", "m"}}),
            nullptr);
  ASSERT_NE(
      filtered.find_histogram("cachecloud_lock_hold_seconds", {{"lock", "m"}}),
      nullptr);
}

// ------------------------------------------------------------- summaries

// Builds a node snapshot with two locks of known wait totals plus worker
// and IO activity, through the real collectors.
Snapshot synthetic_node_snapshot(Registry& registry, double hot_wait_sec,
                                 double cold_wait_sec) {
  lock_instruments(registry, "hot").acquisitions.inc(100);
  lock_instruments(registry, "hot").contended.inc(40);
  lock_instruments(registry, "hot").wait.observe(hot_wait_sec);
  lock_instruments(registry, "hot").hold.observe(0.002);
  lock_instruments(registry, "cold").acquisitions.inc(10);
  lock_instruments(registry, "cold").contended.inc(1);
  lock_instruments(registry, "cold").wait.observe(cold_wait_sec);
  lock_instruments(registry, "cold").hold.observe(0.001);

  WorkerProfile worker;
  worker.bind(registry);
  worker.add_busy_ns(3'000'000'000);       // 3s busy
  worker.add_read_wait_ns(1'000'000'000);  // 1s waiting
  worker.conn_opened();

  const ProfilingGuard guard(true);
  IoProfile io;
  io.bind(registry, "server");
  io.on_recv(1024);
  io.on_send(2048);
  return registry.snapshot();
}

TEST(ContentionSummaryTest, AppendAndFinalizeRankLocksByWait) {
  Registry registry;
  const Snapshot snap = synthetic_node_snapshot(registry, 0.030, 0.010);

  ContentionSummary summary;
  summary.enabled = true;
  append_contention("cache-0", snap, summary);
  finalize_contention(summary, 10);

  ASSERT_EQ(summary.locks.size(), 2u);
  EXPECT_EQ(summary.locks[0].lock, "hot");  // sorted by wait desc
  EXPECT_EQ(summary.locks[0].node, "cache-0");
  EXPECT_EQ(summary.locks[0].acquisitions, 100u);
  EXPECT_EQ(summary.locks[0].contended, 40u);
  EXPECT_NEAR(summary.total_wait_sec, 0.040, 1e-9);
  EXPECT_NEAR(summary.locks[0].wait_share, 0.75, 1e-9);
  EXPECT_NEAR(summary.locks[1].wait_share, 0.25, 1e-9);
  EXPECT_GT(summary.locks[0].wait_p99_sec, 0.0);
  EXPECT_GT(summary.locks[0].hold_total_sec, 0.0);

  ASSERT_EQ(summary.workers.size(), 1u);
  EXPECT_NEAR(summary.workers[0].busy_sec, 3.0, 1e-9);
  EXPECT_NEAR(summary.workers[0].read_wait_sec, 1.0, 1e-9);
  EXPECT_NEAR(summary.workers[0].utilization, 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(summary.workers[0].conn_threads, 1.0);

  ASSERT_EQ(summary.io.size(), 1u);
  EXPECT_EQ(summary.io[0].recv_syscalls, 1u);
  EXPECT_EQ(summary.io[0].recv_bytes, 1024u);
  EXPECT_EQ(summary.io[0].send_bytes, 2048u);
}

TEST(ContentionSummaryTest, TopKTruncatesAfterSorting) {
  Registry a;
  Registry b;
  ContentionSummary summary;
  summary.enabled = true;
  append_contention("cache-0", synthetic_node_snapshot(a, 0.030, 0.010),
                    summary);
  append_contention("cache-1", synthetic_node_snapshot(b, 0.100, 0.005),
                    summary);
  finalize_contention(summary, 2);

  ASSERT_EQ(summary.locks.size(), 2u);  // 4 locks folded, 2 kept
  EXPECT_EQ(summary.locks[0].node, "cache-1");
  EXPECT_EQ(summary.locks[0].lock, "hot");
  EXPECT_EQ(summary.locks[1].node, "cache-0");
  EXPECT_EQ(summary.locks[1].lock, "hot");
  // Shares are of the *total* wait, including truncated locks.
  EXPECT_NEAR(summary.total_wait_sec, 0.145, 1e-9);
  EXPECT_NEAR(summary.locks[0].wait_share, 0.100 / 0.145, 1e-9);
}

TEST(ContentionSummaryTest, TableReportsDisabledProfilingExplicitly) {
  ContentionSummary off;
  off.enabled = false;
  const std::string off_table = contention_table(off);
  EXPECT_NE(off_table.find("profiling was off"), std::string::npos);

  Registry registry;
  ContentionSummary on;
  on.enabled = true;
  append_contention("cache-0", synthetic_node_snapshot(registry, 0.030, 0.010),
                    on);
  finalize_contention(on, 10);
  const std::string table = contention_table(on);
  EXPECT_NE(table.find("cache-0/hot"), std::string::npos);
  EXPECT_NE(table.find("total lock wait"), std::string::npos);
  EXPECT_NE(table.find("workers:"), std::string::npos);
  EXPECT_NE(table.find("io:"), std::string::npos);
}

}  // namespace
}  // namespace cachecloud::obs
