// Cross-module integration tests: heterogeneous capabilities, trace file
// round-trips through the simulator, and determinism guarantees.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/beacon_ring.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace cachecloud {
namespace {

TEST(CapabilityTest, RingShiftsLoadTowardStrongerPoint) {
  // One point twice as capable: after feedback cycles under uniform load it
  // should own ~2/3 of the hash space and carry ~2/3 of the load.
  core::BeaconRing::Config config;
  config.irh_gen = 300;
  core::BeaconRing ring({0, 1}, {2.0, 1.0}, config);

  for (int cycle = 0; cycle < 4; ++cycle) {
    for (std::uint32_t k = 0; k < 300; ++k) ring.record_load(k, 1.0);
    ring.rebalance();
  }
  const double share = static_cast<double>(ring.ranges()[0].length()) / 300.0;
  EXPECT_NEAR(share, 2.0 / 3.0, 0.02);
}

TEST(CapabilityTest, CloudHonorsCapabilities) {
  trace::ZipfTraceConfig tc;
  tc.num_docs = 1000;
  tc.num_caches = 4;
  tc.duration_sec = 1200.0;
  tc.requests_per_sec = 30.0;
  tc.updates_per_minute = 60.0;
  const trace::Trace trace = trace::generate_zipf_trace(tc);

  core::CloudConfig config;
  config.num_caches = 4;
  config.hashing = core::CloudConfig::Hashing::Dynamic;
  config.ring_size = 2;
  config.placement = "beacon";
  config.cycle_sec = 120.0;
  // Cache 0 is 3x as capable as its ring partner cache 1.
  config.capabilities = {3.0, 1.0, 1.0, 1.0};
  core::CacheCloud cloud(config, trace);

  sim::SimConfig sim_config;
  sim_config.metrics_start_sec = 480.0;  // past the first few cycles
  const sim::SimResult result = sim::run_simulation(cloud, trace, sim_config);

  const auto loads = result.metrics.beacon_load_per_minute();
  // Cache 0 should handle substantially more than cache 1 (target 3x;
  // granularity and noise allowed for).
  EXPECT_GT(loads[0], loads[1] * 1.8);
}

TEST(IntegrationTest, TraceFileRoundTripGivesIdenticalSimulation) {
  trace::ZipfTraceConfig tc;
  tc.num_docs = 300;
  tc.num_caches = 4;
  tc.duration_sec = 120.0;
  tc.requests_per_sec = 15.0;
  tc.updates_per_minute = 20.0;
  const trace::Trace original = trace::generate_zipf_trace(tc);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "cachecloud_roundtrip.trace";
  trace::write_trace_file(path.string(), original);
  const trace::Trace loaded = trace::read_trace_file(path.string());
  std::filesystem::remove(path);

  core::CloudConfig config;
  config.num_caches = 4;
  config.ring_size = 2;
  config.placement = "utility";
  config.cycle_sec = 30.0;

  core::CacheCloud cloud_a(config, original);
  core::CacheCloud cloud_b(config, loaded);
  const sim::SimResult a = sim::run_simulation(cloud_a, original);
  const sim::SimResult b = sim::run_simulation(cloud_b, loaded);

  EXPECT_EQ(a.metrics.requests, b.metrics.requests);
  EXPECT_EQ(a.metrics.local_hits, b.metrics.local_hits);
  EXPECT_EQ(a.metrics.cloud_hits, b.metrics.cloud_hits);
  EXPECT_EQ(a.metrics.total_network_bytes(), b.metrics.total_network_bytes());
  EXPECT_EQ(a.rebalances, b.rebalances);
  EXPECT_EQ(a.records_transferred, b.records_transferred);
}

TEST(IntegrationTest, SimulationIsDeterministic) {
  trace::SydneyTraceConfig tc;
  tc.num_docs = 2000;
  tc.num_caches = 6;
  tc.duration_sec = 6.0 * 3600.0;
  tc.peak_requests_per_sec = 1.0;
  const trace::Trace trace = trace::generate_sydney_trace(tc);

  auto run_once = [&] {
    core::CloudConfig config;
    config.num_caches = 6;
    config.ring_size = 2;
    config.placement = "utility";
    core::CacheCloud cloud(config, trace);
    return sim::run_simulation(cloud, trace);
  };
  const sim::SimResult a = run_once();
  const sim::SimResult b = run_once();
  EXPECT_EQ(a.metrics.local_hits, b.metrics.local_hits);
  EXPECT_EQ(a.metrics.stored_copies, b.metrics.stored_copies);
  EXPECT_EQ(a.metrics.total_network_bytes(), b.metrics.total_network_bytes());
  EXPECT_EQ(a.metrics.beacon_load_per_minute(),
            b.metrics.beacon_load_per_minute());
}

// The headline end-to-end property across every (hashing, placement) pair:
// protocol invariants hold through a full mixed workload.
class FullMatrix
    : public ::testing::TestWithParam<
          std::tuple<core::CloudConfig::Hashing, const char*>> {};

TEST_P(FullMatrix, HitAccountingAndDirectoryConsistency) {
  const auto [hashing, placement] = GetParam();
  trace::ZipfTraceConfig tc;
  tc.num_docs = 500;
  tc.num_caches = 5;
  tc.duration_sec = 300.0;
  tc.requests_per_sec = 15.0;
  tc.updates_per_minute = 60.0;
  const trace::Trace trace = trace::generate_zipf_trace(tc);

  core::CloudConfig config;
  config.num_caches = 5;
  config.hashing = hashing;
  config.ring_size = 2;
  config.placement = placement;
  config.per_cache_capacity_bytes = 500 * 1024;
  config.cycle_sec = 60.0;
  core::CacheCloud cloud(config, trace);
  const sim::SimResult result = sim::run_simulation(cloud, trace);

  EXPECT_EQ(result.metrics.local_hits + result.metrics.cloud_hits +
                result.metrics.group_misses,
            result.metrics.requests);
  EXPECT_EQ(result.metrics.updates, trace.update_count());

  // Directory exactly mirrors the stores.
  for (trace::DocId d = 0; d < 500; ++d) {
    for (trace::CacheId c = 0; c < 5; ++c) {
      ASSERT_EQ(cloud.directory().is_holder(d, c), cloud.store(c).contains(d))
          << "doc " << d << " cache " << c << " under " << placement;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FullMatrix,
    ::testing::Combine(::testing::Values(core::CloudConfig::Hashing::Static,
                                         core::CloudConfig::Hashing::Consistent,
                                         core::CloudConfig::Hashing::Dynamic),
                       ::testing::Values("adhoc", "beacon", "utility")));

}  // namespace
}  // namespace cachecloud
