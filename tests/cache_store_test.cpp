#include "cache/document_store.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "cache/replacement.hpp"
#include "cache/tiered_store.hpp"

namespace cachecloud::cache {
namespace {

std::unique_ptr<DocumentStore> make_store(std::uint64_t capacity,
                                          const std::string& policy = "lru") {
  return std::make_unique<DocumentStore>(capacity, make_policy(policy));
}

TEST(DocumentStoreTest, PutGetPeek) {
  auto store = make_store(0);
  const auto result = store->put(1, 100, 1, 0.0);
  EXPECT_TRUE(result.stored);
  EXPECT_TRUE(result.evicted.empty());
  EXPECT_TRUE(store->contains(1));
  EXPECT_EQ(store->used_bytes(), 100u);
  EXPECT_EQ(store->doc_count(), 1u);

  const auto doc = store->get(1, 5.0);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->size_bytes, 100u);
  EXPECT_EQ(doc->version, 1u);
  EXPECT_EQ(doc->access_count, 2u);  // put + get
  EXPECT_DOUBLE_EQ(doc->last_access, 5.0);

  EXPECT_EQ(store->peek(2), nullptr);
  EXPECT_FALSE(store->get(2, 6.0).has_value());
}

TEST(DocumentStoreTest, LruEvictionOrder) {
  auto store = make_store(300);
  store->put(1, 100, 1, 0.0);
  store->put(2, 100, 1, 1.0);
  store->put(3, 100, 1, 2.0);
  // Touch doc 1 so doc 2 becomes the LRU victim.
  store->get(1, 3.0);
  const auto result = store->put(4, 100, 1, 4.0);
  EXPECT_TRUE(result.stored);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 2u);
  EXPECT_TRUE(store->contains(1));
  EXPECT_FALSE(store->contains(2));
}

TEST(DocumentStoreTest, EvictsMultipleToFit) {
  auto store = make_store(300);
  store->put(1, 100, 1, 0.0);
  store->put(2, 100, 1, 1.0);
  store->put(3, 100, 1, 2.0);
  // 250 bytes into a full 300-byte disk: 100+100 freed is not enough, so a
  // third eviction is required.
  const auto result = store->put(4, 250, 1, 3.0);
  EXPECT_TRUE(result.stored);
  EXPECT_EQ(result.evicted.size(), 3u);
  EXPECT_LE(store->used_bytes(), 300u);
  EXPECT_EQ(store->used_bytes(), 250u);
}

TEST(DocumentStoreTest, OversizedDocumentRejected) {
  auto store = make_store(100);
  const auto result = store->put(1, 500, 1, 0.0);
  EXPECT_FALSE(result.stored);
  EXPECT_TRUE(result.evicted.empty());
  EXPECT_EQ(store->doc_count(), 0u);
}

TEST(DocumentStoreTest, RePutRefreshesInsteadOfDuplicating) {
  auto store = make_store(0);
  store->put(1, 100, 1, 0.0);
  const auto result = store->put(1, 100, 2, 1.0);
  EXPECT_TRUE(result.stored);
  EXPECT_EQ(store->doc_count(), 1u);
  EXPECT_EQ(store->peek(1)->version, 2u);
  EXPECT_EQ(store->peek(1)->access_count, 2u);
}

TEST(DocumentStoreTest, ApplyUpdateBumpsVersionAndBytes) {
  auto store = make_store(0);
  store->put(1, 100, 1, 0.0);
  const std::uint64_t written_before = store->bytes_written();
  EXPECT_TRUE(store->apply_update(1, 2, 100, 1.0));
  EXPECT_EQ(store->peek(1)->version, 2u);
  EXPECT_GT(store->bytes_written(), written_before);
  // Stale pushes are ignored but reported as "document present".
  EXPECT_TRUE(store->apply_update(1, 2, 100, 2.0));
  EXPECT_EQ(store->peek(1)->version, 2u);
  // Missing documents are reported.
  EXPECT_FALSE(store->apply_update(9, 3, 50, 3.0));
}

TEST(DocumentStoreTest, ApplyUpdateGrowthCanEvict) {
  auto store = make_store(300, "lru");
  store->put(1, 100, 1, 0.0);
  store->put(2, 100, 1, 1.0);
  store->put(3, 100, 1, 2.0);
  std::vector<DocId> evicted;
  EXPECT_TRUE(store->apply_update(3, 2, 250, 3.0, &evicted));
  EXPECT_FALSE(evicted.empty());
  EXPECT_LE(store->used_bytes(), 300u);
  EXPECT_EQ(store->peek(3)->size_bytes, 250u);
}

TEST(DocumentStoreTest, ApplyUpdateBeyondDiskDropsDocument) {
  auto store = make_store(300);
  store->put(1, 100, 1, 0.0);
  std::vector<DocId> evicted;
  EXPECT_TRUE(store->apply_update(1, 2, 1000, 1.0, &evicted));
  EXPECT_FALSE(store->contains(1));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
}

TEST(DocumentStoreTest, EraseAccounting) {
  auto store = make_store(0);
  store->put(1, 100, 1, 0.0);
  store->put(2, 50, 1, 0.0);
  EXPECT_TRUE(store->erase(1));
  EXPECT_FALSE(store->erase(1));
  EXPECT_EQ(store->used_bytes(), 50u);
  EXPECT_EQ(store->doc_count(), 1u);
}

TEST(DocumentStoreTest, ResidenceEstimate) {
  auto unlimited = make_store(0);
  unlimited->put(1, 100, 1, 0.0);
  EXPECT_TRUE(std::isinf(unlimited->expected_residence_sec(10.0)));

  auto bounded = make_store(1000);
  bounded->put(1, 100, 1, 0.0);
  // 100 bytes written in 10 seconds -> churn 10 B/s -> residence 100 s.
  EXPECT_NEAR(bounded->expected_residence_sec(10.0), 100.0, 1e-9);
}

TEST(DocumentStoreTest, RequiresPolicy) {
  EXPECT_THROW(DocumentStore(0, nullptr), std::invalid_argument);
}

TEST(DocumentStoreTest, ForEachVisitsAll) {
  auto store = make_store(0);
  store->put(1, 10, 1, 0.0);
  store->put(2, 20, 1, 0.0);
  std::set<DocId> seen;
  store->for_each([&](const StoredDoc& d) { seen.insert(d.id); });
  EXPECT_EQ(seen, (std::set<DocId>{1, 2}));
}

// ------------------------------------------------------- policies

TEST(ReplacementPolicyTest, FactoryNames) {
  EXPECT_EQ(make_policy("lru")->name(), "lru");
  EXPECT_EQ(make_policy("lfu")->name(), "lfu");
  EXPECT_EQ(make_policy("gdsf")->name(), "gdsf");
  EXPECT_THROW(make_policy("fifo"), std::invalid_argument);
}

TEST(ReplacementPolicyTest, LfuEvictsColdest) {
  auto store = make_store(300, "lfu");
  store->put(1, 100, 1, 0.0);
  store->put(2, 100, 1, 1.0);
  store->put(3, 100, 1, 2.0);
  store->get(1, 3.0);
  store->get(1, 4.0);
  store->get(3, 5.0);
  const auto result = store->put(4, 100, 1, 6.0);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 2u);  // only one access
}

TEST(ReplacementPolicyTest, GdsfPrefersEvictingLargeCold) {
  auto store = make_store(1000, "gdsf");
  store->put(1, 800, 1, 0.0);  // large, cold
  store->put(2, 100, 1, 1.0);  // small
  const auto result = store->put(3, 500, 1, 2.0);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 1u);
}

TEST(ReplacementPolicyTest, PoliciesRejectProtocolMisuse) {
  for (const char* name : {"lru", "lfu", "gdsf"}) {
    auto policy = make_policy(name);
    EXPECT_THROW(policy->victim(), std::logic_error) << name;
    EXPECT_THROW(policy->on_access(1, {}), std::logic_error) << name;
    EXPECT_THROW(policy->on_erase(1), std::logic_error) << name;
    policy->on_insert(1, DocMeta{10, 0.0});
    EXPECT_THROW(policy->on_insert(1, DocMeta{10, 0.0}), std::logic_error)
        << name;
    EXPECT_EQ(policy->victim(), 1u) << name;
  }
}

// Parameterized property: under any policy the store never exceeds its
// capacity and victim bookkeeping stays consistent through a random
// workload.
class PolicySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicySweep, CapacityInvariantUnderRandomWorkload) {
  auto store = make_store(5'000, GetParam());
  std::uint64_t state = 12345;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int i = 0; i < 5'000; ++i) {
    const DocId doc = static_cast<DocId>(next() % 200);
    const double now = static_cast<double>(i);
    switch (next() % 4) {
      case 0:
      case 1:
        store->put(doc, 50 + next() % 500, 1 + i, now);
        break;
      case 2:
        store->get(doc, now);
        break;
      case 3:
        store->apply_update(doc, 1 + static_cast<std::uint64_t>(i),
                            50 + next() % 500, now);
        break;
    }
    ASSERT_LE(store->used_bytes(), 5'000u);
    // used_bytes must equal the sum over stored docs.
    std::uint64_t total = 0;
    std::size_t count = 0;
    store->for_each([&](const StoredDoc& d) {
      total += d.size_bytes;
      ++count;
    });
    ASSERT_EQ(total, store->used_bytes());
    ASSERT_EQ(count, store->doc_count());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values("lru", "lfu", "gdsf"));

// ---- tiered byte accounting -----------------------------------------
//
// The memory tier's used_bytes must stay the exact sum of resident bodies
// through every spill/reload choreography: evictions that spill to disk,
// disk hits served in place, warm-restart preloads and updates that touch
// both tiers.

class TieredAccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    namespace fs = std::filesystem;
    dir_ = (fs::temp_directory_path() /
            ("cc_tiered_store_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::unique_ptr<DiskTier> make_disk() {
    DiskTierConfig cfg;
    cfg.directory = dir_;
    return std::make_unique<DiskTier>(cfg, nullptr);
  }

  static std::string url_of(int i) { return "/acct" + std::to_string(i); }
  static std::vector<std::uint8_t> body_of(int i) {
    return std::vector<std::uint8_t>(100, static_cast<std::uint8_t>(i));
  }

  // The invariant: used_bytes is exactly the sum over resident metadata,
  // and never exceeds capacity.
  static void check_accounting(const TieredStore& store,
                               std::uint64_t capacity) {
    std::uint64_t total = 0;
    std::size_t count = 0;
    store.memory().for_each([&](const StoredDoc& d) {
      total += d.size_bytes;
      ++count;
    });
    EXPECT_EQ(total, store.memory().used_bytes());
    EXPECT_EQ(count, store.memory().doc_count());
    if (capacity > 0) EXPECT_LE(store.memory().used_bytes(), capacity);
  }

  std::string dir_;
};

TEST_F(TieredAccountingTest, SpillKeepsBytesExactAndClassifiesEvictions) {
  constexpr std::uint64_t kCapacity = 300;
  TieredStore store(kCapacity, make_policy("lru"), make_disk());

  std::size_t spilled = 0;
  for (int i = 0; i < 8; ++i) {
    const TieredPutResult put = store.put(static_cast<DocId>(i), url_of(i),
                                          body_of(i), 1, double(i));
    EXPECT_TRUE(put.stored);
    // Every memory eviction lands on disk: nothing is ever dropped.
    EXPECT_TRUE(put.dropped_urls.empty()) << "put " << i;
    spilled += put.spilled;
    check_accounting(store, kCapacity);
  }
  EXPECT_EQ(store.memory().doc_count(), 3u);
  EXPECT_EQ(store.memory().used_bytes(), 300u);
  EXPECT_EQ(spilled, 5u);

  // The spilled documents are durable and byte-accounted on disk.
  store.disk()->flush();
  EXPECT_EQ(store.disk()->doc_count(), 5u);
  EXPECT_EQ(store.disk()->used_bytes(), 500u);

  // A disk hit serves in place: memory accounting must not move.
  const TieredStore::ReadResult read =
      store.get(0, url_of(0), /*now=*/10.0);
  ASSERT_TRUE(read.found);
  EXPECT_TRUE(read.from_disk);
  EXPECT_EQ(read.body, body_of(0));
  EXPECT_EQ(store.memory().used_bytes(), 300u);
  check_accounting(store, kCapacity);
}

TEST_F(TieredAccountingTest, ReloadRoundTripRestoresExactBytes) {
  constexpr std::uint64_t kCapacity = 300;
  {
    TieredStore store(kCapacity, make_policy("lru"), make_disk());
    for (int i = 0; i < 6; ++i) {
      (void)store.put(static_cast<DocId>(i), url_of(i), body_of(i), 1,
                      double(i));
    }
    store.disk()->flush();
  }  // graceful shutdown: writer joined, manifest durable

  // Reincarnate over the same directory: recovery replays the manifest and
  // load_recovered preloads only what fits without evicting.
  auto disk = make_disk();
  const auto recovered = disk->recovered();
  ASSERT_EQ(recovered.size(), 3u);  // docs 0..2 were evicted and spilled
  TieredStore store(kCapacity, make_policy("lru"), std::move(disk));

  std::size_t loaded = 0;
  for (const auto& doc : recovered) {
    const int i = std::stoi(doc.url.substr(5));
    if (store.load_recovered(static_cast<DocId>(i), doc.url, 0.0)) ++loaded;
    check_accounting(store, kCapacity);
  }
  EXPECT_EQ(loaded, 3u);
  EXPECT_EQ(store.memory().used_bytes(), 300u);

  // Every recovered document round-trips with identical bytes and version.
  for (const auto& doc : recovered) {
    const int i = std::stoi(doc.url.substr(5));
    const TieredStore::ReadResult read =
        store.get(static_cast<DocId>(i), doc.url, 1.0);
    ASSERT_TRUE(read.found) << doc.url;
    EXPECT_EQ(read.body, body_of(i)) << doc.url;
    EXPECT_EQ(read.version, 1u);
  }
}

TEST_F(TieredAccountingTest, UpdateAndEraseTouchBothTiersConsistently) {
  TieredStore store(/*mem=*/300, make_policy("lru"), make_disk());
  for (int i = 0; i < 5; ++i) {
    (void)store.put(static_cast<DocId>(i), url_of(i), body_of(i), 1,
                    double(i));
  }
  // Docs 0-1 spilled to disk; 2-4 in memory.
  ASSERT_FALSE(store.in_memory(0));
  ASSERT_TRUE(store.in_memory(4));

  // An update to a disk-resident doc refreshes the durable copy.
  TieredPutResult side;
  const std::vector<std::uint8_t> fresh(100, 0xEE);
  ASSERT_TRUE(store.apply_update(0, url_of(0), fresh, 2, 10.0, &side));
  store.disk()->flush();
  const TieredStore::ReadResult read = store.get(0, url_of(0), 11.0);
  ASSERT_TRUE(read.found);
  EXPECT_EQ(read.version, 2u);
  EXPECT_EQ(read.body, fresh);
  check_accounting(store, 300);

  // Erase removes from whichever tier holds the doc; accounting follows.
  const std::uint64_t before = store.memory().used_bytes();
  EXPECT_TRUE(store.erase(4, url_of(4)));
  EXPECT_EQ(store.memory().used_bytes(), before - 100);
  EXPECT_TRUE(store.erase(0, url_of(0)));
  EXPECT_FALSE(store.holds_url(url_of(0)));
  EXPECT_FALSE(store.get(0, url_of(0), 12.0).found);
  check_accounting(store, 300);
}

TEST_F(TieredAccountingTest, MemoryOnlyDropsInsteadOfSpills) {
  // Without a disk tier every eviction is a drop the caller must
  // deregister — the pre-tiered contract, byte for byte.
  TieredStore store(/*mem=*/300, make_policy("lru"), nullptr);
  std::vector<std::string> dropped;
  for (int i = 0; i < 5; ++i) {
    TieredPutResult put = store.put(static_cast<DocId>(i), url_of(i),
                                    body_of(i), 1, double(i));
    EXPECT_TRUE(put.stored);
    EXPECT_EQ(put.spilled, 0u);
    for (std::string& url : put.dropped_urls) dropped.push_back(std::move(url));
    check_accounting(store, 300);
  }
  EXPECT_EQ(store.memory().used_bytes(), 300u);
  ASSERT_EQ(dropped.size(), 2u);
  EXPECT_EQ(dropped[0], url_of(0));
  EXPECT_EQ(dropped[1], url_of(1));
  EXPECT_FALSE(store.holds_url(url_of(0)));
}

}  // namespace
}  // namespace cachecloud::cache
