#include "cache/document_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "cache/replacement.hpp"

namespace cachecloud::cache {
namespace {

std::unique_ptr<DocumentStore> make_store(std::uint64_t capacity,
                                          const std::string& policy = "lru") {
  return std::make_unique<DocumentStore>(capacity, make_policy(policy));
}

TEST(DocumentStoreTest, PutGetPeek) {
  auto store = make_store(0);
  const auto result = store->put(1, 100, 1, 0.0);
  EXPECT_TRUE(result.stored);
  EXPECT_TRUE(result.evicted.empty());
  EXPECT_TRUE(store->contains(1));
  EXPECT_EQ(store->used_bytes(), 100u);
  EXPECT_EQ(store->doc_count(), 1u);

  const auto doc = store->get(1, 5.0);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->size_bytes, 100u);
  EXPECT_EQ(doc->version, 1u);
  EXPECT_EQ(doc->access_count, 2u);  // put + get
  EXPECT_DOUBLE_EQ(doc->last_access, 5.0);

  EXPECT_EQ(store->peek(2), nullptr);
  EXPECT_FALSE(store->get(2, 6.0).has_value());
}

TEST(DocumentStoreTest, LruEvictionOrder) {
  auto store = make_store(300);
  store->put(1, 100, 1, 0.0);
  store->put(2, 100, 1, 1.0);
  store->put(3, 100, 1, 2.0);
  // Touch doc 1 so doc 2 becomes the LRU victim.
  store->get(1, 3.0);
  const auto result = store->put(4, 100, 1, 4.0);
  EXPECT_TRUE(result.stored);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 2u);
  EXPECT_TRUE(store->contains(1));
  EXPECT_FALSE(store->contains(2));
}

TEST(DocumentStoreTest, EvictsMultipleToFit) {
  auto store = make_store(300);
  store->put(1, 100, 1, 0.0);
  store->put(2, 100, 1, 1.0);
  store->put(3, 100, 1, 2.0);
  // 250 bytes into a full 300-byte disk: 100+100 freed is not enough, so a
  // third eviction is required.
  const auto result = store->put(4, 250, 1, 3.0);
  EXPECT_TRUE(result.stored);
  EXPECT_EQ(result.evicted.size(), 3u);
  EXPECT_LE(store->used_bytes(), 300u);
  EXPECT_EQ(store->used_bytes(), 250u);
}

TEST(DocumentStoreTest, OversizedDocumentRejected) {
  auto store = make_store(100);
  const auto result = store->put(1, 500, 1, 0.0);
  EXPECT_FALSE(result.stored);
  EXPECT_TRUE(result.evicted.empty());
  EXPECT_EQ(store->doc_count(), 0u);
}

TEST(DocumentStoreTest, RePutRefreshesInsteadOfDuplicating) {
  auto store = make_store(0);
  store->put(1, 100, 1, 0.0);
  const auto result = store->put(1, 100, 2, 1.0);
  EXPECT_TRUE(result.stored);
  EXPECT_EQ(store->doc_count(), 1u);
  EXPECT_EQ(store->peek(1)->version, 2u);
  EXPECT_EQ(store->peek(1)->access_count, 2u);
}

TEST(DocumentStoreTest, ApplyUpdateBumpsVersionAndBytes) {
  auto store = make_store(0);
  store->put(1, 100, 1, 0.0);
  const std::uint64_t written_before = store->bytes_written();
  EXPECT_TRUE(store->apply_update(1, 2, 100, 1.0));
  EXPECT_EQ(store->peek(1)->version, 2u);
  EXPECT_GT(store->bytes_written(), written_before);
  // Stale pushes are ignored but reported as "document present".
  EXPECT_TRUE(store->apply_update(1, 2, 100, 2.0));
  EXPECT_EQ(store->peek(1)->version, 2u);
  // Missing documents are reported.
  EXPECT_FALSE(store->apply_update(9, 3, 50, 3.0));
}

TEST(DocumentStoreTest, ApplyUpdateGrowthCanEvict) {
  auto store = make_store(300, "lru");
  store->put(1, 100, 1, 0.0);
  store->put(2, 100, 1, 1.0);
  store->put(3, 100, 1, 2.0);
  std::vector<DocId> evicted;
  EXPECT_TRUE(store->apply_update(3, 2, 250, 3.0, &evicted));
  EXPECT_FALSE(evicted.empty());
  EXPECT_LE(store->used_bytes(), 300u);
  EXPECT_EQ(store->peek(3)->size_bytes, 250u);
}

TEST(DocumentStoreTest, ApplyUpdateBeyondDiskDropsDocument) {
  auto store = make_store(300);
  store->put(1, 100, 1, 0.0);
  std::vector<DocId> evicted;
  EXPECT_TRUE(store->apply_update(1, 2, 1000, 1.0, &evicted));
  EXPECT_FALSE(store->contains(1));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
}

TEST(DocumentStoreTest, EraseAccounting) {
  auto store = make_store(0);
  store->put(1, 100, 1, 0.0);
  store->put(2, 50, 1, 0.0);
  EXPECT_TRUE(store->erase(1));
  EXPECT_FALSE(store->erase(1));
  EXPECT_EQ(store->used_bytes(), 50u);
  EXPECT_EQ(store->doc_count(), 1u);
}

TEST(DocumentStoreTest, ResidenceEstimate) {
  auto unlimited = make_store(0);
  unlimited->put(1, 100, 1, 0.0);
  EXPECT_TRUE(std::isinf(unlimited->expected_residence_sec(10.0)));

  auto bounded = make_store(1000);
  bounded->put(1, 100, 1, 0.0);
  // 100 bytes written in 10 seconds -> churn 10 B/s -> residence 100 s.
  EXPECT_NEAR(bounded->expected_residence_sec(10.0), 100.0, 1e-9);
}

TEST(DocumentStoreTest, RequiresPolicy) {
  EXPECT_THROW(DocumentStore(0, nullptr), std::invalid_argument);
}

TEST(DocumentStoreTest, ForEachVisitsAll) {
  auto store = make_store(0);
  store->put(1, 10, 1, 0.0);
  store->put(2, 20, 1, 0.0);
  std::set<DocId> seen;
  store->for_each([&](const StoredDoc& d) { seen.insert(d.id); });
  EXPECT_EQ(seen, (std::set<DocId>{1, 2}));
}

// ------------------------------------------------------- policies

TEST(ReplacementPolicyTest, FactoryNames) {
  EXPECT_EQ(make_policy("lru")->name(), "lru");
  EXPECT_EQ(make_policy("lfu")->name(), "lfu");
  EXPECT_EQ(make_policy("gdsf")->name(), "gdsf");
  EXPECT_THROW(make_policy("fifo"), std::invalid_argument);
}

TEST(ReplacementPolicyTest, LfuEvictsColdest) {
  auto store = make_store(300, "lfu");
  store->put(1, 100, 1, 0.0);
  store->put(2, 100, 1, 1.0);
  store->put(3, 100, 1, 2.0);
  store->get(1, 3.0);
  store->get(1, 4.0);
  store->get(3, 5.0);
  const auto result = store->put(4, 100, 1, 6.0);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 2u);  // only one access
}

TEST(ReplacementPolicyTest, GdsfPrefersEvictingLargeCold) {
  auto store = make_store(1000, "gdsf");
  store->put(1, 800, 1, 0.0);  // large, cold
  store->put(2, 100, 1, 1.0);  // small
  const auto result = store->put(3, 500, 1, 2.0);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 1u);
}

TEST(ReplacementPolicyTest, PoliciesRejectProtocolMisuse) {
  for (const char* name : {"lru", "lfu", "gdsf"}) {
    auto policy = make_policy(name);
    EXPECT_THROW(policy->victim(), std::logic_error) << name;
    EXPECT_THROW(policy->on_access(1, {}), std::logic_error) << name;
    EXPECT_THROW(policy->on_erase(1), std::logic_error) << name;
    policy->on_insert(1, DocMeta{10, 0.0});
    EXPECT_THROW(policy->on_insert(1, DocMeta{10, 0.0}), std::logic_error)
        << name;
    EXPECT_EQ(policy->victim(), 1u) << name;
  }
}

// Parameterized property: under any policy the store never exceeds its
// capacity and victim bookkeeping stays consistent through a random
// workload.
class PolicySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicySweep, CapacityInvariantUnderRandomWorkload) {
  auto store = make_store(5'000, GetParam());
  std::uint64_t state = 12345;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int i = 0; i < 5'000; ++i) {
    const DocId doc = static_cast<DocId>(next() % 200);
    const double now = static_cast<double>(i);
    switch (next() % 4) {
      case 0:
      case 1:
        store->put(doc, 50 + next() % 500, 1 + i, now);
        break;
      case 2:
        store->get(doc, now);
        break;
      case 3:
        store->apply_update(doc, 1 + static_cast<std::uint64_t>(i),
                            50 + next() % 500, now);
        break;
    }
    ASSERT_LE(store->used_bytes(), 5'000u);
    // used_bytes must equal the sum over stored docs.
    std::uint64_t total = 0;
    std::size_t count = 0;
    store->for_each([&](const StoredDoc& d) {
      total += d.size_bytes;
      ++count;
    });
    ASSERT_EQ(total, store->used_bytes());
    ASSERT_EQ(count, store->doc_count());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values("lru", "lfu", "gdsf"));

}  // namespace
}  // namespace cachecloud::cache
