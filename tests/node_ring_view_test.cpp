#include "node/ring_view.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace cachecloud::node {
namespace {

TEST(RingViewTest, InitialChunkingMatchesDynamicAssigner) {
  const RingView view(10, 2, 100);
  EXPECT_EQ(view.num_rings(), 5u);
  // Node 4 and 5 form ring 2, splitting [0, 100) in half.
  EXPECT_EQ(view.range_of(2, 4), (core::SubRange{0, 49}));
  EXPECT_EQ(view.range_of(2, 5), (core::SubRange{50, 99}));
  EXPECT_THROW((void)view.range_of(2, 0), std::invalid_argument);
}

TEST(RingViewTest, RemainderJoinsLastRing) {
  const RingView view(7, 3, 90);
  EXPECT_EQ(view.num_rings(), 2u);
  EXPECT_EQ(view.rings_of(6).size(), 1u);  // node 6 in ring 1
  EXPECT_EQ(view.rings_of(6)[0], 1u);
}

TEST(RingViewTest, ResolveIsDeterministicAndInMembership) {
  const RingView view(6, 2, 100);
  for (int i = 0; i < 300; ++i) {
    const std::string url = "/r/" + std::to_string(i);
    const RingView::Target a = view.resolve(url);
    const RingView::Target b = view.resolve(url);
    EXPECT_EQ(a.beacon, b.beacon);
    EXPECT_EQ(a.ring, b.ring);
    EXPECT_LT(a.irh, 100u);
    // The beacon belongs to the resolved ring (rings are {0,1},{2,3},{4,5}).
    EXPECT_EQ(a.beacon / 2, a.ring);
  }
}

TEST(RingViewTest, ApplyReplacesAssignment) {
  RingView view(4, 2, 100);
  RangeAnnounce announce = view.snapshot();
  // Shift ring 0's boundary.
  announce.rings[0][0].range = core::SubRange{0, 19};
  announce.rings[0][1].range = core::SubRange{20, 99};
  view.apply(announce);
  EXPECT_EQ(view.range_of(0, 0), (core::SubRange{0, 19}));
  EXPECT_EQ(view.range_of(0, 1), (core::SubRange{20, 99}));
}

TEST(RingViewTest, ApplyCanRemoveAMember) {
  RingView view(4, 2, 100);
  RangeAnnounce announce = view.snapshot();
  announce.rings[1] = {RangeEntry{{0, 99}, 2}};  // node 3 failed over
  view.apply(announce);
  EXPECT_EQ(view.range_of(1, 2), (core::SubRange{0, 99}));
  EXPECT_TRUE(view.rings_of(3).empty());
}

TEST(RingViewTest, ApplyRejectsNonPartitions) {
  RingView view(4, 2, 100);
  {
    RangeAnnounce bad = view.snapshot();
    bad.rings[0][1].range.lo = 60;  // gap
    EXPECT_THROW(view.apply(bad), std::invalid_argument);
  }
  {
    RangeAnnounce bad = view.snapshot();
    bad.rings[0][1].range.hi = 120;  // beyond irh_gen
    EXPECT_THROW(view.apply(bad), std::invalid_argument);
  }
  {
    RangeAnnounce bad = view.snapshot();
    bad.rings.pop_back();  // wrong ring count
    EXPECT_THROW(view.apply(bad), std::invalid_argument);
  }
  // Original assignment intact after all the rejections.
  EXPECT_EQ(view.range_of(0, 0), (core::SubRange{0, 49}));
}

TEST(RingViewTest, RejectsBadConstruction) {
  EXPECT_THROW(RingView(0, 2, 100), std::invalid_argument);
  EXPECT_THROW(RingView(4, 0, 100), std::invalid_argument);
}

TEST(RingViewTest, ResolutionCoversEveryIrhValue) {
  const RingView view(6, 3, 50);
  // Every (ring, irh) combination resolves to exactly one owner.
  std::map<std::pair<std::uint32_t, std::uint32_t>, NodeId> seen;
  for (int i = 0; i < 2000; ++i) {
    const RingView::Target t =
        view.resolve("/cover/" + std::to_string(i) + ".html");
    const auto key = std::make_pair(t.ring, t.irh);
    const auto it = seen.find(key);
    if (it != seen.end()) {
      EXPECT_EQ(it->second, t.beacon);
    } else {
      seen[key] = t.beacon;
    }
  }
}

}  // namespace
}  // namespace cachecloud::node
