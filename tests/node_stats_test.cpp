// End-to-end observability tests: scrape live nodes over TCP via StatsReq
// and reconcile the counters against client-observed traffic.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/mux_client.hpp"
#include "net/tcp.hpp"
#include "node/cluster.hpp"
#include "node/protocol.hpp"
#include "obs/metrics.hpp"

namespace cachecloud::node {
namespace {

NodeConfig small_config(const std::string& placement = "adhoc") {
  NodeConfig config;
  config.num_caches = 4;
  config.ring_size = 2;
  config.irh_gen = 100;
  config.placement = placement;
  return config;
}

// Scrapes a live node's metrics exactly like an external monitoring agent:
// a raw TCP client and a StatsReq frame.
obs::Snapshot scrape(std::uint16_t port) {
  net::MuxClient client(port);
  const net::Frame reply = client.call(StatsReq{}.encode());
  EXPECT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::StatsResp));
  return StatsResp::decode(reply).snapshot;
}

TEST(NodeStatsTest, HitClassCountersReconcileWithIssuedRequests) {
  Cluster cluster(small_config());
  const std::vector<std::string> urls = {"/a", "/b", "/c", "/d", "/e"};
  for (const std::string& url : urls) {
    cluster.origin().add_document(url, 256);
  }

  // Issue a known amount of traffic: every node requests every document
  // twice. First rounds produce origin/cloud fetches, second rounds local
  // hits — the scrape must account for every single one.
  std::uint64_t issued = 0;
  std::uint64_t client_local = 0;
  std::uint64_t client_cloud = 0;
  std::uint64_t client_origin = 0;
  for (int round = 0; round < 2; ++round) {
    for (NodeId id = 0; id < cluster.num_caches(); ++id) {
      for (const std::string& url : urls) {
        const auto result = cluster.cache(id).get(url);
        ++issued;
        switch (result.source) {
          case CacheNode::GetResult::Source::Local: ++client_local; break;
          case CacheNode::GetResult::Source::Cloud: ++client_cloud; break;
          case CacheNode::GetResult::Source::Origin: ++client_origin; break;
        }
      }
    }
  }
  ASSERT_EQ(issued, 2u * cluster.num_caches() * urls.size());

  std::uint64_t scraped_total = 0;
  double scraped_local = 0.0;
  double scraped_cloud = 0.0;
  double scraped_origin = 0.0;
  std::uint64_t latency_count = 0;
  for (NodeId id = 0; id < cluster.num_caches(); ++id) {
    const obs::Snapshot snap = scrape(cluster.cache(id).port());

    // Per-node, the hit classes partition the node's own gets.
    const double node_total = snap.sum_of("cachecloud_gets_total");
    scraped_total += static_cast<std::uint64_t>(node_total);
    const auto* local =
        snap.find("cachecloud_gets_total", {{"class", "local"}});
    const auto* cloud =
        snap.find("cachecloud_gets_total", {{"class", "cloud"}});
    const auto* origin =
        snap.find("cachecloud_gets_total", {{"class", "origin"}});
    ASSERT_NE(local, nullptr);
    ASSERT_NE(cloud, nullptr);
    ASSERT_NE(origin, nullptr);
    scraped_local += local->value;
    scraped_cloud += cloud->value;
    scraped_origin += origin->value;

    // Every get() observed the end-to-end latency histogram.
    const auto* latency =
        snap.find_histogram("cachecloud_get_latency_seconds");
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->count, static_cast<std::uint64_t>(node_total));
    EXPECT_GT(latency->sum, 0.0);
    latency_count += latency->count;
  }

  // Cloud-wide, the scraped counters reconcile exactly with what the
  // clients saw.
  EXPECT_EQ(scraped_total, issued);
  EXPECT_EQ(latency_count, issued);
  EXPECT_DOUBLE_EQ(scraped_local, static_cast<double>(client_local));
  EXPECT_DOUBLE_EQ(scraped_cloud, static_cast<double>(client_cloud));
  EXPECT_DOUBLE_EQ(scraped_origin, static_cast<double>(client_origin));
  EXPECT_EQ(client_local + client_cloud + client_origin, issued);
}

TEST(NodeStatsTest, WireCountersTrackPerMessageTraffic) {
  Cluster cluster(small_config());
  cluster.origin().add_document("/doc", 512);

  (void)cluster.cache(1).get("/doc");  // origin fetch
  (void)cluster.cache(2).get("/doc");  // lookup + peer fetch

  // The requester of the cloud hit sent a LookupReq and got a LookupResp.
  const obs::Snapshot snap = scrape(cluster.cache(2).port());
  const auto* lookup_tx = snap.find(
      "cachecloud_net_messages_total", {{"type", "LookupReq"}, {"dir", "tx"}});
  const auto* resp_rx = snap.find(
      "cachecloud_net_messages_total", {{"type", "LookupResp"}, {"dir", "rx"}});
  ASSERT_NE(lookup_tx, nullptr);
  ASSERT_NE(resp_rx, nullptr);
  EXPECT_GE(lookup_tx->value, 1.0);
  EXPECT_GE(resp_rx->value, 1.0);

  // Byte counters move with the messages and include the body transfer.
  const auto* bytes_rx = snap.find(
      "cachecloud_net_bytes_total", {{"type", "FetchResp"}, {"dir", "rx"}});
  ASSERT_NE(bytes_rx, nullptr);
  EXPECT_GT(bytes_rx->value, 512.0);  // body + framing

  // Phase histograms: the cloud hit went through lookup and fetch.
  const auto* lookup_phase = snap.find_histogram(
      "cachecloud_get_phase_seconds", {{"phase", "lookup"}});
  const auto* fetch_phase = snap.find_histogram(
      "cachecloud_get_phase_seconds", {{"phase", "fetch"}});
  ASSERT_NE(lookup_phase, nullptr);
  ASSERT_NE(fetch_phase, nullptr);
  EXPECT_GE(lookup_phase->count, 1u);
  EXPECT_GE(fetch_phase->count, 1u);
}

TEST(NodeStatsTest, OriginExposesFetchAndUpdateCounters) {
  Cluster cluster(small_config());
  cluster.origin().add_document("/live", 128);

  (void)cluster.cache(0).get("/live");  // origin fetch
  (void)cluster.origin().publish_update("/live");

  const obs::Snapshot snap = scrape(cluster.origin().port());
  const auto* fetches = snap.find("cachecloud_origin_fetches_total",
                                  {{"result", "hit"}});
  ASSERT_NE(fetches, nullptr);
  EXPECT_DOUBLE_EQ(fetches->value,
                   static_cast<double>(cluster.origin().origin_fetches()));
  const auto* published =
      snap.find("cachecloud_origin_updates_published_total");
  const auto* pushes = snap.find("cachecloud_origin_update_pushes_total");
  ASSERT_NE(published, nullptr);
  ASSERT_NE(pushes, nullptr);
  EXPECT_DOUBLE_EQ(published->value, 1.0);
  // One update message per cloud, however many holders (§1's headline).
  EXPECT_DOUBLE_EQ(pushes->value, 1.0);
}

TEST(NodeStatsTest, PrometheusEndToEnd) {
  Cluster cluster(small_config());
  cluster.origin().add_document("/page", 64);
  (void)cluster.cache(3).get("/page");

  // The node renders its own exposition, and a scraped snapshot renders
  // identically structured text remotely.
  const std::string local_text = cluster.cache(3).metrics_prometheus();
  EXPECT_NE(local_text.find("# TYPE cachecloud_gets_total counter"),
            std::string::npos);
  EXPECT_NE(local_text.find("cachecloud_gets_total{class=\"origin\"} 1"),
            std::string::npos);
  EXPECT_NE(
      local_text.find("# TYPE cachecloud_get_latency_seconds histogram"),
      std::string::npos);

  const obs::Snapshot snap = scrape(cluster.cache(3).port());
  const std::string remote_text = obs::to_prometheus(snap);
  EXPECT_NE(remote_text.find("cachecloud_gets_total{class=\"origin\"} 1"),
            std::string::npos);
  // Gauges reflect the node's state at scrape time.
  const auto* docs = snap.find("cachecloud_cached_docs");
  ASSERT_NE(docs, nullptr);
  EXPECT_DOUBLE_EQ(docs->value, 1.0);
}

TEST(NodeStatsTest, TraceIdsPropagateThroughReplies) {
  Cluster cluster(small_config());
  cluster.origin().add_document("/traced", 32);

  // A traced request frame gets its trace id copied onto the reply, so a
  // client can correlate request/response pairs without payload changes.
  net::MuxClient client(cluster.cache(0).port());
  net::Frame request = StatsReq{}.encode();
  request.trace_id = 0xDEADBEEFCAFEF00Dull;
  const net::Frame reply = client.call(request);
  EXPECT_EQ(reply.trace_id, 0xDEADBEEFCAFEF00Dull);

  // Untraced frames stay untraced.
  const net::Frame untraced = client.call(StatsReq{}.encode());
  EXPECT_EQ(untraced.trace_id, 0u);
}

}  // namespace
}  // namespace cachecloud::node
