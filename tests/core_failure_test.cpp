// Failure-injection sweeps across hashing schemes and cloud states.
#include <gtest/gtest.h>

#include "core/cloud.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace cachecloud::core {
namespace {

trace::Trace workload() {
  trace::ZipfTraceConfig config;
  config.num_docs = 400;
  config.num_caches = 6;
  config.duration_sec = 120.0;
  config.requests_per_sec = 20.0;
  config.updates_per_minute = 30.0;
  config.seed = 31;
  return trace::generate_zipf_trace(config);
}

class FailureSweep
    : public ::testing::TestWithParam<
          std::tuple<CloudConfig::Hashing, trace::CacheId>> {};

TEST_P(FailureSweep, CloudSurvivesAnySingleFailure) {
  const auto [hashing, victim] = GetParam();
  const trace::Trace t = workload();

  CloudConfig config;
  config.num_caches = 6;
  config.hashing = hashing;
  config.ring_size = 2;
  config.placement = "utility";
  config.cycle_sec = 30.0;
  CacheCloud cloud(config, t);

  // Warm the cloud with the first half of the trace.
  const auto& events = t.events();
  std::size_t i = 0;
  for (; i < events.size() / 2; ++i) {
    const auto& e = events[i];
    cloud.maybe_end_cycle(e.time);
    if (e.type == trace::EventType::Request) {
      cloud.handle_request(e.cache, e.doc, e.time);
    } else {
      cloud.handle_update(e.doc, e.time);
    }
  }

  cloud.fail_cache(victim);

  // Invariant: nothing resolves to or references the dead cache.
  for (trace::DocId d = 0; d < 100; ++d) {
    ASSERT_NE(cloud.beacon_of_doc(d), victim);
    ASSERT_FALSE(cloud.directory().is_holder(d, victim));
  }

  // The rest of the trace still executes (requests at the dead cache are
  // redirected to its neighbour, as a failed edge site's clients would be).
  for (; i < events.size(); ++i) {
    const auto& e = events[i];
    cloud.maybe_end_cycle(e.time);
    if (e.type == trace::EventType::Request) {
      const trace::CacheId at =
          e.cache == victim ? (e.cache + 1) % 6 : e.cache;
      const RequestOutcome outcome = cloud.handle_request(at, e.doc, e.time);
      if (outcome.kind != RequestKind::LocalHit) {
        // (the beacon field is only populated when a lookup happened)
        ASSERT_NE(outcome.beacon, victim);
      }
      if (outcome.source) {
        ASSERT_NE(*outcome.source, victim);
      }
    } else {
      const UpdateOutcome outcome = cloud.handle_update(e.doc, e.time);
      ASSERT_NE(outcome.beacon, victim);
      for (const CacheId holder : outcome.holders) {
        ASSERT_NE(holder, victim);
      }
    }
  }

  // Re-balancing still works after the failure (dynamic scheme only moves
  // ownership among survivors).
  const CycleOutcome cycle = cloud.end_cycle_now();
  for (const OwnershipMove& move : cycle.moves) {
    EXPECT_NE(move.to, victim);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllVictims, FailureSweep,
    ::testing::Combine(::testing::Values(CloudConfig::Hashing::Static,
                                         CloudConfig::Hashing::Consistent,
                                         CloudConfig::Hashing::Dynamic),
                       ::testing::Values<trace::CacheId>(0, 2, 5)));

TEST(FailureTest, SequentialFailuresDownToOne) {
  const trace::Trace t = workload();
  CloudConfig config;
  config.num_caches = 6;
  config.hashing = CloudConfig::Hashing::Dynamic;
  config.ring_size = 2;
  config.placement = "adhoc";
  CacheCloud cloud(config, t);

  for (trace::DocId d = 0; d < 60; ++d) {
    cloud.handle_request(d % 6, d, 1.0 + d);
  }
  // Fail 5 of 6 caches; note dynamic hashing cannot drop a ring's last
  // member, so failures must leave each ring populated — fail one member
  // of each ring first, then this limitation is documented behaviour.
  cloud.fail_cache(1);  // ring 0 keeps member 0
  cloud.fail_cache(3);  // ring 1 keeps member 2
  cloud.fail_cache(5);  // ring 2 keeps member 4

  for (trace::DocId d = 0; d < 60; ++d) {
    const RequestOutcome outcome = cloud.handle_request(0, d, 100.0 + d);
    EXPECT_TRUE(outcome.beacon == 0 || outcome.beacon == 2 ||
                outcome.beacon == 4 ||
                outcome.kind == RequestKind::LocalHit);
  }
  // Dropping a ring's last member is rejected loudly, not silently.
  EXPECT_THROW(cloud.fail_cache(0), std::invalid_argument);
}

TEST(FailureTest, LoadSheddingAfterFailureIsRebalanced) {
  const trace::Trace t = workload();
  CloudConfig config;
  config.num_caches = 4;
  config.hashing = CloudConfig::Hashing::Dynamic;
  config.ring_size = 4;  // one ring, so the survivor set stays flexible
  config.placement = "beacon";
  config.cycle_sec = 10.0;
  CacheCloud cloud(config, t);

  cloud.fail_cache(2);
  // Drive load; the heir of cache 2's sub-range initially carries a double
  // share, and the next cycles shave it back.
  double now = 0.0;
  for (int round = 0; round < 6; ++round) {
    for (trace::DocId d = 0; d < 300; ++d) {
      now += 0.01;
      cloud.handle_request(d % 2 == 0 ? 0 : 1, d, now);
      cloud.maybe_end_cycle(now);
    }
  }
  // After several cycles the three survivors' ranges should all be
  // non-trivial (the heir is no longer stuck with a merged double range).
  const auto* dyn = dynamic_cast<const DynamicHashAssigner*>(&cloud.assigner());
  ASSERT_NE(dyn, nullptr);
  const BeaconRing& ring = dyn->ring(0);
  ASSERT_EQ(ring.members().size(), 3u);
  for (const SubRange& range : ring.ranges()) {
    EXPECT_GE(range.length(), 1u);
  }
}

}  // namespace
}  // namespace cachecloud::core
