// Deterministic chaos: a live loopback cluster under the fault injector.
//
// The acceptance bar for the resilience layer: with a fixed seed, one
// crashed node and injected frame drops + latency on every cache port, every
// client request still completes (no exception escapes CacheNode::get()),
// the injected fault counts reconcile with the nodes' failure metrics, and
// the suspicion path promotes the heir without any external
// handle_node_failure call.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "net/fault_injector.hpp"
#include "node/cluster.hpp"

namespace cachecloud::node {
namespace {

using net::FaultInjector;
using net::FaultProfile;

NodeConfig chaos_config(FaultInjector* faults) {
  NodeConfig config;
  config.num_caches = 4;
  config.ring_size = 2;
  config.irh_gen = 100;
  config.placement = "adhoc";
  config.fault_injector = faults;
  // Tight budgets keep the test fast; semantics are unchanged.
  config.retry.max_attempts = 3;
  config.retry.backoff_base_sec = 0.001;
  config.retry.backoff_cap_sec = 0.010;
  config.retry.call_deadline_sec = 2.0;
  config.retry.attempt_timeout_sec = 2.0;
  config.breaker.failure_threshold = 2;
  config.breaker.cooldown_sec = 0.05;
  config.breaker.suspect_after_trips = 1;
  return config;
}

std::string doc_url(int i) { return "/doc" + std::to_string(i); }

double cache_metric_sum(Cluster& cluster, const std::string& name) {
  double sum = 0.0;
  for (NodeId id = 0; id < cluster.num_caches(); ++id) {
    if (cluster.crashed(id)) continue;
    sum += cluster.cache(id).metrics_snapshot().sum_of(name);
  }
  return sum;
}

TEST(NodeChaosTest, DeterministicChaosCompletesEveryRequest) {
  FaultInjector faults(/*seed=*/20260805);
  Cluster cluster(chaos_config(&faults));
  constexpr int kDocs = 40;
  for (int i = 0; i < kDocs; ++i) {
    cluster.origin().add_document(doc_url(i), 96);
    (void)cluster.cache(static_cast<NodeId>(i % 4)).get(doc_url(i));
  }
  for (NodeId id = 0; id < 4; ++id) cluster.cache(id).sync_replicas();

  // Chaos on every cache port: 5% request/reply drops plus occasional
  // 1ms latency. The origin port stays clean so its fetch path (the
  // degradation fallback) cannot itself fail.
  FaultProfile flaky;
  flaky.frame_drop = 0.05;
  flaky.extra_latency = 0.25;
  flaky.latency_sec = 0.001;
  for (NodeId id = 0; id < 4; ++id) {
    faults.set_profile(cluster.cache(id).port(), flaky);
  }
  cluster.crash(1);  // no handle_node_failure call — suspicion must do it

  const std::vector<NodeId> live = {0, 2, 3};
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    const NodeId at = live[static_cast<std::size_t>(i) % live.size()];
    const std::string url = doc_url(i % kDocs);
    ASSERT_NO_THROW({
      const auto result = cluster.cache(at).get(url);
      EXPECT_FALSE(result.body.empty()) << url;
      ++completed;
    }) << "request " << i << " at node " << at;
  }
  EXPECT_EQ(completed, 200);

  // The crashed node was reported suspect and failed over automatically.
  EXPECT_TRUE(cluster.origin().node_failed(1));
  const auto origin_snap = cluster.origin().metrics_snapshot();
  const auto* suspicion = origin_snap.find(
      "cachecloud_origin_failovers_total", {{"trigger", "suspicion"}});
  const auto* operator_driven = origin_snap.find(
      "cachecloud_origin_failovers_total", {{"trigger", "operator"}});
  ASSERT_NE(suspicion, nullptr);
  EXPECT_GE(suspicion->value, 1.0);
  ASSERT_NE(operator_driven, nullptr);
  EXPECT_EQ(operator_driven->value, 0.0);
  EXPECT_GE(cache_metric_sum(cluster, "cachecloud_suspects_reported_total"),
            1.0);

  // Announces lost to injected drops are healed by the catch-up path; after
  // that no survivor resolves any document to the dead beacon.
  for (int round = 0; round < 20; ++round) {
    (void)cluster.origin().retry_pending_announces();
  }
  for (const NodeId at : live) {
    for (int i = 0; i < kDocs; ++i) {
      EXPECT_NE(cluster.cache(at).ring_view().resolve(doc_url(i)).beacon, 1u)
          << "node " << at << " doc " << i;
    }
  }

  // Reconciliation: every injected disruption (drop/reset/refusal) surfaced
  // as exactly one failed attempt at some caller; the crashed node adds
  // real connection failures on top, hence >=.
  EXPECT_GT(faults.disruptions(), 0u);
  EXPECT_GT(faults.count(FaultInjector::Kind::ExtraLatency), 0u);
  const double cache_failures =
      cache_metric_sum(cluster, "cachecloud_peer_call_failures_total");
  const double origin_failures = origin_snap.sum_of(
      "cachecloud_origin_peer_call_failures_total");
  EXPECT_GE(cache_failures + origin_failures,
            static_cast<double>(faults.disruptions()));
}

TEST(NodeChaosTest, MetricsReconcileExactlyWithoutRealFailures) {
  FaultInjector faults(/*seed=*/7);
  NodeConfig config = chaos_config(&faults);
  // No crash in this variant: every failed attempt must be injected, so the
  // counts match exactly. Breakers never trip (no short-circuited calls to
  // muddy the attempt accounting) and suspicion stays quiet.
  config.breaker.failure_threshold = 1000;
  config.auto_failover = false;
  Cluster cluster(config);

  constexpr int kDocs = 30;
  for (int i = 0; i < kDocs; ++i) {
    cluster.origin().add_document(doc_url(i), 64);
  }

  FaultProfile drops;
  drops.frame_drop = 0.10;
  for (NodeId id = 0; id < 4; ++id) {
    faults.set_profile(cluster.cache(id).port(), drops);
  }

  for (int i = 0; i < 200; ++i) {
    const NodeId at = static_cast<NodeId>(i % 4);
    ASSERT_NO_THROW((void)cluster.cache(at).get(doc_url(i % kDocs)))
        << "request " << i;
  }

  const double cache_failures =
      cache_metric_sum(cluster, "cachecloud_peer_call_failures_total");
  EXPECT_GT(faults.disruptions(), 0u);
  EXPECT_EQ(cache_failures, static_cast<double>(faults.disruptions()));
  EXPECT_EQ(cluster.origin().metrics_snapshot().sum_of(
                "cachecloud_origin_peer_call_failures_total"),
            0.0);
  // Retries recovered some of those failed attempts in place.
  EXPECT_GT(cache_metric_sum(cluster, "cachecloud_peer_retries_total"), 0.0);
}

TEST(NodeChaosTest, SuspicionPromotesHeirWithoutOperatorFailover) {
  // Clean network, hard crash: the data path alone must detect the dead
  // beacon, report it and trigger heir promotion.
  Cluster cluster(chaos_config(nullptr));
  constexpr int kDocs = 40;
  for (int i = 0; i < kDocs; ++i) {
    cluster.origin().add_document(doc_url(i), 64);
    (void)cluster.cache(2).get(doc_url(i));
    (void)cluster.cache(3).get(doc_url(i));
  }
  for (NodeId id = 0; id < 4; ++id) cluster.cache(id).sync_replicas();

  const std::size_t heir_records_before =
      cluster.cache(0).directory_records();
  cluster.crash(1);

  // Keep issuing requests; some hit the dead beacon, trip its breaker and
  // report it. All of them must still be served.
  const std::vector<NodeId> live = {0, 2, 3};
  for (int i = 0; i < 3 * kDocs && !cluster.origin().node_failed(1); ++i) {
    const NodeId at = live[static_cast<std::size_t>(i) % live.size()];
    ASSERT_NO_THROW((void)cluster.cache(at).get(doc_url(i % kDocs)))
        << "request " << i;
  }

  EXPECT_TRUE(cluster.origin().node_failed(1));
  // Ring 0 is {0, 1}: node 0 inherits and its directory grew by the
  // promoted replica records.
  EXPECT_GT(cluster.cache(0).directory_records(), heir_records_before);
  for (const NodeId at : live) {
    for (int i = 0; i < kDocs; ++i) {
      EXPECT_NE(cluster.cache(at).ring_view().resolve(doc_url(i)).beacon, 1u)
          << "node " << at << " doc " << i;
    }
  }
  const auto origin_snap = cluster.origin().metrics_snapshot();
  EXPECT_GE(origin_snap.sum_of("cachecloud_origin_suspects_received_total"),
            1.0);
  const auto* suspicion = origin_snap.find(
      "cachecloud_origin_failovers_total", {{"trigger", "suspicion"}});
  ASSERT_NE(suspicion, nullptr);
  EXPECT_GE(suspicion->value, 1.0);
  // Degraded serves were recorded while the dead node was still a beacon.
  EXPECT_GE(cache_metric_sum(cluster, "cachecloud_degraded_serves_total"),
            0.0);
}

// ---- hard-kill + restart lifecycle ----------------------------------
//
// The same scenario twice — once with the disk tier mounted, once without —
// so the warm-restart claim is differential: a warm node serves recovered
// documents locally where a cold node must refetch every one.

class NodeLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    namespace fs = std::filesystem;
    dir_ = (fs::temp_directory_path() /
            ("cc_lifecycle_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Warm node 1 with every doc, flush the write-behind queue, kill it
  // hard, prove the survivors keep serving, restart, and replay every url
  // through the reborn node. Fills the node's post-restart counters.
  void run_lifecycle(const NodeConfig& config, int docs,
                     std::size_t* recovered, std::size_t* announced,
                     CacheNode::Counters* counters) {
    Cluster cluster(config);
    for (int i = 0; i < docs; ++i) {
      cluster.origin().add_document(doc_url(i), 96);
      (void)cluster.cache(1).get(doc_url(i));
    }
    cluster.cache(1).flush_disk();  // draw the crash line after the spills
    cluster.hard_kill(1);

    for (int i = 0; i < 8; ++i) {
      ASSERT_NO_THROW((void)cluster.cache(0).get(doc_url(i)))
          << "survivor request " << i;
    }

    *announced = cluster.restart(1);
    *recovered = cluster.cache(1).recovered_docs();

    for (int i = 0; i < docs; ++i) {
      ASSERT_NO_THROW({
        const auto result = cluster.cache(1).get(doc_url(i));
        EXPECT_FALSE(result.body.empty()) << doc_url(i);
      }) << "post-restart request " << i;
    }
    *counters = cluster.cache(1).counters();
  }

  std::string dir_;
};

TEST_F(NodeLifecycleTest, HardKillRestartRecoversWarmWithDiskTier) {
  NodeConfig config = chaos_config(nullptr);
  // A memory tier far smaller than the working set (40 docs x 96 bytes),
  // so most documents are evicted — and therefore spilled — before the
  // kill.
  config.capacity_bytes = 1024;
  config.disk.directory = dir_;
  std::size_t recovered = 0;
  std::size_t announced = 0;
  CacheNode::Counters counters;
  run_lifecycle(config, /*docs=*/40, &recovered, &announced, &counters);
  if (::testing::Test::HasFatalFailure()) return;

  // The manifest replay found the spilled documents and re-registered them.
  EXPECT_GT(recovered, 0u);
  EXPECT_GT(announced, 0u);
  // Warm restart: recovered copies serve locally (memory preload or disk
  // hit) instead of being refetched from peers/origin.
  EXPECT_GT(counters.local_hits, 0u);
  EXPECT_GT(counters.disk_hits + counters.local_hits, 0u);
}

TEST_F(NodeLifecycleTest, HardKillRestartColdWithoutDiskTier) {
  NodeConfig config = chaos_config(nullptr);
  config.capacity_bytes = 4096;
  // No disk directory: the tier is absent and the restart must come back
  // empty-handed but fully serving.
  std::size_t recovered = 0;
  std::size_t announced = 0;
  CacheNode::Counters counters;
  run_lifecycle(config, /*docs=*/40, &recovered, &announced, &counters);
  if (::testing::Test::HasFatalFailure()) return;

  EXPECT_EQ(recovered, 0u);
  EXPECT_EQ(announced, 0u);
  // Cold restart: every post-restart request is a first touch — zero local
  // hits, everything refetched from the cloud or the origin.
  EXPECT_EQ(counters.local_hits, 0u);
  EXPECT_EQ(counters.disk_hits, 0u);
  EXPECT_GT(counters.cloud_hits + counters.origin_fetches, 0u);
}

}  // namespace
}  // namespace cachecloud::node
