// Tests of the consistency mechanisms (push vs TTL) and the
// no-cooperation baseline.
#include <gtest/gtest.h>

#include "core/cloud.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace cachecloud::core {
namespace {

trace::Trace small_trace() {
  trace::ZipfTraceConfig config;
  config.num_docs = 50;
  config.num_caches = 3;
  config.duration_sec = 60.0;
  config.requests_per_sec = 2.0;
  config.updates_per_minute = 5.0;
  config.seed = 77;
  return trace::generate_zipf_trace(config);
}

CloudConfig ttl_config(double ttl_sec) {
  CloudConfig config;
  config.num_caches = 3;
  config.placement = "adhoc";
  config.ring_size = 2;
  config.consistency = CloudConfig::Consistency::Ttl;
  config.ttl_sec = ttl_sec;
  return config;
}

TEST(TtlConsistencyTest, UpdatesAreNotPushed) {
  const trace::Trace t = small_trace();
  CacheCloud cloud(ttl_config(100.0), t);

  cloud.handle_request(0, 7, 1.0);
  const UpdateOutcome update = cloud.handle_update(7, 2.0);
  EXPECT_FALSE(update.pushed);
  EXPECT_TRUE(update.holders.empty());
  // The cached copy still carries the old version.
  EXPECT_EQ(cloud.store(0).peek(7)->version, 1u);
  EXPECT_EQ(cloud.doc_version(7), 2u);
}

TEST(TtlConsistencyTest, StaleServedWithinTtl) {
  const trace::Trace t = small_trace();
  CacheCloud cloud(ttl_config(100.0), t);

  cloud.handle_request(0, 7, 1.0);
  cloud.handle_update(7, 2.0);
  const RequestOutcome hit = cloud.handle_request(0, 7, 3.0);
  EXPECT_EQ(hit.kind, RequestKind::LocalHit);
  EXPECT_TRUE(hit.stale_served);
  EXPECT_FALSE(hit.revalidated);
}

TEST(TtlConsistencyTest, ExpiredCopyIsRevalidatedOrRefetched) {
  const trace::Trace t = small_trace();
  CacheCloud cloud(ttl_config(10.0), t);

  cloud.handle_request(0, 7, 1.0);
  // Expired but unchanged: revalidation, no refetch.
  const RequestOutcome fresh = cloud.handle_request(0, 7, 20.0);
  EXPECT_EQ(fresh.kind, RequestKind::LocalHit);
  EXPECT_TRUE(fresh.revalidated);
  EXPECT_FALSE(fresh.stale_served);

  // Changed and expired: refetch from the origin.
  cloud.handle_update(7, 21.0);
  const RequestOutcome stale = cloud.handle_request(0, 7, 40.0);
  EXPECT_EQ(stale.kind, RequestKind::GroupMiss);
  EXPECT_TRUE(stale.refetched);
  EXPECT_EQ(cloud.store(0).peek(7)->version, 2u);

  // Fresh again after the refetch.
  const RequestOutcome after = cloud.handle_request(0, 7, 41.0);
  EXPECT_EQ(after.kind, RequestKind::LocalHit);
  EXPECT_FALSE(after.stale_served);
}

TEST(TtlConsistencyTest, CloudHitCanServeStaleHolderCopy) {
  const trace::Trace t = small_trace();
  CacheCloud cloud(ttl_config(100.0), t);

  cloud.handle_request(0, 7, 1.0);
  cloud.handle_update(7, 2.0);
  // Cache 1 misses and fetches from holder 0, whose copy is stale.
  const RequestOutcome hit = cloud.handle_request(1, 7, 3.0);
  EXPECT_EQ(hit.kind, RequestKind::CloudHit);
  EXPECT_TRUE(hit.stale_served);
  EXPECT_EQ(cloud.store(1).peek(7)->version, 1u);
}

TEST(TtlConsistencyTest, SimAccountsStalenessAndRevalidation) {
  const trace::Trace t = small_trace();
  CacheCloud cloud(ttl_config(20.0), t);
  const sim::SimResult result = sim::run_simulation(cloud, t);
  // With 5 updates/minute and a 20 s TTL some staleness and revalidation
  // must show up over a 60 s Zipf run.
  EXPECT_GT(result.metrics.revalidations + result.metrics.ttl_refetches +
                result.metrics.stale_hits,
            0u);
}

TEST(TtlConsistencyTest, PushServesNoStaleEver) {
  const trace::Trace t = small_trace();
  CloudConfig config;
  config.num_caches = 3;
  config.ring_size = 2;
  config.placement = "adhoc";
  config.consistency = CloudConfig::Consistency::Push;
  CacheCloud cloud(config, t);
  const sim::SimResult result = sim::run_simulation(cloud, t);
  EXPECT_EQ(result.metrics.stale_hits, 0u);
  EXPECT_EQ(result.metrics.revalidations, 0u);
  // Every cached copy matches the origin version at the end.
  for (trace::DocId d = 0; d < 50; ++d) {
    for (trace::CacheId c = 0; c < 3; ++c) {
      if (const auto* doc = cloud.store(c).peek(d)) {
        EXPECT_EQ(doc->version, cloud.doc_version(d))
            << "doc " << d << " cache " << c;
      }
    }
  }
}

// ------------------------------------------------- no cooperation

TEST(NoCooperationTest, MissesGoStraightToOrigin) {
  const trace::Trace t = small_trace();
  CloudConfig config;
  config.num_caches = 3;
  config.ring_size = 2;
  config.placement = "adhoc";
  config.cooperative = false;
  CacheCloud cloud(config, t);

  cloud.handle_request(0, 7, 1.0);
  // Cache 1 cannot profit from cache 0's copy.
  const RequestOutcome miss = cloud.handle_request(1, 7, 2.0);
  EXPECT_EQ(miss.kind, RequestKind::GroupMiss);
  EXPECT_EQ(miss.discovery_hops, 0u);
  EXPECT_FALSE(miss.source.has_value());
  EXPECT_TRUE(miss.stored);
}

TEST(NoCooperationTest, OriginPushesToEveryHolderIndividually) {
  const trace::Trace t = small_trace();
  CloudConfig config;
  config.num_caches = 3;
  config.placement = "adhoc";
  config.cooperative = false;
  CacheCloud cloud(config, t);

  cloud.handle_request(0, 7, 1.0);
  cloud.handle_request(1, 7, 2.0);
  cloud.handle_request(2, 7, 3.0);
  const UpdateOutcome update = cloud.handle_update(7, 4.0);
  EXPECT_EQ(update.holders.size(), 3u);
  EXPECT_EQ(update.discovery_hops, 0u);  // no beacon involved
  for (trace::CacheId c = 0; c < 3; ++c) {
    EXPECT_EQ(cloud.store(c).peek(7)->version, 2u);
  }
}

TEST(NoCooperationTest, NeverRebalances) {
  const trace::Trace t = small_trace();
  CloudConfig config;
  config.num_caches = 3;
  config.cooperative = false;
  config.cycle_sec = 1.0;
  CacheCloud cloud(config, t);
  cloud.handle_request(0, 1, 0.5);
  EXPECT_FALSE(cloud.maybe_end_cycle(100.0).has_value());
}

TEST(NoCooperationTest, CooperationReducesOriginLoad) {
  trace::ZipfTraceConfig tc;
  tc.num_docs = 300;
  tc.num_caches = 5;
  tc.duration_sec = 300.0;
  tc.requests_per_sec = 20.0;
  tc.updates_per_minute = 60.0;
  const trace::Trace t = trace::generate_zipf_trace(tc);

  auto origin_messages = [&](bool cooperative) {
    CloudConfig config;
    config.num_caches = 5;
    config.ring_size = 2;
    config.placement = "adhoc";
    config.cooperative = cooperative;
    CacheCloud cloud(config, t);
    return sim::run_simulation(cloud, t).metrics.origin_messages;
  };
  // The paper's two §1 claims at once: fewer misses reach the origin, and
  // one update message per cloud instead of one per holder.
  EXPECT_LT(origin_messages(true), origin_messages(false) / 2);
}

}  // namespace
}  // namespace cachecloud::core
