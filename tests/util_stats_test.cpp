#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cachecloud::util {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.coefficient_of_variation(), 0.0);
  EXPECT_DOUBLE_EQ(s.max_to_mean_ratio(), 0.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.coefficient_of_variation(), 0.4);
  EXPECT_DOUBLE_EQ(s.max_to_mean_ratio(), 1.8);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  OnlineStats left;
  OnlineStats right;
  OnlineStats whole;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    (i % 2 == 0 ? left : right).add(v);
    whole.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a;
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(SummarizeTest, SpanOverload) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const OnlineStats s = summarize(values);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(HistogramTest, BucketsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    EXPECT_EQ(h.bucket(b), 10u);
  }
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.6);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1e-9);
}

TEST(HistogramTest, OverflowUnderflowCounted) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  h.add(0.5);
  EXPECT_EQ(h.total(), 3u);
  std::size_t in_buckets = 0;
  for (std::size_t b = 0; b < h.bucket_count(); ++b) in_buckets += h.bucket(b);
  EXPECT_EQ(in_buckets, 1u);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace cachecloud::util
