#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/buffer.hpp"
#include "net/tcp.hpp"

namespace cachecloud::net {
namespace {

TEST(BufferTest, RoundTripAllTypes) {
  BufferWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(3.14159);
  w.str("hello world");
  w.blob({1, 2, 3});

  BufferReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(BufferTest, EmptyStringAndBlob) {
  BufferWriter w;
  w.str("");
  w.blob({});
  BufferReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.blob().empty());
}

TEST(BufferTest, TruncationThrows) {
  BufferWriter w;
  w.u64(42);
  {
    BufferReader r(w.bytes().data(), 4);  // cut in half
    EXPECT_THROW((void)r.u64(), DecodeError);
  }
  {
    BufferReader r(w.bytes());
    (void)r.u32();
    EXPECT_THROW(r.expect_end(), DecodeError);  // trailing bytes
  }
}

TEST(BufferTest, MalformedLengthPrefixThrows) {
  // A string claiming 100 bytes but carrying none.
  BufferWriter w;
  w.u32(100);
  BufferReader r(w.bytes());
  EXPECT_THROW((void)r.str(), DecodeError);
}

TEST(TcpTest, EchoRoundTrip) {
  TcpServer server(0, [](const Frame& f) {
    Frame reply = f;
    reply.type = static_cast<std::uint16_t>(f.type + 1);
    return reply;
  });
  TcpClient client(server.port());

  Frame request;
  request.type = 7;
  request.payload = {10, 20, 30};
  const Frame reply = client.call(request);
  EXPECT_EQ(reply.type, 8);
  EXPECT_EQ(reply.payload, request.payload);
}

TEST(TcpTest, LargePayload) {
  TcpServer server(0, [](const Frame& f) { return f; });
  TcpClient client(server.port());
  Frame request;
  request.type = 1;
  request.payload.assign(2 * 1024 * 1024, 0x5A);
  const Frame reply = client.call(request);
  EXPECT_EQ(reply.payload.size(), request.payload.size());
  EXPECT_EQ(reply.payload, request.payload);
}

TEST(TcpTest, ManySequentialCallsOneConnection) {
  std::atomic<int> served{0};
  TcpServer server(0, [&](const Frame& f) {
    ++served;
    return f;
  });
  TcpClient client(server.port());
  for (int i = 0; i < 200; ++i) {
    Frame request;
    request.type = static_cast<std::uint16_t>(i);
    (void)client.call(request);
  }
  EXPECT_EQ(served.load(), 200);
}

TEST(TcpTest, ConcurrentClients) {
  TcpServer server(0, [](const Frame& f) { return f; });
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      try {
        TcpClient client(server.port());
        for (int i = 0; i < 50; ++i) {
          Frame request;
          request.type = static_cast<std::uint16_t>(t * 100 + i);
          request.payload.assign(static_cast<std::size_t>(i), 0xAA);
          const Frame reply = client.call(request);
          if (reply.type != request.type ||
              reply.payload != request.payload) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TcpTest, ServerStopUnblocksEverything) {
  auto server = std::make_unique<TcpServer>(0, [](const Frame& f) { return f; });
  TcpClient client(server->port());
  Frame request;
  request.type = 1;
  (void)client.call(request);
  server->stop();  // must not hang with the client connection still open
  EXPECT_THROW((void)client.call(request), NetError);
}

TEST(TcpTest, ConnectToDeadPortFails) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  EXPECT_THROW(connect_local(dead_port), NetError);
}

TEST(TcpTest, HandlerExceptionDropsConnectionNotServer) {
  TcpServer server(0, [](const Frame& f) -> Frame {
    if (f.type == 13) throw std::runtime_error("boom");
    return f;
  });
  {
    TcpClient bad(server.port());
    Frame request;
    request.type = 13;
    EXPECT_THROW((void)bad.call(request), NetError);
  }
  // The server survives and accepts new connections.
  TcpClient good(server.port());
  Frame request;
  request.type = 1;
  EXPECT_EQ(good.call(request).type, 1);
}

TEST(TcpTest, EphemeralPortsAreDistinct) {
  TcpServer a(0, [](const Frame& f) { return f; });
  TcpServer b(0, [](const Frame& f) { return f; });
  EXPECT_NE(a.port(), b.port());
  EXPECT_GT(a.port(), 0);
}

TEST(TcpTest, CallIntoReusesReplyBufferAcrossCalls) {
  TcpServer server(0, [](const Frame& f) {
    Frame reply = f;
    reply.type = static_cast<std::uint16_t>(f.type + 1);
    return reply;
  });
  TcpClient client(server.port());

  Frame request;
  request.type = 7;
  request.payload.assign(4096, 0xAB);
  Frame reply;
  client.call_into(request, reply);
  EXPECT_EQ(reply.type, 8);
  EXPECT_EQ(reply.payload, request.payload);

  // A smaller reply must not keep stale bytes and must reuse the existing
  // allocation instead of grabbing a new one.
  const std::uint8_t* const buffer = reply.payload.data();
  request.type = 20;
  request.payload.assign(16, 0xCD);
  client.call_into(request, reply);
  EXPECT_EQ(reply.type, 21);
  EXPECT_EQ(reply.payload.size(), 16u);
  EXPECT_EQ(reply.payload, request.payload);
  EXPECT_EQ(reply.payload.data(), buffer);

  // call() still round-trips identically through the scratch send path.
  request.type = 40;
  const Frame copied = client.call(request);
  EXPECT_EQ(copied.type, 41);
  EXPECT_EQ(copied.payload, request.payload);
}

}  // namespace
}  // namespace cachecloud::net
