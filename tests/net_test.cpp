#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "net/buffer.hpp"
#include "net/event_loop.hpp"
#include "net/mux_client.hpp"
#include "net/tcp.hpp"

namespace cachecloud::net {
namespace {

TEST(BufferTest, RoundTripAllTypes) {
  BufferWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(3.14159);
  w.str("hello world");
  w.blob({1, 2, 3});

  BufferReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(BufferTest, EmptyStringAndBlob) {
  BufferWriter w;
  w.str("");
  w.blob({});
  BufferReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.blob().empty());
}

TEST(BufferTest, TruncationThrows) {
  BufferWriter w;
  w.u64(42);
  {
    BufferReader r(w.bytes().data(), 4);  // cut in half
    EXPECT_THROW((void)r.u64(), DecodeError);
  }
  {
    BufferReader r(w.bytes());
    (void)r.u32();
    EXPECT_THROW(r.expect_end(), DecodeError);  // trailing bytes
  }
}

TEST(BufferTest, MalformedLengthPrefixThrows) {
  // A string claiming 100 bytes but carrying none.
  BufferWriter w;
  w.u32(100);
  BufferReader r(w.bytes());
  EXPECT_THROW((void)r.str(), DecodeError);
}

// ------------------------------------------------------------ wire header

TEST(WireHeaderTest, RoundTripUntagged) {
  Frame frame;
  frame.type = 42;
  frame.trace_id = 0x1122334455667788ull;
  frame.parent_span_id = 0x99AABBCCDDEEFF00ull;
  frame.flags = 0x01;
  frame.payload = {9, 8, 7};

  std::uint8_t buffer[kWireHeaderMax];
  const std::size_t n = encode_wire_header(buffer, frame, 0);
  EXPECT_EQ(n, kFrameHeaderBytes);

  const WireHeader header = decode_wire_header(buffer);
  EXPECT_EQ(header.len, 3u);
  EXPECT_EQ(header.type, 42);
  EXPECT_EQ(header.trace_id, frame.trace_id);
  EXPECT_EQ(header.parent_span_id, frame.parent_span_id);
  EXPECT_EQ(header.flags, 0x01);
  EXPECT_FALSE(header.mux_tagged());
  EXPECT_NO_THROW(check_wire_header(header));
}

TEST(WireHeaderTest, RoundTripMuxTagged) {
  Frame frame;
  frame.type = 7;
  frame.payload = {1, 2};

  std::uint8_t buffer[kWireHeaderMax];
  const std::size_t n =
      encode_wire_header(buffer, frame, 0xCAFEBABEDEADBEEFull);
  EXPECT_EQ(n, kFrameHeaderBytes + kMuxTagBytes);

  const WireHeader header = decode_wire_header(buffer);
  EXPECT_TRUE(header.mux_tagged());
  // The tag counts toward the announced body length.
  EXPECT_EQ(header.len, 2u + kMuxTagBytes);
  EXPECT_NO_THROW(check_wire_header(header));
  EXPECT_EQ(decode_mux_tag(buffer + kFrameHeaderBytes),
            0xCAFEBABEDEADBEEFull);
}

TEST(WireHeaderTest, OversizedLengthThrowsTypedErrorNamingLength) {
  WireHeader header;
  header.len = static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
  header.type = 1;
  try {
    check_wire_header(header);
    FAIL() << "expected FrameTooLargeError";
  } catch (const FrameTooLargeError& e) {
    EXPECT_EQ(e.announced_bytes(), kMaxFrameBytes + 1);
    EXPECT_NE(std::string(e.what()).find(
                  std::to_string(kMaxFrameBytes + 1)),
              std::string::npos)
        << e.what();
  }
}

TEST(WireHeaderTest, ZeroLengthTypeZeroRejected) {
  // All-zero bytes (a half-open or garbage peer) must not parse as a
  // legitimate frame.
  WireHeader header;  // len=0, type=0
  EXPECT_THROW(check_wire_header(header), NetError);
}

TEST(WireHeaderTest, TaggedFrameShorterThanTagRejected) {
  WireHeader header;
  header.type = 3;
  header.flags = Frame::kFlagMuxTagged;
  header.len = kMuxTagBytes - 1;  // cannot even hold the tag
  EXPECT_THROW(check_wire_header(header), NetError);
}

TEST(WireHeaderTest, ReadFrameClosesSocketOnOversizedHeader) {
  TcpListener listener(0);
  std::thread peer([&] {
    Socket accepted = listener.accept();
    // Hand-craft a header announcing an impossible body length.
    Frame bogus;
    bogus.type = 9;
    std::uint8_t header[kWireHeaderMax];
    (void)encode_wire_header(header, bogus, 0);
    const std::uint32_t huge =
        static_cast<std::uint32_t>(kMaxFrameBytes) + 17;
    std::memcpy(header, &huge, sizeof(huge));
    (void)::send(accepted.fd(), header, kFrameHeaderBytes, MSG_NOSIGNAL);
    // Keep the socket open so a (wrong) drain attempt would hang; the
    // reader must close instead of draining 64 MiB that never comes.
    Frame sink;
    try {
      (void)accepted.read_frame_into(sink);
    } catch (const NetError&) {
    }
  });

  Socket client = connect_local(listener.port());
  Frame reply;
  EXPECT_THROW((void)client.read_frame_into(reply), FrameTooLargeError);
  // The stream is poisoned: the socket must have been closed.
  EXPECT_THROW(client.write_frame(reply), NetError);
  peer.join();
}

// --------------------------------------------------------------- transport

TEST(TcpTest, EchoRoundTrip) {
  EventServer server(0, [](const Frame& f) {
    Frame reply = f;
    reply.type = static_cast<std::uint16_t>(f.type + 1);
    return reply;
  });
  MuxClient client(server.port());

  Frame request;
  request.type = 7;
  request.payload = {10, 20, 30};
  const Frame reply = client.call(request);
  EXPECT_EQ(reply.type, 8);
  EXPECT_EQ(reply.payload, request.payload);
}

TEST(TcpTest, LargePayload) {
  EventServer server(0, [](const Frame& f) { return f; });
  MuxClient client(server.port());
  Frame request;
  request.type = 1;
  request.payload.assign(2 * 1024 * 1024, 0x5A);
  const Frame reply = client.call(request);
  EXPECT_EQ(reply.payload.size(), request.payload.size());
  EXPECT_EQ(reply.payload, request.payload);
}

TEST(TcpTest, ManySequentialCallsOneConnection) {
  std::atomic<int> served{0};
  EventServer server(0, [&](const Frame& f) {
    ++served;
    return f;
  });
  MuxClient client(server.port());
  for (int i = 0; i < 200; ++i) {
    Frame request;
    request.type = static_cast<std::uint16_t>(i);
    (void)client.call(request);
  }
  EXPECT_EQ(served.load(), 200);
}

TEST(TcpTest, ConcurrentClients) {
  EventServer server(0, [](const Frame& f) { return f; });
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      try {
        MuxClient client(server.port());
        for (int i = 0; i < 50; ++i) {
          Frame request;
          request.type = static_cast<std::uint16_t>(t * 100 + i);
          request.payload.assign(static_cast<std::size_t>(i), 0xAA);
          const Frame reply = client.call(request);
          if (reply.type != request.type ||
              reply.payload != request.payload) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TcpTest, ManyThreadsSharingOneClient) {
  // The whole point of the mux client: N threads overlap on one
  // connection instead of serializing a round trip each.
  EventServer server(0, [](const Frame& f) { return f; });
  MuxClient client(server.port());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        Frame request;
        request.type = static_cast<std::uint16_t>(t * 64 + (i % 50));
        request.payload.assign(static_cast<std::size_t>(i), 0xAA);
        try {
          const Frame reply = client.call(request);
          if (reply.type != request.type ||
              reply.payload != request.payload) {
            ++failures;
          }
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TcpTest, ServerStopUnblocksEverything) {
  auto server =
      std::make_unique<EventServer>(0, [](const Frame& f) { return f; });
  MuxClient client(server->port());
  Frame request;
  request.type = 1;
  (void)client.call(request);
  server->stop();  // must not hang with the client connection still open
  EXPECT_THROW((void)client.call(request), NetError);
}

TEST(TcpTest, ConnectToDeadPortFails) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  EXPECT_THROW(connect_local(dead_port), NetError);
}

TEST(TcpTest, HandlerExceptionDropsConnectionNotServer) {
  EventServer server(0, [](const Frame& f) -> Frame {
    if (f.type == 13) throw std::runtime_error("boom");
    return f;
  });
  {
    MuxClient bad(server.port());
    Frame request;
    request.type = 13;
    EXPECT_THROW((void)bad.call(request), NetError);
  }
  // The server survives and accepts new connections.
  MuxClient good(server.port());
  Frame request;
  request.type = 1;
  EXPECT_EQ(good.call(request).type, 1);
}

TEST(TcpTest, EphemeralPortsAreDistinct) {
  EventServer a(0, [](const Frame& f) { return f; });
  EventServer b(0, [](const Frame& f) { return f; });
  EXPECT_NE(a.port(), b.port());
  EXPECT_GT(a.port(), 0);
}

TEST(TcpTest, CallIntoDecodesIntoCallerFrame) {
  EventServer server(0, [](const Frame& f) {
    Frame reply = f;
    reply.type = static_cast<std::uint16_t>(f.type + 1);
    return reply;
  });
  MuxClient client(server.port());

  Frame request;
  request.type = 7;
  request.payload.assign(4096, 0xAB);
  Frame reply;
  client.call_into(request, reply);
  EXPECT_EQ(reply.type, 8);
  EXPECT_EQ(reply.payload, request.payload);

  // A smaller reply must not keep stale bytes from the previous call.
  request.type = 20;
  request.payload.assign(16, 0xCD);
  client.call_into(request, reply);
  EXPECT_EQ(reply.type, 21);
  EXPECT_EQ(reply.payload.size(), 16u);
  EXPECT_EQ(reply.payload, request.payload);

  // call() still round-trips identically.
  request.type = 40;
  const Frame copied = client.call(request);
  EXPECT_EQ(copied.type, 41);
  EXPECT_EQ(copied.payload, request.payload);
}

TEST(TcpTest, UntaggedRequestsKeepFifoOrder) {
  // Raw (untagged) frames over one connection must be answered one at a
  // time, in request order — the legacy serve-loop contract that raw
  // Socket users still rely on.
  EventServer server(0, [](const Frame& f) { return f; });
  Socket raw = connect_local(server.port());
  for (std::uint16_t i = 1; i <= 32; ++i) {
    Frame request;
    request.type = i;
    request.payload.assign(i, static_cast<std::uint8_t>(i));
    raw.write_frame(request);
  }
  for (std::uint16_t i = 1; i <= 32; ++i) {
    Frame reply;
    ASSERT_TRUE(raw.read_frame_into(reply));
    EXPECT_EQ(reply.type, i);
    EXPECT_EQ(reply.payload.size(), static_cast<std::size_t>(i));
  }
}

}  // namespace
}  // namespace cachecloud::net
