// Timeline core semantics: ring wraparound, counter-reset rates,
// per-interval histogram quantiles, NaN alignment for late series, JSON
// rendering, and the flight recorder's freeze-on-trigger behaviour
// (manual, signal, log-tail capture).
#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span_store.hpp"
#include "obs/timeline.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace cachecloud::obs {
namespace {

// Hand-built snapshot with one unlabeled counter.
Snapshot counter_snapshot(const std::string& name, double value) {
  Snapshot snapshot;
  SampleSnapshot sample;
  sample.name = name;
  sample.kind = MetricKind::Counter;
  sample.value = value;
  snapshot.samples.push_back(sample);
  return snapshot;
}

TimelineConfig small_config(std::size_t capacity = 120) {
  TimelineConfig config;
  config.enabled = true;
  config.interval_sec = 1.0;
  config.capacity = capacity;
  return config;
}

TEST(TimelineTest, CounterBecomesRateAndFirstTickIsNaN) {
  Timeline timeline(small_config());
  timeline.observe(counter_snapshot("reqs_total", 100.0), 0.0);
  timeline.observe(counter_snapshot("reqs_total", 150.0), 1.0);
  timeline.observe(counter_snapshot("reqs_total", 250.0), 3.0);

  const TimelineWindow window = timeline.window();
  ASSERT_EQ(window.ticks(), 3u);
  const SeriesSnapshot* series = window.find("reqs_total");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind, SeriesKind::Rate);
  EXPECT_TRUE(std::isnan(series->values[0]));  // no predecessor tick
  EXPECT_DOUBLE_EQ(series->values[1], 50.0);   // 50 / 1s
  EXPECT_DOUBLE_EQ(series->values[2], 50.0);   // 100 / 2s
}

TEST(TimelineTest, RingEvictsOldestTicksButRatesStayCorrect) {
  Timeline timeline(small_config(/*capacity=*/4));
  for (int i = 0; i < 10; ++i) {
    timeline.observe(counter_snapshot("reqs_total", 10.0 * i),
                     static_cast<double>(i));
  }
  const TimelineWindow window = timeline.window();
  ASSERT_EQ(window.ticks(), 4u);  // only the last 4 survive
  EXPECT_DOUBLE_EQ(window.t_sec.front(), 6.0);
  EXPECT_DOUBLE_EQ(window.t_sec.back(), 9.0);
  EXPECT_EQ(timeline.ticks_observed(), 10u);
  const SeriesSnapshot* series = window.find("reqs_total");
  ASSERT_NE(series, nullptr);
  // Raw counter state survives ring eviction: every retained tick rates
  // against its true predecessor, not against the ring edge.
  for (double v : series->values) EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(TimelineTest, CounterResetRatesAsRestartNotNegative) {
  Timeline timeline(small_config());
  timeline.observe(counter_snapshot("reqs_total", 100.0), 0.0);
  // Node restarted: the registry was reborn at zero and counted 40 since.
  timeline.observe(counter_snapshot("reqs_total", 40.0), 1.0);
  const TimelineWindow window = timeline.window();
  const SeriesSnapshot* series = window.find("reqs_total");
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->values[1], 40.0);  // new value IS the delta
}

TEST(TimelineTest, LateSeriesBackfillsNaNAndRatesFromZero) {
  Timeline timeline(small_config());
  timeline.observe(counter_snapshot("a_total", 1.0), 0.0);
  timeline.observe(counter_snapshot("a_total", 2.0), 1.0);
  Snapshot both = counter_snapshot("a_total", 3.0);
  SampleSnapshot late;
  late.name = "b_total";
  late.kind = MetricKind::Counter;
  late.value = 30.0;
  both.samples.push_back(late);
  timeline.observe(both, 2.0);

  const TimelineWindow window = timeline.window();
  const SeriesSnapshot* series = window.find("b_total");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->values.size(), 3u);
  EXPECT_TRUE(std::isnan(series->values[0]));
  EXPECT_TRUE(std::isnan(series->values[1]));
  // Registry metrics are born at zero, so the first sighting already has a
  // meaningful rate.
  EXPECT_DOUBLE_EQ(series->values[2], 30.0);

  // A series absent from a later snapshot carries NaN for that tick.
  timeline.observe(counter_snapshot("a_total", 4.0), 3.0);
  const TimelineWindow later = timeline.window();
  const SeriesSnapshot* gone = later.find("b_total");
  ASSERT_NE(gone, nullptr);
  EXPECT_TRUE(std::isnan(gone->values[3]));
}

TEST(TimelineTest, GaugeIsLevelNotRate) {
  Timeline timeline(small_config());
  Snapshot snapshot;
  SampleSnapshot gauge;
  gauge.name = "threads";
  gauge.kind = MetricKind::Gauge;
  gauge.value = 7.0;
  snapshot.samples.push_back(gauge);
  timeline.observe(snapshot, 0.0);
  const TimelineWindow window = timeline.window();
  const SeriesSnapshot* series = window.find("threads");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind, SeriesKind::Level);
  EXPECT_DOUBLE_EQ(series->values[0], 7.0);  // levels exist from tick 0
}

TEST(TimelineTest, HistogramEmitsPerIntervalQuantilesAndRates) {
  Registry registry;
  LatencyHistogram& histogram =
      registry.histogram("lat_seconds", "h", {0.001, 0.01, 0.1});
  Timeline timeline(small_config());
  timeline.observe(registry.snapshot(), 0.0);

  // Interval 1: 100 fast observations.
  for (int i = 0; i < 100; ++i) histogram.observe(0.0005);
  timeline.observe(registry.snapshot(), 1.0);
  // Interval 2: 100 slow observations — the cumulative histogram now holds
  // both, but the per-interval p99 must reflect only the slow batch.
  for (int i = 0; i < 100; ++i) histogram.observe(0.05);
  timeline.observe(registry.snapshot(), 2.0);

  const TimelineWindow window = timeline.window();
  const SeriesSnapshot* count = window.find("lat_seconds_count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->kind, SeriesKind::Rate);
  EXPECT_DOUBLE_EQ(count->values[1], 100.0);
  EXPECT_DOUBLE_EQ(count->values[2], 100.0);

  const SeriesSnapshot* p99 = window.find("lat_seconds_p99");
  ASSERT_NE(p99, nullptr);
  EXPECT_EQ(p99->kind, SeriesKind::Quantile);
  EXPECT_LE(p99->values[1], 0.001);  // fast interval
  EXPECT_GT(p99->values[2], 0.01);   // slow interval, despite fast history

  // Interval 3: no observations — quantile has no data, count rate is 0.
  timeline.observe(registry.snapshot(), 3.0);
  const TimelineWindow after = timeline.window();
  EXPECT_TRUE(std::isnan(after.find("lat_seconds_p99")->values[3]));
  EXPECT_DOUBLE_EQ(after.find("lat_seconds_count")->values[3], 0.0);
}

TEST(TimelineTest, SumAtAndLastSumAcrossLabelSets) {
  Timeline timeline(small_config());
  Snapshot snapshot;
  for (const char* cls : {"local", "cloud"}) {
    SampleSnapshot sample;
    sample.name = "gets_total";
    sample.kind = MetricKind::Counter;
    sample.labels = {{"class", cls}};
    sample.value = 10.0;
    snapshot.samples.push_back(sample);
  }
  timeline.observe(snapshot, 0.0);
  for (auto& sample : snapshot.samples) sample.value = 30.0;
  timeline.observe(snapshot, 1.0);

  const TimelineWindow window = timeline.window();
  EXPECT_DOUBLE_EQ(window.sum_at("gets_total", 1), 40.0);  // 20 + 20
  EXPECT_DOUBLE_EQ(window.last_sum("gets_total"), 40.0);
  EXPECT_DOUBLE_EQ(window.sum_at("gets_total", 0), 0.0);  // NaNs count as 0
  EXPECT_TRUE(std::isnan(window.sum_at("absent_total", 1)));
  const SeriesSnapshot* local =
      window.find("gets_total", {{"class", "local"}});
  ASSERT_NE(local, nullptr);
  EXPECT_DOUBLE_EQ(local->values[1], 20.0);
}

TEST(TimelineTest, QuantileSuffixMatchesReportNames) {
  EXPECT_EQ(quantile_suffix(0.5), "p50");
  EXPECT_EQ(quantile_suffix(0.99), "p99");
  EXPECT_EQ(quantile_suffix(0.999), "p999");
}

TEST(TimelineTest, WindowJsonParsesWithNaNAsNull) {
  Timeline timeline(small_config());
  timeline.observe(counter_snapshot("reqs_total", 5.0), 0.0);
  timeline.observe(counter_snapshot("reqs_total", 9.0), 1.0);
  const std::string json = timeline_window_json(timeline.window());
  const util::JsonValue doc = util::JsonValue::parse(json);
  EXPECT_DOUBLE_EQ(doc.number_at("interval_sec"), 1.0);
  ASSERT_EQ(doc.at("t_sec").as_array().size(), 2u);
  const auto& series = doc.at("series").as_array();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].at("name").as_string(), "reqs_total");
  EXPECT_EQ(series[0].at("kind").as_string(), "rate");
  const auto& values = series[0].at("values").as_array();
  EXPECT_TRUE(values[0].is_null());  // NaN -> null
  EXPECT_DOUBLE_EQ(values[1].as_number(), 4.0);
}

// ------------------------------------------------------------------ flight

TEST(FlightRecorderTest, ManualTriggerFreezesWindowSpansAndLogs) {
  Timeline timeline(small_config());
  timeline.observe(counter_snapshot("reqs_total", 5.0), 0.0);
  timeline.observe(counter_snapshot("reqs_total", 9.0), 1.0);

  SpanStore spans{SpanStoreConfig{}};
  SpanRecord record;
  record.trace_id = 1;
  record.span_id = 2;
  record.node = "node-1";
  record.name = "get";
  record.start_us = 100;
  record.end_us = 250;
  spans.add(record);

  util::set_log_capture(8);
  CC_LOG(Info) << "something happened before the trigger";

  FlightRecorderConfig config;
  config.log_lines = 8;
  FlightRecorder recorder("node-1", &timeline, &spans, config,
                          [] { return 2.0; });
  recorder.trigger("manual", "test trigger");

  const std::vector<FlightDump> dumps = recorder.dumps();
  ASSERT_EQ(dumps.size(), 1u);
  const FlightDump& dump = dumps[0];
  EXPECT_EQ(dump.node, "node-1");
  EXPECT_EQ(dump.reason, "manual");
  EXPECT_EQ(dump.detail, "test trigger");
  EXPECT_DOUBLE_EQ(dump.t_sec, 2.0);
  EXPECT_EQ(dump.window.ticks(), 2u);
  ASSERT_EQ(dump.spans.size(), 1u);
  EXPECT_EQ(dump.spans[0].name, "get");
  bool found_log = false;
  for (const std::string& line : dump.log_tail) {
    if (line.find("something happened") != std::string::npos) {
      found_log = true;
    }
  }
  EXPECT_TRUE(found_log);
  EXPECT_EQ(recorder.triggers(), 1u);
  util::set_log_capture(0);
}

TEST(FlightRecorderTest, DumpJsonParsesAndKeepsOnlyMaxDumps) {
  Timeline timeline(small_config());
  timeline.observe(counter_snapshot("reqs_total", 1.0), 0.0);
  FlightRecorderConfig config;
  config.max_dumps = 2;
  config.log_lines = 0;  // no log capture needed here
  FlightRecorder recorder("n", &timeline, nullptr, config, [] { return 0.0; });
  recorder.trigger("manual", "one");
  recorder.trigger("manual", "two");
  recorder.trigger("breaker_trip", "three");
  const std::vector<FlightDump> dumps = recorder.dumps();
  ASSERT_EQ(dumps.size(), 2u);  // oldest dropped
  EXPECT_EQ(dumps[0].detail, "two");
  EXPECT_EQ(dumps[1].reason, "breaker_trip");
  EXPECT_EQ(recorder.triggers(), 3u);

  const util::JsonValue doc =
      util::JsonValue::parse(flight_dump_json(dumps[1]));
  EXPECT_EQ(doc.at("schema").as_string(), "cachecloud.flight.v1");
  EXPECT_EQ(doc.at("trigger").at("reason").as_string(), "breaker_trip");
  EXPECT_EQ(doc.at("node").as_string(), "n");
  EXPECT_TRUE(doc.at("timeline").at("series").as_array().size() >= 1u);
}

TEST(FlightRecorderTest, SignalHookTriggersDumpSynchronously) {
  Timeline timeline(small_config());
  timeline.observe(counter_snapshot("reqs_total", 1.0), 0.0);
  FlightRecorderConfig config;
  config.log_lines = 0;
  FlightRecorder recorder("sig", &timeline, nullptr, config,
                          [] { return 1.0; });
  flight_on_signal(SIGUSR2, &recorder, /*fatal=*/false);
  std::raise(SIGUSR2);  // delivered synchronously on this thread
  flight_signal_detach(&recorder);

  const std::vector<FlightDump> dumps = recorder.dumps();
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].reason, "signal");
  EXPECT_NE(dumps[0].detail.find(std::to_string(SIGUSR2)),
            std::string::npos);

  // Detached: a second raise must not trigger.
  std::raise(SIGUSR2);
  EXPECT_EQ(recorder.triggers(), 1u);
}

TEST(LogCaptureTest, RingKeepsLastLinesOldestFirst) {
  util::set_log_capture(3);
  for (int i = 0; i < 6; ++i) {
    CC_LOG(Info) << "capture line " << i;
  }
  const std::vector<std::string> tail = util::log_tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_NE(tail[0].find("line 3"), std::string::npos);
  EXPECT_NE(tail[2].find("line 5"), std::string::npos);
  // Bounded fetch returns the most recent lines.
  const std::vector<std::string> last = util::log_tail(1);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_NE(last[0].find("line 5"), std::string::npos);
  util::set_log_capture(0);
  EXPECT_TRUE(util::log_tail().empty());
}

}  // namespace
}  // namespace cachecloud::obs
