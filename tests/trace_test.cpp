#include <gtest/gtest.h>

#include <sstream>

#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace cachecloud::trace {
namespace {

Trace tiny_trace() {
  std::vector<DocumentInfo> catalog{{"/a", 100}, {"/b", 200}, {"/c", 50}};
  std::vector<Event> events{
      {0.5, EventType::Request, 0, 1},
      {1.0, EventType::Update, 2, 0},
      {1.5, EventType::Request, 1, 0},
  };
  return Trace(std::move(catalog), std::move(events));
}

TEST(TraceTest, BasicAccessors) {
  const Trace t = tiny_trace();
  EXPECT_EQ(t.num_docs(), 3u);
  EXPECT_EQ(t.request_count(), 2u);
  EXPECT_EQ(t.update_count(), 1u);
  EXPECT_DOUBLE_EQ(t.duration(), 1.5);
  EXPECT_EQ(t.total_catalog_bytes(), 350u);
  EXPECT_EQ(t.num_caches(), 2u);
  EXPECT_EQ(t.doc(1).url, "/b");
}

TEST(TraceTest, ValidateCatchesProblems) {
  {
    Trace t({{"/a", 1}}, {{1.0, EventType::Request, 0, 0},
                          {0.5, EventType::Request, 0, 0}});
    EXPECT_THROW(t.validate(), std::invalid_argument);
  }
  {
    Trace t({{"/a", 1}}, {{1.0, EventType::Request, 7, 0}});
    EXPECT_THROW(t.validate(), std::invalid_argument);
  }
  EXPECT_NO_THROW(tiny_trace().validate());
}

TEST(TraceTest, SortStable) {
  Trace t({{"/a", 1}}, {{2.0, EventType::Request, 0, 1},
                        {1.0, EventType::Update, 0, 0},
                        {1.0, EventType::Request, 0, 2}});
  t.sort_events();
  EXPECT_EQ(t.events()[0].type, EventType::Update);  // first 1.0 entry kept
  EXPECT_EQ(t.events()[1].cache, 2u);
  EXPECT_DOUBLE_EQ(t.events()[2].time, 2.0);
}

TEST(TraceIoTest, RoundTrip) {
  const Trace original = tiny_trace();
  std::stringstream buffer;
  write_trace(buffer, original);
  const Trace loaded = read_trace(buffer);
  EXPECT_EQ(loaded.catalog(), original.catalog());
  ASSERT_EQ(loaded.events().size(), original.events().size());
  for (std::size_t i = 0; i < loaded.events().size(); ++i) {
    EXPECT_EQ(loaded.events()[i], original.events()[i]) << "event " << i;
  }
}

TEST(TraceIoTest, IgnoresCommentsAndBlanks) {
  std::stringstream in("# header\n\nD /x 10\n# mid\nE 1.0 R 0 0\n");
  const Trace t = read_trace(in);
  EXPECT_EQ(t.num_docs(), 1u);
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(TraceIoTest, RejectsGarbage) {
  {
    std::stringstream in("X nonsense\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    std::stringstream in("E 1.0 Z 0\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    std::stringstream in("D only-url\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    // Event referencing a doc outside the catalog fails validation.
    std::stringstream in("D /x 10\nE 1.0 R 5 0\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
}

TEST(WithUpdateRateTest, ReplacesUpdatesKeepsRequests) {
  ZipfTraceConfig config;
  config.num_docs = 200;
  config.duration_sec = 600.0;
  config.requests_per_sec = 10.0;
  config.updates_per_minute = 30.0;
  const Trace base = generate_zipf_trace(config);

  const Trace swept = base.with_update_rate(120.0, 7);
  swept.validate();
  EXPECT_EQ(swept.request_count(), base.request_count());
  // 120/min over 10 minutes ~ 1200 updates (Poisson).
  EXPECT_NEAR(static_cast<double>(swept.update_count()), 1200.0, 150.0);

  const Trace none = base.with_update_rate(0.0, 7);
  EXPECT_EQ(none.update_count(), 0u);
  EXPECT_THROW(base.with_update_rate(-1.0, 7), std::invalid_argument);
}

TEST(ZipfGeneratorTest, MatchesConfig) {
  ZipfTraceConfig config;
  config.num_docs = 500;
  config.num_caches = 4;
  config.duration_sec = 300.0;
  config.requests_per_sec = 20.0;
  config.updates_per_minute = 60.0;
  const Trace t = generate_zipf_trace(config);
  t.validate();
  EXPECT_EQ(t.num_docs(), 500u);
  EXPECT_LE(t.num_caches(), 4u);
  EXPECT_NEAR(static_cast<double>(t.request_count()), 6000.0, 400.0);
  EXPECT_NEAR(static_cast<double>(t.update_count()), 300.0, 80.0);
  // Determinism under the same seed.
  const Trace again = generate_zipf_trace(config);
  ASSERT_EQ(again.events().size(), t.events().size());
  EXPECT_EQ(again.events()[0], t.events()[0]);
  EXPECT_EQ(again.events().back(), t.events().back());
}

TEST(ZipfGeneratorTest, SkewGrowsWithAlpha) {
  ZipfTraceConfig config;
  config.num_docs = 2000;
  config.duration_sec = 600.0;
  config.requests_per_sec = 30.0;
  config.updates_per_minute = 0.0;

  config.request_alpha = 0.0;
  const TraceStats uniform = compute_stats(generate_zipf_trace(config));
  config.request_alpha = 0.9;
  const TraceStats skewed = compute_stats(generate_zipf_trace(config));
  EXPECT_GT(skewed.top1pct_request_share, 2.0 * uniform.top1pct_request_share);
}

TEST(ZipfGeneratorTest, RejectsBadConfig) {
  ZipfTraceConfig config;
  config.num_docs = 0;
  EXPECT_THROW(generate_zipf_trace(config), std::invalid_argument);
  config.num_docs = 10;
  config.num_caches = 0;
  EXPECT_THROW(generate_zipf_trace(config), std::invalid_argument);
}

TEST(SydneyGeneratorTest, ShapeProperties) {
  SydneyTraceConfig config;
  config.num_docs = 3000;
  config.num_caches = 5;
  config.duration_sec = 24.0 * 3600.0;
  config.peak_requests_per_sec = 2.0;
  config.updates_per_minute = 20.0;
  const Trace t = generate_sydney_trace(config);
  t.validate();
  const TraceStats stats = compute_stats(t);
  EXPECT_EQ(stats.num_docs, 3000u);
  EXPECT_GT(stats.requests, 50'000u);
  EXPECT_NEAR(stats.updates_per_minute, 20.0, 3.0);
  // Popularity is skewed: top 1% of documents draw a large share.
  EXPECT_GT(stats.top1pct_request_share, 0.15);

  // Diurnal shape: the midday third carries more requests than the night
  // third.
  std::size_t night = 0;
  std::size_t midday = 0;
  for (const Event& e : t.events()) {
    if (e.type != EventType::Request) continue;
    if (e.time < 8.0 * 3600.0) ++night;
    if (e.time >= 8.0 * 3600.0 && e.time < 16.0 * 3600.0) ++midday;
  }
  EXPECT_GT(midday, night * 3 / 2);
}

TEST(SydneyGeneratorTest, RejectsBadConfig) {
  SydneyTraceConfig config;
  config.hot_set_size = 100;
  config.num_docs = 50;
  EXPECT_THROW(generate_sydney_trace(config), std::invalid_argument);
}

}  // namespace
}  // namespace cachecloud::trace
