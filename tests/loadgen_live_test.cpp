// End-to-end: drive a real loopback cluster with the load generator and
// check that the client-side tallies reconcile exactly with the servers'
// own metrics, and that the report round-trips through the JSON parser.
#include <gtest/gtest.h>

#include <string>

#include "loadgen/plan.hpp"
#include "loadgen/report.hpp"
#include "loadgen/runner.hpp"
#include "node/cluster.hpp"
#include "util/json.hpp"

namespace cachecloud::loadgen {
namespace {

struct LiveCluster {
  explicit LiveCluster(std::uint32_t caches) {
    node::NodeConfig config;
    config.num_caches = caches;
    cluster = std::make_unique<node::Cluster>(config);
  }
  ~LiveCluster() { cluster->stop_all(); }

  void register_catalog(const Plan& plan) {
    for (std::size_t i = 0; i < plan.urls.size(); ++i) {
      cluster->origin().add_document(
          plan.urls[i], static_cast<std::size_t>(plan.doc_bytes[i]));
    }
  }

  [[nodiscard]] RunnerConfig runner_config(int threads) const {
    RunnerConfig config;
    for (node::NodeId id = 0; id < cluster->num_caches(); ++id) {
      config.cache_ports.push_back(cluster->cache(id).port());
    }
    config.origin_port = cluster->origin().port();
    config.threads = threads;
    return config;
  }

  std::unique_ptr<node::Cluster> cluster;
};

TEST(LoadgenLive, OpenLoopRunReconcilesWithServerMetrics) {
  WorkloadConfig workload;
  workload.num_docs = 60;
  workload.num_caches = 3;
  workload.update_fraction = 0.1;
  ScheduleConfig schedule;
  schedule.mode = Mode::Open;
  schedule.arrival = Arrival::Poisson;
  schedule.rate = 400.0;
  schedule.warmup_sec = 0.25;
  schedule.duration_sec = 1.0;
  const Plan plan = build_plan(workload, schedule, 42);

  LiveCluster live(3);
  live.register_catalog(plan);
  Runner runner(live.runner_config(3));
  const RunResult result = runner.run(plan);

  // Healthy loopback cluster: everything the clients sent succeeded and
  // the servers counted exactly the same requests.
  EXPECT_EQ(result.total_errors, 0u);
  EXPECT_GT(result.total_ok, 0u);
  const Reconciliation& rec = result.reconciliation;
  EXPECT_TRUE(rec.consistent);
  EXPECT_EQ(rec.unexplained_gets, 0);
  EXPECT_EQ(rec.unexplained_publishes, 0);
  EXPECT_EQ(rec.client_get_ok + rec.client_get_errors, rec.server_gets);
  EXPECT_EQ(rec.client_publish_ok, rec.server_publishes);

  // Every planned op was sent, phase by phase.
  ASSERT_EQ(result.phases.size(), plan.phases.size());
  for (const PhaseResult& phase : result.phases) {
    EXPECT_EQ(phase.sent, phase.planned) << phase.name;
    EXPECT_EQ(phase.ok, phase.sent) << phase.name;
    EXPECT_EQ(phase.gets + phase.publishes, phase.sent) << phase.name;
    EXPECT_EQ(phase.latency_count, phase.sent) << phase.name;
    if (phase.latency_count > 0) {
      EXPECT_GT(phase.p50, 0.0) << phase.name;
      EXPECT_LE(phase.p50, phase.p99) << phase.name;
      EXPECT_LE(phase.p99, phase.p999) << phase.name;
    }
  }

  // Per-node gets sum to the total and the origin delta matches.
  std::uint64_t node_gets = 0;
  for (const NodeStats& node : result.nodes) {
    if (node.role == "cache") node_gets += node.gets;
  }
  EXPECT_EQ(node_gets, rec.server_gets);

  // The rendered report parses back and carries the same numbers.
  const util::JsonValue doc =
      util::JsonValue::parse(render_report(plan, result));
  EXPECT_EQ(doc.at("schema").as_string(), kReportSchema);
  EXPECT_EQ(doc.at("workload").as_string(), "zipf");
  EXPECT_DOUBLE_EQ(doc.at("totals").number_at("ok"),
                   static_cast<double>(result.total_ok));
  EXPECT_TRUE(doc.at("reconciliation").at("consistent").as_bool());
  EXPECT_EQ(doc.at("phases").as_array().size(), result.phases.size());
  EXPECT_EQ(default_report_name(plan), "BENCH_live_zipf.json");
}

TEST(LoadgenLive, RampRunReportsPerStepResults) {
  WorkloadConfig workload;
  workload.num_docs = 40;
  workload.num_caches = 2;
  workload.update_fraction = 0.0;
  ScheduleConfig schedule;
  schedule.mode = Mode::Ramp;
  schedule.arrival = Arrival::Fixed;
  schedule.warmup_sec = 0.2;
  schedule.duration_sec = 0.5;
  schedule.ramp_start = 100.0;
  schedule.ramp_step = 100.0;
  schedule.ramp_steps = 2;
  const Plan plan = build_plan(workload, schedule, 17);

  LiveCluster live(2);
  live.register_catalog(plan);
  Runner runner(live.runner_config(2));
  const RunResult result = runner.run(plan);

  EXPECT_TRUE(result.ramp.ran);
  EXPECT_EQ(result.total_errors, 0u);
  EXPECT_TRUE(result.reconciliation.consistent);
  ASSERT_EQ(result.phases.size(), 3u);
  EXPECT_EQ(result.phases[1].name, "step1");
  EXPECT_EQ(result.phases[2].name, "step2");
  // A loopback cluster at 100-200 ops/s is nowhere near saturation.
  EXPECT_FALSE(result.ramp.saturated);
  EXPECT_DOUBLE_EQ(result.ramp.knee_rate, 200.0);
}

TEST(LoadgenLive, RunnerRejectsPlansItCannotRoute) {
  WorkloadConfig workload;
  workload.num_docs = 10;
  workload.num_caches = 4;  // plan spreads over 4 caches...
  ScheduleConfig schedule;
  schedule.warmup_sec = 0.0;
  schedule.duration_sec = 0.5;
  schedule.rate = 100.0;
  const Plan plan = build_plan(workload, schedule, 3);

  LiveCluster live(2);  // ...but only 2 exist
  live.register_catalog(plan);
  Runner runner(live.runner_config(2));
  EXPECT_THROW((void)runner.run(plan), std::invalid_argument);
}

}  // namespace
}  // namespace cachecloud::loadgen
