#include "cache/disk_tier.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.hpp"
#include "cache/tiered_store.hpp"
#include "util/fs.hpp"

namespace cachecloud::cache {
namespace {

namespace fs = std::filesystem;

[[nodiscard]] std::vector<std::uint8_t> make_body(std::size_t n,
                                                  std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

class DiskTierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cc_disk_tier_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] DiskTierConfig config(std::uint64_t capacity = 0,
                                      IoFaultInjector* faults = nullptr) {
    DiskTierConfig cfg;
    cfg.directory = dir_;
    cfg.capacity_bytes = capacity;
    cfg.io_faults = faults;
    return cfg;
  }

  std::string dir_;
};

TEST_F(DiskTierTest, PutThenGetRoundTripsThroughQueueAndFile) {
  DiskTier tier(config(), nullptr);
  const auto body = make_body(512, 0xAB);
  EXPECT_TRUE(tier.put("/doc/1", 3, body).accepted);

  // Served from the write-behind queue immediately.
  auto hit = tier.get("/doc/1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->version, 3u);
  EXPECT_EQ(hit->body, body);

  // And from the committed file after the queue drains.
  tier.flush();
  hit = tier.get("/doc/1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->body, body);
  EXPECT_EQ(tier.doc_count(), 1u);
  EXPECT_EQ(tier.used_bytes(), 512u);
}

TEST_F(DiskTierTest, FlushedDocumentsSurviveReincarnation) {
  {
    DiskTier tier(config(), nullptr);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(tier
                      .put("/doc/" + std::to_string(i),
                           static_cast<std::uint64_t>(i + 1),
                           make_body(100 + i, static_cast<std::uint8_t>(i)))
                      .accepted);
    }
    tier.flush();
  }  // graceful shutdown
  DiskTier reborn(config(), nullptr);
  EXPECT_EQ(reborn.recovered().size(), 10u);
  EXPECT_EQ(reborn.doc_count(), 10u);
  for (int i = 0; i < 10; ++i) {
    auto hit = reborn.get("/doc/" + std::to_string(i));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->version, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(hit->body, make_body(100 + i, static_cast<std::uint8_t>(i)));
  }
}

TEST_F(DiskTierTest, HardStopLosesOnlyTheUncommittedQueue) {
  {
    DiskTier tier(config(), nullptr);
    ASSERT_TRUE(tier.put("/committed", 1, make_body(64, 1)).accepted);
    tier.flush();
    // hard_stop abandons whatever is still queued, like a crash would.
    ASSERT_TRUE(tier.put("/queued-1", 1, make_body(64, 2)).accepted);
    ASSERT_TRUE(tier.put("/queued-2", 1, make_body(64, 3)).accepted);
    tier.hard_stop();
  }
  DiskTier reborn(config(), nullptr);
  // Only the flushed document is guaranteed back. (The queued ones may or
  // may not have been committed depending on writer timing — but
  // /committed must always survive.)
  EXPECT_TRUE(reborn.contains("/committed"));
  auto hit = reborn.get("/committed");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->body, make_body(64, 1));
}

TEST_F(DiskTierTest, RecoveryStopsAtFirstCorruptManifestRecord) {
  {
    DiskTier tier(config(), nullptr);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          tier.put("/doc/" + std::to_string(i), 1, make_body(50, 5)).accepted);
    }
    tier.flush();
  }
  // Flip one byte in the middle of the manifest: the prefix before the
  // damaged record must recover, the rest must be discarded.
  const std::string mpath = dir_ + "/manifest";
  std::string text;
  {
    std::ifstream in(mpath, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_FALSE(text.empty());
  // Find the start of the 4th line and corrupt its CRC field.
  std::size_t pos = 0;
  for (int line = 0; line < 3; ++line) pos = text.find('\n', pos) + 1;
  text[pos] = text[pos] == 'f' ? '0' : 'f';
  {
    std::ofstream out(mpath, std::ios::binary | std::ios::trunc);
    out << text;
  }
  DiskTier reborn(config(), nullptr);
  EXPECT_EQ(reborn.recovered().size(), 3u);
  EXPECT_GE(reborn.dropped_records(), 3u);
  EXPECT_FALSE(reborn.degraded());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(reborn.contains("/doc/" + std::to_string(i))) << i;
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_FALSE(reborn.contains("/doc/" + std::to_string(i))) << i;
  }
}

TEST_F(DiskTierTest, TruncatedManifestTailIsDiscarded) {
  {
    DiskTier tier(config(), nullptr);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          tier.put("/doc/" + std::to_string(i), 1, make_body(40, 9)).accepted);
    }
    tier.flush();
  }
  const std::string mpath = dir_ + "/manifest";
  std::string text;
  {
    std::ifstream in(mpath, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Chop the file mid-way through the last record (torn final append).
  {
    std::ofstream out(mpath, std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() - 10);
  }
  DiskTier reborn(config(), nullptr);
  EXPECT_EQ(reborn.recovered().size(), 3u);
  EXPECT_FALSE(reborn.degraded());
}

TEST_F(DiskTierTest, CorruptBodyFileIsDroppedAtRecovery) {
  std::string victim_file;
  {
    DiskTier tier(config(), nullptr);
    ASSERT_TRUE(tier.put("/good", 1, make_body(128, 7)).accepted);
    ASSERT_TRUE(tier.put("/bad", 1, make_body(128, 8)).accepted);
    tier.flush();
  }
  // Corrupt one body on "media": flip a byte in whichever obj file does
  // not match /good's fill.
  for (const auto& ent : fs::directory_iterator(dir_)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("obj-", 0) != 0) continue;
    std::ifstream in(ent.path(), std::ios::binary);
    std::string content(std::istreambuf_iterator<char>(in), {});
    if (!content.empty() && static_cast<std::uint8_t>(content[0]) == 8) {
      content[64] ^= 0xFF;
      std::ofstream out(ent.path(), std::ios::binary | std::ios::trunc);
      out << content;
      victim_file = name;
    }
  }
  ASSERT_FALSE(victim_file.empty());
  DiskTier reborn(config(), nullptr);
  EXPECT_EQ(reborn.recovered().size(), 1u);
  EXPECT_TRUE(reborn.contains("/good"));
  EXPECT_FALSE(reborn.contains("/bad"));
  EXPECT_GE(reborn.dropped_records(), 1u);
}

TEST_F(DiskTierTest, CorruptBodyReadIsEradicatedLikeSlccd) {
  DiskTier tier(config(), nullptr);
  ASSERT_TRUE(tier.put("/doc", 1, make_body(256, 4)).accepted);
  tier.flush();
  // Corrupt the committed file behind the tier's back.
  for (const auto& ent : fs::directory_iterator(dir_)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("obj-", 0) != 0) continue;
    std::fstream f(ent.path(), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(10);
    f.put('\x7F');
  }
  EXPECT_FALSE(tier.get("/doc").has_value());  // CRC mismatch -> miss
  EXPECT_FALSE(tier.contains("/doc"));         // and the copy is eradicated
  EXPECT_GE(tier.dropped_records(), 1u);
  EXPECT_FALSE(tier.degraded());  // corruption is not an I/O breaker event
}

TEST_F(DiskTierTest, LastUseEvictionUnderCapacity) {
  DiskTier tier(config(/*capacity=*/300), nullptr);
  ASSERT_TRUE(tier.put("/a", 1, make_body(100, 1)).accepted);
  ASSERT_TRUE(tier.put("/b", 1, make_body(100, 2)).accepted);
  ASSERT_TRUE(tier.put("/c", 1, make_body(100, 3)).accepted);
  tier.flush();
  // Touch /a so /b is the least-recently-used.
  ASSERT_TRUE(tier.get("/a").has_value());
  const auto put = tier.put("/d", 1, make_body(100, 4));
  ASSERT_TRUE(put.accepted);
  ASSERT_EQ(put.evicted.size(), 1u);
  EXPECT_EQ(put.evicted[0], "/b");
  tier.flush();
  EXPECT_TRUE(tier.contains("/a"));
  EXPECT_FALSE(tier.contains("/b"));
  EXPECT_TRUE(tier.contains("/c"));
  EXPECT_TRUE(tier.contains("/d"));
  EXPECT_LE(tier.used_bytes(), 300u);
}

TEST_F(DiskTierTest, OversizedBodyIsRejected) {
  DiskTier tier(config(/*capacity=*/100), nullptr);
  EXPECT_FALSE(tier.put("/big", 1, make_body(101, 1)).accepted);
  EXPECT_EQ(tier.doc_count(), 0u);
}

TEST_F(DiskTierTest, SameVersionRePutSkipsRewrite) {
  DiskTier tier(config(), nullptr);
  ASSERT_TRUE(tier.put("/doc", 5, make_body(64, 1)).accepted);
  tier.flush();
  const auto spills_before = tier.used_bytes();
  ASSERT_TRUE(tier.put("/doc", 5, make_body(64, 1)).accepted);
  tier.flush();
  EXPECT_EQ(tier.doc_count(), 1u);
  EXPECT_EQ(tier.used_bytes(), spills_before);
  // Only one object file on disk.
  int obj_files = 0;
  for (const auto& ent : fs::directory_iterator(dir_)) {
    if (ent.path().filename().string().rfind("obj-", 0) == 0) ++obj_files;
  }
  EXPECT_EQ(obj_files, 1);
}

TEST_F(DiskTierTest, NewVersionReplacesOldFile) {
  DiskTier tier(config(), nullptr);
  ASSERT_TRUE(tier.put("/doc", 1, make_body(64, 1)).accepted);
  tier.flush();
  ASSERT_TRUE(tier.put("/doc", 2, make_body(80, 2)).accepted);
  tier.flush();
  auto hit = tier.get("/doc");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->version, 2u);
  EXPECT_EQ(hit->body, make_body(80, 2));
  EXPECT_EQ(tier.used_bytes(), 80u);
  // Survives restart at the new version.
  DiskTier reborn(config(), nullptr);
  hit = reborn.get("/doc");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->version, 2u);
}

TEST_F(DiskTierTest, EraseRemovesDurably) {
  {
    DiskTier tier(config(), nullptr);
    ASSERT_TRUE(tier.put("/doc", 1, make_body(64, 1)).accepted);
    tier.flush();
    EXPECT_TRUE(tier.erase("/doc"));
    tier.flush();
    EXPECT_FALSE(tier.contains("/doc"));
  }
  DiskTier reborn(config(), nullptr);
  EXPECT_TRUE(reborn.recovered().empty());
  EXPECT_FALSE(reborn.contains("/doc"));
}

// ----------------------------------------------------------- I/O faults

TEST_F(DiskTierTest, PersistentWriteFailureTripsBreakerToMemoryOnly) {
  IoFaultInjector faults(/*seed=*/7);
  IoFaultProfile profile;
  profile.write_error = 1.0;  // every write EIOs
  faults.set_profile(profile);
  DiskTierConfig cfg = config(0, &faults);
  cfg.breaker_failures = 3;
  DiskTier tier(cfg, nullptr);
  for (int i = 0; i < 8; ++i) {
    (void)tier.put("/doc/" + std::to_string(i), 1, make_body(64, 1));
    tier.flush();
  }
  EXPECT_TRUE(tier.degraded());
  EXPECT_EQ(tier.doc_count(), 0u);
  // Degraded tier is a harmless black hole: no crash, puts rejected,
  // gets miss.
  EXPECT_FALSE(tier.put("/after", 1, make_body(10, 1)).accepted);
  EXPECT_FALSE(tier.get("/after").has_value());
  EXPECT_GE(faults.count(IoFaultInjector::Kind::WriteError), 3u);
}

TEST_F(DiskTierTest, UnreadableManifestDegradesAtStartup) {
  // Populate cleanly first so a manifest exists on disk.
  {
    DiskTier tier(config(), nullptr);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          tier.put("/doc/" + std::to_string(i), 1, make_body(64, 1)).accepted);
    }
    tier.flush();
  }
  IoFaultInjector faults(/*seed=*/7);
  IoFaultProfile profile;
  profile.read_error = 1.0;
  faults.set_profile(profile);
  DiskTierConfig cfg = config(0, &faults);
  cfg.breaker_failures = 3;
  // A manifest we know exists but cannot read is a persistent-failure
  // signal: the tier degrades immediately — but construction must not
  // throw, and every operation stays safe afterwards.
  DiskTier tier(cfg, nullptr);
  EXPECT_TRUE(tier.degraded());
  EXPECT_TRUE(tier.recovered().empty());
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(tier.get("/doc/" + std::to_string(i)).has_value());
  }
  EXPECT_FALSE(tier.put("/after", 1, make_body(8, 1)).accepted);
}

TEST_F(DiskTierTest, PersistentReadFailureTripsBreaker) {
  IoFaultInjector faults(/*seed=*/7);
  DiskTierConfig cfg = config(0, &faults);
  cfg.breaker_failures = 3;
  DiskTier tier(cfg, nullptr);  // recovery runs with a clean profile
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        tier.put("/doc/" + std::to_string(i), 1, make_body(64, 1)).accepted);
  }
  tier.flush();
  IoFaultProfile profile;
  profile.read_error = 1.0;
  faults.set_profile(profile);
  // Each get reaches the disk read, takes an injected EIO, and feeds the
  // breaker; after breaker_failures of them the tier is memory-only.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(tier.get("/doc/" + std::to_string(i)).has_value());
  }
  EXPECT_TRUE(tier.degraded());
  EXPECT_GE(faults.count(IoFaultInjector::Kind::ReadError), 3u);
}

TEST_F(DiskTierTest, ShortWritesAreCaughtByBodyCrc) {
  IoFaultInjector faults(/*seed=*/11);
  IoFaultProfile profile;
  profile.short_write = 1.0;  // every write torn in half
  faults.set_profile(profile);
  DiskTier tier(config(0, &faults), nullptr);
  ASSERT_TRUE(tier.put("/doc", 1, make_body(256, 6)).accepted);
  tier.flush();
  faults.clear();  // reads are clean; the damage is already on disk
  // The torn body fails its size/CRC check and is eradicated, not served.
  EXPECT_FALSE(tier.get("/doc").has_value());
  EXPECT_FALSE(tier.degraded());
  EXPECT_GE(faults.count(IoFaultInjector::Kind::ShortWrite), 1u);
}

TEST_F(DiskTierTest, ManifestBitFlipsAreDroppedAtRecovery) {
  IoFaultInjector faults(/*seed=*/13);
  {
    DiskTier tier(config(0, &faults), nullptr);
    ASSERT_TRUE(tier.put("/clean", 1, make_body(64, 1)).accepted);
    tier.flush();
    IoFaultProfile profile;
    profile.corrupt_append = 1.0;  // every further manifest record flipped
    faults.set_profile(profile);
    ASSERT_TRUE(tier.put("/flipped", 1, make_body(64, 2)).accepted);
    tier.flush();
    faults.clear();
  }
  DiskTier reborn(config(), nullptr);
  EXPECT_TRUE(reborn.contains("/clean"));
  EXPECT_FALSE(reborn.contains("/flipped"));
  EXPECT_GE(faults.count(IoFaultInjector::Kind::CorruptAppend), 1u);
}

// ---------------------------------------------------------- TieredStore

TEST(TieredStoreTest, MemoryOnlyBehavesLikeDocumentStore) {
  TieredStore store(/*mem=*/0, make_policy("lru"), nullptr);
  const auto body = make_body(100, 1);
  const auto put = store.put(1, "/doc", body, 3, 0.0);
  EXPECT_TRUE(put.stored);
  EXPECT_TRUE(put.dropped_urls.empty());
  EXPECT_EQ(put.spilled, 0u);
  auto hit = store.get(1, "/doc", 1.0);
  ASSERT_TRUE(hit.found);
  EXPECT_FALSE(hit.from_disk);
  EXPECT_EQ(hit.version, 3u);
  EXPECT_EQ(hit.body, body);
  EXPECT_FALSE(store.get(2, "/other", 1.0).found);
}

class TieredStoreDiskTest : public DiskTierTest {
 protected:
  [[nodiscard]] std::unique_ptr<TieredStore> make_store(
      std::uint64_t mem_capacity, std::uint64_t disk_capacity = 0,
      bool write_through = false) {
    return std::make_unique<TieredStore>(
        mem_capacity, make_policy("lru"),
        std::make_unique<DiskTier>(config(disk_capacity), nullptr),
        write_through);
  }
};

TEST_F(TieredStoreDiskTest, MemoryEvictionSpillsToDiskAndStaysReadable) {
  auto store = make_store(/*mem=*/250);
  ASSERT_TRUE(store->put(1, "/a", make_body(100, 1), 1, 0.0).stored);
  ASSERT_TRUE(store->put(2, "/b", make_body(100, 2), 1, 1.0).stored);
  // /a is LRU; storing /c evicts it from memory -> spilled, not dropped.
  const auto put = store->put(3, "/c", make_body(100, 3), 1, 2.0);
  ASSERT_TRUE(put.stored);
  EXPECT_EQ(put.spilled, 1u);
  EXPECT_TRUE(put.dropped_urls.empty());
  EXPECT_FALSE(store->in_memory(1));
  EXPECT_TRUE(store->holds(1, "/a"));
  auto hit = store->get(1, "/a", 3.0);
  ASSERT_TRUE(hit.found);
  EXPECT_TRUE(hit.from_disk);
  EXPECT_EQ(hit.body, make_body(100, 1));
}

TEST_F(TieredStoreDiskTest, DiskEvictionReportsDroppedUrls) {
  auto store = make_store(/*mem=*/150, /*disk=*/150);
  ASSERT_TRUE(store->put(1, "/a", make_body(100, 1), 1, 0.0).stored);
  // /b evicts /a from memory -> spilled to disk.
  auto put = store->put(2, "/b", make_body(100, 2), 1, 1.0);
  EXPECT_EQ(put.spilled, 1u);
  // /c evicts /b from memory; spilling /b to the 150-byte disk evicts /a
  // from disk too — /a has now left the node entirely.
  put = store->put(3, "/c", make_body(100, 3), 1, 2.0);
  ASSERT_TRUE(put.stored);
  EXPECT_EQ(put.spilled, 1u);
  ASSERT_EQ(put.dropped_urls.size(), 1u);
  EXPECT_EQ(put.dropped_urls[0], "/a");
  EXPECT_FALSE(store->holds(1, "/a"));
  EXPECT_TRUE(store->holds(2, "/b"));
}

TEST_F(TieredStoreDiskTest, WriteThroughPersistsWithoutEviction) {
  auto store = make_store(/*mem=*/0, /*disk=*/0, /*write_through=*/true);
  ASSERT_TRUE(store->put(1, "/doc", make_body(64, 5), 2, 0.0).stored);
  store->disk()->flush();
  EXPECT_TRUE(store->disk()->contains("/doc"));
  EXPECT_EQ(store->disk()->version_of("/doc"), 2u);
}

TEST_F(TieredStoreDiskTest, ApplyUpdateRefreshesTheDiskCopy) {
  auto store = make_store(/*mem=*/250);
  ASSERT_TRUE(store->put(1, "/a", make_body(100, 1), 1, 0.0).stored);
  ASSERT_TRUE(store->put(2, "/b", make_body(100, 2), 1, 1.0).stored);
  ASSERT_TRUE(store->put(3, "/c", make_body(100, 3), 1, 2.0).stored);
  ASSERT_FALSE(store->in_memory(1));  // /a spilled
  // Update the disk-resident /a: version must advance durably.
  TieredPutResult side;
  EXPECT_TRUE(store->apply_update(1, "/a", make_body(100, 9), 7, 3.0, &side));
  auto hit = store->get(1, "/a", 4.0);
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.version, 7u);
  EXPECT_EQ(hit.body, make_body(100, 9));
  EXPECT_FALSE(store->apply_update(99, "/none", make_body(1, 0), 1, 5.0,
                                   &side));
}

TEST_F(TieredStoreDiskTest, EraseClearsEveryTier) {
  auto store = make_store(/*mem=*/0, 0, /*write_through=*/true);
  ASSERT_TRUE(store->put(1, "/doc", make_body(64, 1), 1, 0.0).stored);
  store->disk()->flush();
  EXPECT_TRUE(store->erase(1, "/doc"));
  EXPECT_FALSE(store->holds(1, "/doc"));
  EXPECT_FALSE(store->get(1, "/doc", 1.0).found);
  EXPECT_FALSE(store->erase(1, "/doc"));
}

TEST_F(TieredStoreDiskTest, LoadRecoveredPreloadsOnlyWhatFits) {
  {
    auto store = make_store(/*mem=*/0, 0, /*write_through=*/true);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(store
                      ->put(static_cast<DocId>(i), "/doc/" + std::to_string(i),
                            make_body(100, static_cast<std::uint8_t>(i)),
                            1, static_cast<double>(i))
                      .stored);
    }
    store->disk()->flush();
  }
  // Reincarnate with a 250-byte memory tier: only two docs preload.
  auto store = std::make_unique<TieredStore>(
      250, make_policy("lru"),
      std::make_unique<DiskTier>(config(), nullptr), false);
  const auto& recovered = store->disk()->recovered();
  ASSERT_EQ(recovered.size(), 5u);
  std::size_t loaded = 0;
  for (auto it = recovered.rbegin(); it != recovered.rend(); ++it) {
    if (store->load_recovered(static_cast<DocId>(it->url.back() - '0'),
                              it->url, 0.0)) {
      ++loaded;
    }
  }
  EXPECT_EQ(loaded, 2u);
  EXPECT_EQ(store->memory().doc_count(), 2u);
  EXPECT_LE(store->memory().used_bytes(), 250u);
  // Everything is still on disk regardless.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(store->holds(static_cast<DocId>(i),
                             "/doc/" + std::to_string(i)));
  }
}

}  // namespace
}  // namespace cachecloud::cache
